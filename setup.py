"""Legacy setup shim.

The execution environment has no ``wheel`` package (and no network), so the
PEP 660 editable-install path is unavailable; this shim lets
``pip install -e .`` fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
