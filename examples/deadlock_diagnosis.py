#!/usr/bin/env python3
"""Diagnose a PFC deadlock caused by a routing misconfiguration.

Reproduces Figure 1(c)/(d) of the paper: a 4-switch ring with clockwise
(cyclic-buffer-dependency) routing, four benign circulation flows, and two
ways to close the pause cycle:

- ``in-loop``: a short micro-burst at a ring port (initiator in the loop);
- ``out-of-loop``: a host injecting PFC frames outside the loop.

Hawkeye's diagnosis identifies the loop, classifies the deadlock type and
names the root cause.  It also prints the Graphviz rendering of the
provenance graph — the repository's analog of Figure 12(c)/(d).

Run:  python examples/deadlock_diagnosis.py [in-loop|out-of-loop]
"""

import sys

from repro.experiments import RunConfig, run_scenario
from repro.workloads import in_loop_deadlock_scenario, out_of_loop_deadlock_scenario


def main() -> None:
    variant = sys.argv[1] if len(sys.argv) > 1 else "in-loop"
    if variant == "in-loop":
        scenario = in_loop_deadlock_scenario(seed=1)
    elif variant == "out-of-loop":
        scenario = out_of_loop_deadlock_scenario(seed=1, injection=True)
    else:
        raise SystemExit(f"unknown variant {variant!r}; use in-loop|out-of-loop")

    print(f"scenario: {scenario.name}")
    print(f"  {scenario.description}")

    result = run_scenario(scenario, RunConfig())

    blocked = [f for f in scenario.victims if not f.completed]
    print(f"\nafter {scenario.duration_ns / 1e6:.0f} ms: "
          f"{len(blocked)}/{len(scenario.victims)} circulation flows are stuck")
    for flow in scenario.victims:
        state = "DEADLOCKED" if not flow.completed else "completed"
        print(f"  {flow.key}  acked {flow.bytes_acked // 1000} KB / "
              f"{flow.size // 1000} KB  [{state}]")

    outcome = result.primary_outcome()
    print(f"\ntelemetry used: {', '.join(sorted(outcome.reports_used))}")
    print(outcome.diagnosis.describe())

    primary = outcome.diagnosis.primary()
    if primary.loop:
        print("\ncyclic buffer dependency (for routing-config checking):")
        print("  " + " -> ".join(str(p) for p in primary.loop + [primary.loop[0]]))

    print("\nGraphviz provenance graph (render with `dot -Tpng`):\n")
    print(outcome.annotated.graph.to_dot())


if __name__ == "__main__":
    main()
