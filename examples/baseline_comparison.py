#!/usr/bin/env python3
"""Compare Hawkeye against the paper's baselines on one anomaly.

Runs the same incast back-pressure scenario under every diagnosis system
(§4.2's comparison set) and prints accuracy plus the overhead accounting —
a miniature of Figures 8, 9 and 11.

Run:  python examples/baseline_comparison.py
"""

from repro.baselines import SystemKind
from repro.experiments import RunConfig, diagnosis_correct, run_scenario
from repro.workloads import incast_backpressure_scenario

SYSTEMS = [
    SystemKind.HAWKEYE,
    SystemKind.FULL_POLLING,
    SystemKind.VICTIM_ONLY,
    SystemKind.SPIDERMON,
    SystemKind.NETSIGHT,
    SystemKind.PORT_ONLY,
    SystemKind.FLOW_ONLY,
]


def main() -> None:
    print("incast back-pressure (Figure 1a) under each diagnosis system\n")
    header = (
        f"{'system':14s} {'verdict':10s} {'anomaly reported':38s} "
        f"{'switches':>8s} {'telemetry B':>12s} {'extra wire B':>12s}"
    )
    print(header)
    print("-" * len(header))
    for system in SYSTEMS:
        scenario = incast_backpressure_scenario(seed=1)
        result = run_scenario(scenario, RunConfig(system=system))
        diagnosis = result.diagnosis()
        if diagnosis is None or not diagnosis.findings:
            verdict, reported = "MISSED", "-"
        elif diagnosis_correct(diagnosis, scenario.truth):
            verdict, reported = "CORRECT", diagnosis.primary().anomaly.value
        else:
            verdict, reported = "WRONG", diagnosis.primary().anomaly.value
        print(
            f"{system.value:14s} {verdict:10s} {reported:38s} "
            f"{len(result.used_switches()):>8d} {result.processing_bytes:>12,} "
            f"{result.bandwidth_bytes:>12,}"
        )

    print(
        "\nExpected shape (paper, Fig 8/9/11): Hawkeye and full-polling are"
        "\ncorrect, but full-polling reads every switch; PFC-blind systems"
        "\n(SpiderMon/NetSight) misread the anomaly; NetSight's per-packet"
        "\npostcards dominate every overhead column."
    )


if __name__ == "__main__":
    main()
