#!/usr/bin/env python3
"""The service plane end to end: serve, subscribe, query, scrape.

This is the multi-tenant operator view: instead of one scripted run, a
resident ``repro serve`` process owns a continuously-monitored fabric
and many clients talk to it at once.  The example spawns the service
*in-process* (same code path as ``repro serve --unix ...``), then plays
two tenants against it over the unix socket:

- **team-noc** subscribes to the live alert/incident stream and prints
  each event with its delivery lag;
- **team-oncall** waits for trouble and asks "diagnose the victim, now"
  — the reply carries the same verdict text a batch ``repro run`` of
  this scenario/seed would print, because both ride FabricSession;
- finally the operator scrapes ``/servicez`` over HTTP on the *same*
  socket, showing per-tenant admission counters.

Run:  python examples/serve_client.py
"""

import asyncio
import json
import tempfile
import time
from pathlib import Path

from repro.serve import DiagnosisService, ServeClient, ServeConfig, http_get


async def stream_watcher(path: str, seen: list) -> None:
    """team-noc: follow the feed until the service says goodbye."""
    client = await ServeClient.connect(unix_path=path, tenant="team-noc")
    await client.subscribe()
    try:
        while True:
            event = await client.next_event(timeout=60.0)
            lag_ms = max(0.0, time.time() - event["ts"]) * 1e3
            kind = event["event"]
            seen.append(kind)
            if kind == "alert":
                print(f"  [feed +{lag_ms:5.1f}ms] alert {event['category']}"
                      f" on {event['subject']}")
            elif kind == "incident":
                print(f"  [feed +{lag_ms:5.1f}ms] incident: "
                      f"{event['anomaly']} (victim {event['victim']})")
            elif kind in ("episode-start", "episode-end"):
                print(f"  [feed] {kind} #{event['episode']}")
            if kind == "shutdown":
                print("  [feed] stream closed by server (shutdown)")
                break
    finally:
        await client.close()


async def main() -> None:
    sock = str(Path(tempfile.mkdtemp()) / "repro-serve.sock")
    service = DiagnosisService(
        ServeConfig(scenario="pfc-storm", seed=1, episodes=1, slice_us=500.0)
    )
    await service.start(unix_path=sock)
    print(f"service up on {service.addresses[0]}")

    seen: list = []
    watcher = asyncio.ensure_future(stream_watcher(sock, seen))

    # team-oncall: wait for the episode to play out, then query.
    oncall = await ServeClient.connect(unix_path=sock, tenant="team-oncall")
    while True:
        stats = (await oncall.stats())["stats"]
        if stats["episode_complete"]:
            break
        await asyncio.sleep(0.05)

    reply = await oncall.query()  # "diagnose the primary victim, now"
    print(f"\nquery answered in {reply['wall_s'] * 1e3:.1f}ms "
          f"(status {reply['status']}):")
    print("  " + reply["diagnosis"].replace("\n", "\n  "))
    assert reply["status"] == "diagnosed", reply
    assert reply["anomaly"] == "pfc-storm", reply
    await oncall.close()

    # The same listener speaks HTTP: scrape the self-observability doc.
    status, _, body = await asyncio.get_running_loop().run_in_executor(
        None, lambda: http_get("/servicez", unix_path=sock)
    )
    doc = json.loads(body)
    print(f"\n/servicez ({status}): episode {doc['episode']} complete, "
          f"{doc['stream']['published']} events published")
    print(f"  admission: {doc['admission']}")
    print(f"  tenants  : {sorted(doc['tenants'])}")
    assert status == 200
    assert "team-oncall" in doc["tenants"]

    await service.stop(reason="example-done")
    await watcher

    # The advertised contract held: live alerts arrived, the incident
    # landed on the feed, and the stream ended with an explicit goodbye.
    assert "alert" in seen, seen
    assert "incident" in seen, seen
    assert seen[-1] == "shutdown", seen
    print("\nservice plane example: all contracts held")


if __name__ == "__main__":
    asyncio.run(main())
