#!/usr/bin/env python3
"""Quickstart: diagnose a PFC back-pressure anomaly end to end.

This walks through the whole Hawkeye pipeline on a 3-switch line fabric:

1. build a topology and a simulated RDMA network;
2. deploy the Hawkeye stack (telemetry + detection agent + polling engine
   + collector) with one call;
3. create an incast that back-pressures a victim flow which never touches
   the congested port (Figure 1(a) of the paper);
4. run the simulation — detection, polling and collection happen inside;
5. build the provenance graph and print the diagnosis.

Run:  python examples/quickstart.py
"""

from repro.collection import deploy_hawkeye
from repro.core import Diagnoser, build_provenance
from repro.experiments import select_reports
from repro.sim import Network
from repro.topology import build_line
from repro.units import KB, msec, usec


def main() -> None:
    # 1. A line of three switches with four hosts each: H1_* on SW1, etc.
    topology = build_line(num_switches=3, hosts_per_switch=4)
    network = Network(topology)

    # 2. The full Hawkeye stack in one call.
    deployment, agent, engine, collector = deploy_hawkeye(network)

    # 3. Micro-burst incast into H3_0.  One burst source (H1_1) shares
    #    SW1's uplink with the victim, so PFC back-pressure reaches the
    #    victim even though the victim never crosses the congested port.
    burst_sources = ["H1_1", "H2_0", "H2_1", "H2_2", "H3_1", "H3_2"]
    for i, src in enumerate(burst_sources):
        network.start_flow(
            network.make_flow(src, "H3_0", 500 * KB, usec(10), src_port=11000 + i)
        )
    victim = network.make_flow("H1_0", "H2_1", 300 * KB, usec(5), src_port=12000)
    network.start_flow(victim)

    # 4. Run.  The agent watches RTTs, injects polling packets on
    #    degradation; switches trace PFC causality and mirror to their CPUs;
    #    the collector gathers the per-switch telemetry reports.
    network.run(msec(10))
    collector.flush_pending(network.sim.now)

    trigger = next(t for t in agent.triggers if t.victim == victim.key)
    print(f"victim {victim.key}")
    print(f"  complained at t={trigger.time_ns / 1000:.0f} us "
          f"(RTT {trigger.rtt_ns / 1000:.0f} us vs base {trigger.base_rtt_ns / 1000:.0f} us)")
    print(f"  telemetry collected from: {', '.join(collector.collected_switches())}")

    # 5. Provenance + diagnosis (Algorithm 1 + Algorithm 2).
    reports = select_reports(collector.reports, trigger.time_ns)
    scheme = deployment.config.scheme
    annotated = build_provenance(
        reports,
        topology,
        window_ns=scheme.window_ns,
        victim=victim.key,
        epoch_size_ns=scheme.epoch_size_ns,
    )
    print(f"\nprovenance: {annotated.graph.summary()}")
    diagnosis = Diagnoser().diagnose(annotated, victim.key)
    print(diagnosis.describe())


if __name__ == "__main__":
    main()
