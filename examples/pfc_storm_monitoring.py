#!/usr/bin/env python3
"""Detect and attribute a PFC storm injected by a malfunctioning NIC.

A host on the paper's fat-tree (K=4) starts flooding PAUSE frames — the
slow-receiver / broken-NIC failure mode of §2.1.  Innocent traffic toward
that host freezes the edge switch, PFC cascades up through the pod, and a
victim flow that merely shares the pod gets blocked.

The example shows the operator-facing story: which flows suffered, which
switches were causally relevant, and that the root cause is attributed to
the injecting *host*, not to any of the innocent flows that happen to share
the frozen queues.

Run:  python examples/pfc_storm_monitoring.py
"""

from repro.core import RootCauseKind
from repro.experiments import RunConfig, run_scenario
from repro.workloads import pfc_storm_scenario


def main() -> None:
    scenario = pfc_storm_scenario(seed=1)
    print(f"scenario: {scenario.name}")
    print(f"  {scenario.description}")
    print(f"  injecting host: {scenario.truth.injecting_host}")

    result = run_scenario(scenario, RunConfig(threshold_multiplier=3.0))

    net = scenario.network
    print("\nPFC activity during the storm:")
    for name in sorted(net.switches):
        stats = net.switches[name].stats
        if stats.pause_sent or stats.pause_received:
            print(f"  {name}: sent {stats.pause_sent} PAUSE, "
                  f"received {stats.pause_received}")
    injector = net.hosts[scenario.truth.injecting_host]
    print(f"  {scenario.truth.injecting_host}: injected "
          f"{injector.injected_pause_frames} PAUSE frames")

    outcome = result.primary_outcome()
    print(f"\nvictim complaint: {outcome.trigger.victim}")
    print(f"  stalled/slowed at t={outcome.trigger.time_ns / 1e6:.2f} ms")
    print(f"  causal switches collected: {', '.join(sorted(outcome.reports_used))}")

    diagnosis = outcome.diagnosis
    print("\n" + diagnosis.describe())

    primary = diagnosis.primary()
    assert primary.root_cause is RootCauseKind.HOST_PFC_INJECTION
    print(f"\n=> operator action: inspect NIC of {primary.injecting_source} "
          f"(slow receiver / firmware fault), not the innocent senders.")


if __name__ == "__main__":
    main()
