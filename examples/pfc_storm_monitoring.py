#!/usr/bin/env python3
"""Detect and attribute a PFC storm injected by a malfunctioning NIC.

A host on the paper's fat-tree (K=4) starts flooding PAUSE frames — the
slow-receiver / broken-NIC failure mode of §2.1.  Innocent traffic toward
that host freezes the edge switch, PFC cascades up through the pod, and a
victim flow that merely shares the pod gets blocked.

The example shows the operator-facing story in two acts:

1. the *continuous monitor* raises category alerts (host-pause-flood,
   sustained back-pressure, throughput collapse) while the storm is
   still developing — the early-warning signal;
2. the Hawkeye diagnosis then attributes the root cause to the injecting
   *host*, not to any innocent flow, and the incident timeline shows the
   alerts landed on the same ports the diagnosis blames.

Run:  python examples/pfc_storm_monitoring.py
"""

from repro.core import RootCauseKind
from repro.experiments import RunConfig, run_scenario
from repro.monitor import MonitorConfig
from repro.workloads import pfc_storm_scenario


def main() -> None:
    scenario = pfc_storm_scenario(seed=1)
    print(f"scenario: {scenario.name}")
    print(f"  {scenario.description}")
    print(f"  injecting host: {scenario.truth.injecting_host}")

    result = run_scenario(
        scenario,
        RunConfig(threshold_multiplier=3.0, monitor=MonitorConfig()),
    )
    monitor = result.monitor

    print("\nPFC activity during the storm:")
    net = scenario.network
    for name in sorted(net.switches):
        stats = net.switches[name].stats
        if stats.pause_sent or stats.pause_received:
            print(f"  {name}: sent {stats.pause_sent} PAUSE, "
                  f"received {stats.pause_received}")
    injector = net.hosts[scenario.truth.injecting_host]
    print(f"  {scenario.truth.injecting_host}: injected "
          f"{injector.injected_pause_frames} PAUSE frames")

    print("\nalerts raised by the continuous monitor (before any diagnosis):")
    for alert in monitor.alerts:
        print(" ", alert.describe())
    storm_alerts = [a for a in monitor.alerts if a.category == "pfc_storm"]
    assert storm_alerts, "the storm signature rule must fire"

    outcome = result.primary_outcome()
    print(f"\nvictim complaint: {outcome.trigger.victim}")
    print(f"  stalled/slowed at t={outcome.trigger.time_ns / 1e6:.2f} ms")
    print(f"  causal switches collected: {', '.join(sorted(outcome.reports_used))}")

    diagnosis = outcome.diagnosis
    print("\n" + diagnosis.describe())

    primary = diagnosis.primary()
    assert primary.root_cause is RootCauseKind.HOST_PFC_INJECTION

    print("\nincident timeline (alert-to-diagnosis correlation):")
    print(monitor.timeline.describe())
    incident = monitor.timeline.incidents[0]
    assert incident.early_warning, "alerts must precede the verdict"
    lead_ms = incident.lead_time_ns() / 1e6
    print(f"\n=> the monitor flagged the fabric {lead_ms:.2f} ms before the "
          f"diagnosis completed; operator action: inspect NIC of "
          f"{primary.injecting_source} (slow receiver / firmware fault), "
          f"not the innocent senders.")


if __name__ == "__main__":
    main()
