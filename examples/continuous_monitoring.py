#!/usr/bin/env python3
"""Continuous operation: probes + analyzer service + event tracing.

This is the "network operator" view of the reproduction (§5's operating
scenarios): instead of scripting one experiment, deploy the full Hawkeye
stack plus

- a pingmesh-style probe mesh, so anomalies surface even with no
  application traffic complaining;
- the analyzer service, which groups concurrent complaints into incidents
  and diagnoses each one;
- the omniscient network tracer, used here to cross-check the diagnosis
  against what actually happened on the wire.

Two anomalies hit the fat-tree during the run: a transient incast at t=0.2 ms
and a PFC storm at t=2 ms.

Run:  python examples/continuous_monitoring.py
"""

from repro.collection import ProbeMesh, ProbeMeshConfig
from repro.experiments import deploy_analyzer
from repro.sim import Network, NetworkTracer, SimConfig
from repro.sim.config import PfcConfig
from repro.topology import build_fat_tree
from repro.units import KB, msec, usec


def main() -> None:
    config = SimConfig(pfc=PfcConfig(xoff_bytes=80 * KB, xon_bytes=40 * KB))
    network = Network(build_fat_tree(k=4), config=config)
    analyzer = deploy_analyzer(network)
    tracer = NetworkTracer(network, sample_queue_every=32)
    mesh = ProbeMesh(network, ProbeMeshConfig(interval_ns=usec(400)))
    mesh.start()

    # Anomaly 1: transient incast into H0_0_0 at t=0.2 ms.
    for i, src in enumerate(["H1_0_0", "H1_0_1", "H1_1_0", "H1_1_1", "H2_0_0", "H2_0_1"]):
        network.start_flow(
            network.make_flow(src, "H0_0_0", 700 * KB, usec(200), src_port=11000 + i)
        )
    # A long-running "application" flow sharing the pod: the complainer.
    network.start_flow(
        network.make_flow("H0_1_0", "H0_0_1", 3_000 * KB, usec(150), src_port=12000)
    )

    # Anomaly 2: a PFC storm at H3_0_0 from t=2 ms, with innocent traffic.
    network.start_flow(
        network.make_flow("H2_1_0", "H3_0_0", 800 * KB, msec(2), src_port=13000)
    )
    network.sim.schedule(
        msec(2) + usec(20), lambda: network.hosts["H3_0_0"].start_pfc_injection(msec(2))
    )

    network.run(msec(5))

    print("== analyzer incident log ==")
    print(analyzer.summary())

    print("\n== probe mesh ==")
    print(f"{len(mesh.probes)} probes launched, coverage {mesh.coverage():.0%}, "
          f"{len(mesh.stalled_probes())} stalled")

    print("\n== tracer cross-check ==")
    storm_port = network.topology.attachment_of("H3_0_0")
    paused_ms = tracer.total_paused_ns(storm_port) / 1e6
    print(f"{storm_port} held paused for {paused_ms:.2f} ms "
          f"(storm injection ran for 2 ms)")
    hot = tracer.pause_storm_ports(min_pauses=5)
    print("ports with heavy PAUSE activity:", ", ".join(str(p) for p in hot[:6]))

    kinds = {i.diagnosis.primary().anomaly.value
             for i in analyzer.diagnosed_incidents() if i.diagnosis}
    print("\nanomaly classes diagnosed this run:", ", ".join(sorted(kinds)))


if __name__ == "__main__":
    main()
