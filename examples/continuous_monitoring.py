#!/usr/bin/env python3
"""Continuous operation: always-on fabric monitoring + analyzer service.

This is the "network operator" view of the reproduction (§5's operating
scenarios): instead of scripting one experiment, deploy the full Hawkeye
stack plus the continuous monitoring plane:

- a :class:`~repro.monitor.FabricMonitor` sampling every port at a fixed
  cadence into ring-buffer time series, sketching per-flow byte counts,
  and raising sliding-window alerts *while anomalies develop*;
- a pingmesh-style probe mesh, so anomalies surface even with no
  application traffic complaining;
- the analyzer service, which groups concurrent complaints into incidents
  and diagnoses each one — every diagnosis lands on the monitor's
  incident timeline next to the alerts that preceded it.

Two anomalies hit the fat-tree during the run: a transient incast at
t=0.2 ms and a PFC storm at t=2 ms.  Watch the alert feed catch both
before any victim's diagnosis completes.

Run:  python examples/continuous_monitoring.py
"""

from repro.collection import ProbeMesh, ProbeMeshConfig
from repro.experiments import deploy_analyzer
from repro.monitor import FabricMonitor, MonitorConfig, render_dashboard
from repro.sim import Network, SimConfig
from repro.sim.config import PfcConfig
from repro.topology import build_fat_tree
from repro.units import KB, msec, usec


def main() -> None:
    config = SimConfig(pfc=PfcConfig(xoff_bytes=80 * KB, xon_bytes=40 * KB))
    network = Network(build_fat_tree(k=4), config=config)
    analyzer = deploy_analyzer(network)

    # The continuous monitoring plane: 100 us sampling, bounded memory.
    monitor = FabricMonitor(network, MonitorConfig(interval_ns=usec(100))).start()
    analyzer.agent.attach_monitor(monitor)  # per-host RTT inflation feed

    mesh = ProbeMesh(network, ProbeMeshConfig(interval_ns=usec(400)))
    mesh.start()

    # Anomaly 1: transient incast into H0_0_0 at t=0.2 ms.
    for i, src in enumerate(["H1_0_0", "H1_0_1", "H1_1_0", "H1_1_1", "H2_0_0", "H2_0_1"]):
        network.start_flow(
            network.make_flow(src, "H0_0_0", 700 * KB, usec(200), src_port=11000 + i)
        )
    # A long-running "application" flow sharing the pod: the complainer.
    network.start_flow(
        network.make_flow("H0_1_0", "H0_0_1", 3_000 * KB, usec(150), src_port=12000)
    )

    # Anomaly 2: a PFC storm at H3_0_0 from t=2 ms, with innocent traffic.
    network.start_flow(
        network.make_flow("H2_1_0", "H3_0_0", 800 * KB, msec(2), src_port=13000)
    )
    network.sim.schedule(
        msec(2) + usec(20), lambda: network.hosts["H3_0_0"].start_pfc_injection(msec(2))
    )

    network.run(msec(5))
    monitor.finish(network.sim.now)

    # Fold every analyzer verdict onto the monitor's incident timeline:
    # the operator sees alerts and the diagnosis they foreshadowed together.
    for incident in analyzer.diagnosed_incidents():
        if incident.diagnosis is not None:
            monitor.timeline.record_diagnosis(
                incident.diagnosis, incident.time_ns, network.sim.now
            )

    print("== live alert feed (raised while the anomalies developed) ==")
    for alert in monitor.alerts:
        print(" ", alert.describe())

    print("\n== analyzer incident log ==")
    print(analyzer.summary())

    print("\n== incident timeline (alerts correlated with verdicts) ==")
    for incident in monitor.timeline.incidents:
        lead = incident.lead_time_ns()
        lead_ms = f"{lead / 1e6:.2f} ms" if lead is not None else "n/a"
        print(f"  {incident.victim} -> {incident.anomaly} "
              f"(early warning: {incident.early_warning}, lead {lead_ms}, "
              f"{len(incident.linked_subjects)} alert subject(s) on the "
              f"diagnosed provenance)")

    print("\n== probe mesh ==")
    print(f"{len(mesh.probes)} probes launched, coverage {mesh.coverage():.0%}, "
          f"{len(mesh.stalled_probes())} stalled")

    print("\n== fabric dashboard ==")
    print(render_dashboard(monitor, width=24, max_subjects=4))

    kinds = {i.diagnosis.primary().anomaly.value
             for i in analyzer.diagnosed_incidents() if i.diagnosis}
    print("anomaly classes diagnosed this run:", ", ".join(sorted(kinds)))


if __name__ == "__main__":
    main()
