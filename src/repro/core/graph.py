"""The heterogeneous wait-for provenance graph (§3.5.1).

Nodes are either *ports* (global :class:`~repro.topology.graph.PortRef`)
or *flows* (:class:`~repro.sim.packet.FlowKey`).  Three typed, weighted,
directed edge kinds encode congestion causality:

- ``PORT_PORT``: a PFC-paused egress port waits for downstream egress
  ports to drain (the PFC spreading causality);
- ``FLOW_PORT``: a flow waits for a port that PFC-paused it (weight =
  paused packet count);
- ``PORT_FLOW``: a congested port waits for the flows occupying its
  queue (weight = the flow's net contention contribution; positive for
  contributors, negative for victims).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from ..sim.packet import FlowKey
from ..topology.graph import PortRef

NodeId = Union[PortRef, FlowKey]


class EdgeKind(enum.Enum):
    PORT_PORT = "port-port"
    FLOW_PORT = "flow-port"
    PORT_FLOW = "port-flow"


@dataclass(frozen=True)
class Edge:
    src: NodeId
    dst: NodeId
    kind: EdgeKind
    weight: float


class ProvenanceGraph:
    """Typed directed multigraph over port and flow nodes."""

    def __init__(self) -> None:
        self.ports: Set[PortRef] = set()
        self.flows: Set[FlowKey] = set()
        self._out: Dict[NodeId, List[Edge]] = {}
        self._in: Dict[NodeId, List[Edge]] = {}
        # Incremental adjacency indexes, maintained by add_edge so the hot
        # diagnosis queries (port_successors / port_flow_weights /
        # ports_pausing_flow) never rescan and refilter the edge lists.
        # They reproduce the filtered views' orders exactly: list append for
        # successors/pausing, dict assignment (first-insertion position,
        # last-value-wins) for the weights.
        self._pp_succ: Dict[NodeId, List[PortRef]] = {}
        self._pf_weights: Dict[NodeId, Dict[FlowKey, float]] = {}
        self._fp_pausing: Dict[NodeId, List[Tuple[PortRef, float]]] = {}
        self._pp_edge_count = 0

    # -- construction -------------------------------------------------------------

    def add_port(self, port: PortRef) -> None:
        self.ports.add(port)
        self._out.setdefault(port, [])
        self._in.setdefault(port, [])

    def add_flow(self, flow: FlowKey) -> None:
        self.flows.add(flow)
        self._out.setdefault(flow, [])
        self._in.setdefault(flow, [])

    def add_edge(self, src: NodeId, dst: NodeId, kind: EdgeKind, weight: float) -> Edge:
        if isinstance(src, PortRef):
            self.add_port(src)
        else:
            self.add_flow(src)
        if isinstance(dst, PortRef):
            self.add_port(dst)
        else:
            self.add_flow(dst)
        edge = Edge(src=src, dst=dst, kind=kind, weight=weight)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        if kind is EdgeKind.PORT_PORT:
            self._pp_succ.setdefault(src, []).append(dst)  # type: ignore[arg-type]
            self._pp_edge_count += 1
        elif kind is EdgeKind.PORT_FLOW:
            self._pf_weights.setdefault(src, {})[dst] = weight  # type: ignore[index]
        else:  # FLOW_PORT
            self._fp_pausing.setdefault(src, []).append((dst, weight))  # type: ignore[arg-type]
        return edge

    # -- queries -------------------------------------------------------------------

    def out_edges(self, node: NodeId, kind: Optional[EdgeKind] = None) -> List[Edge]:
        edges = self._out.get(node, [])
        if kind is None:
            return list(edges)
        return [e for e in edges if e.kind is kind]

    def in_edges(self, node: NodeId, kind: Optional[EdgeKind] = None) -> List[Edge]:
        edges = self._in.get(node, [])
        if kind is None:
            return list(edges)
        return [e for e in edges if e.kind is kind]

    def edges(self, kind: Optional[EdgeKind] = None) -> Iterable[Edge]:
        for edges in self._out.values():
            for e in edges:
                if kind is None or e.kind is kind:
                    yield e

    def weight(self, src: NodeId, dst: NodeId) -> Optional[float]:
        for e in self._out.get(src, []):
            if e.dst == dst:
                return e.weight
        return None

    def port_out_degree(self, port: PortRef) -> int:
        """Out-degree restricted to port-level edges (Table 2's out-deg_P)."""
        return len(self._pp_succ.get(port, ()))

    def port_successors(self, port: PortRef) -> List[PortRef]:
        """Port-level successors; callers must treat the list as read-only."""
        return self._pp_succ.get(port, [])

    def flow_port_weight(self, flow: FlowKey, port: PortRef) -> float:
        w = self.weight(flow, port)
        return w if w is not None else 0.0

    def port_flow_weights(self, port: PortRef) -> Dict[FlowKey, float]:
        """Port-flow edge weights; callers must treat the dict as read-only."""
        return self._pf_weights.get(port, {})

    def ports_pausing_flow(self, flow: FlowKey) -> List[Tuple[PortRef, float]]:
        """Ports that PFC-paused this flow, with paused-packet weights.

        Callers must treat the returned list as read-only.
        """
        return self._fp_pausing.get(flow, [])

    def has_port_level_edges(self) -> bool:
        return self._pp_edge_count > 0

    # -- rendering ---------------------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz rendering for case studies (Figure 12 analog)."""
        lines = ["digraph provenance {", "  rankdir=LR;"]
        for port in sorted(self.ports):
            lines.append(f'  "{port}" [shape=box];')
        for flow in sorted(self.flows):
            lines.append(f'  "{flow}" [shape=ellipse];')
        styles = {
            EdgeKind.PORT_PORT: "solid",
            EdgeKind.FLOW_PORT: "dashed",
            EdgeKind.PORT_FLOW: "dotted",
        }
        for e in self.edges():
            color = "red" if e.kind is EdgeKind.PORT_FLOW and e.weight > 0 else "black"
            lines.append(
                f'  "{e.src}" -> "{e.dst}" '
                f'[style={styles[e.kind]}, color={color}, label="{e.weight:.1f}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def summary(self) -> str:
        counts = {kind: 0 for kind in EdgeKind}
        for e in self.edges():
            counts[e.kind] += 1
        return (
            f"ProvenanceGraph(ports={len(self.ports)}, flows={len(self.flows)}, "
            f"port-port={counts[EdgeKind.PORT_PORT]}, "
            f"flow-port={counts[EdgeKind.FLOW_PORT]}, "
            f"port-flow={counts[EdgeKind.PORT_FLOW]})"
        )
