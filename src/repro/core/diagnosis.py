"""The provenance analysis procedure (Algorithm 2).

Starting from the ports that PFC-paused the victim flow, the diagnoser
DFS-walks the port-level provenance.  Revisiting a port on the current path
means a PFC loop (deadlock); a port with no outgoing port-level edges is an
initial congestion point, where the port-flow edges decide between flow
contention (positive contributors exist) and host PFC injection (none — the
pause provably came from the peer device).  Anomaly classes follow Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..sim.packet import FlowKey
from ..topology.graph import PortRef
from .build import AnnotatedGraph
from .graph import EdgeKind
from .report import AnomalyType, Diagnosis, Finding, RootCauseKind

_EPS = 1e-9


@dataclass
class DiagnoserConfig:
    # Keep at most this many culprit flows per finding (weight-sorted).
    max_culprits: int = 16
    # DFS guard for pathological graphs.
    max_visited_ports: int = 4096
    # A flow only counts as a contention contributor when other traffic
    # waits behind at least this many of its packets on average — tiny
    # positive weights are replay noise or incidental micro-queueing (e.g.
    # benign traffic sharing a port shortly before a PFC injection), not a
    # root cause.
    min_contention_weight: float = 2.0
    # ... and the contribution must also explain a meaningful share of the
    # port's observed queue depth, or transient micro-queueing (e.g. benign
    # traffic that shared the port long before a PFC injection) would be
    # mistaken for the congestion's root cause.
    min_contention_qdepth_share: float = 0.1


class Diagnoser:
    """Runs Algorithm 2 over an annotated provenance graph."""

    def __init__(self, config: Optional[DiagnoserConfig] = None) -> None:
        self.config = config if config is not None else DiagnoserConfig()

    # -- public API -----------------------------------------------------------------

    def diagnose(
        self,
        annotated: AnnotatedGraph,
        victim: FlowKey,
        victim_path_ports: Optional[List[PortRef]] = None,
        obs=None,
        now_ns: int = 0,
    ) -> Diagnosis:
        """Diagnose one victim complaint.

        ``victim_path_ports`` (the victim's egress ports hop by hop, known
        from routing) is the fallback entry point when flow-level telemetry
        is unavailable (the port-only ablation): diagnosis then starts from
        the victim-path ports that show PFC-paused packets at port level.

        ``obs``/``now_ns``: every signature Algorithm 2 matches (each
        appended :class:`Finding`) emits a ``signature_match`` trace event
        stamped at the caller's analysis-time clock.
        """
        graph = annotated.graph
        diagnosis = Diagnosis(victim=victim)
        dedup: Set[Tuple] = set()
        # The complaining victim is never its own root cause: exclude it
        # from contention-culprit lists for the duration of this diagnosis.
        self._victim = victim
        self._obs = obs
        self._obs_now = now_ns

        paused_at = sorted(
            graph.ports_pausing_flow(victim), key=lambda pw: -pw[1]
        )
        if not any(w > _EPS for _, w in paused_at) and victim_path_ports:
            paused_at = [
                (port, float(annotated.port_meta[port].paused_num))
                for port in victim_path_ports
                if port in annotated.port_meta
                and annotated.port_meta[port].paused_num > 0
            ]
        visited_budget = [self.config.max_visited_ports]
        for port, weight in paused_at:
            if weight <= _EPS:
                continue
            self._check_port_node(
                annotated, port, [], diagnosis, dedup, visited_budget
            )

        if not diagnosis.findings:
            self._normal_contention(annotated, victim, diagnosis, dedup)

        self._attach_spreading_flows(annotated, victim, diagnosis)
        if annotated.missing_switches:
            # Frontier gaps the graph builder marked: the PFC causality
            # provably continues into switches we have no telemetry for.
            diagnosis.missing_switches = sorted(annotated.missing_switches)
        return diagnosis

    # -- Algorithm 2: CheckPortNode ----------------------------------------------------

    def _check_port_node(
        self,
        annotated: AnnotatedGraph,
        port: PortRef,
        path: List[PortRef],
        diagnosis: Diagnosis,
        dedup: Set[Tuple],
        budget: List[int],
    ) -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        if port in path:
            loop = path[path.index(port):]
            self._deadlock_diagnose(annotated, loop, path, diagnosis, dedup, budget)
            return
        successors = annotated.graph.port_successors(port)
        if not successors:
            self._initial_node(annotated, port, path, diagnosis, dedup, in_loop=None)
            return
        for succ in successors:
            self._check_port_node(
                annotated, succ, path + [port], diagnosis, dedup, budget
            )

    # -- Algorithm 2: DeadlockDiagnose -----------------------------------------------

    def _deadlock_diagnose(
        self,
        annotated: AnnotatedGraph,
        loop: List[PortRef],
        path: List[PortRef],
        diagnosis: Diagnosis,
        dedup: Set[Tuple],
        budget: List[int],
    ) -> None:
        graph = annotated.graph
        members = set(loop)
        escape_branches = [
            (p, succ)
            for p in loop
            for succ in graph.port_successors(p)
            if succ not in members
        ]
        if escape_branches:
            # Initiator out of the loop: follow each escape branch to its
            # terminal and classify contention vs injection there.
            for _, succ in escape_branches:
                self._walk_to_terminals(
                    annotated, succ, list(loop), loop, diagnosis, dedup, budget
                )
            return
        # Initiator inside the loop: the initial congestion point is the loop
        # port with the strongest local contention ("multiple outgoing
        # positive edges to a set of flows", §3.5.2).
        best_port = None
        best_culprits: List[Tuple[FlowKey, float]] = []
        best_strength = 0.0
        for p in loop:
            root, culprits, _ = self._analyze_flow_contention(annotated, p)
            if root is not RootCauseKind.FLOW_CONTENTION:
                continue
            strength = sum(w for _, w in culprits)
            if strength > best_strength:
                best_port, best_culprits, best_strength = p, culprits, strength
        if best_port is not None:
            self._add_finding(
                diagnosis,
                dedup,
                Finding(
                    anomaly=AnomalyType.IN_LOOP_DEADLOCK,
                    root_cause=RootCauseKind.FLOW_CONTENTION,
                    initial_port=best_port,
                    culprit_flows=best_culprits,
                    pfc_path=list(path),
                    loop=list(loop),
                ),
            )
        else:
            self._add_finding(
                diagnosis,
                dedup,
                Finding(
                    anomaly=AnomalyType.IN_LOOP_DEADLOCK,
                    root_cause=RootCauseKind.UNDETERMINED,
                    initial_port=loop[0],
                    pfc_path=list(path),
                    loop=list(loop),
                ),
            )

    def _walk_to_terminals(
        self,
        annotated: AnnotatedGraph,
        start: PortRef,
        path: List[PortRef],
        loop: List[PortRef],
        diagnosis: Diagnosis,
        dedup: Set[Tuple],
        budget: List[int],
    ) -> None:
        """DFS from a loop-escape branch to the initial congestion point(s)."""
        graph = annotated.graph
        stack: List[Tuple[PortRef, List[PortRef]]] = [(start, path)]
        seen: Set[PortRef] = set(loop)
        while stack and budget[0] > 0:
            budget[0] -= 1
            node, node_path = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            successors = graph.port_successors(node)
            if not successors:
                self._initial_node(
                    annotated, node, node_path, diagnosis, dedup, in_loop=loop
                )
                continue
            for succ in successors:
                stack.append((succ, node_path + [node]))

    # -- Algorithm 2: initial node + AnalyzeFlowContention ------------------------------

    def _initial_node(
        self,
        annotated: AnnotatedGraph,
        port: PortRef,
        path: List[PortRef],
        diagnosis: Diagnosis,
        dedup: Set[Tuple],
        in_loop: Optional[List[PortRef]],
    ) -> None:
        root, culprits, injector = self._analyze_flow_contention(annotated, port)
        if in_loop is not None:
            if root is RootCauseKind.FLOW_CONTENTION:
                anomaly = AnomalyType.OUT_OF_LOOP_DEADLOCK_CONTENTION
            else:
                anomaly = AnomalyType.OUT_OF_LOOP_DEADLOCK_INJECTION
        elif root is RootCauseKind.FLOW_CONTENTION:
            meta = annotated.port_meta.get(port)
            if (
                meta is not None
                and meta.is_pfc_paused
                and meta.peer_is_host
                and meta.peer is not None
            ):
                # Fuzzer-promoted class: the terminal port carries *both*
                # Table 2 root-cause signals at once — the peer host is
                # provably injecting PAUSE frames (the port is paused with
                # a host on the other end) while converging flows pile up
                # behind the frozen queue.  Contention alone would hide
                # the injecting NIC; the injection is the actionable cause
                # and the contributors are kept as the masking flows.
                anomaly = AnomalyType.CONTENTION_MASKED_STORM
                root = RootCauseKind.HOST_PFC_INJECTION
                injector = meta.peer.node
            else:
                anomaly = AnomalyType.MICRO_BURST_INCAST
        elif root is RootCauseKind.HOST_PFC_INJECTION:
            anomaly = AnomalyType.PFC_STORM
        else:
            anomaly = AnomalyType.UNKNOWN
        self._add_finding(
            diagnosis,
            dedup,
            Finding(
                anomaly=anomaly,
                root_cause=root,
                initial_port=port,
                culprit_flows=culprits,
                injecting_source=injector,
                pfc_path=path + [port],
                loop=list(in_loop) if in_loop else [],
            ),
        )

    def _analyze_flow_contention(
        self, annotated: AnnotatedGraph, port: PortRef
    ) -> Tuple[RootCauseKind, List[Tuple[FlowKey, float]], Optional[str]]:
        """Classify one port: contention contributors vs PFC injection."""
        graph = annotated.graph
        weights = graph.port_flow_weights(port)
        meta = annotated.port_meta.get(port)
        threshold = self.config.min_contention_weight
        if meta is not None:
            # Scale against the contention-relevant (non-paused) queue depth;
            # the blended depth is inflated by PFC buildup at frozen ports.
            basis = meta.avg_unpaused_qdepth_pkts or meta.avg_qdepth_pkts
            threshold = max(
                threshold, self.config.min_contention_qdepth_share * basis
            )
        victim = getattr(self, "_victim", None)
        positives = sorted(
            (
                (f, w)
                for f, w in weights.items()
                if w >= threshold and f != victim
            ),
            key=lambda fw: -fw[1],
        )[: self.config.max_culprits]
        if positives:
            return RootCauseKind.FLOW_CONTENTION, positives, None
        if meta is not None and meta.is_pfc_paused:
            if meta.peer_is_host:
                # Paused with no local contention and a host on the other
                # end: the pause was injected by that host.
                return RootCauseKind.HOST_PFC_INJECTION, [], meta.peer.node
            # Paused by a downstream *switch* whose telemetry we could not
            # follow (partial deployment / overwritten epochs): inconclusive
            # rather than a false host accusation.
            return RootCauseKind.UNDETERMINED, [], None
        return RootCauseKind.UNDETERMINED, [], None

    # -- fallbacks & decoration -----------------------------------------------------------

    def _normal_contention(
        self,
        annotated: AnnotatedGraph,
        victim: FlowKey,
        diagnosis: Diagnosis,
        dedup: Set[Tuple],
    ) -> None:
        """Victim was never PFC-paused: classic intra-queue contention."""
        graph = annotated.graph
        victim_ports = annotated.flow_ports.get(victim)
        if victim_ports is None:
            # Hand-built graph without the inverted index: scan.
            victim_ports = [
                port for (flow, port) in annotated.flow_port_meta if flow == victim
            ]
        # The root-cause port is where the contention pressing on the victim
        # is strongest (sum of positive contributor weights).
        best: Optional[Tuple[PortRef, List[Tuple[FlowKey, float]], float]] = None
        for port in victim_ports:
            weights = graph.port_flow_weights(port)
            positives = sorted(
                (
                    (f, w)
                    for f, w in weights.items()
                    if w >= self.config.min_contention_weight and f != victim
                ),
                key=lambda fw: -fw[1],
            )
            if not positives:
                continue
            strength = sum(w for _, w in positives)
            if best is None or strength > best[2]:
                best = (port, positives, strength)
        if best is None:
            return
        port, positives, _ = best
        self._add_finding(
            diagnosis,
            dedup,
            Finding(
                anomaly=AnomalyType.NORMAL_CONTENTION,
                root_cause=RootCauseKind.FLOW_CONTENTION,
                initial_port=port,
                culprit_flows=positives[: self.config.max_culprits],
            ),
        )

    def _attach_spreading_flows(
        self, annotated: AnnotatedGraph, victim: FlowKey, diagnosis: Diagnosis
    ) -> None:
        """Flows paused at two or more hops of a finding's PFC path spread it."""
        graph = annotated.graph
        for finding in diagnosis.findings:
            relevant = set(finding.pfc_path) | set(finding.loop)
            if len(relevant) < 2:
                continue
            # Equivalent to scanning every flow's pausing ports, but walks
            # only the relevant ports' incoming flow-port edges; the final
            # sort makes the result independent of traversal order.
            counts: Dict[FlowKey, int] = {}
            for port in relevant:
                for edge in graph.in_edges(port, EdgeKind.FLOW_PORT):
                    if edge.src != victim and edge.weight > _EPS:
                        counts[edge.src] = counts.get(edge.src, 0) + 1
            finding.spreading_flows = sorted(
                (f for f, c in counts.items() if c >= 2), key=str
            )

    def _add_finding(self, diagnosis: Diagnosis, dedup: Set[Tuple], finding: Finding) -> None:
        key = (
            finding.anomaly,
            finding.initial_port,
            tuple(sorted(str(p) for p in finding.loop)),
        )
        if key in dedup:
            return
        dedup.add(key)
        diagnosis.findings.append(finding)
        obs = getattr(self, "_obs", None)
        if obs is not None:
            obs.on_signature_match(
                diagnosis.victim,
                self._obs_now,
                anomaly=finding.anomaly.value,
                root_cause=finding.root_cause.value,
                port=str(finding.initial_port),
            )
