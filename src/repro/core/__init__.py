"""Hawkeye's core contribution: PFC provenance construction and diagnosis."""

from .build import AnnotatedGraph, FlowPortMeta, PortMeta, build_provenance
from .diagnosis import Diagnoser, DiagnoserConfig
from .graph import Edge, EdgeKind, ProvenanceGraph
from .replay import contribution, replay_queue
from .report import AnomalyType, Diagnosis, Finding, RootCauseKind
from .signatures import (
    BURST_TRAFFIC_SHARE,
    burst_flow,
    find_port_loops,
    has_flow_contention,
    match_contention_masked_storm,
    match_in_loop_deadlock,
    match_micro_burst_incast,
    match_normal_contention,
    match_out_of_loop_deadlock,
    match_pfc_storm,
    positive_contributors,
    terminal_ports_reachable,
)

__all__ = [
    "AnnotatedGraph",
    "FlowPortMeta",
    "PortMeta",
    "build_provenance",
    "Diagnoser",
    "DiagnoserConfig",
    "Edge",
    "EdgeKind",
    "ProvenanceGraph",
    "contribution",
    "replay_queue",
    "AnomalyType",
    "Diagnosis",
    "Finding",
    "RootCauseKind",
    "BURST_TRAFFIC_SHARE",
    "burst_flow",
    "find_port_loops",
    "has_flow_contention",
    "match_contention_masked_storm",
    "match_in_loop_deadlock",
    "match_micro_burst_incast",
    "match_normal_contention",
    "match_out_of_loop_deadlock",
    "match_pfc_storm",
    "positive_contributors",
    "terminal_ports_reachable",
]

from .causes import (  # noqa: E402  (appended exports)
    ContentionAnalysis,
    ContentionKind,
    FlowProfile,
    classify_contention,
    ecmp_imbalance_ratio,
    flow_profiles,
)

__all__ += [
    "ContentionAnalysis",
    "ContentionKind",
    "FlowProfile",
    "classify_contention",
    "ecmp_imbalance_ratio",
    "flow_profiles",
]
