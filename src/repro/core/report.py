"""Diagnosis result types: what Hawkeye reports to the operator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sim.packet import FlowKey
from ..topology.graph import PortRef


class AnomalyType(enum.Enum):
    """The representative RDMA NPA classes of Table 2.

    :data:`CONTENTION_MASKED_STORM` extends the paper's table: it was
    discovered by the scenario fuzzer (``repro.fuzz``) as a recurring
    misdiagnosis — a host injecting PAUSE frames *while* an incast
    converges on its port shows both injection evidence and positive
    contention contributors at the terminal port, and Table 2's rows
    (which treat the two signals as mutually exclusive) classified it as
    plain flow contention, hiding the injecting NIC.
    """

    MICRO_BURST_INCAST = "pfc-backpressure-flow-contention"
    PFC_STORM = "pfc-storm"
    IN_LOOP_DEADLOCK = "in-loop-deadlock"
    OUT_OF_LOOP_DEADLOCK_CONTENTION = "out-of-loop-deadlock-contention"
    OUT_OF_LOOP_DEADLOCK_INJECTION = "out-of-loop-deadlock-injection"
    NORMAL_CONTENTION = "normal-flow-contention"
    CONTENTION_MASKED_STORM = "contention-masked-pfc-storm"
    UNKNOWN = "unknown"

    @property
    def is_deadlock(self) -> bool:
        return self in (
            AnomalyType.IN_LOOP_DEADLOCK,
            AnomalyType.OUT_OF_LOOP_DEADLOCK_CONTENTION,
            AnomalyType.OUT_OF_LOOP_DEADLOCK_INJECTION,
        )


class RootCauseKind(enum.Enum):
    FLOW_CONTENTION = "flow-contention"
    HOST_PFC_INJECTION = "host-pfc-injection"
    UNDETERMINED = "undetermined"


# Severity order used to pick the primary finding when several match.
_SEVERITY = {
    AnomalyType.IN_LOOP_DEADLOCK: 5,
    AnomalyType.OUT_OF_LOOP_DEADLOCK_CONTENTION: 5,
    AnomalyType.OUT_OF_LOOP_DEADLOCK_INJECTION: 5,
    AnomalyType.PFC_STORM: 4,
    AnomalyType.CONTENTION_MASKED_STORM: 4,
    AnomalyType.MICRO_BURST_INCAST: 3,
    AnomalyType.NORMAL_CONTENTION: 2,
    AnomalyType.UNKNOWN: 0,
}


@dataclass
class Finding:
    """One diagnosed anomaly: the what, where and why."""

    anomaly: AnomalyType
    root_cause: RootCauseKind
    initial_port: Optional[PortRef]
    # Flow contributors at the initial congestion point, weight-sorted desc.
    culprit_flows: List[Tuple[FlowKey, float]] = field(default_factory=list)
    # Peer device blamed for PFC injection (host name), if any.
    injecting_source: Optional[str] = None
    # Port-level path from the victim-pausing port to the initial point.
    pfc_path: List[PortRef] = field(default_factory=list)
    # Deadlock loop ports (in order), if a loop was found.
    loop: List[PortRef] = field(default_factory=list)
    # Flows responsible for spreading PFC along the path (paused at >= 2 hops).
    spreading_flows: List[FlowKey] = field(default_factory=list)

    @property
    def severity(self) -> int:
        return _SEVERITY[self.anomaly]

    @property
    def culprit_strength(self) -> float:
        return sum(w for _, w in self.culprit_flows)

    def culprit_keys(self) -> List[FlowKey]:
        return [key for key, _ in self.culprit_flows]

    def describe(self) -> str:
        parts = [f"{self.anomaly.value} (root cause: {self.root_cause.value})"]
        if self.initial_port is not None:
            parts.append(f"initial congestion at {self.initial_port}")
        if self.loop:
            parts.append("loop: " + " -> ".join(str(p) for p in self.loop))
        if self.pfc_path:
            parts.append("PFC path: " + " -> ".join(str(p) for p in self.pfc_path))
        if self.culprit_flows:
            flows = ", ".join(f"{k} (w={w:.2f})" for k, w in self.culprit_flows[:4])
            parts.append(f"culprits: {flows}")
        if self.injecting_source is not None:
            parts.append(f"injector: {self.injecting_source}")
        return "; ".join(parts)


@dataclass
class Diagnosis:
    """The full result for one victim complaint.

    ``completeness``/``missing_switches``/``degraded_reports`` qualify the
    verdict when the telemetry behind it was partial or fault-marked: a
    degraded diagnosis is still reported (the operator gets the best
    available answer) but never asserted with full confidence.
    """

    victim: FlowKey
    findings: List[Finding] = field(default_factory=list)
    # Fraction of the causally expected switches whose telemetry arrived.
    completeness: float = 1.0
    # Switches the diagnosis needed but had no report for (sorted).
    missing_switches: List[str] = field(default_factory=list)
    # "switch[flag,...]" for used reports carrying fault markers (sorted).
    degraded_reports: List[str] = field(default_factory=list)

    @property
    def confidence(self) -> str:
        """``"full"`` only when the telemetry was complete and clean."""
        if self.completeness >= 1.0 and not self.missing_switches and not self.degraded_reports:
            return "full"
        return "degraded"

    def primary(self) -> Finding:
        """The most severe finding (or an UNKNOWN placeholder)."""
        if not self.findings:
            return Finding(
                anomaly=AnomalyType.UNKNOWN,
                root_cause=RootCauseKind.UNDETERMINED,
                initial_port=None,
            )
        return max(self.findings, key=lambda f: (f.severity, f.culprit_strength))

    @property
    def anomaly(self) -> AnomalyType:
        return self.primary().anomaly

    def describe(self) -> str:
        lines = [f"Diagnosis for victim {self.victim}:"]
        if not self.findings:
            lines.append("  no anomaly identified")
        for i, finding in enumerate(
            sorted(self.findings, key=lambda f: -f.severity), start=1
        ):
            lines.append(f"  [{i}] {finding.describe()}")
        # Only qualified verdicts mention telemetry health, so fault-free
        # output is byte-identical to the pre-reliability pipeline.
        if self.confidence != "full":
            parts = [f"confidence: degraded (completeness {self.completeness:.0%}"]
            if self.missing_switches:
                parts.append("missing: " + ", ".join(self.missing_switches))
            if self.degraded_reports:
                parts.append("faulty reports: " + ", ".join(self.degraded_reports))
            lines.append("  " + "; ".join(parts) + ")")
        return "\n".join(lines)
