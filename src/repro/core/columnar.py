"""Columnar analysis-plane kernels: flat numpy tables for queue replay.

The provenance builder's dominant cost at fleet scale is Algorithm 1's
queue replay (:mod:`repro.core.replay`): for every (epoch, egress port)
the scalar path materializes one Python tuple per replayed packet, sorts
the merged list, and walks it.  At K=16 that is hundreds of thousands of
tuple allocations per cold graph build.

This module rebuilds the replay over flat int64 columns:

- the synthetic enqueue times of one flow are the arithmetic sequence
  ``j * window_ns // n`` — computed for *all* flows at once from a
  per-flow packet-count column (``repeat``/``arange`` index algebra, no
  per-packet Python);
- the scalar merge ``sequence.sort()`` on ``(time, order, key)`` tuples
  is reproduced exactly by a stable ``np.lexsort((order, time))``: the
  ``order`` column is the flow's rank in the key-sorted flow list, so
  ``key`` can never act as a tie-breaker (equal order implies equal key),
  and lexsort's stability preserves the within-flow ``j`` order on full
  ties just as Python's stable sort does;
- the pairwise wait-for weights then come from the same prefix-count
  formulation the vectorized path has always used
  (:func:`wait_weights_from_ids`), so the floats are bit-identical.

Gating follows ``repro.telemetry.vectorflush``: the scalar path is
authoritative and retained; numpy absence (or ``REPRO_NO_NUMPY=1`` in the
environment, the CI knob that exercises every scalar fallback without
uninstalling anything) degrades gracefully; tiny sequences stay scalar
because the numpy setup cost outweighs the win.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence, Tuple

if os.environ.get("REPRO_NO_NUMPY"):  # CI scalar-fallback leg
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - numpy is present in CI images
        _np = None

HAVE_NUMPY = _np is not None

# Below this many replayed packets the scalar walk wins (same knee as the
# original vectorization threshold in repro.core.replay).
MIN_COLUMNAR_PACKETS = 64

# Benchmark/test knob: force the authoritative scalar path even with
# numpy present, so scalar-vs-columnar differentials and the analyzer
# regression gate can measure both sides in one process.
_FORCE_SCALAR = False


@contextmanager
def force_scalar() -> Iterator[None]:
    """Run the block on the pure-Python analysis path (numpy untouched)."""
    global _FORCE_SCALAR
    previous = _FORCE_SCALAR
    _FORCE_SCALAR = True
    try:
        yield
    finally:
        _FORCE_SCALAR = previous


def columnar_enabled(total_packets: int) -> bool:
    """Should this replay run on the columnar path?"""
    return (
        HAVE_NUMPY
        and not _FORCE_SCALAR
        and total_packets >= MIN_COLUMNAR_PACKETS
    )


def replay_ids(counts: Sequence[int], window_ns: int) -> "_np.ndarray":
    """Vectorized ReplayQueue: flow index of every packet in replay order.

    ``counts[f]`` is the packet count of the flow with *key-sorted* rank
    ``f`` (all positive).  Returns an int64 array of length
    ``sum(counts)`` holding each replayed packet's flow rank, ordered
    exactly as the scalar ``replay_queue``'s ``(time, order)`` sort.
    """
    counts_arr = _np.asarray(counts, dtype=_np.int64)
    n_flows = counts_arr.shape[0]
    total = int(counts_arr.sum())
    order = _np.repeat(_np.arange(n_flows, dtype=_np.int64), counts_arr)
    # Within-flow packet index j: position minus the flow's start offset.
    starts = _np.repeat(_np.cumsum(counts_arr) - counts_arr, counts_arr)
    j = _np.arange(total, dtype=_np.int64) - starts
    times = j * window_ns // _np.repeat(counts_arr, counts_arr)
    # lexsort is an indirect *stable* sort, last key primary: (time, order)
    # with original j-order preserved on full ties — the scalar sort exactly.
    perm = _np.lexsort((order, times))
    return order[perm]


def wait_weights_from_ids(
    keys: List,
    seq_ids: "_np.ndarray",
    depth: Dict,
    pkt_num: Dict,
) -> Tuple[Dict, Dict]:
    """Prefix-count wait weights over a flow-id sequence.

    The single implementation of the vectorized pairwise walk: with
    ``prefix[i, g]`` = packets of flow ``g`` among the first ``i``
    enqueues, the packets of ``g`` ahead of a waiter at position ``idx``
    (look-back ``d``) are ``prefix[idx, g] - prefix[idx - d, g]``; summing
    over one flow's packet positions yields its whole wait-count row at
    once.  Counts are exact integers — only the float normalization order
    differs from the scalar reference walk.
    """
    n_pkts = seq_ids.shape[0]
    n_flows = len(keys)
    onehot = _np.zeros((n_pkts, n_flows), dtype=_np.int64)
    onehot[_np.arange(n_pkts), seq_ids] = 1
    prefix = _np.zeros((n_pkts + 1, n_flows), dtype=_np.int64)
    _np.cumsum(onehot, axis=0, out=prefix[1:])

    wait = _np.zeros((n_flows, n_flows), dtype=_np.int64)
    for f, key in enumerate(keys):
        d = depth.get(key, 0)
        if d <= 0:
            continue
        positions = _np.flatnonzero(seq_ids == f)
        starts = positions - _np.minimum(d, positions)
        wait[f] = prefix[positions].sum(axis=0) - prefix[starts].sum(axis=0)

    per_pkt = _np.array([pkt_num[k] for k in keys], dtype=_np.float64)
    norm = wait / per_pkt[:, None]
    outgoing_arr = norm.sum(axis=1)
    incoming_arr = norm.sum(axis=0)
    incoming = {k: float(incoming_arr[i]) for i, k in enumerate(keys)}
    outgoing = {k: float(outgoing_arr[i]) for i, k in enumerate(keys)}
    return incoming, outgoing


def wait_weights_columnar(
    live: Sequence,
    counts: Dict,
    depth: Dict,
    pkt_num: Dict,
    window_ns: int,
) -> Tuple[Dict, Dict]:
    """The full columnar replay: no Python packet sequence is ever built.

    ``live`` is the port's flow-entry list in telemetry order (the order
    the result dicts must carry); replay ordering uses the key-sorted flow
    ranks, exactly like the scalar ``replay_queue``.
    """
    ordering = sorted(range(len(live)), key=lambda i: live[i].key)
    counts_sorted = [counts[live[i].key] for i in ordering]
    ids_sorted = replay_ids(counts_sorted, window_ns)
    # Map key-sorted ranks back to telemetry-order flow indices so the
    # weight matrix rows line up with ``keys`` (= live order), matching
    # the legacy vectorized path bit for bit.
    to_live = _np.asarray(ordering, dtype=_np.int64)
    seq_ids = to_live[ids_sorted]
    keys = [entry.key for entry in live]
    return wait_weights_from_ids(keys, seq_ids, depth, pkt_num)
