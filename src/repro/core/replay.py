"""Queue replay and per-flow contention contribution (Algorithm 1, lines 21-37).

The data plane cannot afford per-packet logs, so it records only per-flow
packet counts and average queue depths.  ``ReplayQueue`` reconstructs an
approximate enqueue sequence by spacing each flow's packets uniformly over
the telemetry window and interleaving the flows; ``Contribution`` then
derives the pairwise wait-for weights:

- ``w(f_i -> f_j)``: the average number of ``f_j`` packets sitting ahead of
  an ``f_i`` packet at its enqueue (``f_i`` waits for ``f_j``);
- ``contribution(f) = sum_i w(f_i -> f) - sum_k w(f -> f_k)`` — flows with
  positive contribution are contention *contributors*, negative ones are
  *victims* (§3.5.1).

PFC-paused packets are excluded (the paper's "the port-flow edge
construction excludes the paused packets in queues"): packets that enqueued
while the port was paused are evidence of PFC buildup, not of local flow
contention, so the replay considers only each flow's non-paused packets —
both as waiters and as waited-on queue content — using the queue depths
those non-paused enqueues actually observed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.packet import FlowKey
from ..telemetry.records import FlowEntry
from . import columnar

# Shared numpy handle (None when absent or REPRO_NO_NUMPY is set) — the
# pure-Python path below is authoritative.
_np = columnar._np

# Below this sequence length the numpy setup cost outweighs the win.
_VECTORIZE_MIN_PACKETS = columnar.MIN_COLUMNAR_PACKETS


def replay_queue(
    entries: Sequence[FlowEntry],
    window_ns: int,
    counts: Optional[Dict[FlowKey, int]] = None,
) -> List[Tuple[int, FlowKey]]:
    """Reconstruct an approximate enqueue sequence for one egress port.

    Each flow's packets (``pkt_count`` by default, or ``counts[key]`` when
    given) are spaced uniformly across the window; the merged sequence is
    sorted by synthetic enqueue time (ties broken by flow order for
    determinism).
    """
    sequence: List[Tuple[int, int, FlowKey]] = []
    for order, entry in enumerate(sorted(entries, key=lambda e: e.key)):
        n = entry.pkt_count if counts is None else counts.get(entry.key, 0)
        if n <= 0:
            continue
        for j in range(n):
            time = j * window_ns // n
            sequence.append((time, order, entry.key))
    sequence.sort()
    return [(time, key) for time, _, key in sequence]


def contribution(
    entries: Sequence[FlowEntry],
    window_ns: int,
    exclude_paused: bool = True,
) -> Dict[FlowKey, float]:
    """Net contention contribution per flow at one egress port.

    ``exclude_paused`` applies the paused-packet exclusion described above;
    disabling it reproduces the naive estimator (used as an ablation).
    """
    if exclude_paused:
        counts = {e.key: e.unpaused_count for e in entries}
    else:
        counts = {e.key: e.pkt_count for e in entries}
    live = [e for e in entries if counts.get(e.key, 0) > 0]
    if not live:
        # Everything here enqueued during pauses: no local contention at all.
        return {e.key: 0.0 for e in entries if e.pkt_count > 0}

    # Queue depth each flow's contention-relevant packets observed.
    depth: Dict[FlowKey, int] = {}
    for entry in live:
        if exclude_paused:
            avg_depth = entry.avg_unpaused_qdepth_pkts()
        else:
            avg_depth = entry.avg_qdepth_pkts()
        depth[entry.key] = int(round(avg_depth))

    pkt_num = {e.key: counts[e.key] for e in live}
    total_packets = sum(pkt_num.values())

    if columnar.columnar_enabled(total_packets):
        # Fully columnar replay: the Python (time, key) sequence is never
        # materialized; replay order is rebuilt from the count column.
        incoming, outgoing = columnar.wait_weights_columnar(
            live, counts, depth, pkt_num, window_ns
        )
    else:
        sequence = replay_queue(live, window_ns, counts=counts)
        incoming, outgoing = _wait_weights_python(live, sequence, depth, pkt_num)

    result = {key: incoming[key] - outgoing[key] for key in incoming}
    for entry in entries:
        if entry.pkt_count > 0 and entry.key not in result:
            result[entry.key] = 0.0  # fully paused: no contention evidence
    return result


def _wait_weights_python(
    live: Sequence[FlowEntry],
    sequence: List[Tuple[int, FlowKey]],
    depth: Dict[FlowKey, int],
    pkt_num: Dict[FlowKey, int],
) -> Tuple[Dict[FlowKey, float], Dict[FlowKey, float]]:
    """Reference implementation: walk the replayed sequence packet by packet."""
    # W[f_i][f_j]: total f_j packets found ahead of f_i packets.
    wait_counts: Dict[FlowKey, Dict[FlowKey, int]] = {e.key: {} for e in live}
    history: List[FlowKey] = []
    for idx, (_, key) in enumerate(sequence):
        d = min(depth.get(key, 0), idx)
        if d > 0:
            row = wait_counts[key]
            for other in history[idx - d : idx]:
                row[other] = row.get(other, 0) + 1
        history.append(key)

    # Normalize to per-packet averages.
    incoming: Dict[FlowKey, float] = {e.key: 0.0 for e in live}
    outgoing: Dict[FlowKey, float] = {e.key: 0.0 for e in live}
    for waiter, row in wait_counts.items():
        n = pkt_num[waiter]
        for waited_on, count in row.items():
            w = count / n
            outgoing[waiter] += w
            incoming[waited_on] += w
    return incoming, outgoing


def _wait_weights_numpy(
    live: Sequence[FlowEntry],
    sequence: List[Tuple[int, FlowKey]],
    depth: Dict[FlowKey, int],
    pkt_num: Dict[FlowKey, int],
) -> Tuple[Dict[FlowKey, float], Dict[FlowKey, float]]:
    """Prefix-count formulation over an explicit replayed sequence.

    Thin wrapper over :func:`repro.core.columnar.wait_weights_from_ids` for
    callers that already hold a ``replay_queue`` result; ``contribution``
    itself uses the fully columnar path that never builds the sequence.
    """
    keys = [e.key for e in live]
    index = {k: i for i, k in enumerate(keys)}
    seq_ids = _np.fromiter(
        (index[k] for _, k in sequence), dtype=_np.int64, count=len(sequence)
    )
    return columnar.wait_weights_from_ids(keys, seq_ids, depth, pkt_num)
