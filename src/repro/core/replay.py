"""Queue replay and per-flow contention contribution (Algorithm 1, lines 21-37).

The data plane cannot afford per-packet logs, so it records only per-flow
packet counts and average queue depths.  ``ReplayQueue`` reconstructs an
approximate enqueue sequence by spacing each flow's packets uniformly over
the telemetry window and interleaving the flows; ``Contribution`` then
derives the pairwise wait-for weights:

- ``w(f_i -> f_j)``: the average number of ``f_j`` packets sitting ahead of
  an ``f_i`` packet at its enqueue (``f_i`` waits for ``f_j``);
- ``contribution(f) = sum_i w(f_i -> f) - sum_k w(f -> f_k)`` — flows with
  positive contribution are contention *contributors*, negative ones are
  *victims* (§3.5.1).

PFC-paused packets are excluded (the paper's "the port-flow edge
construction excludes the paused packets in queues"): packets that enqueued
while the port was paused are evidence of PFC buildup, not of local flow
contention, so the replay considers only each flow's non-paused packets —
both as waiters and as waited-on queue content — using the queue depths
those non-paused enqueues actually observed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.packet import FlowKey
from ..telemetry.records import FlowEntry

try:  # optional acceleration; the pure-Python path below is authoritative
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None

# Below this sequence length the numpy setup cost outweighs the win.
_VECTORIZE_MIN_PACKETS = 64


def replay_queue(
    entries: Sequence[FlowEntry],
    window_ns: int,
    counts: Optional[Dict[FlowKey, int]] = None,
) -> List[Tuple[int, FlowKey]]:
    """Reconstruct an approximate enqueue sequence for one egress port.

    Each flow's packets (``pkt_count`` by default, or ``counts[key]`` when
    given) are spaced uniformly across the window; the merged sequence is
    sorted by synthetic enqueue time (ties broken by flow order for
    determinism).
    """
    sequence: List[Tuple[int, int, FlowKey]] = []
    for order, entry in enumerate(sorted(entries, key=lambda e: e.key)):
        n = entry.pkt_count if counts is None else counts.get(entry.key, 0)
        if n <= 0:
            continue
        for j in range(n):
            time = j * window_ns // n
            sequence.append((time, order, entry.key))
    sequence.sort()
    return [(time, key) for time, _, key in sequence]


def contribution(
    entries: Sequence[FlowEntry],
    window_ns: int,
    exclude_paused: bool = True,
) -> Dict[FlowKey, float]:
    """Net contention contribution per flow at one egress port.

    ``exclude_paused`` applies the paused-packet exclusion described above;
    disabling it reproduces the naive estimator (used as an ablation).
    """
    if exclude_paused:
        counts = {e.key: e.unpaused_count for e in entries}
    else:
        counts = {e.key: e.pkt_count for e in entries}
    live = [e for e in entries if counts.get(e.key, 0) > 0]
    if not live:
        # Everything here enqueued during pauses: no local contention at all.
        return {e.key: 0.0 for e in entries if e.pkt_count > 0}

    # Queue depth each flow's contention-relevant packets observed.
    depth: Dict[FlowKey, int] = {}
    for entry in live:
        if exclude_paused:
            avg_depth = entry.avg_unpaused_qdepth_pkts()
        else:
            avg_depth = entry.avg_qdepth_pkts()
        depth[entry.key] = int(round(avg_depth))

    sequence = replay_queue(live, window_ns, counts=counts)
    pkt_num = {e.key: counts[e.key] for e in live}

    if _np is not None and len(sequence) >= _VECTORIZE_MIN_PACKETS:
        incoming, outgoing = _wait_weights_numpy(live, sequence, depth, pkt_num)
    else:
        incoming, outgoing = _wait_weights_python(live, sequence, depth, pkt_num)

    result = {key: incoming[key] - outgoing[key] for key in incoming}
    for entry in entries:
        if entry.pkt_count > 0 and entry.key not in result:
            result[entry.key] = 0.0  # fully paused: no contention evidence
    return result


def _wait_weights_python(
    live: Sequence[FlowEntry],
    sequence: List[Tuple[int, FlowKey]],
    depth: Dict[FlowKey, int],
    pkt_num: Dict[FlowKey, int],
) -> Tuple[Dict[FlowKey, float], Dict[FlowKey, float]]:
    """Reference implementation: walk the replayed sequence packet by packet."""
    # W[f_i][f_j]: total f_j packets found ahead of f_i packets.
    wait_counts: Dict[FlowKey, Dict[FlowKey, int]] = {e.key: {} for e in live}
    history: List[FlowKey] = []
    for idx, (_, key) in enumerate(sequence):
        d = min(depth.get(key, 0), idx)
        if d > 0:
            row = wait_counts[key]
            for other in history[idx - d : idx]:
                row[other] = row.get(other, 0) + 1
        history.append(key)

    # Normalize to per-packet averages.
    incoming: Dict[FlowKey, float] = {e.key: 0.0 for e in live}
    outgoing: Dict[FlowKey, float] = {e.key: 0.0 for e in live}
    for waiter, row in wait_counts.items():
        n = pkt_num[waiter]
        for waited_on, count in row.items():
            w = count / n
            outgoing[waiter] += w
            incoming[waited_on] += w
    return incoming, outgoing


def _wait_weights_numpy(
    live: Sequence[FlowEntry],
    sequence: List[Tuple[int, FlowKey]],
    depth: Dict[FlowKey, int],
    pkt_num: Dict[FlowKey, int],
) -> Tuple[Dict[FlowKey, float], Dict[FlowKey, float]]:
    """Prefix-count formulation of the sequence walk.

    With ``prefix[i, g]`` = packets of flow ``g`` among the first ``i``
    enqueues, the packets of ``g`` ahead of the waiter at position ``idx``
    (look-back ``d``) are ``prefix[idx, g] - prefix[idx - d, g]``; summing
    over one flow's packet positions yields its whole wait-count row at
    once.  Counts are exact integers — only the float normalization order
    differs from the reference walk.
    """
    keys = [e.key for e in live]
    index = {k: i for i, k in enumerate(keys)}
    n_pkts = len(sequence)
    n_flows = len(keys)
    seq_ids = _np.fromiter(
        (index[k] for _, k in sequence), dtype=_np.intp, count=n_pkts
    )
    onehot = _np.zeros((n_pkts, n_flows), dtype=_np.int64)
    onehot[_np.arange(n_pkts), seq_ids] = 1
    prefix = _np.zeros((n_pkts + 1, n_flows), dtype=_np.int64)
    _np.cumsum(onehot, axis=0, out=prefix[1:])

    wait = _np.zeros((n_flows, n_flows), dtype=_np.int64)
    for f, key in enumerate(keys):
        d = depth.get(key, 0)
        if d <= 0:
            continue
        positions = _np.flatnonzero(seq_ids == f)
        starts = positions - _np.minimum(d, positions)
        wait[f] = prefix[positions].sum(axis=0) - prefix[starts].sum(axis=0)

    per_pkt = _np.array([pkt_num[k] for k in keys], dtype=_np.float64)
    norm = wait / per_pkt[:, None]
    outgoing_arr = norm.sum(axis=1)
    incoming_arr = norm.sum(axis=0)
    incoming = {k: float(incoming_arr[i]) for i, k in enumerate(keys)}
    outgoing = {k: float(outgoing_arr[i]) for i, k in enumerate(keys)}
    return incoming, outgoing
