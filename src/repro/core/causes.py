"""Contention-cause sub-analysis (Algorithm 2, lines 8-11).

Once Algorithm 2 attributes an anomaly to flow contention at an initial
port, the operator still wants to know *what kind* of contention: the
paper's procedure checks each contributing flow's throughput and priority
and the port's ECMP imbalance ratio.  This module implements those checks
on top of the annotated provenance graph:

- ``classify_contention`` labels the contention as synchronized incast
  micro-bursts (several contributors sharing one destination), a single
  elephant flow (one dominant contributor), or mixed;
- ``ecmp_imbalance_ratio`` compares the load on the initial port against
  its ECMP siblings (ports of the same switch leading toward the same
  next tier) — a high ratio points at load-balancing trouble rather than
  application behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.packet import FlowKey
from ..topology.graph import PortRef, Topology
from .build import AnnotatedGraph
from .report import Finding


class ContentionKind(enum.Enum):
    INCAST_BURSTS = "incast-micro-bursts"
    ELEPHANT_FLOW = "single-elephant-flow"
    MIXED = "mixed-contention"
    NONE = "no-contention"


@dataclass
class FlowProfile:
    """Per-culprit traffic profile at the initial port."""

    key: FlowKey
    byte_count: int
    pkt_count: int
    rate_bytes_per_sec: float
    traffic_share: float


@dataclass
class ContentionAnalysis:
    """The operator-facing breakdown of a contention root cause."""

    kind: ContentionKind
    profiles: List[FlowProfile] = field(default_factory=list)
    shared_destination: Optional[str] = None
    ecmp_imbalance: Optional[float] = None

    def describe(self) -> str:
        parts = [f"contention kind: {self.kind.value}"]
        if self.shared_destination:
            parts.append(f"converging on {self.shared_destination}")
        if self.ecmp_imbalance is not None:
            parts.append(f"ECMP imbalance ratio {self.ecmp_imbalance:.2f}")
        for p in self.profiles[:4]:
            parts.append(
                f"{p.key}: {p.rate_bytes_per_sec * 8 / 1e9:.2f} Gbps "
                f"({p.traffic_share:.0%} of port)"
            )
        return "; ".join(parts)


# A single flow is an "elephant" when it alone carries this much of the
# port's traffic over the window.
ELEPHANT_SHARE = 0.5
# An incast needs at least this many synchronized contributors.
INCAST_MIN_FLOWS = 3


def flow_profiles(
    annotated: AnnotatedGraph, port: PortRef, culprits: List[FlowKey]
) -> List[FlowProfile]:
    """Throughput/share profile for each culprit at ``port``."""
    window = max(annotated.window_ns, 1)
    total_bytes = sum(
        m.byte_count for (f, p), m in annotated.flow_port_meta.items() if p == port
    )
    profiles = []
    for key in culprits:
        meta = annotated.flow_port_meta.get((key, port))
        if meta is None:
            continue
        profiles.append(
            FlowProfile(
                key=key,
                byte_count=meta.byte_count,
                pkt_count=meta.pkt_count,
                rate_bytes_per_sec=meta.byte_count * 1e9 / window,
                traffic_share=(meta.byte_count / total_bytes) if total_bytes else 0.0,
            )
        )
    profiles.sort(key=lambda p: -p.byte_count)
    return profiles


def ecmp_imbalance_ratio(
    annotated: AnnotatedGraph, port: PortRef, topology: Topology
) -> Optional[float]:
    """Load on ``port`` vs the mean load of its ECMP sibling ports.

    Siblings are the other egress ports of the same switch whose peers are
    switches of the same tier (same name prefix pattern); host-facing ports
    have no ECMP siblings.  Returns ``None`` when no sibling carries data.
    """
    meta = annotated.port_meta.get(port)
    if meta is None or meta.peer is None or meta.peer_is_host:
        return None
    sibling_loads: List[int] = []
    port_load = 0
    for ref, m in annotated.port_meta.items():
        if ref.node != port.node or m.peer is None or m.peer_is_host:
            continue
        load = sum(
            fm.byte_count
            for (f, p), fm in annotated.flow_port_meta.items()
            if p == ref
        )
        if ref == port:
            port_load = load
        else:
            sibling_loads.append(load)
    if not sibling_loads:
        return None
    mean_sibling = sum(sibling_loads) / len(sibling_loads)
    if mean_sibling <= 0:
        return None
    return port_load / mean_sibling


def classify_contention(
    annotated: AnnotatedGraph,
    finding: Finding,
    topology: Optional[Topology] = None,
) -> ContentionAnalysis:
    """Run the Algorithm-2 line 8-11 checks for one contention finding."""
    port = finding.initial_port
    culprits = finding.culprit_keys()
    if port is None or not culprits:
        return ContentionAnalysis(kind=ContentionKind.NONE)

    profiles = flow_profiles(annotated, port, culprits)
    imbalance = (
        ecmp_imbalance_ratio(annotated, port, topology)
        if topology is not None
        else None
    )

    destinations = {p.key.dst_ip for p in profiles}
    shared = destinations.pop() if len(destinations) == 1 else None

    if profiles and profiles[0].traffic_share >= ELEPHANT_SHARE:
        kind = ContentionKind.ELEPHANT_FLOW
    elif len(profiles) >= INCAST_MIN_FLOWS and shared is not None:
        kind = ContentionKind.INCAST_BURSTS
    elif profiles:
        kind = ContentionKind.MIXED
    else:
        kind = ContentionKind.NONE

    return ContentionAnalysis(
        kind=kind,
        profiles=profiles,
        shared_destination=shared,
        ecmp_imbalance=imbalance,
    )
