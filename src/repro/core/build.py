"""Provenance graph construction (Algorithm 1).

Input: the telemetry reports collected from the causally relevant switches
(plus the topology, to map a congested egress port to the downstream
switch's ingress).  Output: the heterogeneous wait-for graph of §3.5.1.

Edge construction, per the paper:

- **Port-level** — for each PFC-paused egress port ``p_i`` and each egress
  port ``p_j`` of the downstream switch fed by ``p_i``'s traffic
  (``meter[p_i][p_j] > 0``):
  ``w_ij = paused_num[p_i] * meter[p_i][p_j] / sum_k meter[p_i][p_k] * qdepth[p_j]``
- **Flow-port** — ``f_i -> p_j`` weighted by ``paused_num(f_i, p_j)``.
- **Port-flow** — ``p_i -> f_j`` weighted by the replayed contention
  contribution (see :mod:`repro.core.replay`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..sim.packet import FlowKey
from ..telemetry.snapshot import SwitchReport
from ..topology.graph import PortRef, Topology
from .graph import EdgeKind, ProvenanceGraph
from .replay import contribution

_EPS = 1e-9

# (hits, misses) of the per-epoch replay memoization, surfaced via PerfStats.
CONTRIB_CACHE_STATS = [0, 0]


def _epoch_contribution(epoch, replay_t: int, exclude_paused: bool) -> list:
    """Replay one epoch's queues; memoized on the (shared) EpochData.

    The telemetry plane shares EpochData objects across reports and the
    analyzer re-runs Algorithm 1 per victim over the same reports, so the
    replay — the dominant cost of graph construction — is computed once per
    (epoch, replay parameters).  The returned list preserves the exact
    production order of the original nested loops so float accumulation
    downstream is bit-identical.
    """
    cache_key = (replay_t, exclude_paused)
    cached = epoch.replay_cache.get(cache_key)
    if cached is not None:
        CONTRIB_CACHE_STATS[0] += 1
        return cached
    CONTRIB_CACHE_STATS[1] += 1
    items: list = []
    by_port: Dict[int, list] = {}
    for (key, egress_no), entry in epoch.flows.items():
        by_port.setdefault(egress_no, []).append(entry)
    for egress_no, entries in by_port.items():
        contrib = contribution(entries, replay_t, exclude_paused=exclude_paused)
        for key, weight in contrib.items():
            items.append(((egress_no, key), weight))
    epoch.replay_cache[cache_key] = items
    return items


@dataclass
class PortMeta:
    """Per-port aggregates kept alongside the graph for diagnosis."""

    paused_num: int = 0
    pkt_num: int = 0
    avg_qdepth_pkts: float = 0.0
    # Queue depth seen by the port's non-paused enqueues (computed from the
    # flow entries): the depth that reflects local contention rather than
    # PFC buildup.
    avg_unpaused_qdepth_pkts: float = 0.0
    peer: Optional[PortRef] = None
    peer_is_host: bool = False
    # The Figure-3 port status register: was the port paused at collection?
    # A port can be paused yet record zero paused *packets* when its own
    # upstream is also paused (nothing enqueues during the pause windows);
    # the status register keeps the causality chain intact in that case.
    status_paused: bool = False
    # PAUSE frames received during the reported epochs (the standard
    # per-port PFC counter): evidence of *transient* pauses that expired
    # before collection without any enqueue observing them.
    pause_rx_count: int = 0

    @property
    def is_pfc_paused(self) -> bool:
        return self.paused_num > 0 or self.status_paused or self.pause_rx_count > 0

    @property
    def effective_paused_num(self) -> int:
        """Paused-packet count with a floor of 1 for pause-evidenced ports."""
        if self.paused_num > 0:
            return self.paused_num
        return 1 if (self.status_paused or self.pause_rx_count > 0) else 0


@dataclass
class FlowPortMeta:
    """Per-(flow, port) aggregates for burst/throughput analysis."""

    pkt_count: int = 0
    byte_count: int = 0
    paused_count: int = 0


@dataclass
class AnnotatedGraph:
    """A provenance graph plus the telemetry aggregates diagnosis consults."""

    graph: ProvenanceGraph
    port_meta: Dict[PortRef, PortMeta] = field(default_factory=dict)
    flow_port_meta: Dict[Tuple[FlowKey, PortRef], FlowPortMeta] = field(default_factory=dict)
    window_ns: int = 0
    # Switches the PFC causality provably continues into but whose telemetry
    # never arrived (lost polling packets / reports): a paused egress port
    # points at them, yet no report covers them.  Diagnoses built from this
    # graph are incomplete and must say so.
    missing_switches: set = field(default_factory=set)
    # Total bytes crossing each egress port (sum over its flow entries),
    # accumulated once at build time so signature scoring doesn't rescan
    # flow_port_meta per (flow, port) query.
    port_bytes: Dict[PortRef, int] = field(default_factory=dict)
    # Egress ports each flow appears at, in flow_port_meta insertion order
    # (per-flow inverted index; diagnosis consults it per victim).
    flow_ports: Dict[FlowKey, list] = field(default_factory=dict)


def build_provenance(
    reports: Mapping[str, SwitchReport],
    topology: Topology,
    window_ns: int,
    victim: Optional[FlowKey] = None,
    exclude_paused: bool = True,
    epoch_size_ns: Optional[int] = None,
    obs=None,
    now_ns: int = 0,
) -> AnnotatedGraph:
    """Run Algorithm 1 over the collected telemetry.

    ``epoch_size_ns`` is the replay period T of Algorithm 1 (defaults to
    ``window_ns`` when the reports are single-epoch aggregates).  ``obs``
    (a :class:`~repro.obs.pipeline.PipelineObs`) wraps the construction in
    a ``graph_build`` span stamped at ``now_ns`` — Algorithm 1 runs after
    the simulation, so the analysis time is the caller's clock, not ours.
    """
    if obs is not None:
        span = obs.begin_graph_build(victim, now_ns)
        annotated = _build_provenance(
            reports, topology, window_ns, victim, exclude_paused, epoch_size_ns
        )
        obs.end_graph_build(
            span,
            now_ns,
            reports=len(reports),
            ports=len(annotated.port_meta),
            flows=len(annotated.flow_port_meta),
            edges=sum(1 for _ in annotated.graph.edges()),
            missing=sorted(annotated.missing_switches),
        )
        return annotated
    return _build_provenance(
        reports, topology, window_ns, victim, exclude_paused, epoch_size_ns
    )


def _build_provenance(
    reports: Mapping[str, SwitchReport],
    topology: Topology,
    window_ns: int,
    victim: Optional[FlowKey],
    exclude_paused: bool,
    epoch_size_ns: Optional[int],
) -> AnnotatedGraph:
    graph = ProvenanceGraph()
    annotated = AnnotatedGraph(graph=graph, window_ns=window_ns)

    agg_ports = {name: r.agg_ports() for name, r in reports.items()}
    agg_meters = {name: r.agg_meters() for name, r in reports.items()}
    agg_flows = {name: r.agg_flows() for name, r in reports.items()}

    # Port vertices + metadata.
    for name, ports in agg_ports.items():
        for port_no, entry in ports.items():
            ref = PortRef(name, port_no)
            graph.add_port(ref)
            peer = None
            peer_is_host = False
            if topology.has_link_at(ref):
                peer = topology.peer_port(ref)
                peer_is_host = topology.node(peer.node).is_host
            annotated.port_meta[ref] = PortMeta(
                paused_num=entry.paused_count,
                pkt_num=entry.pkt_count,
                avg_qdepth_pkts=entry.avg_qdepth_pkts(),
                peer=peer,
                peer_is_host=peer_is_host,
                status_paused=reports[name].port_status.get(port_no, 0) > 0,
                pause_rx_count=entry.pause_rx_count,
            )

    # Port-level provenance (PFC spreading causality).
    for name, ports in agg_ports.items():
        for port_no, entry in ports.items():
            p_i = PortRef(name, port_no)
            meta = annotated.port_meta[p_i]
            if not meta.is_pfc_paused:
                continue
            if meta.peer is None or meta.peer_is_host:
                continue  # pause came from a host: no downstream switch
            down_switch = meta.peer.node
            ingress_on_down = meta.peer.port
            meters = agg_meters.get(down_switch)
            down_ports = agg_ports.get(down_switch)
            if meters is None or down_ports is None:
                # Downstream telemetry not collected: the causality chain has
                # a frontier gap the diagnosis must be qualified with.
                annotated.missing_switches.add(down_switch)
                continue
            relevant = {
                pair[1]: vol
                for pair, vol in meters.items()
                if pair[0] == ingress_on_down and vol > 0
            }
            total = sum(relevant.values())
            if total <= 0:
                continue
            for egress_no, vol in relevant.items():
                down_entry = down_ports.get(egress_no)
                if down_entry is None:
                    continue
                qdepth = down_entry.avg_qdepth_pkts()
                weight = meta.effective_paused_num * (vol / total) * qdepth
                if weight > _EPS:
                    graph.add_edge(
                        p_i, PortRef(down_switch, egress_no), EdgeKind.PORT_PORT, weight
                    )

    # Flow vertices, flow-port edges, metadata.
    unpaused_depth_sums: Dict[PortRef, list] = {}
    for name, flows in agg_flows.items():
        for (key, egress_no), entry in flows.items():
            ref = PortRef(name, egress_no)
            graph.add_flow(key)
            annotated.flow_port_meta[(key, ref)] = FlowPortMeta(
                pkt_count=entry.pkt_count,
                byte_count=entry.byte_count,
                paused_count=entry.paused_count,
            )
            annotated.port_bytes[ref] = (
                annotated.port_bytes.get(ref, 0) + entry.byte_count
            )
            annotated.flow_ports.setdefault(key, []).append(ref)
            sums = unpaused_depth_sums.setdefault(ref, [0, 0])
            sums[0] += entry.qdepth_sum_pkts - entry.qdepth_paused_sum_pkts
            sums[1] += entry.unpaused_count
            if entry.paused_count > 0:
                graph.add_edge(key, ref, EdgeKind.FLOW_PORT, float(entry.paused_count))
    for ref, (depth_sum, count) in unpaused_depth_sums.items():
        meta = annotated.port_meta.get(ref)
        if meta is not None and count > 0:
            meta.avg_unpaused_qdepth_pkts = depth_sum / count

    if victim is not None:
        graph.add_flow(victim)

    # Port-flow provenance via queue replay.  Replay runs per epoch with
    # T = epoch size (Algorithm 1's ReplayQueue) — replaying the aggregate
    # window would smear short bursts across quiet epochs and misattribute
    # contention; per-epoch contributions are then summed.
    replay_t = epoch_size_ns if epoch_size_ns is not None else max(window_ns, 1)
    for name, report in reports.items():
        totals: Dict[Tuple[int, FlowKey], float] = {}
        for epoch in report.epochs:
            for slot, weight in _epoch_contribution(epoch, replay_t, exclude_paused):
                totals[slot] = totals.get(slot, 0.0) + weight
        for (egress_no, key), weight in totals.items():
            if abs(weight) > _EPS:
                graph.add_edge(PortRef(name, egress_no), key, EdgeKind.PORT_FLOW, weight)

    return annotated
