"""Anomaly signatures over the provenance graph (Table 2).

Each predicate checks one row of Table 2 against an annotated provenance
graph.  They are used by the diagnosis procedure for validation and by the
test suite directly; the diagnosis procedure itself (Algorithm 2) walks the
graph once instead of evaluating every signature independently.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..sim.packet import FlowKey
from ..topology.graph import PortRef
from .build import AnnotatedGraph
from .graph import EdgeKind, ProvenanceGraph

_EPS = 1e-9

# A contributing flow is a "burst flow" when it carries at least this share
# of the initial port's traffic over the telemetry window.  (The paper
# checks contributing flows' paths and throughput; with uniform replay the
# traffic share is the observable burst indicator.)
BURST_TRAFFIC_SHARE = 0.02


def positive_contributors(graph: ProvenanceGraph, port: PortRef) -> List[FlowKey]:
    """Flows with positive port-flow weight at ``port`` (contention culprits)."""
    return [
        flow
        for flow, weight in graph.port_flow_weights(port).items()
        if weight > _EPS
    ]


def has_flow_contention(graph: ProvenanceGraph, port: PortRef) -> bool:
    return bool(positive_contributors(graph, port))


def burst_flow(annotated: AnnotatedGraph, flow: FlowKey, port: PortRef) -> bool:
    """Is ``flow`` bursty at ``port``?  (traffic-share approximation)"""
    meta = annotated.flow_port_meta.get((flow, port))
    if meta is None or meta.byte_count <= 0:
        return False
    total = annotated.port_bytes.get(port)
    if total is None:
        # Graph predates the build-time byte column (hand-built in tests):
        # fall back to the O(flows) scan.
        total = sum(
            m.byte_count
            for (f, p), m in annotated.flow_port_meta.items()
            if p == port
        )
    if total <= 0:
        return False
    return meta.byte_count / total >= BURST_TRAFFIC_SHARE


def find_port_loops(graph: ProvenanceGraph) -> List[List[PortRef]]:
    """All distinct simple cycles in the port-level subgraph (DFS)."""
    loops: List[List[PortRef]] = []
    seen_signatures: Set[frozenset] = set()
    for start in graph.ports:
        stack: List[PortRef] = []
        on_stack: Set[PortRef] = set()
        visited: Set[PortRef] = set()

        def dfs(node: PortRef) -> None:
            stack.append(node)
            on_stack.add(node)
            visited.add(node)
            for succ in graph.port_successors(node):
                if succ in on_stack:
                    loop = stack[stack.index(succ):]
                    sig = frozenset(loop)
                    if sig not in seen_signatures:
                        seen_signatures.add(sig)
                        loops.append(list(loop))
                elif succ not in visited:
                    dfs(succ)
            stack.pop()
            on_stack.remove(node)

        if start not in visited:
            dfs(start)
    return loops


def terminal_ports_reachable(graph: ProvenanceGraph, start: PortRef) -> List[PortRef]:
    """Ports with port-level out-degree 0 reachable from ``start``."""
    terminals: List[PortRef] = []
    visited: Set[PortRef] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node in visited:
            continue
        visited.add(node)
        succs = graph.port_successors(node)
        if not succs:
            terminals.append(node)
        frontier.extend(succs)
    return terminals


# -- Table 2 signature predicates --------------------------------------------------


def match_micro_burst_incast(annotated: AnnotatedGraph) -> Optional[PortRef]:
    """A PFC path ending at a port whose contention contributors are bursty."""
    graph = annotated.graph
    for port in graph.ports:
        if graph.port_out_degree(port) != 0:
            continue
        if not graph.in_edges(port, EdgeKind.PORT_PORT) and not graph.in_edges(
            port, EdgeKind.FLOW_PORT
        ):
            continue  # not on any PFC path
        culprits = positive_contributors(graph, port)
        if culprits and any(burst_flow(annotated, f, port) for f in culprits):
            return port
    return None


def match_pfc_storm(annotated: AnnotatedGraph) -> Optional[PortRef]:
    """A PFC path ending at a paused port with no flow contention."""
    graph = annotated.graph
    for port in graph.ports:
        if graph.port_out_degree(port) != 0:
            continue
        meta = annotated.port_meta.get(port)
        if meta is None or meta.paused_num <= 0:
            continue
        if not has_flow_contention(graph, port):
            return port
    return None


def match_in_loop_deadlock(annotated: AnnotatedGraph) -> Optional[List[PortRef]]:
    """A port-level loop whose every member stays in the loop, with
    contention at some loop port."""
    graph = annotated.graph
    for loop in find_port_loops(graph):
        members = set(loop)
        closed = all(
            graph.port_out_degree(p) == 1
            and all(s in members for s in graph.port_successors(p))
            for p in loop
        )
        if closed and any(has_flow_contention(graph, p) for p in loop):
            return loop
    return None


def match_out_of_loop_deadlock(
    annotated: AnnotatedGraph,
) -> Optional[tuple]:
    """A loop with an escape branch reaching a terminal port.

    Returns ``(loop, terminal, is_contention)`` or ``None``.
    """
    graph = annotated.graph
    for loop in find_port_loops(graph):
        members = set(loop)
        for p in loop:
            if graph.port_out_degree(p) <= 1:
                continue
            for succ in graph.port_successors(p):
                if succ in members:
                    continue
                for terminal in terminal_ports_reachable(graph, succ):
                    contention = has_flow_contention(graph, terminal)
                    return loop, terminal, contention
    return None


def match_contention_masked_storm(annotated: AnnotatedGraph) -> Optional[PortRef]:
    """A PFC path ending at a *paused* host-facing port that also shows
    flow contention.

    Fuzzer-promoted signature (not in the paper's Table 2): host PFC
    injection and converging traffic at the same port.  Table 2 treats
    "positive contributors" and "paused with no contention" as exclusive
    rows, so this combination used to be reported as plain flow
    contention — naming the masking flows and never the injecting host.
    """
    graph = annotated.graph
    for port in graph.ports:
        if graph.port_out_degree(port) != 0:
            continue
        meta = annotated.port_meta.get(port)
        if meta is None or not meta.is_pfc_paused or not meta.peer_is_host:
            continue
        if has_flow_contention(graph, port):
            return port
    return None


def match_normal_contention(annotated: AnnotatedGraph) -> Optional[PortRef]:
    """No port-level edges at all, but some port shows contention."""
    graph = annotated.graph
    if graph.has_port_level_edges():
        return None
    for port in graph.ports:
        if has_flow_contention(graph, port):
            return port
    return None
