"""Epoch indexing by timestamp bit-slicing (§3.3, Figure 4).

Programmable switches stamp each enqueued packet with a 48-bit nanosecond
timestamp.  Hawkeye derives the telemetry epoch directly from that
timestamp: ``epoch_size`` must be a power of two so the epoch index is just
a bit-field, and the few bits above the index serve as an *epoch ID* that
detects ring-buffer wrap-around (a newer ID in an incoming packet resets
the epoch's registers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


def nearest_power_of_two_shift(epoch_size_ns: int) -> int:
    """The bit shift whose ``2**shift`` is closest to ``epoch_size_ns``.

    The paper's "1 ms epoch" is really ``2**20`` ns; sweeping epoch sizes
    (Fig 7) therefore means sweeping this shift.
    """
    if epoch_size_ns <= 0:
        raise ValueError("epoch size must be positive")
    shift = max(1, epoch_size_ns.bit_length() - 1)
    if abs(2 ** (shift + 1) - epoch_size_ns) < abs(2**shift - epoch_size_ns):
        shift += 1
    return shift


@dataclass(frozen=True)
class EpochScheme:
    """How timestamps map onto the telemetry ring buffer.

    - ``shift``: epoch duration is ``2**shift`` ns
    - ``index_bits``: the ring holds ``2**index_bits`` epochs
    - ``id_bits``: width of the wrap-around detection ID
    """

    shift: int = 20  # 2^20 ns ~ 1 ms
    index_bits: int = 2
    id_bits: int = 8

    @classmethod
    def from_epoch_size(
        cls, epoch_size_ns: int, index_bits: int = 2, id_bits: int = 8
    ) -> "EpochScheme":
        return cls(
            shift=nearest_power_of_two_shift(epoch_size_ns),
            index_bits=index_bits,
            id_bits=id_bits,
        )

    @property
    def epoch_size_ns(self) -> int:
        return 1 << self.shift

    @property
    def num_epochs(self) -> int:
        return 1 << self.index_bits

    @property
    def window_ns(self) -> int:
        """Total time span the ring buffer can hold."""
        return self.epoch_size_ns * self.num_epochs

    def epoch_number(self, timestamp_ns: int) -> int:
        """The global (monotonic) epoch counter for a timestamp."""
        return timestamp_ns >> self.shift

    def epoch_index(self, timestamp_ns: int) -> int:
        """Ring-buffer slot: ``timestamp[shift+index_bits-1 : shift]``."""
        return self.epoch_number(timestamp_ns) & (self.num_epochs - 1)

    def epoch_id(self, timestamp_ns: int) -> int:
        """Wrap-around ID: the ``id_bits`` above the index bits."""
        return (self.epoch_number(timestamp_ns) >> self.index_bits) & (
            (1 << self.id_bits) - 1
        )

    def epoch_start(self, timestamp_ns: int) -> int:
        return (timestamp_ns >> self.shift) << self.shift

    def recent_epoch_numbers(self, now_ns: int, count: int) -> List[int]:
        """The ``count`` most recent epoch numbers ending at ``now_ns``.

        Capped at the ring size — older epochs have been overwritten.
        """
        count = min(count, self.num_epochs)
        current = self.epoch_number(now_ns)
        return [current - i for i in range(count) if current - i >= 0]
