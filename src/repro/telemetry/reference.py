"""Reference (pure-Python, eager) switch telemetry implementation.

This is the original per-packet object implementation of the §3.3 register
plane: every data-packet enqueue allocates/updates :class:`FlowEntry` /
:class:`PortEntry` dataclasses and walks dicts.  It is retained verbatim as

- the **authoritative semantic reference** for the columnar register plane
  in :mod:`repro.telemetry.hawkeye` — the differential property tests feed
  identical packet streams to both and require equal snapshots, queries
  and register orderings (eviction order, XOR match, wrap-around);
- the **before** side of the telemetry microbenchmark
  (``benchmarks/test_telemetry_bench.py``), so the recorded speedup is a
  same-machine ratio rather than a machine-dependent absolute.

Keep this implementation boring and obviously correct; optimizations go in
:mod:`repro.telemetry.hawkeye`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.packet import DATA_PRIORITY, FlowKey, Packet, pause_quanta_to_ns
from ..sim.switch import Switch, SwitchObserver
from .records import EpochData, FlowEntry, PortEntry
from .snapshot import SwitchReport


class _EpochRegisters:
    """The live register arrays for one ring-buffer epoch (object form)."""

    __slots__ = ("epoch_number", "slots", "evicted", "ports", "meters")

    def __init__(self, flow_slots: int) -> None:
        self.epoch_number = -1
        self.slots: List[Optional[FlowEntry]] = [None] * flow_slots
        self.evicted: List[FlowEntry] = []
        self.ports: Dict[int, PortEntry] = {}
        self.meters: Dict[Tuple[int, int], int] = {}

    def reset(self, epoch_number: int) -> None:
        self.epoch_number = epoch_number
        for i in range(len(self.slots)):
            self.slots[i] = None
        self.evicted.clear()
        self.ports.clear()
        self.meters.clear()


class ReferenceSwitchTelemetry(SwitchObserver):
    """Eager per-packet telemetry recorder (original implementation)."""

    def __init__(self, switch_name: str, config=None) -> None:
        from .hawkeye import TelemetryConfig  # deferred: import cycle

        self.switch_name = switch_name
        self.config = config if config is not None else TelemetryConfig()
        self.scheme = self.config.scheme
        self._rings = [
            _EpochRegisters(self.config.flow_slots)
            for _ in range(self.scheme.num_epochs)
        ]
        # Port PFC status registers: port -> pause expiry timestamp (ns).
        self._pause_until: Dict[int, int] = {}
        self.pause_frames_seen = 0
        self.evictions = 0

    # -- observer hooks -------------------------------------------------------

    def on_egress_enqueue(
        self,
        switch: Switch,
        time_ns: int,
        pkt: Packet,
        egress_port: int,
        ingress_port: Optional[int],
        queue_depth_pkts: int,
        queue_bytes: int,
        port_paused: bool,
    ) -> None:
        if pkt.priority != DATA_PRIORITY or pkt.flow is None:
            return  # control traffic is not part of flow telemetry
        reg = self._registers_for(time_ns)
        paused = 1 if port_paused else 0

        # Flow-level telemetry (hash slot, XOR match, evict on collision).
        slot_idx = pkt.flow.stable_hash() % self.config.flow_slots
        entry = reg.slots[slot_idx]
        if entry is None or entry.key != pkt.flow:
            if entry is not None:
                reg.evicted.append(entry)
                self.evictions += 1
            entry = FlowEntry(key=pkt.flow, egress_port=egress_port)
            reg.slots[slot_idx] = entry
        entry.pkt_count += 1
        entry.paused_count += paused
        entry.qdepth_sum_pkts += queue_depth_pkts
        entry.byte_count += pkt.size
        if paused:
            entry.qdepth_paused_sum_pkts += queue_depth_pkts

        # Port-level telemetry.
        port_entry = reg.ports.get(egress_port)
        if port_entry is None:
            port_entry = PortEntry(port=egress_port)
            reg.ports[egress_port] = port_entry
        port_entry.pkt_count += 1
        port_entry.paused_count += paused
        port_entry.qdepth_sum_pkts += queue_depth_pkts

        # PFC causality meter (Figure 3): volume from ingress to egress port.
        if ingress_port is not None:
            pair = (ingress_port, egress_port)
            reg.meters[pair] = reg.meters.get(pair, 0) + pkt.size

    def on_pfc_received(
        self, switch: Switch, time_ns: int, port: int, priority: int, quanta: int
    ) -> None:
        self.pause_frames_seen += 1
        bandwidth = switch.ports[port].bandwidth
        if quanta > 0:
            self._pause_until[port] = time_ns + pause_quanta_to_ns(quanta, bandwidth)
            reg = self._registers_for(time_ns)
            entry = reg.ports.get(port)
            if entry is None:
                entry = PortEntry(port=port)
                reg.ports[port] = entry
            entry.pause_rx_count += 1
        else:
            self._pause_until[port] = time_ns

    # -- internal -----------------------------------------------------------------

    def _registers_for(self, time_ns: int) -> _EpochRegisters:
        number = self.scheme.epoch_number(time_ns)
        reg = self._rings[number & (self.scheme.num_epochs - 1)]
        if reg.epoch_number != number:
            reg.reset(number)  # ring wrap-around: newer epoch ID resets registers
        return reg

    def _live_epochs(self, now_ns: int, lookback: int) -> List[_EpochRegisters]:
        now_number = self.scheme.epoch_number(now_ns)
        retained = sorted(
            (reg for reg in self._rings if 0 <= reg.epoch_number <= now_number),
            key=lambda reg: -reg.epoch_number,
        )
        lookback = min(lookback, self.scheme.num_epochs)
        return retained[:lookback]

    # -- line-rate queries ---------------------------------------------------------

    def port_paused_num(self, port: int, now_ns: int, lookback: Optional[int] = None) -> int:
        lookback = lookback if lookback is not None else self.scheme.num_epochs
        total = 0
        for reg in self._live_epochs(now_ns, lookback):
            entry = reg.ports.get(port)
            if entry is not None:
                total += entry.paused_count
        return total

    def flow_paused_num(self, key: FlowKey, now_ns: int, lookback: Optional[int] = None) -> int:
        lookback = lookback if lookback is not None else self.scheme.num_epochs
        total = 0
        slot_idx = key.stable_hash() % self.config.flow_slots
        for reg in self._live_epochs(now_ns, lookback):
            entry = reg.slots[slot_idx]
            if entry is not None and entry.key == key:
                total += entry.paused_count
            for evicted in reg.evicted:
                if evicted.key == key:
                    total += evicted.paused_count
        return total

    def meter_volume(
        self, ingress_port: int, egress_port: int, now_ns: int, lookback: Optional[int] = None
    ) -> int:
        lookback = lookback if lookback is not None else self.scheme.num_epochs
        total = 0
        for reg in self._live_epochs(now_ns, lookback):
            total += reg.meters.get((ingress_port, egress_port), 0)
        return total

    def port_pause_rx(self, port: int, now_ns: int, lookback: Optional[int] = None) -> int:
        lookback = lookback if lookback is not None else self.scheme.num_epochs
        total = 0
        for reg in self._live_epochs(now_ns, lookback):
            entry = reg.ports.get(port)
            if entry is not None:
                total += entry.pause_rx_count
        return total

    def port_is_paused(self, port: int, now_ns: int) -> bool:
        return self._pause_until.get(port, 0) > now_ns

    def remaining_pause_ns(self, port: int, now_ns: int) -> int:
        return max(0, self._pause_until.get(port, 0) - now_ns)

    def port_pause_evidence(
        self, port: int, now_ns: int, lookback: Optional[int] = None
    ) -> bool:
        """Any PFC evidence at ``port``: paused enqueues, an asserted status
        register, or PAUSE frames received during the retained epochs."""
        return (
            self.port_paused_num(port, now_ns, lookback) > 0
            or self.port_is_paused(port, now_ns)
            or self.port_pause_rx(port, now_ns, lookback) > 0
        )

    # -- collection -----------------------------------------------------------------

    def snapshot(self, now_ns: int, lookback: Optional[int] = None) -> SwitchReport:
        lookback = lookback if lookback is not None else self.scheme.num_epochs
        report = SwitchReport(switch=self.switch_name, collect_time=now_ns)
        for reg in sorted(self._live_epochs(now_ns, lookback), key=lambda r: r.epoch_number):
            epoch = EpochData(epoch_number=reg.epoch_number)
            for entry in list(reg.evicted) + [e for e in reg.slots if e is not None]:
                key = (entry.key, entry.egress_port)
                existing = epoch.flows.get(key)
                if existing is None:
                    epoch.flows[key] = entry.copy()
                else:
                    existing.merge(entry)
            for port, pentry in reg.ports.items():
                epoch.ports[port] = pentry.copy()
            epoch.meters = dict(reg.meters)
            report.epochs.append(epoch)
        report.port_status = {
            port: max(0, until - now_ns) for port, until in self._pause_until.items()
        }
        return report
