"""Telemetry record layouts and their wire sizes.

The byte sizes below model the register/report layout on the switch and are
used by the overhead accounting (Fig 9a, Fig 14).  They match the paper's
descriptions: a flow entry stores the 5-tuple plus packet/paused/queue-depth
counters; a port entry stores the per-port counters; a meter entry is one
cell of the port-pair causality structure (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..sim.packet import FlowKey

# Wire sizes (bytes).
FIVE_TUPLE_BYTES = 13  # 4 + 4 + 2 + 2 + 1
COUNTER_BYTES = 4
PORT_NO_BYTES = 1

FLOW_ENTRY_BYTES = FIVE_TUPLE_BYTES + PORT_NO_BYTES + 4 * COUNTER_BYTES  # 30
PORT_ENTRY_BYTES = PORT_NO_BYTES + 4 * COUNTER_BYTES  # 17
METER_ENTRY_BYTES = 2 * PORT_NO_BYTES + COUNTER_BYTES  # 6
PORT_STATUS_BYTES = PORT_NO_BYTES + COUNTER_BYTES  # 5


@dataclass
class FlowEntry:
    """One slot of the per-epoch flow telemetry table.

    ``qdepth_paused_sum_pkts`` accumulates the queue depths seen by the
    *paused* enqueues separately, so the analyzer can reconstruct the queue
    state experienced by contention-relevant (non-paused) packets — the
    register that implements §3.5.1's "the port-flow edge construction
    excludes the paused packets in queues".
    """

    key: FlowKey
    egress_port: int
    pkt_count: int = 0
    paused_count: int = 0
    qdepth_sum_pkts: int = 0
    byte_count: int = 0
    qdepth_paused_sum_pkts: int = 0

    def merge(self, other: "FlowEntry") -> None:
        """Accumulate another entry for the same flow (e.g., after eviction)."""
        if other.key != self.key:
            raise ValueError("cannot merge entries of different flows")
        self.pkt_count += other.pkt_count
        self.paused_count += other.paused_count
        self.qdepth_sum_pkts += other.qdepth_sum_pkts
        self.byte_count += other.byte_count
        self.qdepth_paused_sum_pkts += other.qdepth_paused_sum_pkts

    def avg_qdepth_pkts(self) -> float:
        if self.pkt_count == 0:
            return 0.0
        return self.qdepth_sum_pkts / self.pkt_count

    @property
    def unpaused_count(self) -> int:
        return self.pkt_count - self.paused_count

    def avg_unpaused_qdepth_pkts(self) -> float:
        """Average queue depth over the non-paused enqueues only."""
        n = self.unpaused_count
        if n <= 0:
            return 0.0
        return (self.qdepth_sum_pkts - self.qdepth_paused_sum_pkts) / n

    def copy(self) -> "FlowEntry":
        return FlowEntry(
            key=self.key,
            egress_port=self.egress_port,
            pkt_count=self.pkt_count,
            paused_count=self.paused_count,
            qdepth_sum_pkts=self.qdepth_sum_pkts,
            byte_count=self.byte_count,
            qdepth_paused_sum_pkts=self.qdepth_paused_sum_pkts,
        )


@dataclass
class PortEntry:
    """Per-epoch, per-egress-port counters.

    ``pause_rx_count`` counts PAUSE frames received at the port during the
    epoch — the standard per-port PFC counter every lossless switch keeps.
    It preserves pause evidence for *transient* episodes where the pause
    expires before collection and nothing enqueued while it was asserted
    (so ``paused_count`` stays 0).
    """

    port: int
    pkt_count: int = 0
    paused_count: int = 0
    qdepth_sum_pkts: int = 0
    pause_rx_count: int = 0

    def avg_qdepth_pkts(self) -> float:
        if self.pkt_count == 0:
            return 0.0
        return self.qdepth_sum_pkts / self.pkt_count

    def copy(self) -> "PortEntry":
        return PortEntry(
            port=self.port,
            pkt_count=self.pkt_count,
            paused_count=self.paused_count,
            qdepth_sum_pkts=self.qdepth_sum_pkts,
            pause_rx_count=self.pause_rx_count,
        )


@dataclass
class EpochData:
    """Everything one epoch's registers hold, post-collection.

    Instances are immutable by convention once collected: the telemetry
    plane memoizes and shares them across reports and victims, and the
    baseline transforms copy rather than mutate.  ``replay_cache`` holds
    memoized per-epoch replay contributions computed by the provenance
    builder (keyed by replay parameters); it is excluded from equality.
    """

    epoch_number: int
    flows: Dict[Tuple[FlowKey, int], FlowEntry] = field(default_factory=dict)
    ports: Dict[int, PortEntry] = field(default_factory=dict)
    # PFC causality meters: (ingress_port, egress_port) -> bytes (Figure 3)
    meters: Dict[Tuple[int, int], int] = field(default_factory=dict)
    replay_cache: Dict = field(default_factory=dict, repr=False, compare=False)

    def merged_flow(self, key: FlowKey, egress_port: int) -> Optional[FlowEntry]:
        return self.flows.get((key, egress_port))
