"""Collected telemetry reports and their aggregation/size accounting.

A :class:`SwitchReport` is what the switch CPU ships to the analyzer after a
polling packet arrives (§3.4): the per-epoch flow/port/meter registers,
filtered of empty slots, plus the instantaneous port PFC status.  The
aggregation helpers collapse the epoch dimension for the provenance builder
(Algorithm 1 runs on per-window aggregates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.packet import FlowKey
from .records import (
    FLOW_ENTRY_BYTES,
    METER_ENTRY_BYTES,
    PORT_ENTRY_BYTES,
    PORT_STATUS_BYTES,
    EpochData,
    FlowEntry,
    PortEntry,
)


@dataclass
class SwitchReport:
    """Telemetry collected from one switch for one diagnosis event."""

    switch: str
    collect_time: int
    epochs: List[EpochData] = field(default_factory=list)
    # port -> remaining pause time (ns) at collection, 0 if unpaused
    port_status: Dict[int, int] = field(default_factory=dict)

    # -- aggregation across epochs ------------------------------------------------

    def agg_flows(self) -> Dict[Tuple[FlowKey, int], FlowEntry]:
        """Per (flow, egress port) totals over all reported epochs."""
        out: Dict[Tuple[FlowKey, int], FlowEntry] = {}
        for epoch in self.epochs:
            for key, entry in epoch.flows.items():
                existing = out.get(key)
                if existing is None:
                    out[key] = entry.copy()
                else:
                    existing.merge(entry)
        return out

    def agg_ports(self) -> Dict[int, PortEntry]:
        """Per egress-port totals over all reported epochs."""
        out: Dict[int, PortEntry] = {}
        for epoch in self.epochs:
            for port, entry in epoch.ports.items():
                existing = out.get(port)
                if existing is None:
                    out[port] = entry.copy()
                else:
                    existing.pkt_count += entry.pkt_count
                    existing.paused_count += entry.paused_count
                    existing.qdepth_sum_pkts += entry.qdepth_sum_pkts
                    existing.pause_rx_count += entry.pause_rx_count
        return out

    def agg_meters(self) -> Dict[Tuple[int, int], int]:
        """Per (ingress, egress) byte totals over all reported epochs."""
        out: Dict[Tuple[int, int], int] = {}
        for epoch in self.epochs:
            for pair, volume in epoch.meters.items():
                out[pair] = out.get(pair, 0) + volume
        return out

    def flow_paused_count(self, key: FlowKey, egress_port: Optional[int] = None) -> int:
        total = 0
        for (flow, port), entry in self.agg_flows().items():
            if flow == key and (egress_port is None or port == egress_port):
                total += entry.paused_count
        return total

    # -- size accounting (Fig 9a / Fig 14) -----------------------------------------

    def num_flow_entries(self) -> int:
        return sum(len(e.flows) for e in self.epochs)

    def num_port_entries(self) -> int:
        return sum(len(e.ports) for e in self.epochs)

    def num_meter_entries(self) -> int:
        return sum(len(e.meters) for e in self.epochs)

    def payload_bytes(self) -> int:
        """Size of the CPU-filtered report (zero slots excluded)."""
        return (
            self.num_flow_entries() * FLOW_ENTRY_BYTES
            + self.num_port_entries() * PORT_ENTRY_BYTES
            + self.num_meter_entries() * METER_ENTRY_BYTES
            + len(self.port_status) * PORT_STATUS_BYTES
        )

    @staticmethod
    def full_dump_bytes(flow_slots: int, num_ports: int, num_epochs: int) -> int:
        """Size of dumping the raw register arrays without filtering."""
        per_epoch = (
            flow_slots * FLOW_ENTRY_BYTES
            + num_ports * PORT_ENTRY_BYTES
            + num_ports * num_ports * METER_ENTRY_BYTES
        )
        return num_epochs * per_epoch + num_ports * PORT_STATUS_BYTES


def merge_reports(reports: List[SwitchReport]) -> Dict[str, SwitchReport]:
    """Index reports by switch, keeping the freshest for duplicates."""
    by_switch: Dict[str, SwitchReport] = {}
    for report in reports:
        existing = by_switch.get(report.switch)
        if existing is None or report.collect_time > existing.collect_time:
            by_switch[report.switch] = report
    return by_switch
