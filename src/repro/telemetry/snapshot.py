"""Collected telemetry reports and their aggregation/size accounting.

A :class:`SwitchReport` is what the switch CPU ships to the analyzer after a
polling packet arrives (§3.4): the per-epoch flow/port/meter registers,
filtered of empty slots, plus the instantaneous port PFC status.  The
aggregation helpers collapse the epoch dimension for the provenance builder
(Algorithm 1 runs on per-window aggregates).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim.packet import FlowKey
from .records import (
    FLOW_ENTRY_BYTES,
    METER_ENTRY_BYTES,
    PORT_ENTRY_BYTES,
    PORT_STATUS_BYTES,
    EpochData,
    FlowEntry,
    PortEntry,
)

# (hits, misses) of the lazy agg_* memoization, surfaced via PerfStats.
AGG_CACHE_STATS = [0, 0]


@dataclass
class SwitchReport:
    """Telemetry collected from one switch for one diagnosis event.

    Reports are immutable by convention once collected (the baseline
    transforms build new reports instead of mutating), which lets the
    ``agg_*`` aggregates be computed lazily once and memoized — the
    analyzer re-reads the same report for every victim of an incident.
    Callers must treat the returned dicts as read-only.
    """

    switch: str
    collect_time: int
    epochs: List[EpochData] = field(default_factory=list)
    # port -> remaining pause time (ns) at collection, 0 if unpaused
    port_status: Dict[int, int] = field(default_factory=dict)
    # Fault-injection quality markers ("stale", "truncated", "skewed"): a
    # non-empty tuple means this report's content is suspect and any
    # diagnosis consuming it must be flagged as degraded.
    faults: Tuple[str, ...] = ()
    _agg_flows: Optional[Dict] = field(default=None, init=False, repr=False, compare=False)
    _agg_ports: Optional[Dict] = field(default=None, init=False, repr=False, compare=False)
    _agg_meters: Optional[Dict] = field(default=None, init=False, repr=False, compare=False)

    # -- aggregation across epochs ------------------------------------------------

    def agg_flows(self) -> Dict[Tuple[FlowKey, int], FlowEntry]:
        """Per (flow, egress port) totals over all reported epochs."""
        if self._agg_flows is not None:
            AGG_CACHE_STATS[0] += 1
            return self._agg_flows
        AGG_CACHE_STATS[1] += 1
        out: Dict[Tuple[FlowKey, int], FlowEntry] = {}
        for epoch in self.epochs:
            for key, entry in epoch.flows.items():
                existing = out.get(key)
                if existing is None:
                    out[key] = entry.copy()
                else:
                    existing.merge(entry)
        self._agg_flows = out
        return out

    def agg_ports(self) -> Dict[int, PortEntry]:
        """Per egress-port totals over all reported epochs."""
        if self._agg_ports is not None:
            AGG_CACHE_STATS[0] += 1
            return self._agg_ports
        AGG_CACHE_STATS[1] += 1
        out: Dict[int, PortEntry] = {}
        for epoch in self.epochs:
            for port, entry in epoch.ports.items():
                existing = out.get(port)
                if existing is None:
                    out[port] = entry.copy()
                else:
                    existing.pkt_count += entry.pkt_count
                    existing.paused_count += entry.paused_count
                    existing.qdepth_sum_pkts += entry.qdepth_sum_pkts
                    existing.pause_rx_count += entry.pause_rx_count
        self._agg_ports = out
        return out

    def agg_meters(self) -> Dict[Tuple[int, int], int]:
        """Per (ingress, egress) byte totals over all reported epochs."""
        if self._agg_meters is not None:
            AGG_CACHE_STATS[0] += 1
            return self._agg_meters
        AGG_CACHE_STATS[1] += 1
        out: Dict[Tuple[int, int], int] = {}
        for epoch in self.epochs:
            for pair, volume in epoch.meters.items():
                out[pair] = out.get(pair, 0) + volume
        self._agg_meters = out
        return out

    def flow_paused_count(self, key: FlowKey, egress_port: Optional[int] = None) -> int:
        total = 0
        for (flow, port), entry in self.agg_flows().items():
            if flow == key and (egress_port is None or port == egress_port):
                total += entry.paused_count
        return total

    # -- size accounting (Fig 9a / Fig 14) -----------------------------------------

    def num_flow_entries(self) -> int:
        return sum(len(e.flows) for e in self.epochs)

    def num_port_entries(self) -> int:
        return sum(len(e.ports) for e in self.epochs)

    def num_meter_entries(self) -> int:
        return sum(len(e.meters) for e in self.epochs)

    def payload_bytes(self) -> int:
        """Size of the CPU-filtered report (zero slots excluded)."""
        return (
            self.num_flow_entries() * FLOW_ENTRY_BYTES
            + self.num_port_entries() * PORT_ENTRY_BYTES
            + self.num_meter_entries() * METER_ENTRY_BYTES
            + len(self.port_status) * PORT_STATUS_BYTES
        )

    # -- columnar wire format -------------------------------------------------------

    def to_columnar(self) -> Dict[str, Any]:
        """Pack the report into flat parallel arrays (the shipping format).

        Sweep workers return diagnosis-input reports to the parent process
        in this form: interned 5-tuples plus ``array('q')`` columns pickle
        an order of magnitude smaller/faster than per-entry dataclasses.
        Column order preserves dict insertion order, so
        :meth:`from_columnar` round-trips byte-identically.
        """
        keys: List[Tuple] = []
        key_id: Dict[FlowKey, int] = {}
        epochs = []
        for epoch in self.epochs:
            flow_cols = tuple(array("q") for _ in range(7))
            for (key, egress), entry in epoch.flows.items():
                kid = key_id.get(key)
                if kid is None:
                    kid = len(keys)
                    key_id[key] = kid
                    keys.append(
                        (key.src_ip, key.dst_ip, key.src_port, key.dst_port, key.protocol)
                    )
                for col, value in zip(
                    flow_cols,
                    (
                        kid,
                        egress,
                        entry.pkt_count,
                        entry.paused_count,
                        entry.qdepth_sum_pkts,
                        entry.byte_count,
                        entry.qdepth_paused_sum_pkts,
                    ),
                ):
                    col.append(value)
            port_cols = tuple(array("q") for _ in range(5))
            for port, entry in epoch.ports.items():
                for col, value in zip(
                    port_cols,
                    (
                        port,
                        entry.pkt_count,
                        entry.paused_count,
                        entry.qdepth_sum_pkts,
                        entry.pause_rx_count,
                    ),
                ):
                    col.append(value)
            meter_cols = tuple(array("q") for _ in range(3))
            for (ingress, egress), volume in epoch.meters.items():
                meter_cols[0].append(ingress)
                meter_cols[1].append(egress)
                meter_cols[2].append(volume)
            epochs.append(
                {
                    "n": epoch.epoch_number,
                    "flows": flow_cols,
                    "ports": port_cols,
                    "meters": meter_cols,
                }
            )
        status_cols = (array("q"), array("q"))
        for port, remaining in self.port_status.items():
            status_cols[0].append(port)
            status_cols[1].append(remaining)
        return {
            "switch": self.switch,
            "collect_time": self.collect_time,
            "keys": keys,
            "epochs": epochs,
            "port_status": status_cols,
            "faults": self.faults,
        }

    @classmethod
    def from_columnar(cls, blob: Dict[str, Any]) -> "SwitchReport":
        """Rebuild a report from :meth:`to_columnar` output, orders intact."""
        keys = [FlowKey(*fields) for fields in blob["keys"]]
        report = cls(switch=blob["switch"], collect_time=blob["collect_time"])
        for packed in blob["epochs"]:
            epoch = EpochData(epoch_number=packed["n"])
            kid_col, egress_col, pkt, paused, qdepth, byte_count, qd_paused = packed["flows"]
            for i in range(len(kid_col)):
                key = keys[kid_col[i]]
                epoch.flows[(key, egress_col[i])] = FlowEntry(
                    key=key,
                    egress_port=egress_col[i],
                    pkt_count=pkt[i],
                    paused_count=paused[i],
                    qdepth_sum_pkts=qdepth[i],
                    byte_count=byte_count[i],
                    qdepth_paused_sum_pkts=qd_paused[i],
                )
            port_col, ppkt, ppaused, pqdepth, prx = packed["ports"]
            for i in range(len(port_col)):
                epoch.ports[port_col[i]] = PortEntry(
                    port=port_col[i],
                    pkt_count=ppkt[i],
                    paused_count=ppaused[i],
                    qdepth_sum_pkts=pqdepth[i],
                    pause_rx_count=prx[i],
                )
            m_in, m_eg, m_vol = packed["meters"]
            for i in range(len(m_in)):
                epoch.meters[(m_in[i], m_eg[i])] = m_vol[i]
            report.epochs.append(epoch)
        status_ports, status_remaining = blob["port_status"]
        for i in range(len(status_ports)):
            report.port_status[status_ports[i]] = status_remaining[i]
        report.faults = tuple(blob.get("faults", ()))
        return report

    @staticmethod
    def full_dump_bytes(flow_slots: int, num_ports: int, num_epochs: int) -> int:
        """Size of dumping the raw register arrays without filtering."""
        per_epoch = (
            flow_slots * FLOW_ENTRY_BYTES
            + num_ports * PORT_ENTRY_BYTES
            + num_ports * num_ports * METER_ENTRY_BYTES
        )
        return num_epochs * per_epoch + num_ports * PORT_STATUS_BYTES


def merge_reports(reports: List[SwitchReport]) -> Dict[str, SwitchReport]:
    """Index reports by switch, keeping the freshest for duplicates."""
    by_switch: Dict[str, SwitchReport] = {}
    for report in reports:
        existing = by_switch.get(report.switch)
        if existing is None or report.collect_time > existing.collect_time:
            by_switch[report.switch] = report
    return by_switch
