"""Hawkeye's PFC-aware switch telemetry (§3.3) — columnar register plane.

One :class:`HawkeyeSwitchTelemetry` instance attaches to one simulated
switch as a :class:`~repro.sim.switch.SwitchObserver` and maintains, in the
"egress pipeline":

- a ring buffer of epochs, each holding a hash-indexed flow table
  (5-tuple match with eviction on collision), per-port counters and the
  port-pair PFC causality meters of Figure 3;
- per-port PFC status registers (paused flag + remaining pause time),
  updated when PAUSE/RESUME frames are passed into the pipeline.

Unlike the retained reference implementation
(:mod:`repro.telemetry.reference`), the registers here are stored the way
the Tofino stores them: as flat parallel ``array('q')`` columns indexed by
flow slot / port number / ``ingress * P + egress``, not as per-entry Python
objects.  Two further hardware-modeling choices make the per-packet cost
nearly free:

**Batched pending queue.**  On real hardware the register *writes* happen
at line rate in the match-action pipeline and cost the CPU nothing; only
*reads* (polls, snapshots) involve the switch CPU.  We model this by having
the enqueue hook append one small tuple to the epoch's pending queue and
defer all register arithmetic to the first CPU-visible *read* of that
epoch.  An epoch that is overwritten by ring wrap-around before any read
discards its pending queue unprocessed — exactly the information loss the
hardware ring has, at none of the cost.

**Lazy memoized materialization.**  :class:`~repro.telemetry.records.EpochData`
(with its :class:`FlowEntry`/:class:`PortEntry` objects) is only built when
a snapshot or query needs it, and is memoized per ``(epoch, version)`` so
repeated collector/poller reads of an idle epoch are O(1).  Whole snapshots
are additionally memoized by ``(epoch_number, lookback, bank versions)``.

Semantics are byte-identical to the reference plane — eviction order, XOR
match and wrap-around behavior included — except for one documented
deviation: :attr:`evictions` cannot count evictions inside epochs that were
discarded unread (their pending queues are dropped wholesale), mirroring
the hardware, where the controller never hears about entries displaced in
an epoch it never read.

Deviation noted for fidelity: the hardware compares only an 8-bit epoch ID
to detect ring wrap-around; we store the full epoch number, which is
equivalent unless an epoch sees no traffic for exactly ``2**id_bits`` ring
cycles (impossible in the paper's windows of interest).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.packet import DATA_PRIORITY, FlowKey, Packet, pause_quanta_to_ns
from ..sim.switch import Switch, SwitchObserver
from . import vectorflush
from .epoch import EpochScheme
from .records import EpochData, FlowEntry, PortEntry
from .snapshot import SwitchReport

# Flush a pending queue early once it grows past this many events so epoch
# memory stays bounded even for pathologically long epochs.  Flushing is
# transparent: processing a prefix of the queue early never changes the
# registers' final contents or ordering.
_PENDING_FLUSH_LIMIT = 1 << 16


@dataclass
class TelemetryConfig:
    """Sizing knobs for the on-switch telemetry (Fig 13's axes)."""

    scheme: EpochScheme = None  # type: ignore[assignment]
    flow_slots: int = 4096

    def __post_init__(self) -> None:
        if self.scheme is None:
            self.scheme = EpochScheme()


class _EpochBank:
    """One ring-buffer epoch: flat register columns plus a pending queue.

    Columns (all ``array('q')``, allocated lazily at the first flush):

    ===================  ==========================================================
    ``slot_kid``         flow-table key register: interned key id, ``-1`` if empty
    ``slot_egress``      flow-table egress-port register (set at install)
    ``slot_pkt``         per-slot packet counter
    ``slot_paused``      per-slot paused-packet counter
    ``slot_qdepth``      per-slot queue-depth accumulator (pkts)
    ``slot_bytes``       per-slot byte counter
    ``slot_qd_paused``   per-slot queue-depth accumulator over paused packets
    ``port_pkt/paused/qdepth/pause_rx``  per-egress-port counters, indexed by port
    ``meter``            causality meters, flat ``ingress * P + egress`` index
    ===================  ==========================================================

    ``occupied`` / ``port_touched`` / ``meter_touched`` record first-touch
    order so materialization can filter zero registers without scanning the
    arrays and can reproduce the reference's dict insertion orders exactly.
    ``version`` increments on every flush/reset; it keys the memoized
    ``mat`` (the :class:`EpochData` materialization of this bank).
    """

    __slots__ = (
        "epoch_number",
        "pending",
        "version",
        "slot_kid",
        "slot_egress",
        "slot_pkt",
        "slot_paused",
        "slot_qdepth",
        "slot_bytes",
        "slot_qd_paused",
        "occupied",
        "evicted",
        "port_pkt",
        "port_paused",
        "port_qdepth",
        "port_pause_rx",
        "port_touched",
        "meter",
        "meter_touched",
        "mat",
        "mat_version",
    )

    def __init__(self) -> None:
        self.epoch_number = -1
        self.pending: List[tuple] = []
        self.version = 0
        self.slot_kid: Optional[array] = None
        self.slot_egress: Optional[array] = None
        self.slot_pkt: Optional[array] = None
        self.slot_paused: Optional[array] = None
        self.slot_qdepth: Optional[array] = None
        self.slot_bytes: Optional[array] = None
        self.slot_qd_paused: Optional[array] = None
        self.occupied: List[int] = []
        self.evicted: List[tuple] = []
        self.port_pkt: Optional[array] = None
        self.port_paused: Optional[array] = None
        self.port_qdepth: Optional[array] = None
        self.port_pause_rx: Optional[array] = None
        self.port_touched: List[int] = []
        self.meter: Optional[array] = None
        self.meter_touched: List[int] = []
        self.mat: Optional[EpochData] = None
        self.mat_version = -1


class HawkeyeSwitchTelemetry(SwitchObserver):
    """Per-switch telemetry recorder with PFC visibility and causality."""

    def __init__(self, switch_name: str, config: Optional[TelemetryConfig] = None) -> None:
        self.switch_name = switch_name
        self.config = config if config is not None else TelemetryConfig()
        self.scheme = self.config.scheme
        self._flow_slots = self.config.flow_slots
        self._shift = self.scheme.shift
        self._num_epochs = self.scheme.num_epochs
        self._ring_mask = self._num_epochs - 1
        self._banks = [_EpochBank() for _ in range(self._num_epochs)]
        # Key interning: FlowKey -> compact key id, with the hash slot
        # precomputed per key (the CRC unit in front of the flow table).
        self._key_of: Dict[FlowKey, int] = {}
        self._keys: List[FlowKey] = []
        self._key_slot: List[int] = []
        # Port count P, captured from the switch on the first hook call;
        # sizes the per-port columns and the flat P*P meter array.
        self._num_ports: Optional[int] = None
        self._neg1_template: Optional[array] = None
        # Port PFC status registers: port -> pause expiry timestamp (ns).
        self._pause_until: Dict[int, int] = {}
        self.pause_frames_seen = 0
        # Evictions observed while flushing pending queues.  Unlike the
        # reference plane this misses evictions inside epochs discarded
        # unread (ring wrap-around drops their pending queues wholesale).
        self.evictions_flushed = 0
        self.flushed_events = 0
        self.discarded_events = 0
        # Cache instrumentation (surfaced through PerfStats.caches).
        self.snapshot_cache_hits = 0
        self.snapshot_cache_misses = 0
        self.epoch_cache_hits = 0
        self.epoch_cache_misses = 0
        # Live-bank membership memo: changes only when time advances or a
        # bank is reset, tracked by a generation counter.
        self._reset_gen = 0
        self._live_cache: Optional[tuple] = None
        self._snap_cache: Optional[tuple] = None

    # -- observer hooks -------------------------------------------------------

    def on_egress_enqueue(
        self,
        switch: Switch,
        time_ns: int,
        pkt: Packet,
        egress_port: int,
        ingress_port: Optional[int],
        queue_depth_pkts: int,
        queue_bytes: int,
        port_paused: bool,
    ) -> None:
        if pkt.priority != DATA_PRIORITY or pkt.flow is None:
            return  # control traffic is not part of flow telemetry
        if self._num_ports is None:
            self._num_ports = max(switch.ports) + 1
        number = time_ns >> self._shift
        bank = self._banks[number & self._ring_mask]
        if bank.epoch_number != number:
            self._reset_bank(bank, number)
        pending = bank.pending
        pending.append(
            (
                pkt.flow,
                egress_port,
                ingress_port,
                queue_depth_pkts,
                pkt.size,
                1 if port_paused else 0,
            )
        )
        if len(pending) >= _PENDING_FLUSH_LIMIT:
            self._flush(bank)

    def on_pfc_received(
        self, switch: Switch, time_ns: int, port: int, priority: int, quanta: int
    ) -> None:
        self.pause_frames_seen += 1
        bandwidth = switch.ports[port].bandwidth
        if quanta > 0:
            # The status register is written eagerly (last write wins, so it
            # commutes with the pending queue); the per-epoch PAUSE counter
            # rides the same queue as enqueues to preserve total event order.
            self._pause_until[port] = time_ns + pause_quanta_to_ns(quanta, bandwidth)
            if self._num_ports is None:
                self._num_ports = max(switch.ports) + 1
            number = time_ns >> self._shift
            bank = self._banks[number & self._ring_mask]
            if bank.epoch_number != number:
                self._reset_bank(bank, number)
            bank.pending.append((None, port))
        else:
            self._pause_until[port] = time_ns

    # -- internal -----------------------------------------------------------------

    def _reset_bank(self, bank: _EpochBank, epoch_number: int) -> None:
        """Ring wrap-around: a newer epoch number reclaims this bank.

        Events still pending are discarded unprocessed — the hardware never
        spent CPU on an epoch nobody read.  Register columns are cleared
        lazily via the touch lists, so reset is O(touched), not O(capacity).
        """
        if bank.pending:
            self.discarded_events += len(bank.pending)
            bank.pending.clear()
        bank.epoch_number = epoch_number
        bank.version += 1
        bank.mat = None
        bank.mat_version = -1
        if bank.slot_kid is not None:
            bank.slot_kid[:] = self._neg1_template  # type: ignore[index]
            bank.occupied.clear()
            bank.evicted.clear()
            port_pkt = bank.port_pkt
            port_paused = bank.port_paused
            port_qdepth = bank.port_qdepth
            port_pause_rx = bank.port_pause_rx
            for p in bank.port_touched:
                port_pkt[p] = 0
                port_paused[p] = 0
                port_qdepth[p] = 0
                port_pause_rx[p] = 0
            bank.port_touched.clear()
            meter = bank.meter
            for mi in bank.meter_touched:
                meter[mi] = 0
            bank.meter_touched.clear()
        self._reset_gen += 1

    def _allocate(self, bank: _EpochBank) -> None:
        n = self._flow_slots
        if self._neg1_template is None:
            self._neg1_template = array("q", [-1]) * n
        zeros = bytes(8 * n)
        bank.slot_kid = array("q", self._neg1_template)
        bank.slot_egress = array("q", zeros)
        bank.slot_pkt = array("q", zeros)
        bank.slot_paused = array("q", zeros)
        bank.slot_qdepth = array("q", zeros)
        bank.slot_bytes = array("q", zeros)
        bank.slot_qd_paused = array("q", zeros)
        num_ports = self._num_ports or 1
        port_zeros = bytes(8 * num_ports)
        bank.port_pkt = array("q", port_zeros)
        bank.port_paused = array("q", port_zeros)
        bank.port_qdepth = array("q", port_zeros)
        bank.port_pause_rx = array("q", port_zeros)
        bank.meter = array("q", bytes(8 * num_ports * num_ports))

    def _grow_ports(self, new_num_ports: int) -> None:
        """Grow the per-port and meter columns of every allocated bank.

        Only reachable when telemetry is driven directly (tests) with port
        numbers beyond the switch's initial port map; real switches have a
        fixed port count.  Meter entries are remapped from the old flat
        index base to the new one.
        """
        old = self._num_ports or 1
        self._num_ports = new_num_ports
        for bank in self._banks:
            if bank.port_pkt is None:
                continue
            pad = array("q", bytes(8 * (new_num_ports - len(bank.port_pkt))))
            bank.port_pkt.extend(pad)
            bank.port_paused.extend(pad)
            bank.port_qdepth.extend(pad)
            bank.port_pause_rx.extend(pad)
            new_meter = array("q", bytes(8 * new_num_ports * new_num_ports))
            new_touched = []
            for mi in bank.meter_touched:
                ingress, egress = divmod(mi, old)
                new_mi = ingress * new_num_ports + egress
                new_meter[new_mi] = bank.meter[mi]
                new_touched.append(new_mi)
            bank.meter = new_meter
            bank.meter_touched = new_touched
            bank.version += 1
        self._reset_gen += 1

    def _flush(self, bank: _EpochBank) -> None:
        """Drain the pending queue into the register columns, in order.

        Long queues take the numpy scatter-add path
        (:mod:`repro.telemetry.vectorflush`), which is bit-identical to
        the scalar loop below; short queues stay scalar (lower constant),
        and the scalar loop is also the fallback when numpy is missing.
        """
        pending = bank.pending
        if not pending:
            return
        if bank.slot_kid is None:
            self._allocate(bank)
        if (
            vectorflush.HAVE_NUMPY
            and len(pending) >= vectorflush.MIN_VECTOR_EVENTS
        ):
            vectorflush.flush_pending(self, bank)
            return
        num_ports = self._num_ports  # type: ignore[assignment]
        key_of_get = self._key_of.get
        key_of = self._key_of
        keys = self._keys
        key_slot = self._key_slot
        flow_slots = self._flow_slots
        slot_kid = bank.slot_kid
        slot_egress = bank.slot_egress
        slot_pkt = bank.slot_pkt
        slot_paused = bank.slot_paused
        slot_qdepth = bank.slot_qdepth
        slot_bytes = bank.slot_bytes
        slot_qd_paused = bank.slot_qd_paused
        occupied = bank.occupied
        evicted = bank.evicted
        port_pkt = bank.port_pkt
        port_paused_arr = bank.port_paused
        port_qdepth = bank.port_qdepth
        port_pause_rx = bank.port_pause_rx
        port_touched = bank.port_touched
        meter = bank.meter
        meter_touched = bank.meter_touched
        evictions = 0
        for ev in pending:
            flow = ev[0]
            if flow is None:
                port = ev[1]
                if port >= num_ports:
                    self._grow_ports(port + 1)
                    num_ports = self._num_ports
                    port_pkt = bank.port_pkt
                    port_paused_arr = bank.port_paused
                    port_qdepth = bank.port_qdepth
                    port_pause_rx = bank.port_pause_rx
                    meter = bank.meter
                    meter_touched = bank.meter_touched
                if port_pkt[port] == 0 and port_pause_rx[port] == 0:
                    port_touched.append(port)
                port_pause_rx[port] += 1
                continue
            _, egress, ingress, qdepth, size, paused = ev
            if egress >= num_ports or (ingress is not None and ingress >= num_ports):
                self._grow_ports(max(egress, ingress if ingress is not None else 0) + 1)
                num_ports = self._num_ports
                port_pkt = bank.port_pkt
                port_paused_arr = bank.port_paused
                port_qdepth = bank.port_qdepth
                port_pause_rx = bank.port_pause_rx
                meter = bank.meter
                meter_touched = bank.meter_touched
            kid = key_of_get(flow)
            if kid is None:
                kid = len(keys)
                key_of[flow] = kid
                keys.append(flow)
                key_slot.append(flow.stable_hash() % flow_slots)
            slot = key_slot[kid]
            cur = slot_kid[slot]
            if cur != kid:
                if cur >= 0:
                    # Collision: displace the resident entry to the evicted
                    # list ("stored at the controller"), preserving order.
                    evicted.append(
                        (
                            cur,
                            slot_egress[slot],
                            slot_pkt[slot],
                            slot_paused[slot],
                            slot_qdepth[slot],
                            slot_bytes[slot],
                            slot_qd_paused[slot],
                        )
                    )
                    evictions += 1
                else:
                    occupied.append(slot)
                slot_kid[slot] = kid
                slot_egress[slot] = egress
                slot_pkt[slot] = 1
                slot_paused[slot] = paused
                slot_qdepth[slot] = qdepth
                slot_bytes[slot] = size
                slot_qd_paused[slot] = qdepth if paused else 0
            else:
                slot_pkt[slot] += 1
                slot_paused[slot] += paused
                slot_qdepth[slot] += qdepth
                slot_bytes[slot] += size
                if paused:
                    slot_qd_paused[slot] += qdepth
            if port_pkt[egress] == 0 and port_pause_rx[egress] == 0:
                port_touched.append(egress)
            port_pkt[egress] += 1
            port_paused_arr[egress] += paused
            port_qdepth[egress] += qdepth
            if ingress is not None:
                mi = ingress * num_ports + egress
                if meter[mi] == 0:
                    meter_touched.append(mi)
                meter[mi] += size
        self.evictions_flushed += evictions
        self.flushed_events += len(pending)
        pending.clear()
        bank.version += 1

    def _live_banks(self, now_ns: int, lookback: int) -> List[_EpochBank]:
        """The most recent ``lookback`` epochs still present in the ring.

        Hardware semantics: registers are reset lazily, on the first *write*
        of a newer epoch — so an epoch that saw the last traffic before the
        network froze (e.g. a forming deadlock) stays readable indefinitely.
        The CPU reads whatever the ring holds; we return the newest
        ``lookback`` retained epochs no older than ``now``, oldest first.
        Membership is memoized until time advances or a bank is reset.
        """
        now_number = now_ns >> self._shift
        lookback = min(lookback, self._num_epochs)
        cached = self._live_cache
        if (
            cached is not None
            and cached[0] == now_number
            and cached[1] == lookback
            and cached[2] == self._reset_gen
        ):
            return cached[3]
        banks = sorted(
            (b for b in self._banks if 0 <= b.epoch_number <= now_number),
            key=lambda b: b.epoch_number,
        )
        if lookback < len(banks):
            banks = banks[len(banks) - lookback :]
        self._live_cache = (now_number, lookback, self._reset_gen, banks)
        return banks

    def _materialize(self, bank: _EpochBank) -> EpochData:
        """Build (or reuse) the :class:`EpochData` view of one bank.

        Entry order matches the reference exactly: evicted entries first in
        eviction order, then occupied slots in ascending slot index; ports
        and meters in first-touch order.
        """
        if bank.pending:
            self._flush(bank)
        if bank.mat is not None and bank.mat_version == bank.version:
            self.epoch_cache_hits += 1
            return bank.mat
        self.epoch_cache_misses += 1
        epoch = EpochData(epoch_number=bank.epoch_number)
        keys = self._keys
        flows = epoch.flows
        if bank.slot_kid is not None:
            for kid, egress, pkt, paused, qdepth, byte_count, qd_paused in bank.evicted:
                key = (keys[kid], egress)
                existing = flows.get(key)
                if existing is None:
                    flows[key] = FlowEntry(
                        key=keys[kid],
                        egress_port=egress,
                        pkt_count=pkt,
                        paused_count=paused,
                        qdepth_sum_pkts=qdepth,
                        byte_count=byte_count,
                        qdepth_paused_sum_pkts=qd_paused,
                    )
                else:
                    existing.pkt_count += pkt
                    existing.paused_count += paused
                    existing.qdepth_sum_pkts += qdepth
                    existing.byte_count += byte_count
                    existing.qdepth_paused_sum_pkts += qd_paused
            occupied = sorted(bank.occupied)
            if vectorflush.HAVE_NUMPY and len(occupied) >= 32:
                # Columnar scan: seven vector gathers instead of seven
                # ``array`` subscripts per occupied slot.
                columns = zip(*vectorflush.gather_slots(bank, occupied))
            else:
                slot_kid = bank.slot_kid
                slot_egress = bank.slot_egress
                slot_pkt = bank.slot_pkt
                slot_paused = bank.slot_paused
                slot_qdepth = bank.slot_qdepth
                slot_bytes = bank.slot_bytes
                slot_qd_paused = bank.slot_qd_paused
                columns = (
                    (
                        slot_kid[slot],
                        slot_egress[slot],
                        slot_pkt[slot],
                        slot_paused[slot],
                        slot_qdepth[slot],
                        slot_bytes[slot],
                        slot_qd_paused[slot],
                    )
                    for slot in occupied
                )
            for kid, egress, pkt, paused, qdepth, byte_count, qd_paused in columns:
                key = (keys[kid], egress)
                existing = flows.get(key)
                if existing is None:
                    flows[key] = FlowEntry(
                        key=keys[kid],
                        egress_port=egress,
                        pkt_count=pkt,
                        paused_count=paused,
                        qdepth_sum_pkts=qdepth,
                        byte_count=byte_count,
                        qdepth_paused_sum_pkts=qd_paused,
                    )
                else:
                    existing.pkt_count += pkt
                    existing.paused_count += paused
                    existing.qdepth_sum_pkts += qdepth
                    existing.byte_count += byte_count
                    existing.qdepth_paused_sum_pkts += qd_paused
            port_pkt = bank.port_pkt
            port_paused = bank.port_paused
            port_qdepth = bank.port_qdepth
            port_pause_rx = bank.port_pause_rx
            ports = epoch.ports
            for port in bank.port_touched:
                ports[port] = PortEntry(
                    port=port,
                    pkt_count=port_pkt[port],
                    paused_count=port_paused[port],
                    qdepth_sum_pkts=port_qdepth[port],
                    pause_rx_count=port_pause_rx[port],
                )
            meter = bank.meter
            num_ports = self._num_ports
            meters = epoch.meters
            for mi in bank.meter_touched:
                meters[divmod(mi, num_ports)] = meter[mi]
        bank.mat = epoch
        bank.mat_version = bank.version
        return epoch

    # -- counters -------------------------------------------------------------------

    @property
    def evictions(self) -> int:
        """Evictions observed so far (flushes live pending queues).

        Documented deviation from the reference: evictions inside epochs
        discarded unread are not counted — the controller never saw them.
        """
        for bank in self._banks:
            if bank.pending:
                self._flush(bank)
        return self.evictions_flushed

    # -- line-rate queries (used by the in-data-plane causality analysis) ----------

    def port_paused_num(self, port: int, now_ns: int, lookback: Optional[int] = None) -> int:
        """Paused-packet count at an egress port over recent epochs."""
        lookback = lookback if lookback is not None else self._num_epochs
        total = 0
        for bank in self._live_banks(now_ns, lookback):
            if bank.pending:
                self._flush(bank)
            arr = bank.port_paused
            if arr is not None and port < len(arr):
                total += arr[port]
        return total

    def flow_paused_num(self, key: FlowKey, now_ns: int, lookback: Optional[int] = None) -> int:
        """Paused-packet count for one flow over recent epochs (all its slots)."""
        lookback = lookback if lookback is not None else self._num_epochs
        total = 0
        for bank in self._live_banks(now_ns, lookback):
            if bank.pending:
                self._flush(bank)
        kid = self._key_of.get(key)  # interning happens at flush time
        if kid is None:
            return 0
        slot = self._key_slot[kid]
        for bank in self._live_banks(now_ns, lookback):
            if bank.slot_kid is None:
                continue
            if bank.slot_kid[slot] == kid:
                total += bank.slot_paused[slot]
            for ev in bank.evicted:
                if ev[0] == kid:
                    total += ev[3]
        return total

    def meter_volume(
        self, ingress_port: int, egress_port: int, now_ns: int, lookback: Optional[int] = None
    ) -> int:
        """Causality meter volume from ``ingress_port`` to ``egress_port``."""
        lookback = lookback if lookback is not None else self._num_epochs
        total = 0
        num_ports = self._num_ports
        for bank in self._live_banks(now_ns, lookback):
            if bank.pending:
                self._flush(bank)
                num_ports = self._num_ports
            if (
                bank.meter is not None
                and ingress_port < num_ports
                and egress_port < num_ports
            ):
                total += bank.meter[ingress_port * num_ports + egress_port]
        return total

    def port_pause_rx(self, port: int, now_ns: int, lookback: Optional[int] = None) -> int:
        """PAUSE frames received at ``port`` over recent epochs."""
        lookback = lookback if lookback is not None else self._num_epochs
        total = 0
        for bank in self._live_banks(now_ns, lookback):
            if bank.pending:
                self._flush(bank)
            arr = bank.port_pause_rx
            if arr is not None and port < len(arr):
                total += arr[port]
        return total

    def port_is_paused(self, port: int, now_ns: int) -> bool:
        return self._pause_until.get(port, 0) > now_ns

    def remaining_pause_ns(self, port: int, now_ns: int) -> int:
        return max(0, self._pause_until.get(port, 0) - now_ns)

    def port_pause_evidence(
        self, port: int, now_ns: int, lookback: Optional[int] = None
    ) -> bool:
        """Any PFC evidence at ``port``: paused enqueues, an asserted status
        register, or PAUSE frames received during the retained epochs.

        Equivalent to ``port_paused_num() > 0 or port_is_paused() or
        port_pause_rx() > 0`` but walks the live banks once.
        """
        if self._pause_until.get(port, 0) > now_ns:
            return True
        lookback = lookback if lookback is not None else self._num_epochs
        for bank in self._live_banks(now_ns, lookback):
            if bank.pending:
                self._flush(bank)
            paused = bank.port_paused
            if paused is not None and port < len(paused):
                if paused[port] > 0 or bank.port_pause_rx[port] > 0:
                    return True
        return False

    # -- collection -----------------------------------------------------------------

    def snapshot(self, now_ns: int, lookback: Optional[int] = None) -> SwitchReport:
        """Materialize the recent epochs as a report (what the CPU reads).

        Evicted flow entries were already "stored at the controller" when
        they were displaced, so they are merged back into their epoch here.
        Epoch materializations are memoized per bank version and the whole
        epoch list per ``(epoch_number, lookback, versions)``, so repeated
        reads of an idle window are O(1).
        """
        lookback = lookback if lookback is not None else self._num_epochs
        now_number = now_ns >> self._shift
        live = self._live_banks(now_ns, lookback)
        for bank in live:
            if bank.pending:
                self._flush(bank)
        snap_key = (
            now_number,
            lookback,
            tuple(bank.epoch_number for bank in live),
            tuple(bank.version for bank in live),
        )
        cached = self._snap_cache
        if cached is not None and cached[0] == snap_key:
            self.snapshot_cache_hits += 1
            epochs = cached[1]
        else:
            self.snapshot_cache_misses += 1
            epochs = [self._materialize(bank) for bank in live]
            self._snap_cache = (snap_key, epochs)
        report = SwitchReport(switch=self.switch_name, collect_time=now_ns)
        report.epochs = list(epochs)
        report.port_status = {
            port: max(0, until - now_ns) for port, until in self._pause_until.items()
        }
        return report


class HawkeyeDeployment:
    """Deploys Hawkeye telemetry on (a subset of) a network's switches.

    Supports the partial-deployment discussion of §5 via ``switches``.
    """

    def __init__(self, network, config: Optional[TelemetryConfig] = None, switches=None):
        self.network = network
        self.config = config if config is not None else TelemetryConfig()
        names = switches if switches is not None else list(network.switches)
        self.telemetry: Dict[str, HawkeyeSwitchTelemetry] = {}
        for name in names:
            telem = HawkeyeSwitchTelemetry(name, self.config)
            network.switches[name].add_observer(telem)
            self.telemetry[name] = telem

    def for_switch(self, name: str) -> HawkeyeSwitchTelemetry:
        return self.telemetry[name]

    def __contains__(self, name: str) -> bool:
        return name in self.telemetry

    def cache_counters(self) -> Dict[str, Tuple[int, int]]:
        """Aggregate (hits, misses) for the snapshot/epoch caches."""
        snap_h = snap_m = epoch_h = epoch_m = 0
        for telem in self.telemetry.values():
            snap_h += telem.snapshot_cache_hits
            snap_m += telem.snapshot_cache_misses
            epoch_h += telem.epoch_cache_hits
            epoch_m += telem.epoch_cache_misses
        return {
            "telemetry_snapshot": (snap_h, snap_m),
            "telemetry_epoch_materialize": (epoch_h, epoch_m),
        }
