"""numpy-vectorized register flush and flow-table scan for Hawkeye telemetry.

:meth:`HawkeyeSwitchTelemetry._flush` drains an epoch's pending event
queue into flat ``array('q')`` register columns.  The scalar loop costs
~15 Python bytecode dispatches per packet; at fleet scale (K=16
fat-trees, hundreds of switches) the flush dominates telemetry CPU.
This module replaces it with numpy scatter-adds over zero-copy views of
the same columns — results are **bit-identical** to the scalar path,
eviction order and first-touch orders included:

- per-port counters and the causality meters are plain commutative
  scatter-adds (``np.add.at``), so event order is irrelevant;
- first-touch orders (``port_touched``/``meter_touched``) depend only on
  the *first* event index per register with a zero pre-flush value —
  recovered via ``np.unique(..., return_index=True)``;
- the flow table is order-sensitive only where the *resident key of a
  slot changes* (install/evict).  Consecutive events of one key on one
  slot — the overwhelming majority under any real traffic — form a run
  whose counter contributions commute.  Runs are found vectorially
  (stable sort by slot, boundaries where slot or key changes), summed
  with ``np.add.at`` keyed by run id, and only the run *starts* are
  replayed through the scalar install/evict logic in ascending event
  order, which reproduces the eviction list byte-for-byte.

The module degrades gracefully: when numpy is unavailable ``HAVE_NUMPY``
is False and the telemetry plane keeps using its pure-Python loop.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, List

if os.environ.get("REPRO_NO_NUMPY"):  # CI scalar-fallback leg
    _np = None
else:
    try:  # pragma: no cover - exercised implicitly by every flush
        import numpy as _np
    except ImportError:  # pragma: no cover - numpy-less fallback environment
        _np = None

if TYPE_CHECKING:  # pragma: no cover
    from .hawkeye import HawkeyeSwitchTelemetry, _EpochBank

HAVE_NUMPY = _np is not None

# Below this many pending events the scalar loop wins: the vector path
# pays ~25 numpy-call overheads regardless of queue length.
MIN_VECTOR_EVENTS = 192


def _view(column) -> "_np.ndarray":
    """Writable int64 view over an ``array('q')`` column (zero copy)."""
    return _np.frombuffer(column, dtype=_np.int64)


def flush_pending(telem: "HawkeyeSwitchTelemetry", bank: "_EpochBank") -> None:
    """Vectorized equivalent of the scalar ``_flush`` body.

    The caller guarantees ``bank.pending`` is non-empty and the bank's
    columns are allocated.  Counter updates, touch lists, interning and
    eviction bookkeeping all land exactly as the scalar loop would leave
    them.
    """
    pending = bank.pending
    data: List[tuple] = []
    pause_ports: List[int] = []
    for ev in pending:
        if ev[0] is None:
            pause_ports.append(ev[1])
        else:
            data.append(ev)

    # Grow the port space once, up front, if any event references a port
    # beyond the current map.  The scalar path grows mid-stream at the
    # offending event; growing earlier is state-identical (growth only
    # pads and remaps, it never drops), and lets every scatter below
    # target the final geometry.
    max_port = -1
    if pause_ports:
        max_port = max(pause_ports)
    for ev in data:
        if ev[1] > max_port:
            max_port = ev[1]
        if ev[2] is not None and ev[2] > max_port:
            max_port = ev[2]
    if max_port >= telem._num_ports:
        telem._grow_ports(max_port + 1)
    num_ports = telem._num_ports

    port_pkt = _view(bank.port_pkt)
    port_paused = _view(bank.port_paused)
    port_qdepth = _view(bank.port_qdepth)
    port_pause_rx = _view(bank.port_pause_rx)
    meter = _view(bank.meter)

    # Pre-flush zero-ness decides first-touch membership for both lists.
    port_pre_zero = (port_pkt + port_pause_rx) == 0
    meter_pre_zero = meter == 0

    # -- per-port counters (commutative scatter-adds) -----------------------
    touch_ports: List["_np.ndarray"] = []
    touch_index: List["_np.ndarray"] = []
    if data:
        egress = _np.fromiter((ev[1] for ev in data), _np.int64, len(data))
        paused = _np.fromiter((ev[5] for ev in data), _np.int64, len(data))
        qdepth = _np.fromiter((ev[3] for ev in data), _np.int64, len(data))
        size = _np.fromiter((ev[4] for ev in data), _np.int64, len(data))
        _np.add.at(port_pkt, egress, 1)
        _np.add.at(port_paused, egress, paused)
        _np.add.at(port_qdepth, egress, qdepth)
    if pause_ports:
        rx = _np.asarray(pause_ports, dtype=_np.int64)
        _np.add.at(port_pause_rx, rx, 1)

    # First-touch order: first event index per port across data and PAUSE
    # events in original queue order.  Event index within ``pending``
    # (not within ``data``) preserves the interleaving.
    if data or pause_ports:
        all_ports = _np.fromiter(
            (ev[1] for ev in pending), _np.int64, len(pending)
        )
        uniq, first = _np.unique(all_ports, return_index=True)
        fresh = port_pre_zero[uniq]
        order = _np.argsort(first[fresh], kind="stable")
        bank.port_touched.extend(int(p) for p in uniq[fresh][order])

    # -- causality meters ---------------------------------------------------
    if data:
        has_ingress = _np.fromiter(
            (ev[2] is not None for ev in data), _np.bool_, len(data)
        )
        if has_ingress.any():
            ingress = _np.fromiter(
                (ev[2] if ev[2] is not None else 0 for ev in data),
                _np.int64,
                len(data),
            )
            mi = (ingress * num_ports + egress)[has_ingress]
            _np.add.at(meter, mi, size[has_ingress])
            uniq_mi, first_mi = _np.unique(mi, return_index=True)
            fresh_mi = meter_pre_zero[uniq_mi]
            order_mi = _np.argsort(first_mi[fresh_mi], kind="stable")
            bank.meter_touched.extend(int(m) for m in uniq_mi[fresh_mi][order_mi])

    # -- flow table: run decomposition --------------------------------------
    if data:
        key_of = telem._key_of
        key_of_get = key_of.get
        keys = telem._keys
        key_slot = telem._key_slot
        flow_slots = telem._flow_slots
        kid_list: List[int] = []
        for ev in data:
            flow = ev[0]
            kid = key_of_get(flow)
            if kid is None:
                kid = len(keys)
                key_of[flow] = kid
                keys.append(flow)
                key_slot.append(flow.stable_hash() % flow_slots)
            kid_list.append(kid)
        kid_arr = _np.asarray(kid_list, dtype=_np.int64)
        slot_arr = _np.fromiter(
            (key_slot[k] for k in kid_list), _np.int64, len(kid_list)
        )
        qd_paused = qdepth * paused

        by_slot = _np.argsort(slot_arr, kind="stable")
        s_sorted = slot_arr[by_slot]
        k_sorted = kid_arr[by_slot]
        new_run = _np.empty(len(by_slot), dtype=_np.bool_)
        new_run[0] = True
        new_run[1:] = (s_sorted[1:] != s_sorted[:-1]) | (
            k_sorted[1:] != k_sorted[:-1]
        )
        run_id = _np.cumsum(new_run) - 1
        n_runs = int(run_id[-1]) + 1

        run_pkt = _np.bincount(run_id, minlength=n_runs)
        run_paused = _np.zeros(n_runs, dtype=_np.int64)
        run_qdepth = _np.zeros(n_runs, dtype=_np.int64)
        run_bytes = _np.zeros(n_runs, dtype=_np.int64)
        run_qd_paused = _np.zeros(n_runs, dtype=_np.int64)
        _np.add.at(run_paused, run_id, paused[by_slot])
        _np.add.at(run_qdepth, run_id, qdepth[by_slot])
        _np.add.at(run_bytes, run_id, size[by_slot])
        _np.add.at(run_qd_paused, run_id, qd_paused[by_slot])

        starts = _np.flatnonzero(new_run)
        run_slot = s_sorted[starts]
        run_kid = k_sorted[starts]
        run_start_event = by_slot[starts]  # index into ``data``
        run_egress = egress[run_start_event]

        # Install/evict at run starts, replayed in true event order: this
        # is the only order-sensitive residue, and runs are few.
        slot_kid = bank.slot_kid
        slot_egress = bank.slot_egress
        slot_pkt = bank.slot_pkt
        slot_paused = bank.slot_paused
        slot_qdepth = bank.slot_qdepth
        slot_bytes = bank.slot_bytes
        slot_qd_paused = bank.slot_qd_paused
        occupied = bank.occupied
        evicted = bank.evicted
        evictions = 0
        for r in _np.argsort(run_start_event, kind="stable"):
            s = int(run_slot[r])
            k = int(run_kid[r])
            cur = slot_kid[s]
            if cur != k:
                if cur >= 0:
                    evicted.append(
                        (
                            cur,
                            slot_egress[s],
                            slot_pkt[s],
                            slot_paused[s],
                            slot_qdepth[s],
                            slot_bytes[s],
                            slot_qd_paused[s],
                        )
                    )
                    evictions += 1
                else:
                    occupied.append(s)
                slot_kid[s] = k
                slot_egress[s] = int(run_egress[r])
                slot_pkt[s] = int(run_pkt[r])
                slot_paused[s] = int(run_paused[r])
                slot_qdepth[s] = int(run_qdepth[r])
                slot_bytes[s] = int(run_bytes[r])
                slot_qd_paused[s] = int(run_qd_paused[r])
            else:
                slot_pkt[s] += int(run_pkt[r])
                slot_paused[s] += int(run_paused[r])
                slot_qdepth[s] += int(run_qdepth[r])
                slot_bytes[s] += int(run_bytes[r])
                slot_qd_paused[s] += int(run_qd_paused[r])
        telem.evictions_flushed += evictions

    telem.flushed_events += len(pending)
    pending.clear()
    bank.version += 1


def gather_slots(bank: "_EpochBank", slots: List[int]):
    """Columnar flow-table scan: all registers of ``slots``, one gather each.

    Returns ``(kid, egress, pkt, paused, qdepth, bytes, qd_paused)`` as
    parallel Python lists in ``slots`` order — what materialization needs
    to build :class:`~repro.telemetry.records.FlowEntry` objects without
    seven individual ``array`` subscripts per slot.
    """
    idx = _np.asarray(slots, dtype=_np.int64)
    return (
        _view(bank.slot_kid)[idx].tolist(),
        _view(bank.slot_egress)[idx].tolist(),
        _view(bank.slot_pkt)[idx].tolist(),
        _view(bank.slot_paused)[idx].tolist(),
        _view(bank.slot_qdepth)[idx].tolist(),
        _view(bank.slot_bytes)[idx].tolist(),
        _view(bank.slot_qd_paused)[idx].tolist(),
    )
