"""Hawkeye's PFC-aware, epoch-based switch telemetry (§3.3)."""

from .epoch import EpochScheme, nearest_power_of_two_shift
from .hawkeye import HawkeyeDeployment, HawkeyeSwitchTelemetry, TelemetryConfig
from .reference import ReferenceSwitchTelemetry
from .records import (
    FLOW_ENTRY_BYTES,
    METER_ENTRY_BYTES,
    PORT_ENTRY_BYTES,
    PORT_STATUS_BYTES,
    EpochData,
    FlowEntry,
    PortEntry,
)
from .snapshot import SwitchReport, merge_reports

__all__ = [
    "EpochScheme",
    "nearest_power_of_two_shift",
    "HawkeyeDeployment",
    "HawkeyeSwitchTelemetry",
    "ReferenceSwitchTelemetry",
    "TelemetryConfig",
    "FLOW_ENTRY_BYTES",
    "METER_ENTRY_BYTES",
    "PORT_ENTRY_BYTES",
    "PORT_STATUS_BYTES",
    "EpochData",
    "FlowEntry",
    "PortEntry",
    "SwitchReport",
    "merge_reports",
]
