"""Deterministic merge of per-shard fabric monitors.

The sharded runner (:mod:`repro.experiments.shardrun`) gives every
worker its own :class:`~repro.monitor.monitor.FabricMonitor`: all alert
rules are per-subject (a port, a switch's ECN counter, a host's RTT),
and every subject lives in exactly one shard, so a worker's rule
evaluations are identical to the single-process run's for its subjects.
What the parent needs afterwards is one object that *looks like* the
single-process monitor to everything downstream — ``RunSummary`` reads
``.alerts`` / ``.engine.alerts_by_category()`` / ``.timeline.incidents``
and the diagnosis step calls ``.timeline.record_diagnosis`` — built from
the per-shard alert lists in a canonical order that does not depend on
shard count or barrier timing.

Canonical alert order: ``(time_ns, category, rule, subject, value,
threshold)``.  Same-instant alerts from one shard arrive in rule-table
order, but sorting by the full tuple makes the merged sequence a pure
function of the alert *set*, which is itself a pure function of
(scenario seed, monitor config) — so ``shards=N`` and ``shards=1`` agree
alert-for-alert.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .rules import Alert, RuleEngine
from .timeline import IncidentTimeline

__all__ = ["alert_sort_key", "MergedMonitor"]


def alert_sort_key(alert: Alert) -> Tuple:
    return (
        alert.time_ns,
        alert.category,
        alert.rule,
        alert.subject,
        alert.value,
        alert.threshold,
    )


class MergedMonitor:
    """A monitor facade over canonically merged per-shard alert streams.

    Duck-types the slice of :class:`FabricMonitor` the runner and
    summaries consume: ``alerts``, ``engine``, ``timeline``,
    ``counters()`` and a no-op ``finish()``.  The engine is a real
    :class:`RuleEngine` (no rules, alerts injected) and the timeline a
    real :class:`IncidentTimeline` with the merged alerts replayed in
    canonical order — incident windows are pure time predicates, so
    replay order only has to be deterministic, which the sort makes it.
    """

    def __init__(
        self,
        shard_alerts: Sequence[Optional[Iterable[Alert]]],
        shard_counters: Sequence[Optional[Dict[str, Any]]] = (),
    ) -> None:
        merged: List[Alert] = []
        for alerts in shard_alerts:
            if alerts:
                merged.extend(alerts)
        merged.sort(key=alert_sort_key)
        self.engine = RuleEngine()
        self.engine.alerts.extend(merged)
        self.timeline = IncidentTimeline()
        for alert in merged:
            self.timeline.record_alert(alert)
        self._shard_counters = [c for c in shard_counters if c]

    @property
    def alerts(self) -> List[Alert]:
        return self.engine.alerts

    def finish(self, now_ns: Optional[int] = None) -> None:
        """Per-shard monitors already finished inside their workers."""

    def counters(self) -> Dict[str, Any]:
        """Same shape as :meth:`FabricMonitor.counters`, fleet-merged.

        Disjoint-subject gauges (tracked ports/hosts) and event tallies
        sum across shards; ``samples`` takes the max — every shard ticks
        on the same cadence, so the per-shard counts are equal and a sum
        would misread as N× the sampling work.  Alert and incident
        tallies are recomputed from the merged state, not summed, so
        they match the canonical merge exactly.
        """
        summed = {"tracked_ports": 0, "tracked_hosts": 0, "samples": 0}
        sketch: Dict[str, Any] = {}
        for counters in self._shard_counters:
            summed["tracked_ports"] += int(counters.get("tracked_ports", 0))
            summed["tracked_hosts"] += int(counters.get("tracked_hosts", 0))
            summed["samples"] = max(summed["samples"], int(counters.get("samples", 0)))
            for key, value in (counters.get("sketch") or {}).items():
                if isinstance(value, (int, float)):
                    sketch[key] = sketch.get(key, 0) + value
                else:
                    sketch.setdefault(key, value)
        return {
            "samples": summed["samples"],
            "alerts_total": len(self.engine.alerts),
            "incidents": len(self.timeline.incidents),
            "tracked_ports": summed["tracked_ports"],
            "tracked_hosts": summed["tracked_hosts"],
            "alerts": self.engine.alerts_by_category(),
            "sketch": sketch,
        }
