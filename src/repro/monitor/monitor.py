"""The fabric monitor: continuous sampling, sketching and alerting.

:class:`FabricMonitor` is the always-on network-plane observer the
pipeline-plane tracer (PR 4's ``repro.obs``) deliberately is not: it
watches the *fabric* itself at a configurable cadence, independent of any
victim complaint, so anomalies are visible while they develop instead of
only after a diagnosis runs.

Design constraints (both load-bearing):

- **pure observer** — the monitor never schedules traffic, never draws
  from any RNG and never mutates simulator state, so monitor-on and
  monitor-off runs produce byte-identical diagnoses (pinned by
  ``tests/monitor/test_determinism.py``);
- **sampling-first** — per-packet hot paths carry no monitor code at
  all.  Throughput, occupancy and pause state are read from counters the
  switches already maintain, once per ``interval_ns`` tick; only the
  rare PFC control frames go through observer hooks.  The perf gate
  (``monitor_overhead`` in ``BENCH_perf.json``) holds the whole layer
  under 5% of run wall time.

Memory stays bounded regardless of traffic mix: per-flow byte state
lives in a count-min sketch plus a top-K heavy-hitter table (the sampler
keeps one 8-byte read cursor per live flow to turn the simulator's
cumulative counters into deltas); per-port series are fixed-capacity
rings, materialized only for ports that ever show activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..sim.packet import DATA_PRIORITY, pause_quanta_to_ns
from ..sim.switch import Switch, SwitchObserver
from ..units import usec
from .rules import (
    BUFFER_SATURATION,
    PAUSE_BACKPRESSURE,
    PFC_STORM,
    RTT_INFLATION,
    THROUGHPUT_COLLAPSE,
    Alert,
    AlertRule,
    CollapseRule,
    RuleEngine,
    SustainedRule,
)
from .series import RingSeries
from .sketch import CountMinSketch, HeavyHitters
from .timeline import IncidentTimeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..obs.metrics import MetricsRegistry
    from ..sim.network import Network

__all__ = ["MonitorConfig", "FabricMonitor"]


@dataclass(frozen=True)
class MonitorConfig:
    """Picklable monitoring knobs carried by ``RunConfig.monitor``.

    Frozen for the same reason :class:`~repro.obs.pipeline.ObsConfig` is:
    a live monitor holds the sampled fabric and cannot cross the parallel
    runner's process boundary, but this config can — each worker builds
    its own :class:`FabricMonitor` from it.
    """

    enabled: bool = True
    interval_ns: int = usec(100)   # sampling cadence
    capacity: int = 2048           # ring samples retained per series
    # Count-min sketch sizing: estimate <= true + epsilon*N w.p. 1-delta.
    sketch_epsilon: float = 0.002
    sketch_delta: float = 0.02
    heavy_hitters: int = 8
    # Alert-rule thresholds (see repro.monitor.rules for the shapes).
    storm_pause_share: float = 0.5   # host-granted pause ns per interval ns
    storm_sustain: int = 3
    pause_sustain: int = 4           # consecutive fully-paused samples
    buffer_fraction: float = 0.8     # of the PFC Xoff threshold
    buffer_sustain: int = 2
    collapse_window: int = 4
    collapse_fraction: float = 0.2
    collapse_min_bytes: float = 4096.0
    rtt_inflation: float = 2.0       # multiple of base RTT
    rtt_sustain: int = 2


def default_rules(config: MonitorConfig, xoff_bytes: int) -> List[AlertRule]:
    """The standard rule set, thresholds resolved against the fabric."""
    return [
        SustainedRule(
            name="host-pause-flood",
            category=PFC_STORM,
            metric="host_pause_share",
            threshold=config.storm_pause_share,
            sustain=config.storm_sustain,
        ),
        SustainedRule(
            name="sustained-egress-pause",
            category=PAUSE_BACKPRESSURE,
            metric="pause_fraction",
            threshold=1.0,
            sustain=config.pause_sustain,
        ),
        SustainedRule(
            name="ingress-near-xoff",
            category=BUFFER_SATURATION,
            metric="ingress_bytes",
            threshold=config.buffer_fraction * xoff_bytes,
            sustain=config.buffer_sustain,
        ),
        CollapseRule(
            name="egress-throughput-collapse",
            category=THROUGHPUT_COLLAPSE,
            metric="tx_bytes",
            window=config.collapse_window,
            fraction=config.collapse_fraction,
            min_level=config.collapse_min_bytes,
        ),
        SustainedRule(
            name="rtt-inflation",
            category=RTT_INFLATION,
            metric="rtt_inflation",
            threshold=config.rtt_inflation,
            sustain=config.rtt_sustain,
        ),
    ]


class _PortProbe:
    """Per-port sampling state: counters cursor + lazily created series."""

    __slots__ = (
        "switch",
        "port",
        "port_no",
        "subject",
        "host_facing",
        "tracked",
        "last_tx",
        "acc",
        "s_tx",
        "s_buf",
        "s_ingress",
        "s_pause_frac",
        "s_pause_rx",
        "s_pause_tx",
        "s_host_share",
    )

    def __init__(self, switch: Switch, port_no: int) -> None:
        self.switch = switch
        self.port = switch.ports[port_no]
        self.port_no = port_no
        self.subject = f"{switch.name}.P{port_no}"
        self.host_facing = self.port.peer_is_host
        self.tracked = False
        self.last_tx = 0
        self.acc = _PfcAccum()
        self.s_tx = self.s_buf = self.s_ingress = None
        self.s_pause_frac = self.s_pause_rx = None
        self.s_pause_tx = self.s_host_share = None


class _PfcAccum:
    """PFC state for one port: frame counts this tick + the pause horizon.

    ``granted_until`` is the absolute simulated time up to which received
    PAUSE frames have stalled this port's egress.  A sample's
    ``host_pause_share`` is the overlap of the horizon with the sampling
    window — robust to PAUSE refreshes landing on either side of a window
    boundary, which per-tick frame counting is not.
    """

    __slots__ = ("pause_rx", "pause_tx", "granted_until")

    def __init__(self) -> None:
        self.pause_rx = 0
        self.pause_tx = 0
        self.granted_until = 0


class FabricMonitor(SwitchObserver):
    """Continuous fabric-health observer for one simulated network."""

    def __init__(
        self,
        network: "Network",
        config: Optional[MonitorConfig] = None,
        metrics: Optional["MetricsRegistry"] = None,
        rules: Optional[List[AlertRule]] = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else MonitorConfig()
        self.metrics = metrics
        self.sketch = CountMinSketch.from_error_bound(
            self.config.sketch_epsilon, self.config.sketch_delta
        )
        self.heavy = HeavyHitters(self.config.heavy_hitters)
        xoff = network.config.pfc.xoff_bytes
        self.engine = RuleEngine(
            rules if rules is not None else default_rules(self.config, xoff)
        )
        self.timeline = IncidentTimeline()
        # metric -> subject -> series (also reachable via the port probes).
        self.series: Dict[str, Dict[str, RingSeries]] = {}
        self._tick = 0
        self._probes: List[_PortProbe] = []
        self._pfc: Dict[Tuple[str, int], _PfcAccum] = {}
        self._ecn_cursor: Dict[str, int] = {}
        self._ecn_series: Dict[str, RingSeries] = {}
        self._rtt_accum: Dict[str, float] = {}
        self._host_series: Dict[str, RingSeries] = {}
        # Parallel to network.flows: cumulative-bytes cursor and the flow's
        # cached (sketch row slots, key string).
        self._flow_cursors: List[int] = []
        self._flow_slots: List[Optional[Tuple[Tuple[int, ...], str]]] = []
        self._periodic = None
        self._started = False
        # The RTT feed runs per ACK: resolve its histograms once instead
        # of paying a registry lookup on every sample.
        if metrics is not None:
            self._h_rtt = metrics.histogram("monitor.rtt_ns")
            self._h_inflation = metrics.histogram("monitor.rtt_inflation")
        else:
            self._h_rtt = self._h_inflation = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FabricMonitor":
        """Attach PFC hooks and begin sampling at the configured cadence."""
        if self._started:
            return self
        self._started = True
        for switch in self.network.switches.values():
            switch.add_observer(self)
            for port_no in switch.ports:
                probe = _PortProbe(switch, port_no)
                self._probes.append(probe)
                # The PFC hooks share the probe's accumulator, so the
                # sampler reads it without a lookup per port per tick.
                self._pfc[(switch.name, port_no)] = probe.acc
        self._periodic = self.network.sim.schedule_every(
            self.config.interval_ns, self._sample
        )
        return self

    def finish(self, now_ns: Optional[int] = None) -> None:
        """Stop sampling (retained series and alerts stay queryable)."""
        if self._periodic is not None:
            self._periodic.cancel()
            self._periodic = None

    # -- PFC observer hooks (low-rate control frames only) -------------------

    def on_pfc_received(
        self, switch: Switch, time_ns: int, port: int, priority: int, quanta: int
    ) -> None:
        acc = self._pfc.get((switch.name, port))
        if acc is None:
            acc = self._pfc[(switch.name, port)] = _PfcAccum()
        if quanta > 0:
            acc.pause_rx += 1
            until = time_ns + pause_quanta_to_ns(
                quanta, switch.ports[port].bandwidth
            )
            if until > acc.granted_until:
                acc.granted_until = until
        else:  # RESUME truncates the horizon
            acc.granted_until = time_ns

    def on_pfc_sent(
        self, switch: Switch, time_ns: int, port: int, priority: int, quanta: int
    ) -> None:
        if quanta <= 0:
            return
        acc = self._pfc.get((switch.name, port))
        if acc is None:
            acc = self._pfc[(switch.name, port)] = _PfcAccum()
        acc.pause_tx += 1

    # -- RTT feed (wired through the detection agent) ------------------------

    def on_rtt(
        self, src_host: str, key, now_ns: int, rtt_ns: int, base_rtt_ns: int
    ) -> None:
        """One end-host RTT sample; the agent supplies the base RTT."""
        inflation = rtt_ns / base_rtt_ns if base_rtt_ns > 0 else 0.0
        accum = self._rtt_accum
        prev = accum.get(src_host)
        if prev is None or inflation > prev:
            accum[src_host] = inflation
        if self._h_rtt is not None:
            self._h_rtt.observe(float(rtt_ns))
            self._h_inflation.observe(inflation)

    # -- sampling ------------------------------------------------------------

    def _series(self, metric: str, subject: str) -> RingSeries:
        by_subject = self.series.setdefault(metric, {})
        series = RingSeries(
            metric,
            subject,
            self.config.interval_ns,
            self.config.capacity,
            start_count=self._tick,
        )
        by_subject[subject] = series
        return series

    def _activate(self, probe: _PortProbe) -> None:
        probe.tracked = True
        subject = probe.subject
        probe.s_tx = self._series("tx_bytes", subject)
        probe.s_buf = self._series("buffer_bytes", subject)
        probe.s_ingress = self._series("ingress_bytes", subject)
        probe.s_pause_frac = self._series("pause_fraction", subject)
        probe.s_pause_rx = self._series("pause_rx", subject)
        probe.s_pause_tx = self._series("pause_tx", subject)
        if probe.host_facing:
            probe.s_host_share = self._series("host_pause_share", subject)

    def _sample(self) -> None:
        now = self.network.sim.now
        interval = self.config.interval_ns
        step = self.engine.step
        engine = self.engine
        raised: List[Alert] = []

        for probe in self._probes:
            port = probe.port
            tx = port.tx_bytes
            dtx = tx - probe.last_tx
            buf = port.total_bytes()
            ingress = probe.switch.ingress_occupancy(probe.port_no)
            paused = port.paused_until.get(DATA_PRIORITY, 0) > now
            acc = probe.acc
            if not probe.tracked:
                if not (
                    dtx or buf or ingress or paused
                    or acc.pause_rx or acc.pause_tx or acc.granted_until
                ):
                    continue
                self._activate(probe)
            probe.last_tx = tx
            probe.s_tx.append(dtx)
            probe.s_buf.append(buf)
            probe.s_ingress.append(ingress)
            probe.s_pause_frac.append(1.0 if paused else 0.0)
            probe.s_pause_rx.append(acc.pause_rx)
            probe.s_pause_tx.append(acc.pause_tx)
            acc.pause_rx = 0
            acc.pause_tx = 0
            granted = acc.granted_until
            if granted:
                # Overlap of the granted-pause horizon with this window.
                overlap = (granted if granted < now else now) - (now - interval)
                host_share = overlap / interval if overlap > 0 else 0.0
            else:
                host_share = 0.0
            if probe.s_host_share is not None:
                probe.s_host_share.append(host_share)
                raised += step(probe.s_host_share, now)
            raised += step(probe.s_tx, now)
            raised += step(probe.s_ingress, now)
            raised += step(probe.s_pause_frac, now)

        # Per-switch ECN marks (delta of the switch's own counter).
        for name, switch in self.network.switches.items():
            marked = switch.stats.ecn_marked
            last = self._ecn_cursor.get(name, 0)
            series = self._ecn_series.get(name)
            if series is None:
                if not marked:
                    continue
                series = self._ecn_series[name] = self._series("ecn_marks", name)
            self._ecn_cursor[name] = marked
            series.append(marked - last)

        # Per-host RTT inflation (max seen this interval; 0 = no samples).
        accum = self._rtt_accum
        for host, series in self._host_series.items():
            series.append(accum.pop(host, 0.0))
            raised += engine.step(series, now)
        for host, inflation in list(accum.items()):
            series = self._host_series[host] = self._series("rtt_inflation", host)
            series.append(inflation)
            raised += engine.step(series, now)
        accum.clear()

        # Per-flow byte counts into the bounded sketch.
        flows = self.network.flows
        cursors = self._flow_cursors
        slots = self._flow_slots
        while len(cursors) < len(flows):
            cursors.append(0)
            slots.append(None)
        sketch = self.sketch
        heavy = self.heavy
        for i, flow in enumerate(flows):
            sent = flow.bytes_sent
            delta = sent - cursors[i]
            if not delta:
                continue
            cursors[i] = sent
            cached = slots[i]
            if cached is None:
                key_str = str(flow.key)
                cached = slots[i] = (sketch.indices(key_str), key_str)
            estimate = sketch.add_at(cached[0], delta)
            heavy.offer(cached[1], estimate)

        for alert in raised:
            self.timeline.record_alert(alert)
        if self.metrics is not None and raised:
            for alert in raised:
                self.metrics.inc(f"monitor.alerts.{alert.category}")
        self._tick += 1

    # -- queries -------------------------------------------------------------

    @property
    def samples(self) -> int:
        return self._tick

    @property
    def alerts(self) -> List[Alert]:
        return self.engine.alerts

    def tracked_subjects(self, metric: str) -> List[str]:
        return sorted(self.series.get(metric, ()))

    def counters(self) -> Dict[str, object]:
        """Flat-ish counter view for ``MetricsRegistry.absorb_counters``."""
        return {
            "samples": self._tick,
            "alerts_total": len(self.engine.alerts),
            "incidents": len(self.timeline.incidents),
            "tracked_ports": sum(1 for p in self._probes if p.tracked),
            "tracked_hosts": len(self._host_series),
            "alerts": self.engine.alerts_by_category(),
            "sketch": self.sketch.counters(),
        }
