"""Fixed-step ring-buffer time series for continuous fabric sampling.

A :class:`RingSeries` holds the last ``capacity`` samples of one metric
for one subject (a port, a switch or a host), taken at a fixed cadence by
the :class:`~repro.monitor.monitor.FabricMonitor`.  The fixed step is what
makes sliding-window alert rules O(window) with no timestamp bookkeeping:
sample *k* (0-based, global) was taken at ``(k + 1) * step_ns`` simulated
nanoseconds, so a window of the last *n* samples is exactly the last
``n * step_ns`` of fabric history.

Memory is bounded by construction: one ``array('d')`` of ``capacity``
floats per series, overwritten in place once the ring wraps.  Subjects
that go quiet keep their series (rules still need to see the collapse to
zero); subjects that were never active never get one — a series is only
materialized on first activity, with the missed prefix implicitly zero
(the freshly allocated ring is zero-filled, so backfill is O(1): the
global sample count is simply adopted).
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Tuple

__all__ = ["RingSeries"]


class RingSeries:
    """Last-``capacity`` samples of one (metric, subject) at a fixed step."""

    __slots__ = ("metric", "subject", "step_ns", "capacity", "_values", "count")

    def __init__(
        self,
        metric: str,
        subject: str,
        step_ns: int,
        capacity: int = 1024,
        start_count: int = 0,
    ) -> None:
        if step_ns <= 0:
            raise ValueError(f"step_ns must be positive, got {step_ns}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.metric = metric
        self.subject = subject
        self.step_ns = step_ns
        self.capacity = capacity
        self._values = array("d", bytes(8 * capacity))  # zero-filled
        # Total samples ever taken (index of the next sample).  A series
        # created at global tick K simply starts with count=K: ticks 0..K-1
        # read as the zeros the subject actually produced while inactive.
        self.count = start_count

    # -- recording ----------------------------------------------------------

    def append(self, value: float) -> None:
        self._values[self.count % self.capacity] = value
        self.count += 1

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        """Samples currently retained (≤ capacity)."""
        return self.count if self.count < self.capacity else self.capacity

    @property
    def last_time_ns(self) -> int:
        """Simulated time of the most recent sample (0 if empty)."""
        return self.count * self.step_ns

    def latest(self) -> float:
        if self.count == 0:
            return 0.0
        return self._values[(self.count - 1) % self.capacity]

    def window(self, n: int) -> List[float]:
        """The last ``n`` retained samples, oldest first (short if young)."""
        have = len(self)
        n = min(n, have)
        values = self._values
        cap = self.capacity
        start = self.count - n
        return [values[(start + i) % cap] for i in range(n)]

    def window_sum(self, n: int, offset: int = 0) -> float:
        """Sum of ``n`` samples ending ``offset`` samples before the head.

        ``window_sum(4)`` is the last four samples; ``window_sum(4, 4)`` is
        the four before those — the shape throughput-collapse comparisons
        need.  Windows that reach past retention are truncated.
        """
        count = self.count
        end = count - offset
        floor = count - len(self)
        start = end - n
        if start < floor:
            start = floor
        if end <= start:
            return 0.0
        values = self._values
        cap = self.capacity
        total = 0.0
        for i in range(start, end):
            total += values[i % cap]
        return total

    def window_min(self, n: int) -> float:
        """Minimum of the last ``n`` retained samples (0.0 if empty).

        Allocation-free: the sustained-threshold rules call this on every
        sample of every tracked subject.
        """
        have = len(self)
        if n > have:
            n = have
        if n == 0:
            return 0.0
        values = self._values
        cap = self.capacity
        count = self.count
        low = values[(count - 1) % cap]
        for i in range(count - n, count - 1):
            v = values[i % cap]
            if v < low:
                low = v
        return low

    def window_mean(self, n: int, offset: int = 0) -> float:
        have = len(self)
        end = self.count - offset
        start = max(end - n, self.count - have)
        width = end - start
        if width <= 0:
            return 0.0
        return self.window_sum(n, offset) / width

    def window_max(self, n: int) -> float:
        win = self.window(n)
        return max(win) if win else 0.0

    def iter_points(self) -> Iterator[Tuple[int, float]]:
        """Retained ``(time_ns, value)`` pairs, oldest first."""
        have = len(self)
        values = self._values
        cap = self.capacity
        step = self.step_ns
        start = self.count - have
        for i in range(start, self.count):
            yield (i + 1) * step, values[i % cap]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RingSeries({self.metric}/{self.subject}, step={self.step_ns}ns, "
            f"n={len(self)}, latest={self.latest():g})"
        )
