"""Continuous fabric-health monitoring for the simulated RDMA network.

The pipeline plane (``repro.obs``) traces what the *diagnoser* does; this
package watches what the *fabric* does, continuously: fixed-step ring
series per port/switch/host, count-min-sketched per-flow byte counts,
sliding-window alert rules, and an incident timeline that correlates
fabric alerts with the Hawkeye diagnosis that follows.
"""

from .monitor import FabricMonitor, MonitorConfig, default_rules
from .rules import (
    BUFFER_SATURATION,
    PAUSE_BACKPRESSURE,
    PFC_STORM,
    RTT_INFLATION,
    THROUGHPUT_COLLAPSE,
    Alert,
    AlertRule,
    CollapseRule,
    RuleEngine,
    SustainedRule,
)
from .series import RingSeries
from .sketch import CountMinSketch, HeavyHitters
from .timeline import ANOMALY_ALERT_CATEGORIES, IncidentTimeline, MonitorIncident
from .export import (
    jsonl_snapshot,
    prometheus_text,
    registry_prometheus_text,
    render_dashboard,
    render_html,
    sparkline,
)

__all__ = [
    "FabricMonitor",
    "MonitorConfig",
    "default_rules",
    "Alert",
    "AlertRule",
    "SustainedRule",
    "CollapseRule",
    "RuleEngine",
    "PFC_STORM",
    "PAUSE_BACKPRESSURE",
    "BUFFER_SATURATION",
    "THROUGHPUT_COLLAPSE",
    "RTT_INFLATION",
    "RingSeries",
    "CountMinSketch",
    "HeavyHitters",
    "ANOMALY_ALERT_CATEGORIES",
    "IncidentTimeline",
    "MonitorIncident",
    "prometheus_text",
    "registry_prometheus_text",
    "jsonl_snapshot",
    "render_dashboard",
    "render_html",
    "sparkline",
]
