"""Sliding-window alert rules over monitor time series.

Rules are pure descriptions (frozen dataclasses) evaluated by a
:class:`RuleEngine` that keeps the per-(rule, subject) state: consecutive
samples over threshold, and a firing latch so one sustained episode
raises exactly one :class:`Alert` (the latch clears when the subject
drops back under threshold, re-arming the rule for a later episode).

Two evaluation shapes cover every fabric symptom the monitor watches:

- :class:`SustainedRule` — the sample value stays at/above ``threshold``
  for ``sustain`` consecutive samples (PFC storms, pause back-pressure,
  buffer saturation, RTT inflation);
- :class:`CollapseRule` — the mean over the most recent ``window``
  samples falls below ``fraction`` of the mean over the ``window``
  samples before those, and that earlier mean shows real activity
  (throughput collapse: a port that was moving bytes and stopped).

Categories are the correlation vocabulary the incident timeline matches
against diagnosed anomaly classes (see
:data:`repro.monitor.timeline.ANOMALY_ALERT_CATEGORIES`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .series import RingSeries

__all__ = [
    "Alert",
    "AlertRule",
    "SustainedRule",
    "CollapseRule",
    "RuleEngine",
]

# The correlation vocabulary (alert categories).
PFC_STORM = "pfc_storm"
PAUSE_BACKPRESSURE = "pause_backpressure"
BUFFER_SATURATION = "buffer_saturation"
THROUGHPUT_COLLAPSE = "throughput_collapse"
RTT_INFLATION = "rtt_inflation"


@dataclass(frozen=True)
class Alert:
    """One rule firing for one subject at one sampled instant."""

    rule: str
    category: str
    subject: str
    time_ns: int
    value: float
    threshold: float

    def describe(self) -> str:
        return (
            f"[{self.time_ns / 1e6:9.3f} ms] {self.category:20s} "
            f"{self.subject:12s} {self.rule} "
            f"(value {self.value:g}, threshold {self.threshold:g})"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "category": self.category,
            "subject": self.subject,
            "time_ns": self.time_ns,
            "value": self.value,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class AlertRule:
    """Base rule: a name, a category, and the metric it watches."""

    name: str
    category: str
    metric: str

    def check(self, series: RingSeries) -> Optional[Tuple[float, float]]:
        """Return ``(value, threshold)`` when the condition holds *now*."""
        raise NotImplementedError


@dataclass(frozen=True)
class SustainedRule(AlertRule):
    """Latest ``sustain`` samples all at/above ``threshold``."""

    threshold: float = 1.0
    sustain: int = 3

    def check(self, series: RingSeries) -> Optional[Tuple[float, float]]:
        # Fast path: almost every sample of a healthy subject sits below
        # threshold, so the latest value alone usually decides.
        latest = series.latest()
        if latest < self.threshold:
            return None
        if len(series) < self.sustain:
            return None
        if series.window_min(self.sustain) < self.threshold:
            return None
        return latest, self.threshold


@dataclass(frozen=True)
class CollapseRule(AlertRule):
    """Recent mean under ``fraction`` of the prior window's active mean."""

    window: int = 6
    fraction: float = 0.2
    min_level: float = 1.0  # prior mean must show real activity

    def check(self, series: RingSeries) -> Optional[Tuple[float, float]]:
        w = self.window
        if len(series) < 2 * w:
            return None
        # Work on window sums (both windows are full once len >= 2w), so
        # neither the quiet-prior prune nor the compare pays a division.
        prior_sum = series.window_sum(w, offset=w)
        if prior_sum < self.min_level * w:
            return None
        recent_sum = series.window_sum(w)
        if recent_sum < self.fraction * prior_sum:
            return recent_sum / w, self.fraction * prior_sum / w
        return None


# Shared empty result for the (overwhelmingly common) no-alert step.
_NO_ALERTS: List["Alert"] = []


@dataclass
class RuleEngine:
    """Evaluates rules against series and latches per-subject episodes."""

    rules: List[AlertRule] = field(default_factory=list)
    alerts: List[Alert] = field(default_factory=list)

    def __post_init__(self) -> None:
        # metric -> [(rule, per-subject firing latch), ...].  One latch
        # dict per rule keyed by the subject string avoids building a
        # (rule, subject) tuple on every evaluation of every sample.
        self._by_metric: Dict[str, List[Tuple[AlertRule, Dict[str, bool]]]] = {}
        for rule in self.rules:
            self._by_metric.setdefault(rule.metric, []).append((rule, {}))

    def rules_for(self, metric: str) -> List[AlertRule]:
        return [rule for rule, _ in self._by_metric.get(metric, ())]

    def step(self, series: RingSeries, now_ns: int) -> List[Alert]:
        """Evaluate every rule watching ``series.metric`` at this sample.

        Returns the alerts newly raised this step (an episode already
        firing stays silent until it clears).  The common no-change case
        allocates nothing.
        """
        rules = self._by_metric.get(series.metric)
        if not rules:
            return _NO_ALERTS
        raised = _NO_ALERTS
        subject = series.subject
        for rule, firing in rules:
            hit = rule.check(series)
            if hit is None:
                if firing.get(subject):
                    firing[subject] = False
                continue
            if firing.get(subject):
                continue  # episode already alerted
            firing[subject] = True
            alert = Alert(
                rule=rule.name,
                category=rule.category,
                subject=subject,
                time_ns=now_ns,
                value=hit[0],
                threshold=hit[1],
            )
            self.alerts.append(alert)
            if raised is _NO_ALERTS:
                raised = []
            raised.append(alert)
        return raised

    def alerts_by_category(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for alert in self.alerts:
            tally[alert.category] = tally.get(alert.category, 0) + 1
        return dict(sorted(tally.items()))
