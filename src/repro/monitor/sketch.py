"""Count-min sketch with conservative update, plus a bounded top-K tracker.

Per-flow byte accounting is the one monitoring surface whose exact state
grows with the traffic mix, so the monitor keeps it in a count-min sketch
(Cormode & Muthukrishnan): ``depth`` rows of ``width`` counters, each
update incrementing one counter per row, each query taking the row
minimum.  The standard guarantees hold:

- **never an underestimate**: ``estimate(k) >= true(k)`` always;
- **bounded overestimate**: ``estimate(k) <= true(k) + eps * N`` (N = total
  count inserted) with probability ``>= 1 - delta`` per key, for
  ``width = ceil(e / eps)`` and ``depth = ceil(ln(1 / delta))``.

Conservative update (only raise the counters that would change the
current estimate) tightens the overestimate further without breaking the
lower bound.  Hashing is seeded CRC32 — stable across processes, so
sketch contents are deterministic for a deterministic update stream.

:class:`HeavyHitters` keeps the top-K keys by estimated count in bounded
space: K live entries, smallest evicted on overflow.  Evicted keys can
re-enter later with their (sketch-estimated) count intact, which is how
bounded-memory heavy-hitter tracking classically composes with a CMS.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, List, Tuple
from zlib import crc32

__all__ = ["CountMinSketch", "HeavyHitters"]


class CountMinSketch:
    """Approximate per-key counters in ``depth * width`` ints of memory."""

    __slots__ = ("width", "depth", "seed", "total", "updates", "_rows", "_seeds")

    def __init__(self, width: int = 2048, depth: int = 4, seed: int = 1) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError(f"width/depth must be positive ({width}x{depth})")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.total = 0  # N: sum of all inserted counts
        self.updates = 0
        self._rows = [array("q", bytes(8 * width)) for _ in range(depth)]
        # One independent CRC32 stream per row, derived from the seed.
        self._seeds = [crc32(f"cms-row-{seed}-{row}".encode()) for row in range(depth)]

    @classmethod
    def from_error_bound(
        cls, epsilon: float, delta: float, seed: int = 1
    ) -> "CountMinSketch":
        """Size the sketch for ``estimate <= true + epsilon*N`` w.p. ``1-delta``."""
        if not 0.0 < epsilon < 1.0 or not 0.0 < delta < 1.0:
            raise ValueError(f"epsilon/delta must be in (0, 1) ({epsilon}, {delta})")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=max(1, depth), seed=seed)

    @property
    def epsilon(self) -> float:
        """The additive error factor this geometry guarantees."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Per-key probability of exceeding the ``epsilon*N`` bound."""
        return math.exp(-self.depth)

    @property
    def memory_bytes(self) -> int:
        return 8 * self.width * self.depth

    def indices(self, key: str) -> Tuple[int, ...]:
        """Row slots for ``key`` (exposed so callers can cache them)."""
        blob = key.encode()
        width = self.width
        return tuple(crc32(blob, s) % width for s in self._seeds)

    def add(self, key: str, count: int = 1) -> int:
        return self.add_at(self.indices(key), count)

    def add_at(self, indices: Tuple[int, ...], count: int) -> int:
        """Conservative update through precomputed row slots.

        Returns the key's new estimate (the conservative-update floor), so
        callers feeding a heavy-hitter table need no second lookup.
        """
        rows = self._rows
        if count <= 0:
            return min(rows[r][i] for r, i in enumerate(indices))
        floor = min(rows[r][i] for r, i in enumerate(indices)) + count
        for r, i in enumerate(indices):
            if rows[r][i] < floor:
                rows[r][i] = floor
        self.total += count
        self.updates += 1
        return floor

    def estimate(self, key: str) -> int:
        rows = self._rows
        return min(rows[r][i] for r, i in enumerate(self.indices(key)))

    def error_bound(self) -> int:
        """Current additive error ceiling: ``epsilon * N``, rounded up."""
        return math.ceil(self.epsilon * self.total)

    def counters(self) -> Dict[str, int]:
        return {
            "width": self.width,
            "depth": self.depth,
            "updates": self.updates,
            "total": self.total,
            "memory_bytes": self.memory_bytes,
        }


class HeavyHitters:
    """Bounded top-K tracker fed with (key, estimated count) offers."""

    __slots__ = ("k", "_entries")

    def __init__(self, k: int = 8) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._entries: Dict[str, int] = {}

    def offer(self, key: str, estimate: int) -> None:
        entries = self._entries
        if key in entries:
            if estimate > entries[key]:
                entries[key] = estimate
            return
        if len(entries) < self.k:
            entries[key] = estimate
            return
        # Evict the smallest resident if the newcomer beats it (ties keep
        # the resident, so the contents are deterministic).
        victim = min(entries, key=lambda k: (entries[k], k))
        if estimate > entries[victim]:
            del entries[victim]
            entries[key] = estimate

    def top(self) -> List[Tuple[str, int]]:
        """Entries by descending count (key as tie-break, ascending)."""
        return sorted(self._entries.items(), key=lambda kv: (-kv[1], kv[0]))

    def __len__(self) -> int:
        return len(self._entries)
