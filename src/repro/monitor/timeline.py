"""Incident timeline: correlating fabric alerts with Hawkeye diagnoses.

The monitor raises alerts while the fabric degrades; Hawkeye's diagnosis
pipeline runs afterwards, once a victim complains.  The
:class:`IncidentTimeline` joins the two: every diagnosed victim becomes a
:class:`MonitorIncident` carrying the alerts that preceded its verdict,
the subset of those alerts whose subjects lie on the diagnosed PFC
provenance (ports on ``pfc_path``/``loop``/the initial congestion point),
the culprit flows, and — when pipeline tracing is on — the obs span id of
the diagnosis, so an operator can pivot from a fabric alert straight into
the pipeline trace that explains it.

:data:`ANOMALY_ALERT_CATEGORIES` is the expectation table: for each
anomaly class of the paper's Table 2, the alert categories a healthy
monitor should have raised *before* the diagnosis lands.  The pinned
tests in ``tests/monitor/test_alerts.py`` assert exactly this coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional

from ..core.report import Diagnosis
from .rules import (
    BUFFER_SATURATION,
    PAUSE_BACKPRESSURE,
    PFC_STORM,
    RTT_INFLATION,
    THROUGHPUT_COLLAPSE,
    Alert,
)

__all__ = ["ANOMALY_ALERT_CATEGORIES", "MonitorIncident", "IncidentTimeline"]

# Anomaly class (AnomalyType.value) -> alert categories expected to have
# fired by the time that class is diagnosed.  Sets overlap on purpose:
# e.g. a PFC storm also produces pause back-pressure, so both firing is
# correct behaviour, not a false positive.
ANOMALY_ALERT_CATEGORIES: Dict[str, FrozenSet[str]] = {
    "pfc-storm": frozenset({PFC_STORM, PAUSE_BACKPRESSURE}),
    "pfc-backpressure-flow-contention": frozenset(
        {BUFFER_SATURATION, PAUSE_BACKPRESSURE}
    ),
    # Fuzzer-promoted class: host injection plus converging traffic at the
    # same port shows both the storm's pause flood and the incast's buffer
    # pressure.
    "contention-masked-pfc-storm": frozenset(
        {PFC_STORM, PAUSE_BACKPRESSURE, BUFFER_SATURATION}
    ),
    "in-loop-deadlock": frozenset({PAUSE_BACKPRESSURE, THROUGHPUT_COLLAPSE}),
    "out-of-loop-deadlock-contention": frozenset(
        {PAUSE_BACKPRESSURE, THROUGHPUT_COLLAPSE, BUFFER_SATURATION}
    ),
    "out-of-loop-deadlock-injection": frozenset(
        {PFC_STORM, PAUSE_BACKPRESSURE, THROUGHPUT_COLLAPSE}
    ),
    "normal-flow-contention": frozenset({RTT_INFLATION, BUFFER_SATURATION}),
}


@dataclass
class MonitorIncident:
    """One diagnosed victim with its preceding fabric-alert context."""

    victim: str
    anomaly: str
    confidence: str
    trigger_ns: int                    # when the victim first complained
    verdict_ns: int                    # when the diagnosis completed
    alerts: List[Alert] = field(default_factory=list)
    # Alert subjects that lie on the diagnosed provenance (ports of the
    # PFC path / deadlock loop / initial congestion point).
    linked_subjects: List[str] = field(default_factory=list)
    culprits: List[str] = field(default_factory=list)
    span_id: Optional[int] = None      # obs diagnosis span, when tracing

    @property
    def categories(self) -> FrozenSet[str]:
        return frozenset(a.category for a in self.alerts)

    @property
    def expected_categories(self) -> FrozenSet[str]:
        return ANOMALY_ALERT_CATEGORIES.get(self.anomaly, frozenset())

    @property
    def early_warning(self) -> bool:
        """Did an expected-category alert precede the verdict?"""
        expected = self.expected_categories
        return any(a.category in expected for a in self.alerts)

    def lead_time_ns(self) -> Optional[int]:
        """Verdict time minus the earliest expected-category alert."""
        expected = self.expected_categories
        times = [a.time_ns for a in self.alerts if a.category in expected]
        if not times:
            return None
        return self.verdict_ns - min(times)

    def describe(self) -> str:
        lead = self.lead_time_ns()
        lines = [
            f"incident: victim {self.victim} -> {self.anomaly} "
            f"(confidence {self.confidence})",
            f"  verdict at {self.verdict_ns / 1e6:.3f} ms; "
            f"{len(self.alerts)} preceding alert(s)"
            + (f", earliest lead {lead / 1e6:.3f} ms" if lead is not None else ""),
        ]
        for alert in self.alerts:
            marker = "*" if alert.subject in self.linked_subjects else " "
            lines.append(f"  {marker} {alert.describe()}")
        if self.culprits:
            lines.append("  culprit flows: " + ", ".join(self.culprits))
        if self.span_id is not None:
            lines.append(f"  obs span: {self.span_id}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "victim": self.victim,
            "anomaly": self.anomaly,
            "confidence": self.confidence,
            "trigger_ns": self.trigger_ns,
            "verdict_ns": self.verdict_ns,
            "alerts": [a.to_dict() for a in self.alerts],
            "linked_subjects": list(self.linked_subjects),
            "culprits": list(self.culprits),
            "span_id": self.span_id,
            "early_warning": self.early_warning,
            "lead_time_ns": self.lead_time_ns(),
        }


class IncidentTimeline:
    """Chronological record of alerts and the diagnoses they preceded."""

    def __init__(self, lookback_ns: int = 10_000_000) -> None:
        self.lookback_ns = lookback_ns
        self.alerts: List[Alert] = []
        self.incidents: List[MonitorIncident] = []

    def record_alert(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def record_diagnosis(
        self,
        diagnosis: Diagnosis,
        trigger_ns: int,
        verdict_ns: int,
        span_id: Optional[int] = None,
    ) -> MonitorIncident:
        """Fold one completed diagnosis into the timeline."""
        finding = diagnosis.primary()
        provenance = {str(p) for p in finding.pfc_path}
        provenance.update(str(p) for p in finding.loop)
        if finding.initial_port is not None:
            provenance.add(str(finding.initial_port))
        start = trigger_ns - self.lookback_ns
        window = [a for a in self.alerts if start <= a.time_ns <= verdict_ns]
        linked = sorted({a.subject for a in window if a.subject in provenance})
        incident = MonitorIncident(
            victim=str(diagnosis.victim),
            anomaly=finding.anomaly.value,
            confidence=diagnosis.confidence,
            trigger_ns=trigger_ns,
            verdict_ns=verdict_ns,
            alerts=window,
            linked_subjects=linked,
            culprits=[str(k) for k in finding.culprit_keys()],
            span_id=span_id,
        )
        self.incidents.append(incident)
        return incident

    def describe(self) -> str:
        if not self.incidents and not self.alerts:
            return "incident timeline: quiet (no alerts, no incidents)"
        lines: List[str] = []
        if self.alerts:
            lines.append(f"alerts ({len(self.alerts)}):")
            lines.extend("  " + a.describe() for a in self.alerts)
        for incident in self.incidents:
            lines.append(incident.describe())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "alerts": [a.to_dict() for a in self.alerts],
            "incidents": [i.to_dict() for i in self.incidents],
        }
