"""Monitor exports: Prometheus text, JSONL snapshots, dashboards.

Three consumers, three formats:

- :func:`prometheus_text` — the classic text exposition format
  (``metric{label="..."} value``), one gauge per live series head plus
  alert/sketch counters, suitable for a scrape endpoint;
- :func:`jsonl_snapshot` — one JSON object per line (series points,
  alerts, incidents, heavy hitters), the machine-readable dump;
- :func:`render_dashboard` / :func:`render_html` — the human views: a
  terminal dashboard with unicode sparklines and the incident timeline,
  and a self-contained HTML page of the same content for CI artifacts.
"""

from __future__ import annotations

import html
import json
import re
from typing import TYPE_CHECKING, Dict, Iterable, List

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from .monitor import FabricMonitor

__all__ = [
    "prometheus_text",
    "registry_prometheus_text",
    "jsonl_snapshot",
    "sparkline",
    "render_dashboard",
    "render_html",
]

_SPARK = "▁▂▃▄▅▆▇█"

# Per-family HELP strings for the monitor's series metrics; families not
# listed fall back to a generated one-liner so *every* family scraped off
# the serve endpoint carries HELP + TYPE (the exposition-format contract
# pinned by tests/serve/test_prometheus_format.py).
_SERIES_HELP = {
    "tx_bytes": "Bytes the port transmitted during the last sampling interval.",
    "buffer_bytes": "Bytes buffered at the port when last sampled.",
    "ingress_bytes": "Ingress-queue occupancy in bytes when last sampled.",
    "pause_fraction": "1 when the port's data priority was paused at the sample instant, else 0.",
    "pause_rx": "PFC PAUSE frames received by the port during the last interval.",
    "pause_tx": "PFC PAUSE frames sent by the port during the last interval.",
    "host_pause_share": "Fraction of the last interval covered by host-granted pause horizons.",
    "ecn_marks": "Packets ECN-marked by the switch during the last interval.",
    "rtt_inflation": "Worst per-host RTT inflation (multiple of base RTT) in the last interval.",
}

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(metric: str) -> str:
    return "repro_monitor_" + _sanitize_name(metric)


def _sanitize_name(metric: str) -> str:
    """Fold an internal dotted/dashed metric name into the Prometheus
    ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar."""
    name = _INVALID_NAME_CHARS.sub("_", metric.replace(".", "_"))
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_label(value: str) -> str:
    """Escape a label value per the exposition format: backslash first,
    then quotes, then raw newlines (subjects are free-form strings —
    flow keys and fuzzer-built names can contain any of the three)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _family(lines: List[str], name: str, kind: str, help_text: str) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def prometheus_text(monitor: "FabricMonitor") -> str:
    """Prometheus text exposition of the monitor's current state.

    Every metric family is announced with ``# HELP`` and ``# TYPE``
    before its first sample, and label values are escaped per the
    exposition format (``\\`` → ``\\\\``, ``"`` → ``\\"``, newline →
    ``\\n``) so arbitrary subject/flow strings never corrupt a scrape.
    """
    lines: List[str] = []
    for metric in sorted(monitor.series):
        name = _prom_name(metric)
        help_text = _SERIES_HELP.get(
            metric, f"Monitor series {metric} (latest sampled value)."
        )
        _family(lines, name, "gauge", help_text)
        for subject, series in sorted(monitor.series[metric].items()):
            lines.append(
                f'{name}{{subject="{_prom_label(subject)}"}} {series.latest():g}'
            )
    _family(
        lines,
        "repro_monitor_alerts_total",
        "counter",
        "Alerts raised by the monitor's rule engine, by category.",
    )
    for category, count in monitor.engine.alerts_by_category().items():
        lines.append(
            f'repro_monitor_alerts_total{{category="{_prom_label(category)}"}} '
            f"{count}"
        )
    _family(
        lines,
        "repro_monitor_samples_total",
        "counter",
        "Sampling ticks the monitor has executed.",
    )
    lines.append(f"repro_monitor_samples_total {monitor.samples}")
    sketch = monitor.sketch
    _family(
        lines,
        "repro_monitor_sketch_total_bytes",
        "counter",
        "Total flow bytes folded into the count-min sketch.",
    )
    lines.append(f"repro_monitor_sketch_total_bytes {sketch.total}")
    _family(
        lines,
        "repro_monitor_flow_bytes_estimate",
        "gauge",
        "Sketch-estimated byte counts of the current heavy-hitter flows.",
    )
    for key, estimate in monitor.heavy.top():
        lines.append(
            f'repro_monitor_flow_bytes_estimate{{flow="{_prom_label(key)}"}} '
            f"{estimate}"
        )
    return "\n".join(lines) + "\n"


def registry_prometheus_text(
    registry: "MetricsRegistry", prefix: str = "repro"
) -> str:
    """Prometheus text exposition of a :class:`MetricsRegistry`.

    Counters export as ``counter``, gauges as ``gauge``, histograms as
    ``summary`` (interpolated p50/p95/p99 quantile samples plus
    ``_sum``/``_count``).  The serve plane mounts this for its
    ``serve.*`` self-observability metrics next to the monitor's fabric
    exposition.
    """
    doc = registry.to_dict()
    lines: List[str] = []
    for name, value in doc["counters"].items():
        prom = f"{prefix}_{_sanitize_name(name)}"
        _family(lines, prom, "counter", f"Counter {name}.")
        lines.append(f"{prom} {value}")
    for name, value in doc["gauges"].items():
        prom = f"{prefix}_{_sanitize_name(name)}"
        _family(lines, prom, "gauge", f"Gauge {name}.")
        lines.append(f"{prom} {value:g}")
    for name, hist in doc["histograms"].items():
        prom = f"{prefix}_{_sanitize_name(name)}"
        _family(lines, prom, "summary", f"Histogram {name}.")
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            quantile = hist.get(key)
            if quantile is not None:
                lines.append(f'{prom}{{quantile="{q:g}"}} {quantile:g}')
        lines.append(f"{prom}_sum {hist['sum']:g}")
        lines.append(f"{prom}_count {hist['count']}")
    return "\n".join(lines) + "\n"


def jsonl_snapshot(monitor: "FabricMonitor") -> Iterable[str]:
    """One JSON object per line: series, flows, alerts, incidents."""
    for metric in sorted(monitor.series):
        for subject, series in sorted(monitor.series[metric].items()):
            yield json.dumps(
                {
                    "kind": "series",
                    "metric": metric,
                    "subject": subject,
                    "step_ns": series.step_ns,
                    "points": [[t, v] for t, v in series.iter_points()],
                },
                separators=(",", ":"),
            )
    for key, estimate in monitor.heavy.top():
        yield json.dumps(
            {"kind": "flow", "flow": key, "bytes_estimate": estimate},
            separators=(",", ":"),
        )
    for alert in monitor.alerts:
        yield json.dumps(
            dict(kind="alert", **alert.to_dict()), separators=(",", ":")
        )
    for incident in monitor.timeline.incidents:
        yield json.dumps(
            dict(kind="incident", **incident.to_dict()), separators=(",", ":")
        )
    yield json.dumps(
        dict(kind="summary", **_plain_counters(monitor)), separators=(",", ":")
    )


def _plain_counters(monitor: "FabricMonitor") -> Dict[str, object]:
    counters = dict(monitor.counters())
    counters["sketch"] = dict(counters["sketch"])
    counters["alerts"] = dict(counters["alerts"])
    return counters


def sparkline(values: List[float], width: int = 32) -> str:
    """Unicode sparkline of the last ``width`` values (empty-safe)."""
    values = values[-width:]
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK[0] * len(values)
    top = len(_SPARK) - 1
    return "".join(_SPARK[int((v - low) / span * top)] for v in values)


# Dashboard rows: (metric, heading) in presentation order.
_DASH_METRICS = (
    ("tx_bytes", "egress throughput (bytes/interval)"),
    ("ingress_bytes", "ingress occupancy (bytes)"),
    ("buffer_bytes", "buffered bytes"),
    ("pause_fraction", "pause state (0/1)"),
    ("host_pause_share", "host-granted pause share"),
    ("ecn_marks", "ECN marks/interval"),
    ("rtt_inflation", "RTT inflation (x base)"),
)


def render_dashboard(
    monitor: "FabricMonitor", width: int = 32, max_subjects: int = 8
) -> str:
    """Terminal dashboard: sparklines, heavy hitters, alerts, incidents."""
    interval_us = monitor.config.interval_ns / 1000
    lines = [
        "fabric monitor dashboard",
        f"  cadence {interval_us:g} us x {monitor.samples} samples; "
        f"sketch {monitor.sketch.width}x{monitor.sketch.depth} "
        f"({monitor.sketch.memory_bytes // 1024} KiB, "
        f"eps={monitor.sketch.epsilon:.4f})",
        "",
    ]
    for metric, heading in _DASH_METRICS:
        by_subject = monitor.series.get(metric)
        if not by_subject:
            continue
        lines.append(f"{heading} [{metric}]")
        # Busiest subjects first so a short dashboard shows the action.
        ranked = sorted(
            by_subject.items(),
            key=lambda kv: (-kv[1].window_max(width), kv[0]),
        )
        for subject, series in ranked[:max_subjects]:
            spark = sparkline(series.window(width), width)
            lines.append(
                f"  {subject:>12s} {spark:<{width}s} "
                f"last={series.latest():g} max={series.window_max(width):g}"
            )
        hidden = len(by_subject) - max_subjects
        if hidden > 0:
            lines.append(f"  ... {hidden} more subject(s)")
        lines.append("")
    top = monitor.heavy.top()
    if top:
        lines.append(f"heavy hitters (top {len(top)}, sketch-estimated bytes)")
        for key, estimate in top:
            lines.append(f"  {estimate:>12d}  {key}")
        lines.append("")
    lines.append(monitor.timeline.describe())
    return "\n".join(lines) + "\n"


def render_html(monitor: "FabricMonitor", title: str = "fabric monitor") -> str:
    """Self-contained HTML page wrapping the text dashboard + raw data."""
    dashboard = html.escape(render_dashboard(monitor))
    rows = []
    for alert in monitor.alerts:
        rows.append(
            "<tr><td>{:.3f} ms</td><td>{}</td><td>{}</td><td>{}</td>"
            "<td>{:g}</td><td>{:g}</td></tr>".format(
                alert.time_ns / 1e6,
                html.escape(alert.category),
                html.escape(alert.subject),
                html.escape(alert.rule),
                alert.value,
                alert.threshold,
            )
        )
    alert_table = (
        "<table><tr><th>time</th><th>category</th><th>subject</th>"
        "<th>rule</th><th>value</th><th>threshold</th></tr>"
        + "".join(rows)
        + "</table>"
        if rows
        else "<p>no alerts raised</p>"
    )
    return (
        "<!DOCTYPE html>\n"
        "<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        "<style>body{font-family:monospace;background:#111;color:#ddd;"
        "padding:1em}pre{line-height:1.25}table{border-collapse:collapse}"
        "td,th{border:1px solid #444;padding:2px 8px;text-align:left}"
        "</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<pre>{dashboard}</pre>"
        "<h2>alerts</h2>"
        f"{alert_table}"
        "</body></html>\n"
    )
