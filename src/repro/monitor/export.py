"""Monitor exports: Prometheus text, JSONL snapshots, dashboards.

Three consumers, three formats:

- :func:`prometheus_text` — the classic text exposition format
  (``metric{label="..."} value``), one gauge per live series head plus
  alert/sketch counters, suitable for a scrape endpoint;
- :func:`jsonl_snapshot` — one JSON object per line (series points,
  alerts, incidents, heavy hitters), the machine-readable dump;
- :func:`render_dashboard` / :func:`render_html` — the human views: a
  terminal dashboard with unicode sparklines and the incident timeline,
  and a self-contained HTML page of the same content for CI artifacts.
"""

from __future__ import annotations

import html
import json
from typing import TYPE_CHECKING, Dict, Iterable, List

if TYPE_CHECKING:  # pragma: no cover
    from .monitor import FabricMonitor

__all__ = [
    "prometheus_text",
    "jsonl_snapshot",
    "sparkline",
    "render_dashboard",
    "render_html",
]

_SPARK = "▁▂▃▄▅▆▇█"


def _prom_name(metric: str) -> str:
    return "repro_monitor_" + metric.replace(".", "_").replace("-", "_")


def _prom_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def prometheus_text(monitor: "FabricMonitor") -> str:
    """Prometheus text exposition of the monitor's current state."""
    lines: List[str] = []
    for metric in sorted(monitor.series):
        name = _prom_name(metric)
        lines.append(f"# TYPE {name} gauge")
        for subject, series in sorted(monitor.series[metric].items()):
            lines.append(
                f'{name}{{subject="{_prom_label(subject)}"}} {series.latest():g}'
            )
    lines.append("# TYPE repro_monitor_alerts_total counter")
    for category, count in monitor.engine.alerts_by_category().items():
        lines.append(
            f'repro_monitor_alerts_total{{category="{_prom_label(category)}"}} '
            f"{count}"
        )
    lines.append("# TYPE repro_monitor_samples_total counter")
    lines.append(f"repro_monitor_samples_total {monitor.samples}")
    sketch = monitor.sketch
    lines.append("# TYPE repro_monitor_sketch_total_bytes counter")
    lines.append(f"repro_monitor_sketch_total_bytes {sketch.total}")
    lines.append("# TYPE repro_monitor_flow_bytes_estimate gauge")
    for key, estimate in monitor.heavy.top():
        lines.append(
            f'repro_monitor_flow_bytes_estimate{{flow="{_prom_label(key)}"}} '
            f"{estimate}"
        )
    return "\n".join(lines) + "\n"


def jsonl_snapshot(monitor: "FabricMonitor") -> Iterable[str]:
    """One JSON object per line: series, flows, alerts, incidents."""
    for metric in sorted(monitor.series):
        for subject, series in sorted(monitor.series[metric].items()):
            yield json.dumps(
                {
                    "kind": "series",
                    "metric": metric,
                    "subject": subject,
                    "step_ns": series.step_ns,
                    "points": [[t, v] for t, v in series.iter_points()],
                },
                separators=(",", ":"),
            )
    for key, estimate in monitor.heavy.top():
        yield json.dumps(
            {"kind": "flow", "flow": key, "bytes_estimate": estimate},
            separators=(",", ":"),
        )
    for alert in monitor.alerts:
        yield json.dumps(
            dict(kind="alert", **alert.to_dict()), separators=(",", ":")
        )
    for incident in monitor.timeline.incidents:
        yield json.dumps(
            dict(kind="incident", **incident.to_dict()), separators=(",", ":")
        )
    yield json.dumps(
        dict(kind="summary", **_plain_counters(monitor)), separators=(",", ":")
    )


def _plain_counters(monitor: "FabricMonitor") -> Dict[str, object]:
    counters = dict(monitor.counters())
    counters["sketch"] = dict(counters["sketch"])
    counters["alerts"] = dict(counters["alerts"])
    return counters


def sparkline(values: List[float], width: int = 32) -> str:
    """Unicode sparkline of the last ``width`` values (empty-safe)."""
    values = values[-width:]
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK[0] * len(values)
    top = len(_SPARK) - 1
    return "".join(_SPARK[int((v - low) / span * top)] for v in values)


# Dashboard rows: (metric, heading) in presentation order.
_DASH_METRICS = (
    ("tx_bytes", "egress throughput (bytes/interval)"),
    ("ingress_bytes", "ingress occupancy (bytes)"),
    ("buffer_bytes", "buffered bytes"),
    ("pause_fraction", "pause state (0/1)"),
    ("host_pause_share", "host-granted pause share"),
    ("ecn_marks", "ECN marks/interval"),
    ("rtt_inflation", "RTT inflation (x base)"),
)


def render_dashboard(
    monitor: "FabricMonitor", width: int = 32, max_subjects: int = 8
) -> str:
    """Terminal dashboard: sparklines, heavy hitters, alerts, incidents."""
    interval_us = monitor.config.interval_ns / 1000
    lines = [
        "fabric monitor dashboard",
        f"  cadence {interval_us:g} us x {monitor.samples} samples; "
        f"sketch {monitor.sketch.width}x{monitor.sketch.depth} "
        f"({monitor.sketch.memory_bytes // 1024} KiB, "
        f"eps={monitor.sketch.epsilon:.4f})",
        "",
    ]
    for metric, heading in _DASH_METRICS:
        by_subject = monitor.series.get(metric)
        if not by_subject:
            continue
        lines.append(f"{heading} [{metric}]")
        # Busiest subjects first so a short dashboard shows the action.
        ranked = sorted(
            by_subject.items(),
            key=lambda kv: (-kv[1].window_max(width), kv[0]),
        )
        for subject, series in ranked[:max_subjects]:
            spark = sparkline(series.window(width), width)
            lines.append(
                f"  {subject:>12s} {spark:<{width}s} "
                f"last={series.latest():g} max={series.window_max(width):g}"
            )
        hidden = len(by_subject) - max_subjects
        if hidden > 0:
            lines.append(f"  ... {hidden} more subject(s)")
        lines.append("")
    top = monitor.heavy.top()
    if top:
        lines.append(f"heavy hitters (top {len(top)}, sketch-estimated bytes)")
        for key, estimate in top:
            lines.append(f"  {estimate:>12d}  {key}")
        lines.append("")
    lines.append(monitor.timeline.describe())
    return "\n".join(lines) + "\n"


def render_html(monitor: "FabricMonitor", title: str = "fabric monitor") -> str:
    """Self-contained HTML page wrapping the text dashboard + raw data."""
    dashboard = html.escape(render_dashboard(monitor))
    rows = []
    for alert in monitor.alerts:
        rows.append(
            "<tr><td>{:.3f} ms</td><td>{}</td><td>{}</td><td>{}</td>"
            "<td>{:g}</td><td>{:g}</td></tr>".format(
                alert.time_ns / 1e6,
                html.escape(alert.category),
                html.escape(alert.subject),
                html.escape(alert.rule),
                alert.value,
                alert.threshold,
            )
        )
    alert_table = (
        "<table><tr><th>time</th><th>category</th><th>subject</th>"
        "<th>rule</th><th>value</th><th>threshold</th></tr>"
        + "".join(rows)
        + "</table>"
        if rows
        else "<p>no alerts raised</p>"
    )
    return (
        "<!DOCTYPE html>\n"
        "<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        "<style>body{font-family:monospace;background:#111;color:#ddd;"
        "padding:1em}pre{line-height:1.25}table{border-collapse:collapse}"
        "td,th{border:1px solid #444;padding:2px 8px;text-align:left}"
        "</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<pre>{dashboard}</pre>"
        "<h2>alerts</h2>"
        f"{alert_table}"
        "</body></html>\n"
    )
