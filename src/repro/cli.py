"""Command-line interface: run a crafted anomaly scenario and diagnose it.

Usage::

    python -m repro list
    python -m repro run incast-backpressure [--seed N] [--system hawkeye]
                                            [--epoch-us 1048] [--threshold 3.0]
                                            [--dot out.dot] [--metrics-json m.json]
    python -m repro trace pfc-storm [--seed N] [--jsonl out.jsonl] [--sim-events]
    python -m repro monitor pfc-storm [--seed N] [--interval-us 100]
                                      [--prom m.prom] [--jsonl snap.jsonl]
                                      [--html dash.html]
    python -m repro chaos [--loss-rates 0 0.05 0.1] [--chaos-seed N]
    python -m repro fuzz [--budget N] [--seed N] [--jobs N]
                         [--minimize] [--corpus DIR]

``run`` builds the scenario, attaches the chosen diagnosis system, runs
the simulation and prints the paper-style diagnosis report (optionally
dumping the provenance graph as Graphviz).  ``trace`` replays a scenario
with the tracer on and pretty-prints the causal span tree — trigger to
polling rounds to epoch reads to verdict — of every diagnosis.
``monitor`` replays a scenario with continuous fabric monitoring on and
renders the text dashboard plus the incident timeline (exit 3 when no
alert fired).  ``chaos`` sweeps control-path loss across the anomaly
scenarios under a seeded fault plan and reports how gracefully diagnosis
degrades.  ``fuzz`` runs the coverage-guided scenario fuzzer and writes
minimized finding reproducers to the persistent corpus.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .baselines import SystemKind
from .experiments import RunConfig, diagnosis_correct, run_scenario
from .units import usec
from .workloads import SCENARIO_BUILDERS


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _rate(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid rate: {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"rate must be in [0, 1], got {value}")
    return value


def _seed32(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if not 0 <= value < 2**32:
        raise argparse.ArgumentTypeError(
            f"seed must be in [0, 2**32), got {value}"
        )
    return value


def _corpus_dir(text: str) -> str:
    import os

    path = os.path.expanduser(text)
    if os.path.exists(path) and not os.path.isdir(path):
        raise argparse.ArgumentTypeError(
            f"corpus path exists and is not a directory: {text!r}"
        )
    parent = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(parent):
        raise argparse.ArgumentTypeError(
            f"corpus parent directory does not exist: {parent!r}"
        )
    return path


def _resolve_scenario_name(args: argparse.Namespace) -> Optional[str]:
    """Normalize and validate the scenario a replay subcommand was given.

    Shared by ``trace`` and ``monitor``: the scenario arrives positionally
    or as ``--scenario``, underscores are accepted for dashes, and an
    unknown name prints the menu.  Returns None (after printing the error)
    when no valid scenario was named.
    """
    name = getattr(args, "scenario_opt", None) or args.scenario
    if name is None:
        print(f"{args.command}: a scenario is required (positional or "
              f"--scenario)", file=sys.stderr)
        return None
    name = name.replace("_", "-")
    if name not in SCENARIO_BUILDERS:
        print(f"unknown scenario {name!r}; choose from "
              f"{', '.join(sorted(SCENARIO_BUILDERS))}", file=sys.stderr)
        return None
    return name


def _replay_scenario(name: str, seed: int, config: RunConfig):
    """Build the named scenario at ``seed`` and run it under ``config``."""
    scenario = SCENARIO_BUILDERS[name](seed=seed)
    return scenario, run_scenario(scenario, config)


def _write_metrics_json(path: Optional[str], result) -> None:
    if not path or result.metrics is None:
        return
    import json as _json

    with open(path, "w") as fh:
        _json.dump(result.metrics.to_dict(), fh, indent=2)
        fh.write("\n")
    print(f"metrics written to {path}")


def _add_replay_arguments(sub: argparse.ArgumentParser) -> None:
    """The scenario/seed arguments every replay subcommand accepts."""
    sub.add_argument("scenario", nargs="?", metavar="SCENARIO",
                     help="scenario to replay (also accepted as --scenario)")
    sub.add_argument("--scenario", dest="scenario_opt", metavar="SCENARIO",
                     help=argparse.SUPPRESS)
    sub.add_argument("--seed", type=int, default=1)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hawkeye reproduction: craft, run and diagnose RDMA NPAs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available anomaly scenarios")

    run = sub.add_parser("run", help="run one scenario end to end")
    run.add_argument("scenario", choices=sorted(SCENARIO_BUILDERS))
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--system",
        choices=[k.value for k in SystemKind],
        default=SystemKind.HAWKEYE.value,
        help="diagnosis system under test (default: hawkeye)",
    )
    run.add_argument("--epoch-us", type=_positive_float, default=1048.576,
                     help="telemetry epoch size in microseconds")
    run.add_argument("--threshold", type=_positive_float, default=3.0,
                     help="detection threshold as a multiple of base RTT")
    run.add_argument("--dot", metavar="FILE",
                     help="write the provenance graph as Graphviz DOT")
    run.add_argument("--perf-json", metavar="FILE",
                     help="write wall-clock/event-loop stats as JSON")
    run.add_argument("--metrics-json", metavar="FILE",
                     help="write the run's metrics registry "
                          "(counters/gauges/histograms) as JSON")
    run.add_argument("--profile", type=int, metavar="N", default=0,
                     help="profile the run and print the top N functions "
                          "by cumulative time (0 = off)")
    run.add_argument("--shards", type=_positive_int, default=1, metavar="N",
                     help="partition the fabric across N worker processes "
                          "(clamped to the CPU count and the topology's "
                          "pod groups; diagnoses are byte-identical to "
                          "--shards 1)")
    run.add_argument("--analyzer-jobs", type=_positive_int, default=1,
                     metavar="N",
                     help="fan the analysis plane (per-victim provenance "
                          "builds, per-epoch replay prewarm) across N "
                          "worker processes (clamped to the CPU count; "
                          "diagnoses are byte-identical to "
                          "--analyzer-jobs 1)")
    run.add_argument("--shard-timeout", type=_positive_float, default=None,
                     metavar="SECONDS",
                     help="watchdog deadline for any single shard/analyzer "
                          "worker reply (default: REPRO_SHARD_TIMEOUT or 60)")

    trace = sub.add_parser(
        "trace",
        help="replay a scenario with tracing on and print the causal span tree",
    )
    _add_replay_arguments(trace)
    trace.add_argument("--jsonl", metavar="FILE",
                       help="also stream every trace record to FILE as JSONL")
    trace.add_argument("--metrics-json", metavar="FILE",
                       help="write the run's metrics registry as JSON")
    trace.add_argument("--sim-events", action="store_true",
                       help="include per-packet sim events and PFC pause "
                            "spans (verbose)")
    trace.add_argument("--max-lines", type=_nonnegative_int, default=0,
                       help="truncate the rendered tree after N lines "
                            "(default: print everything)")

    monitor = sub.add_parser(
        "monitor",
        help="replay a scenario with continuous fabric monitoring and "
             "render the dashboard + incident timeline",
    )
    _add_replay_arguments(monitor)
    monitor.add_argument("--interval-us", type=_positive_float, default=100.0,
                         help="sampling cadence in microseconds (default 100)")
    monitor.add_argument("--trace", action="store_true",
                         help="also run the pipeline tracer so incidents "
                              "carry obs span ids")
    monitor.add_argument("--prom", metavar="FILE",
                         help="write Prometheus text exposition to FILE")
    monitor.add_argument("--jsonl", metavar="FILE",
                         help="write series/alert/incident snapshots as JSONL")
    monitor.add_argument("--html", metavar="FILE",
                         help="write the dashboard as a standalone HTML page")
    monitor.add_argument("--metrics-json", metavar="FILE",
                         help="write the run's metrics registry as JSON")

    sweep = sub.add_parser("sweep", help="grid-sweep parameters over scenarios")
    sweep.add_argument("scenarios", nargs="+", choices=sorted(SCENARIO_BUILDERS))
    sweep.add_argument("--systems", nargs="+",
                       choices=[k.value for k in SystemKind],
                       default=[SystemKind.HAWKEYE.value])
    sweep.add_argument("--epochs-us", nargs="+", type=_positive_float,
                       default=[1048.576])
    sweep.add_argument("--thresholds", nargs="+", type=_positive_float,
                       default=[3.0])
    sweep.add_argument("--seeds", type=_positive_int, default=2,
                       help="traces per grid cell (default 2)")
    sweep.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes for the sweep (default 1 = serial)")
    sweep.add_argument("--csv", metavar="FILE", help="write results as CSV")

    chaos = sub.add_parser(
        "chaos",
        help="sweep fault-injection loss rates across the anomaly scenarios",
    )
    # No ``choices=`` here: argparse rejects the empty list nargs="*"
    # produces when the positional is omitted; validated in _cmd_chaos.
    chaos.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                       help="scenarios to stress (default: the chaos five)")
    chaos.add_argument("--loss-rates", nargs="+", type=_rate,
                       default=[0.0, 0.05, 0.10, 0.25],
                       help="polling/report loss probabilities to sweep")
    chaos.add_argument("--chaos-seed", type=int, default=1,
                       help="fault-plan seed (incident log is a pure "
                            "function of seed + plan)")
    chaos.add_argument("--no-retries", action="store_true",
                       help="disable agent retransmission and DMA retries")
    chaos.add_argument("--shards", type=_positive_int, default=1, metavar="N",
                       help="run every cell on the sharded engine with N "
                            "worker processes (verdicts identical to "
                            "--shards 1)")
    chaos.add_argument("--json", metavar="FILE",
                       help="write per-cell outcomes as JSON")

    fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided scenario fuzzing beyond the paper's five "
             "anomaly classes",
    )
    fuzz.add_argument("--budget", type=_positive_int, default=100,
                      help="total scenario evaluations (default 100)")
    fuzz.add_argument("--seed", type=_seed32, default=1,
                      help="master fuzz seed; the whole campaign is a pure "
                           "function of it (default 1)")
    fuzz.add_argument("--jobs", type=_positive_int, default=1,
                      help="evaluation worker processes (results identical "
                           "to --jobs 1)")
    fuzz.add_argument("--generation", type=_positive_int, default=8,
                      help="evaluations composed per batch (default 8)")
    fuzz.add_argument("--minimize", action="store_true",
                      help="delta-debug each finding to a minimal "
                           "reproducer before reporting/saving it")
    fuzz.add_argument("--corpus", type=_corpus_dir, metavar="DIR",
                      help="write finding reproducers (genome + expected "
                           "fingerprint) as JSON under DIR")

    serve = sub.add_parser(
        "serve",
        help="run a long-lived multi-tenant diagnosis service over a "
             "continuously-monitored fabric",
    )
    serve.add_argument("scenario", nargs="?", default="pfc-storm",
                       choices=sorted(SCENARIO_BUILDERS),
                       help="scenario the fabric replays (default pfc-storm)")
    serve.add_argument("--seed", type=int, default=1,
                       help="episode 0 seed; episode k runs at seed+k")
    serve.add_argument("--unix", metavar="PATH",
                       help="listen on a unix socket at PATH")
    serve.add_argument("--port", type=_nonnegative_int, default=None,
                       help="listen on 127.0.0.1:PORT (0 = ephemeral)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default 127.0.0.1)")
    serve.add_argument("--episodes", type=_positive_int, default=None,
                       help="stop advancing after N episodes "
                            "(default: replay forever)")
    serve.add_argument("--slice-us", type=_positive_float, default=200.0,
                       help="sim time advanced per executor slice "
                            "(default 200)")
    serve.add_argument("--interval-us", type=_positive_float, default=100.0,
                       help="monitor sampling cadence (default 100)")
    serve.add_argument("--max-inflight", type=_positive_int, default=2,
                       help="admitted queries executing/waiting (default 2)")
    serve.add_argument("--max-queue", type=_nonnegative_int, default=32,
                       help="admitted queries queued beyond that "
                            "(default 32)")
    serve.add_argument("--tenant-rate", type=_positive_float, default=50.0,
                       help="per-tenant query tokens per second (default 50)")
    serve.add_argument("--tenant-burst", type=_positive_float, default=20.0,
                       help="per-tenant token bucket burst (default 20)")
    serve.add_argument("--sub-queue", type=_positive_int, default=256,
                       help="per-subscriber event queue bound (default 256)")
    return parser


def _cmd_list() -> int:
    for name in sorted(SCENARIO_BUILDERS):
        scenario = SCENARIO_BUILDERS[name](seed=1)
        print(f"{name:26s} {scenario.description}")
    return 0


def _resolve_shards(args: argparse.Namespace, scenario) -> int:
    """Clamp ``--shards`` to what the machine and topology can honor.

    More worker processes than CPUs time-share cores for no aggregate
    gain; more shards than partitionable pod groups is impossible by
    construction.  Both clamp with a warning rather than erroring, so
    scripted invocations stay portable across machine sizes.
    """
    shards = args.shards
    if shards <= 1:
        return 1
    import os

    cpus = os.cpu_count() or 1
    if shards > cpus:
        print(f"warning: --shards {shards} exceeds the {cpus} available "
              f"CPU(s); clamping to {cpus}", file=sys.stderr)
        shards = cpus
    if shards > 1:
        from .topology.partition import partition_topology

        plan = partition_topology(scenario.network.topology, shards)
        if plan.shards < shards:
            print(f"warning: --shards {shards} exceeds the topology's "
                  f"{plan.shards} partitionable pod group(s); clamping to "
                  f"{plan.shards}", file=sys.stderr)
            shards = plan.shards
    return shards


def _resolve_analyzer_jobs(args: argparse.Namespace) -> int:
    """Clamp ``--analyzer-jobs`` to the CPU count (warning, not an error).

    Unlike ``--shards`` there is no topology bound: victims and epochs are
    freely divisible work.
    """
    jobs = args.analyzer_jobs
    if jobs <= 1:
        return 1
    import os

    cpus = os.cpu_count() or 1
    if jobs > cpus:
        print(f"warning: --analyzer-jobs {jobs} exceeds the {cpus} available "
              f"CPU(s); clamping to {cpus}", file=sys.stderr)
        jobs = cpus
    return jobs


def _cmd_run(args: argparse.Namespace) -> int:
    builder = SCENARIO_BUILDERS[args.scenario]
    scenario = builder(seed=args.seed)
    config = RunConfig(
        system=SystemKind(args.system),
        epoch_size_ns=usec(args.epoch_us),
        threshold_multiplier=args.threshold,
        shards=_resolve_shards(args, scenario),
        analyzer_jobs=_resolve_analyzer_jobs(args),
        shard_timeout_s=args.shard_timeout,
    )
    print(f"scenario : {scenario.name}")
    print(f"           {scenario.description}")
    print(f"system   : {config.system.value}")
    if config.shards > 1:
        print(f"shards   : {config.shards} worker processes")
    if config.analyzer_jobs > 1:
        print(f"analyzer : {config.analyzer_jobs} worker processes")

    def _execute():
        if config.shards > 1:
            from .experiments import ScenarioSpec, run_scenario_sharded

            return run_scenario_sharded(
                ScenarioSpec(args.scenario, seed=args.seed), config
            )
        return run_scenario(scenario, config)

    if args.profile > 0:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = _execute()
        profiler.disable()
        print(f"\n-- profile: top {args.profile} by cumulative time --")
        pstats.Stats(profiler, stream=sys.stdout).sort_stats(
            "cumulative"
        ).print_stats(args.profile)
    else:
        result = _execute()

    outcome = result.primary_outcome()
    if outcome is None:
        print("\nno victim complained: nothing to diagnose")
        return 1
    print(f"\ntrigger  : {outcome.trigger.victim} at "
          f"t={outcome.trigger.time_ns / 1e6:.3f} ms")
    print(f"telemetry: {', '.join(sorted(outcome.reports_used))} "
          f"({result.processing_bytes:,} B; causal coverage "
          f"{result.causal_coverage:.0%})")
    print()
    print(outcome.diagnosis.describe())

    verdict = diagnosis_correct(outcome.diagnosis, scenario.truth)
    print(f"\nground truth: {scenario.truth.anomaly.value} -> "
          f"{'CORRECT' if verdict else 'INCORRECT'}")

    if args.dot and outcome.annotated is not None:
        with open(args.dot, "w") as fh:
            fh.write(outcome.annotated.graph.to_dot())
        print(f"provenance graph written to {args.dot}")

    if args.perf_json and result.perf is not None:
        from .experiments.perfstats import write_bench_json

        write_bench_json(args.perf_json, {"runs": [result.perf.to_dict()]})
        print(f"perf stats written to {args.perf_json} "
              f"({result.perf.events_per_sec:,.0f} events/s, "
              f"peak queue {result.perf.peak_pending_events})")
        for name, stats in sorted(result.perf.caches.items()):
            total = stats["hits"] + stats["misses"]
            rate = stats["hits"] / total if total else 0.0
            print(f"  cache {name:24s} {stats['hits']:>9,d} hits / "
                  f"{stats['misses']:>7,d} misses ({rate:.0%})")
        for name, count in sorted(result.perf.faults.items()):
            print(f"  fault {name:24s} {count:>9,d}")

    _write_metrics_json(args.metrics_json, result)
    return 0 if verdict else 2


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        ObsConfig,
        build_tree,
        check_causal_chains,
        render_tree,
        validate_records,
    )

    name = _resolve_scenario_name(args)
    if name is None:
        return 2
    obs_config = ObsConfig(
        trace=True,
        sink="jsonl" if args.jsonl else "ring",
        jsonl_path=args.jsonl,
        sim_events=args.sim_events,
    )
    scenario, result = _replay_scenario(name, args.seed, RunConfig(obs=obs_config))
    records = result.obs.tracer.records()
    roots, _ = build_tree(records)

    rendered = render_tree(roots)
    lines = rendered.splitlines()
    if args.max_lines and len(lines) > args.max_lines:
        print("\n".join(lines[: args.max_lines]))
        print(f"... ({len(lines) - args.max_lines} more lines; "
              f"re-run without --max-lines)")
    else:
        print(rendered)

    errors = validate_records(records)
    chains = check_causal_chains(records)
    complete = sum(1 for missing in chains.values() if not missing)
    unresolved = sum(
        1 for missing in chains.values() if missing == ["unresolved"]
    )
    broken = {
        victim: missing
        for victim, missing in chains.items()
        if missing and missing != ["unresolved"]
    }
    print(f"\n{len(records)} trace records; {len(chains)} diagnosis spans: "
          f"{complete} complete causal chains, {unresolved} unresolved "
          f"(no verdict before end of run), {len(broken)} broken")
    for victim, missing in sorted(broken.items()):
        print(f"  BROKEN {victim}: missing {', '.join(missing)}")
    for error in errors:
        print(f"  INVALID {error}")

    if args.jsonl:
        print(f"trace records written to {args.jsonl}")
    _write_metrics_json(args.metrics_json, result)
    return 2 if (errors or broken) else 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from .monitor import (
        MonitorConfig,
        jsonl_snapshot,
        prometheus_text,
        render_dashboard,
        render_html,
    )
    from .obs import ObsConfig

    name = _resolve_scenario_name(args)
    if name is None:
        return 2
    config = RunConfig(
        monitor=MonitorConfig(interval_ns=usec(args.interval_us)),
        obs=ObsConfig(trace=True, sink="ring") if args.trace else None,
    )
    scenario, result = _replay_scenario(name, args.seed, config)
    monitor = result.monitor

    print(f"scenario : {scenario.name}")
    print(f"           {scenario.description}")
    print()
    print(render_dashboard(monitor))

    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(prometheus_text(monitor))
        print(f"prometheus exposition written to {args.prom}")
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            for line in jsonl_snapshot(monitor):
                fh.write(line + "\n")
        print(f"monitor snapshots written to {args.jsonl}")
    if args.html:
        with open(args.html, "w") as fh:
            fh.write(render_html(monitor, title=f"fabric monitor: {name}"))
        print(f"dashboard written to {args.html}")
    _write_metrics_json(args.metrics_json, result)
    # A monitored anomaly scenario with zero alerts means the watchdogs
    # slept through it; CI treats that as a failure (exit 3).
    return 0 if monitor.alerts else 3


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import grid, run_sweep, write_csv
    from .workloads import SCENARIO_BUILDERS as builders

    points = grid(
        scenarios=args.scenarios,
        systems=[SystemKind(s) for s in args.systems],
        epoch_sizes_ns=[usec(e) for e in args.epochs_us],
        thresholds=args.thresholds,
    )
    jobs = max(1, args.jobs)
    suffix = f" across {jobs} workers" if jobs > 1 else ""
    print(f"sweeping {len(points)} cells x {args.seeds} seeds{suffix} ...")
    results = run_sweep(
        points,
        builders,
        seeds=range(1, args.seeds + 1),
        progress=lambda p: print(f"  done: {p.scenario} / {p.system.value} / "
                                 f"epoch={p.epoch_size_ns}ns / thr={p.threshold}"),
        jobs=jobs,
    )
    header = f"{'scenario':24s} {'system':13s} {'epoch':>9s} {'thr':>5s} {'prec':>6s} {'rec':>6s}"
    print("\n" + header)
    print("-" * len(header))
    for r in results:
        print(f"{r.point.scenario:24s} {r.point.system.value:13s} "
              f"{r.point.epoch_size_ns:>9d} {r.point.threshold:>5.1f} "
              f"{r.accuracy.precision:>6.2f} {r.accuracy.recall:>6.2f}")
    if args.csv:
        with open(args.csv, "w", newline="") as fh:
            rows = write_csv(results, fh)
        print(f"\n{rows} rows written to {args.csv}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import CHAOS_SCENARIOS, RetryPolicy, chaos_sweep, summarize

    for name in args.scenarios:
        if name not in SCENARIO_BUILDERS:
            print(f"unknown scenario {name!r}; choose from "
                  f"{', '.join(sorted(SCENARIO_BUILDERS))}", file=sys.stderr)
            return 2
    scenarios = tuple(args.scenarios) if args.scenarios else CHAOS_SCENARIOS
    retry = None if args.no_retries else RetryPolicy()
    sharded = f", shards {args.shards}" if args.shards > 1 else ""
    print(f"chaos sweep: {len(scenarios)} scenarios x "
          f"{len(args.loss_rates)} loss rates (fault seed {args.chaos_seed}, "
          f"retries {'off' if retry is None else 'on'}{sharded})")
    outcomes = chaos_sweep(
        scenarios=scenarios,
        loss_rates=tuple(args.loss_rates),
        seed=args.chaos_seed,
        retry=retry,
        shards=args.shards,
    )
    header = (f"{'scenario':24s} {'loss':>6s} {'verdict':>9s} "
              f"{'confidence':>10s} {'complete':>8s} {'incidents':>9s}")
    print("\n" + header)
    print("-" * len(header))
    for o in outcomes:
        if o.crashed:
            verdict = "CRASH"
        elif not o.diagnosed:
            verdict = "none"
        else:
            verdict = "correct" if o.correct else "wrong"
        incidents = sum(o.fault_counters.values())
        print(f"{o.scenario:24s} {o.loss_rate:>6.0%} {verdict:>9s} "
              f"{o.confidence:>10s} {o.completeness:>8.0%} {incidents:>9d}")
    tally = summarize(outcomes)
    print(f"\n{tally['cells']} cells: {tally['correct']} correct "
          f"({tally['degraded']} degraded confidence), "
          f"{tally['no_verdict']} no verdict, {tally['crashed']} crashed, "
          f"{tally['wrong_full_confidence']} wrong-at-full-confidence")
    if args.json:
        import json as _json

        payload = {
            "seed": args.chaos_seed,
            "summary": tally,
            "cells": [
                {
                    "scenario": o.scenario,
                    "loss_rate": o.loss_rate,
                    "diagnosed": o.diagnosed,
                    "correct": o.correct,
                    "confidence": o.confidence,
                    "completeness": o.completeness,
                    "fault_counters": dict(o.fault_counters),
                    "error": o.error,
                }
                for o in outcomes
            ],
        }
        with open(args.json, "w") as fh:
            _json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"outcomes written to {args.json}")
    if tally["crashed"] or tally["wrong_full_confidence"]:
        return 2
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import (
        FuzzConfig,
        entry_from_evaluation,
        evaluate_genome,
        minimize,
        run_fuzz,
        save_entry,
    )

    config = FuzzConfig(
        budget=args.budget,
        seed=args.seed,
        jobs=args.jobs,
        generation=args.generation,
    )
    suffix = f" across {config.jobs} workers" if config.jobs > 1 else ""
    print(f"fuzzing: budget {config.budget}, seed {config.seed}, "
          f"generation {config.generation}{suffix}")

    def _progress(evaluated: int, report) -> None:
        print(f"  {evaluated:>4d}/{config.budget} evaluated, "
              f"{len(report.retained)} coverage points, "
              f"{len(report.findings)} findings")

    report = run_fuzz(config, progress=_progress)

    findings = report.findings
    print(f"\n{report.evaluated} scenarios evaluated: "
          f"{len(report.retained)} distinct coverage points, "
          f"{len(findings)} findings")
    if args.minimize and findings:
        run_config = config.run_config()
        minimized = []
        for evaluation in findings:
            print(f"  minimizing {evaluation.observation.verdict} "
                  f"[{evaluation.fingerprint[:10]}] ...")
            genome = minimize(
                evaluation.genome, evaluation.fingerprint,
                run_config=run_config,
            )
            minimized.append(evaluate_genome(genome, run_config))
        findings = minimized

    header = f"{'verdict':36s} {'fingerprint':>12s}  interest"
    print("\n" + header)
    print("-" * len(header))
    for evaluation in findings:
        print(f"{evaluation.observation.verdict:36s} "
              f"{evaluation.fingerprint[:12]:>12s}  "
              f"{', '.join(evaluation.interest)}")

    if args.corpus:
        provenance = {
            "budget": config.budget,
            "seed": config.seed,
            "minimized": bool(args.minimize),
        }
        for evaluation in findings:
            path = save_entry(
                args.corpus,
                entry_from_evaluation(evaluation, provenance=provenance),
            )
            print(f"reproducer written to {path}")
    # A campaign that surfaced nothing beyond routine coverage exits 3,
    # mirroring ``monitor``'s no-alert convention.
    return 0 if findings else 3


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import DiagnosisService, ServeConfig

    if args.unix is None and args.port is None:
        print("serve: need --unix PATH or --port PORT", file=sys.stderr)
        return 2

    config = ServeConfig(
        scenario=args.scenario,
        seed=args.seed,
        episodes=args.episodes,
        slice_us=args.slice_us,
        interval_us=args.interval_us,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        tenant_rate_per_s=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        sub_queue=args.sub_queue,
    )

    async def _serve() -> None:
        service = DiagnosisService(config)
        await service.start(
            unix_path=args.unix, host=args.host, port=args.port
        )
        for address in service.addresses:
            print(f"serving {config.scenario} on {address}", flush=True)
        await service.run_until_signalled()
        print("serve: shut down cleanly", flush=True)

    asyncio.run(_serve())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "monitor":
        return _cmd_monitor(args)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
