"""Deterministic fault plans for the collection pipeline.

Hawkeye's control loop — agent trigger, polling packet, CPU mirror,
register DMA, report shipping, analysis — rides the very fabric it
diagnoses.  A :class:`FaultPlan` describes, as seeded probabilities, the
ways each hop can fail in production:

- polling packets crossing PFC-paused ports are lost or corrupted
  (lossy control VLAN sharing the congested lossless class);
- report packets from the switch CPU are best-effort UDP: lost,
  truncated by MTU pressure, delayed or reordered;
- the switch-CPU register DMA fails outright or returns a stale window
  (Tofino REGISTER_SYNC contention with other control-plane readers);
- the DPU agent restarts, losing its RTT state and missing triggers;
- per-switch clocks skew, so report timestamps disagree.

A plan is pure data (frozen, picklable); all randomness lives in the
:class:`~repro.faults.injector.FaultInjector` built from it, which draws
from per-category streams seeded by ``seed`` so the same plan always
yields the same incident sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from ..units import usec

_RATE_FIELDS = (
    "polling_loss_rate",
    "polling_corrupt_rate",
    "report_loss_rate",
    "report_truncate_rate",
    "report_delay_rate",
    "dma_failure_rate",
    "dma_stale_rate",
    "agent_restart_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of every fault the chaos harness can inject."""

    seed: int = 1

    # -- polling packets (in the data plane, per switch hop) ----------------
    polling_loss_rate: float = 0.0
    polling_corrupt_rate: float = 0.0  # CRC-failed packets are discarded

    # -- report packets (switch CPU -> analyzer, best effort) ---------------
    report_loss_rate: float = 0.0
    report_truncate_rate: float = 0.0  # MTU pressure: only the newest epoch survives
    report_delay_rate: float = 0.0
    report_delay_max_ns: int = usec(500)

    # -- switch-CPU register collection -------------------------------------
    dma_failure_rate: float = 0.0
    dma_stale_rate: float = 0.0
    dma_stale_age_ns: int = usec(500)

    # -- host agent ----------------------------------------------------------
    agent_restart_rate: float = 0.0  # per stall-check tick
    agent_restart_blackout_ns: int = usec(100)

    # -- clocks --------------------------------------------------------------
    clock_skew_max_ns: int = 0  # per-switch constant offset in [-max, +max]

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in ("report_delay_max_ns", "dma_stale_age_ns",
                     "agent_restart_blackout_ns", "clock_skew_max_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def enabled(self) -> bool:
        """Does this plan inject anything at all?"""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS) or (
            self.clock_skew_max_ns > 0
        )

    @classmethod
    def lossy(cls, loss_rate: float, seed: int = 1) -> "FaultPlan":
        """The canonical chaos-sweep plan: symmetric control-path loss.

        Polling packets and report packets are dropped independently with
        the same probability — the two directions of the control loop share
        the congested fabric.
        """
        return cls(
            seed=seed,
            polling_loss_rate=loss_rate,
            report_loss_rate=loss_rate,
        )

    def describe(self) -> str:
        active = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if f.name != "seed" and getattr(self, f.name) != f.default
        ]
        return f"FaultPlan(seed={self.seed}" + (
            ", " + ", ".join(active) if active else ""
        ) + ")"


@dataclass(frozen=True)
class RetryPolicy:
    """End-to-end reliability knobs for the collection pipeline.

    The agent retransmits a victim's polling packet when no report has
    been delivered within ``report_timeout_ns``, backing off exponentially
    with seeded jitter; the collector retries failed register DMA reads on
    a bounded budget.  All timers are sim-time, so runs stay deterministic.
    """

    # Agent-side polling retransmission.
    report_timeout_ns: int = usec(300)
    max_retries: int = 3
    backoff_factor: float = 2.0
    jitter_ns: int = usec(20)  # uniform [0, jitter_ns), drawn from the plan seed

    # Collector-side DMA retries.
    dma_retry_budget: int = 3
    dma_retry_delay_ns: int = usec(50)

    def __post_init__(self) -> None:
        if self.report_timeout_ns <= 0:
            raise ValueError("report_timeout_ns must be positive")
        if self.max_retries < 0 or self.dma_retry_budget < 0:
            raise ValueError("retry budgets must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.jitter_ns < 0 or self.dma_retry_delay_ns < 0:
            raise ValueError("delays must be >= 0")

    def backoff_ns(self, attempt: int) -> int:
        """Deterministic (pre-jitter) wait before retry ``attempt`` (1-based)."""
        return int(self.report_timeout_ns * self.backoff_factor ** (attempt - 1))


def plan_or_none(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Normalize: a plan that injects nothing is treated as no plan at all,
    keeping the fault-free hot path free of per-event injector calls."""
    if plan is None or not plan.enabled:
        return None
    return plan
