"""Seeded fault injection for the collection pipeline.

A :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into per-event decisions.  Every fault category draws from its own
``random.Random`` stream (seeded from the plan seed and the category
name), so adding a new category — or a hook that consults one category
more often — never perturbs the draw sequence of the others.  Combined
with the simulator's deterministic event order this makes the full
incident log a pure function of (scenario seed, fault plan).

Each decision is recorded twice: as a counter in :attr:`FaultInjector.stats`
(surfaced through ``PerfStats``/``--perf-json``) and as a
:class:`FaultIncident` in the ordered incident log (what the determinism
tests compare).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .plan import FaultPlan

# Fate constants for the DMA read and report channel decisions.
DMA_OK = "ok"
DMA_FAIL = "fail"
DMA_STALE = "stale"

REPORT_OK = "ok"
REPORT_LOST = "lost"
REPORT_TRUNCATED = "truncated"
REPORT_DELAYED = "delayed"


@dataclass(frozen=True)
class FaultIncident:
    """One injected fault, in simulation order."""

    time_ns: int
    kind: str
    where: str
    detail: str = ""

    def describe(self) -> str:
        text = f"t={self.time_ns} {self.kind} @ {self.where}"
        return f"{text} ({self.detail})" if self.detail else text


class FaultInjector:
    """Draws fault decisions from a plan's seeded category streams."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats: Dict[str, int] = {}
        self.incidents: List[FaultIncident] = []
        self._streams: Dict[str, random.Random] = {}
        self._skew: Dict[str, int] = {}

    # -- stream plumbing ------------------------------------------------------

    def _stream(self, category: str) -> random.Random:
        rng = self._streams.get(category)
        if rng is None:
            # String seeds hash via SHA-512 inside random.seed(): stable
            # across processes and interpreter runs (unlike hash()).
            rng = random.Random(f"{self.plan.seed}/{category}")
            self._streams[category] = rng
        return rng

    def _record(self, time_ns: int, kind: str, where: str, detail: str = "") -> None:
        self.stats[kind] = self.stats.get(kind, 0) + 1
        self.incidents.append(FaultIncident(time_ns, kind, where, detail))

    def incident_log(self) -> List[str]:
        """The ordered, human-readable incident log (determinism anchor)."""
        return [incident.describe() for incident in self.incidents]

    def count(self, kind: str, where: str = "-", time_ns: int = 0, detail: str = "") -> None:
        """Record a pipeline-reliability event (retry, abandonment) that is
        a *consequence* of injected faults, so it lands in the same log."""
        self._record(time_ns, kind, where, detail)

    # -- polling packets ------------------------------------------------------

    def polling_fate(self, now: int, switch_name: str) -> bool:
        """Does this polling packet survive the hop into ``switch_name``?

        Loss and corruption are both terminal for the packet (a corrupted
        polling header fails the switch's CRC/parse and is discarded), but
        they are counted separately — corruption is evidence of a marginal
        link rather than congestion drop.
        """
        plan = self.plan
        if plan.polling_loss_rate > 0.0:
            if self._stream("polling_loss").random() < plan.polling_loss_rate:
                self._record(now, "polling_packet_lost", switch_name)
                return False
        if plan.polling_corrupt_rate > 0.0:
            if self._stream("polling_corrupt").random() < plan.polling_corrupt_rate:
                self._record(now, "polling_packet_corrupted", switch_name)
                return False
        return True

    # -- switch-CPU register DMA ----------------------------------------------

    def dma_fate(self, now: int, switch_name: str) -> str:
        """Outcome of one register DMA read attempt."""
        plan = self.plan
        if plan.dma_failure_rate > 0.0:
            if self._stream("dma_fail").random() < plan.dma_failure_rate:
                self._record(now, "dma_read_failed", switch_name)
                return DMA_FAIL
        if plan.dma_stale_rate > 0.0:
            if self._stream("dma_stale").random() < plan.dma_stale_rate:
                self._record(
                    now, "dma_read_stale", switch_name,
                    f"age={plan.dma_stale_age_ns}ns",
                )
                return DMA_STALE
        return DMA_OK

    # -- report channel --------------------------------------------------------

    def report_fate(self, now: int, switch_name: str) -> Tuple[str, int]:
        """Outcome for one report packet; returns ``(fate, delay_ns)``."""
        plan = self.plan
        if plan.report_loss_rate > 0.0:
            if self._stream("report_loss").random() < plan.report_loss_rate:
                self._record(now, "report_lost", switch_name)
                return REPORT_LOST, 0
        if plan.report_truncate_rate > 0.0:
            if self._stream("report_truncate").random() < plan.report_truncate_rate:
                self._record(now, "report_truncated", switch_name)
                return REPORT_TRUNCATED, 0
        if plan.report_delay_rate > 0.0:
            if self._stream("report_delay").random() < plan.report_delay_rate:
                delay = self._stream("report_delay_ns").randrange(
                    1, max(2, plan.report_delay_max_ns)
                )
                self._record(now, "report_delayed", switch_name, f"delay={delay}ns")
                return REPORT_DELAYED, delay
        return REPORT_OK, 0

    # -- agent -----------------------------------------------------------------

    def agent_restart_due(self, now: int) -> bool:
        """Checked once per agent stall-check tick."""
        plan = self.plan
        if plan.agent_restart_rate <= 0.0:
            return False
        if self._stream("agent_restart").random() < plan.agent_restart_rate:
            self._record(
                now, "agent_restarted", "agent",
                f"blackout={plan.agent_restart_blackout_ns}ns",
            )
            return True
        return False

    def retry_jitter(self, max_ns: int) -> int:
        """Seeded jitter for the agent's retransmission backoff."""
        if max_ns <= 0:
            return 0
        return self._stream("retry_jitter").randrange(0, max_ns)

    # -- clocks ----------------------------------------------------------------

    def clock_skew_for(self, switch_name: str) -> int:
        """The constant clock offset of one switch (memoized per switch).

        Drawn from a stream keyed by the switch *name*, not draw order, so
        every switch's skew is independent of which switch is asked first.
        """
        if self.plan.clock_skew_max_ns <= 0:
            return 0
        skew = self._skew.get(switch_name)
        if skew is None:
            rng = random.Random(f"{self.plan.seed}/skew/{switch_name}")
            max_ns = self.plan.clock_skew_max_ns
            skew = rng.randint(-max_ns, max_ns)
            self._skew[switch_name] = skew
            if skew != 0:
                self._record(0, "clock_skewed", switch_name, f"skew={skew}ns")
        return skew


def make_injector(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Build an injector, or ``None`` for an absent/no-op plan — call sites
    guard on ``None`` so the fault-free hot path pays a single comparison."""
    if plan is None or not plan.enabled:
        return None
    return FaultInjector(plan)
