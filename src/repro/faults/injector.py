"""Seeded fault injection for the collection pipeline.

A :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into per-event decisions.  Every fault category draws from its own
``random.Random`` stream keyed by ``(category, entity)`` — the entity is
the switch (or victim flow) the decision is about — so adding a new
category, consulting one category more often, *or partitioning the
fabric across shard workers* never perturbs the draw sequence of the
others.  Entity keying is what makes sharded chaos deterministic: a
switch's fault stream is identical whether it is simulated in-process or
inside any shard worker, so the merged incident log is a pure function
of (scenario seed, fault plan) at every shard count.

Each decision is recorded twice: as a counter in :attr:`FaultInjector.stats`
(surfaced through ``PerfStats``/``--perf-json``) and as a
:class:`FaultIncident` in the incident log.  ``incident_log()`` renders
the log in canonical ``(time, where, kind, detail)`` order — the order
the sharded merge reproduces — which the determinism tests compare.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .plan import FaultPlan

# Fate constants for the DMA read and report channel decisions.
DMA_OK = "ok"
DMA_FAIL = "fail"
DMA_STALE = "stale"

REPORT_OK = "ok"
REPORT_LOST = "lost"
REPORT_TRUNCATED = "truncated"
REPORT_DELAYED = "delayed"


@dataclass(frozen=True)
class FaultIncident:
    """One injected fault, in simulation order."""

    time_ns: int
    kind: str
    where: str
    detail: str = ""

    def describe(self) -> str:
        text = f"t={self.time_ns} {self.kind} @ {self.where}"
        return f"{text} ({self.detail})" if self.detail else text

    def sort_key(self) -> Tuple[int, str, str, str]:
        return (self.time_ns, self.where, self.kind, self.detail)


class FaultInjector:
    """Draws fault decisions from a plan's seeded per-entity streams.

    ``shard_id`` is provenance only: it never enters a seed string, so a
    shard worker's decisions for its switches match the single-process
    run exactly.  The one genuinely fabric-global stream — agent restarts
    — is keyed by a fixed entity (``"agent"``); every shard draws the
    identical sequence (stall ticks fire on the same cadence in every
    worker), so restarts and blackout windows agree across the fleet and
    the merge keeps a single copy.
    """

    def __init__(self, plan: FaultPlan, shard_id: Optional[int] = None) -> None:
        self.plan = plan
        self.shard_id = shard_id
        self.stats: Dict[str, int] = {}
        self.incidents: List[FaultIncident] = []
        self._streams: Dict[Tuple[str, str], random.Random] = {}
        self._skew: Dict[str, int] = {}

    # -- stream plumbing ------------------------------------------------------

    def _stream(self, category: str, entity: str) -> random.Random:
        key = (category, entity)
        rng = self._streams.get(key)
        if rng is None:
            # String seeds hash via SHA-512 inside random.seed(): stable
            # across processes and interpreter runs (unlike hash()).
            rng = random.Random(f"{self.plan.seed}/{category}/{entity}")
            self._streams[key] = rng
        return rng

    def _record(self, time_ns: int, kind: str, where: str, detail: str = "") -> None:
        self.stats[kind] = self.stats.get(kind, 0) + 1
        self.incidents.append(FaultIncident(time_ns, kind, where, detail))

    def incident_log(self) -> List[str]:
        """The canonically ordered, human-readable incident log.

        Sorted by ``(time, where, kind, detail)`` rather than raw record
        order so a merged multi-shard log and a single-process log are
        string-identical (the determinism anchor).
        """
        return [
            incident.describe()
            for incident in sorted(self.incidents, key=FaultIncident.sort_key)
        ]

    def count(self, kind: str, where: str = "-", time_ns: int = 0, detail: str = "") -> None:
        """Record a pipeline-reliability event (retry, abandonment) that is
        a *consequence* of injected faults, so it lands in the same log."""
        self._record(time_ns, kind, where, detail)

    # -- polling packets ------------------------------------------------------

    def polling_fate(self, now: int, switch_name: str) -> bool:
        """Does this polling packet survive the hop into ``switch_name``?

        Loss and corruption are both terminal for the packet (a corrupted
        polling header fails the switch's CRC/parse and is discarded), but
        they are counted separately — corruption is evidence of a marginal
        link rather than congestion drop.
        """
        plan = self.plan
        if plan.polling_loss_rate > 0.0:
            if self._stream("polling_loss", switch_name).random() < plan.polling_loss_rate:
                self._record(now, "polling_packet_lost", switch_name)
                return False
        if plan.polling_corrupt_rate > 0.0:
            if self._stream("polling_corrupt", switch_name).random() < plan.polling_corrupt_rate:
                self._record(now, "polling_packet_corrupted", switch_name)
                return False
        return True

    # -- switch-CPU register DMA ----------------------------------------------

    def dma_fate(self, now: int, switch_name: str) -> str:
        """Outcome of one register DMA read attempt."""
        plan = self.plan
        if plan.dma_failure_rate > 0.0:
            if self._stream("dma_fail", switch_name).random() < plan.dma_failure_rate:
                self._record(now, "dma_read_failed", switch_name)
                return DMA_FAIL
        if plan.dma_stale_rate > 0.0:
            if self._stream("dma_stale", switch_name).random() < plan.dma_stale_rate:
                self._record(
                    now, "dma_read_stale", switch_name,
                    f"age={plan.dma_stale_age_ns}ns",
                )
                return DMA_STALE
        return DMA_OK

    # -- report channel --------------------------------------------------------

    def report_fate(self, now: int, switch_name: str) -> Tuple[str, int]:
        """Outcome for one report packet; returns ``(fate, delay_ns)``."""
        plan = self.plan
        if plan.report_loss_rate > 0.0:
            if self._stream("report_loss", switch_name).random() < plan.report_loss_rate:
                self._record(now, "report_lost", switch_name)
                return REPORT_LOST, 0
        if plan.report_truncate_rate > 0.0:
            if self._stream("report_truncate", switch_name).random() < plan.report_truncate_rate:
                self._record(now, "report_truncated", switch_name)
                return REPORT_TRUNCATED, 0
        if plan.report_delay_rate > 0.0:
            if self._stream("report_delay", switch_name).random() < plan.report_delay_rate:
                delay = self._stream("report_delay_ns", switch_name).randrange(
                    1, max(2, plan.report_delay_max_ns)
                )
                self._record(now, "report_delayed", switch_name, f"delay={delay}ns")
                return REPORT_DELAYED, delay
        return REPORT_OK, 0

    # -- agent -----------------------------------------------------------------

    def agent_restart_due(self, now: int) -> bool:
        """Checked once per agent stall-check tick."""
        plan = self.plan
        if plan.agent_restart_rate <= 0.0:
            return False
        if self._stream("agent_restart", "agent").random() < plan.agent_restart_rate:
            self._record(
                now, "agent_restarted", "agent",
                f"blackout={plan.agent_restart_blackout_ns}ns",
            )
            return True
        return False

    def retry_jitter(self, max_ns: int, victim: str = "-") -> int:
        """Seeded jitter for one victim's retransmission backoff.

        Keyed by the victim flow so concurrent victims homed on different
        shards draw the same jitter they would draw in-process.
        """
        if max_ns <= 0:
            return 0
        return self._stream("retry_jitter", victim).randrange(0, max_ns)

    # -- clocks ----------------------------------------------------------------

    def clock_skew_for(self, switch_name: str) -> int:
        """The constant clock offset of one switch (memoized per switch).

        Drawn from a stream keyed by the switch *name*, not draw order, so
        every switch's skew is independent of which switch is asked first.
        """
        if self.plan.clock_skew_max_ns <= 0:
            return 0
        skew = self._skew.get(switch_name)
        if skew is None:
            rng = random.Random(f"{self.plan.seed}/skew/{switch_name}")
            max_ns = self.plan.clock_skew_max_ns
            skew = rng.randint(-max_ns, max_ns)
            self._skew[switch_name] = skew
            if skew != 0:
                self._record(0, "clock_skewed", switch_name, f"skew={skew}ns")
        return skew


def make_injector(
    plan: Optional[FaultPlan], shard_id: Optional[int] = None
) -> Optional[FaultInjector]:
    """Build an injector, or ``None`` for an absent/no-op plan — call sites
    guard on ``None`` so the fault-free hot path pays a single comparison."""
    if plan is None or not plan.enabled:
        return None
    return FaultInjector(plan, shard_id=shard_id)


def merge_shard_incidents(
    per_shard: Sequence[Optional[Iterable[FaultIncident]]],
) -> Tuple[List[FaultIncident], Dict[str, int]]:
    """Canonically merge per-shard incident logs into one fabric-wide log.

    Every incident is entity-homed on exactly one shard — except
    ``agent_restarted``, which every shard draws identically from the
    shared agent stream; those are taken from the first shard that
    reports any so the merged log holds a single copy.  The merge sorts
    by :meth:`FaultIncident.sort_key` (matching the single-process
    ``incident_log()`` order) and recomputes the stats counters from the
    merged log, so ``shards=N`` and ``shards=1`` agree string-for-string
    and count-for-count.  ``None`` entries (lost shards on a degraded
    run) are skipped.
    """
    merged: List[FaultIncident] = []
    for incidents in per_shard:
        if incidents is None:
            continue
        merged.extend(i for i in incidents if i.kind != "agent_restarted")
    for incidents in per_shard:
        if incidents is None:
            continue
        restarts = [i for i in incidents if i.kind == "agent_restarted"]
        if restarts:
            merged.extend(restarts)
            break
    merged.sort(key=FaultIncident.sort_key)
    stats: Dict[str, int] = {}
    for incident in merged:
        stats[incident.kind] = stats.get(incident.kind, 0) + 1
    return merged, stats
