"""Chaos harness: sweep fault intensity across the anomaly scenarios.

For each (scenario, loss-rate) cell the harness runs the full pipeline
under a seeded :class:`~repro.faults.plan.FaultPlan` and records whether
the diagnosis survived, degraded gracefully, or went missing.  The hard
robustness contract it checks (and the chaos test suite asserts):

- the pipeline never raises — a cell that crashes is recorded as an
  ``error`` outcome, which the tests treat as failure;
- a *wrong* verdict is only ever emitted with degraded confidence: the
  completeness/confidence qualification must flag every diagnosis whose
  telemetry was incomplete or fault-marked.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .plan import FaultPlan, RetryPolicy

# The five anomaly classes of Table 2 the chaos acceptance gate covers.
CHAOS_SCENARIOS = (
    "incast-backpressure",
    "pfc-storm",
    "in-loop-deadlock",
    "out-of-loop-deadlock",
    "normal-contention",
)


@dataclass
class ChaosOutcome:
    """One (scenario, loss-rate) cell of the chaos sweep."""

    scenario: str
    loss_rate: float
    seed: int
    diagnosed: Optional[str] = None  # primary anomaly value, None = no verdict
    correct: bool = False
    confidence: str = "full"
    completeness: float = 1.0
    fault_counters: Dict[str, int] = field(default_factory=dict)
    incident_log: List[str] = field(default_factory=list)
    error: Optional[str] = None
    # Per-stage wall seconds of this cell's run (PerfStats.stages), so the
    # chaos harness shows where fault handling spends its time.
    stage_wall_s: Dict[str, float] = field(default_factory=dict)

    @property
    def crashed(self) -> bool:
        return self.error is not None

    @property
    def wrong_full_confidence(self) -> bool:
        """The one outcome the pipeline must never produce: a wrong verdict
        asserted without any degradation qualifier."""
        return (
            not self.crashed
            and self.diagnosed is not None
            and not self.correct
            and self.confidence == "full"
        )


def run_chaos_cell(
    scenario_name: str,
    plan: FaultPlan,
    retry: Optional[RetryPolicy],
    loss_rate: float,
    obs=None,
    shards: int = 1,
) -> ChaosOutcome:
    """Run one scenario under one fault plan; never raises.

    ``obs`` (an :class:`~repro.obs.pipeline.ObsConfig`) turns tracing on
    for the cell — the chaos trace-invariant tests use it to assert that
    faults *flag* causal chains as degraded but never delete them.
    ``shards > 1`` runs the cell on the sharded engine (per-shard fault
    injection; verdicts identical to in-process).
    """
    # Deferred: repro.experiments.runner imports repro.faults.plan.
    from ..experiments.metrics import diagnosis_correct
    from ..experiments.runner import RunConfig, ScenarioSpec, run_scenario
    from ..workloads import SCENARIO_BUILDERS

    outcome = ChaosOutcome(
        scenario=scenario_name, loss_rate=loss_rate, seed=plan.seed
    )
    try:
        config = RunConfig(faults=plan, retry=retry, obs=obs, shards=shards)
        if shards > 1:
            from ..experiments.shardrun import run_scenario_sharded

            result = run_scenario_sharded(
                ScenarioSpec(scenario_name, seed=plan.seed), config
            )
            scenario = result.scenario
        else:
            scenario = SCENARIO_BUILDERS[scenario_name](seed=plan.seed)
            result = run_scenario(scenario, config)
        primary = result.primary_outcome()
        if primary is not None and primary.diagnosis is not None:
            diagnosis = primary.diagnosis
            outcome.diagnosed = diagnosis.anomaly.value
            outcome.correct = diagnosis_correct(diagnosis, scenario.truth)
            outcome.confidence = diagnosis.confidence
            outcome.completeness = diagnosis.completeness
        outcome.fault_counters = dict(result.fault_counters)
        outcome.incident_log = list(result.fault_incidents)
        if result.perf is not None:
            outcome.stage_wall_s = {
                name: s["wall_s"] for name, s in result.perf.stages.items()
            }
    except Exception:  # noqa: BLE001 - the whole point is "never crashes"
        outcome.error = traceback.format_exc()
    return outcome


def chaos_sweep(
    scenarios: Sequence[str] = CHAOS_SCENARIOS,
    loss_rates: Iterable[float] = (0.0, 0.05, 0.10, 0.25),
    seed: int = 1,
    retry: Optional[RetryPolicy] = RetryPolicy(),
    extra_plan_kwargs: Optional[Dict] = None,
    obs=None,
    shards: int = 1,
) -> List[ChaosOutcome]:
    """Sweep loss rates across scenarios under a fixed seed.

    ``extra_plan_kwargs`` lets callers add non-loss faults (DMA failures,
    clock skew, agent restarts) on top of the canonical lossy plan;
    ``obs`` (an :class:`~repro.obs.pipeline.ObsConfig`) traces every cell;
    ``shards`` runs every cell on the sharded engine.
    """
    outcomes: List[ChaosOutcome] = []
    for loss_rate in loss_rates:
        for name in scenarios:
            kwargs = dict(
                seed=seed,
                polling_loss_rate=loss_rate,
                report_loss_rate=loss_rate,
            )
            if extra_plan_kwargs:
                kwargs.update(extra_plan_kwargs)
            plan = FaultPlan(**kwargs)
            outcomes.append(
                run_chaos_cell(name, plan, retry, loss_rate, obs=obs, shards=shards)
            )
    return outcomes


def summarize(outcomes: Sequence[ChaosOutcome]) -> Dict[str, int]:
    """Sweep-level tallies for the CLI footer and the smoke tests."""
    return {
        "cells": len(outcomes),
        "correct": sum(1 for o in outcomes if o.correct),
        "degraded": sum(1 for o in outcomes if o.confidence != "full"),
        "no_verdict": sum(
            1 for o in outcomes if o.diagnosed is None and not o.crashed
        ),
        "crashed": sum(1 for o in outcomes if o.crashed),
        "wrong_full_confidence": sum(
            1 for o in outcomes if o.wrong_full_confidence
        ),
    }
