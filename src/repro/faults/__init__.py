"""Deterministic fault injection and chaos testing for the collection
pipeline (polling packets, register DMA, report channel, agent, clocks)."""

from .chaos import CHAOS_SCENARIOS, ChaosOutcome, chaos_sweep, run_chaos_cell, summarize
from .injector import (
    DMA_FAIL,
    DMA_OK,
    DMA_STALE,
    REPORT_DELAYED,
    REPORT_LOST,
    REPORT_OK,
    REPORT_TRUNCATED,
    FaultIncident,
    FaultInjector,
    make_injector,
)
from .plan import FaultPlan, RetryPolicy, plan_or_none

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosOutcome",
    "chaos_sweep",
    "run_chaos_cell",
    "summarize",
    "DMA_FAIL",
    "DMA_OK",
    "DMA_STALE",
    "REPORT_DELAYED",
    "REPORT_LOST",
    "REPORT_OK",
    "REPORT_TRUNCATED",
    "FaultIncident",
    "FaultInjector",
    "make_injector",
    "FaultPlan",
    "RetryPolicy",
    "plan_or_none",
]
