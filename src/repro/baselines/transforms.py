"""Visibility transforms modelling what each baseline's telemetry can see.

The evaluation's baselines differ along two axes: *which switches* they
collect from (a collection strategy, see the runner) and *what their
records contain* (a visibility limitation).  The transforms below apply the
visibility limitations to full reports, so every system is diagnosed by the
same Algorithm 1/2 machinery operating on exactly the data that system
would have had:

- ``strip_flow_telemetry``  — port-level-only systems (Fig 10): PFC paths
  are traceable but flow root causes are invisible.
- ``strip_port_causality``  — flow-level-only systems (Fig 10): flow impact
  is visible but PFC spreading cannot be traced.
- ``strip_pfc_visibility``  — traditional TCP-era systems (SpiderMon,
  NetSight): no PFC counters, no causality meters; only classic queue
  contention is observable.
"""

from __future__ import annotations

from ..telemetry.records import EpochData
from ..telemetry.snapshot import SwitchReport


def _copy_shell(report: SwitchReport) -> SwitchReport:
    return SwitchReport(
        switch=report.switch,
        collect_time=report.collect_time,
        port_status=dict(report.port_status),
        faults=report.faults,
    )


def strip_flow_telemetry(report: SwitchReport) -> SwitchReport:
    """Keep port counters and causality meters; drop all flow entries."""
    out = _copy_shell(report)
    for epoch in report.epochs:
        out.epochs.append(
            EpochData(
                epoch_number=epoch.epoch_number,
                flows={},
                ports={p: e.copy() for p, e in epoch.ports.items()},
                meters=dict(epoch.meters),
            )
        )
    return out


def strip_port_causality(report: SwitchReport) -> SwitchReport:
    """Keep flow entries; drop port counters, meters and PFC status."""
    out = _copy_shell(report)
    out.port_status = {}
    for epoch in report.epochs:
        out.epochs.append(
            EpochData(
                epoch_number=epoch.epoch_number,
                flows={k: e.copy() for k, e in epoch.flows.items()},
                ports={},
                meters={},
            )
        )
    return out


def strip_pfc_visibility(report: SwitchReport) -> SwitchReport:
    """Blind the report to PFC: zero paused counters, drop meters/status."""
    out = _copy_shell(report)
    out.port_status = {}
    for epoch in report.epochs:
        flows = {}
        for key, entry in epoch.flows.items():
            copied = entry.copy()
            copied.paused_count = 0
            flows[key] = copied
        ports = {}
        for port, entry in epoch.ports.items():
            copied = entry.copy()
            copied.paused_count = 0
            ports[port] = copied
        out.epochs.append(
            EpochData(
                epoch_number=epoch.epoch_number,
                flows=flows,
                ports=ports,
                meters={},
            )
        )
    return out
