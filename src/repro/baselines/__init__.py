"""Baseline diagnosis systems: SpiderMon, NetSight, polling and telemetry ablations."""

from .systems import (
    NETSIGHT_POSTCARD_BYTES,
    SPIDERMON_FLOW_RECORD_BYTES,
    SPIDERMON_HEADER_BYTES,
    SystemKind,
    apply_visibility,
    bandwidth_overhead_bytes,
    processing_overhead_bytes,
)
from .transforms import (
    strip_flow_telemetry,
    strip_pfc_visibility,
    strip_port_causality,
)

__all__ = [
    "NETSIGHT_POSTCARD_BYTES",
    "SPIDERMON_FLOW_RECORD_BYTES",
    "SPIDERMON_HEADER_BYTES",
    "SystemKind",
    "apply_visibility",
    "bandwidth_overhead_bytes",
    "processing_overhead_bytes",
    "strip_flow_telemetry",
    "strip_pfc_visibility",
    "strip_port_causality",
]

from .watchdog import PfcWatchdog, WatchdogConfig, WatchdogObservation  # noqa: E402

__all__ += ["PfcWatchdog", "WatchdogConfig", "WatchdogObservation"]
