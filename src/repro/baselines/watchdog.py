"""PFC watchdog: the industrial monitoring baseline of §2.3.

Production switches ship a "PFC watchdog" that polls each port's PFC
status periodically — but "the polling period is hundreds of milliseconds
or even seconds, which may miss massive transient PFC congestion", and the
port-level view "lacks fine-grained records of the performance impact on
each flow, and thus cannot help identify the root causes for the victim
flows" (§2.3).

This implementation polls every switch's live pause state on a timer and
records observations, so the motivation claim is measurable: compare the
watchdog's detection coverage against the ground-truth pause intervals a
:class:`~repro.sim.trace.NetworkTracer` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..sim.network import Network
from ..sim.packet import DATA_PRIORITY
from ..topology.graph import PortRef
from ..units import msec


@dataclass(frozen=True)
class WatchdogObservation:
    """One port seen paused at a polling instant."""

    time_ns: int
    port: PortRef


@dataclass
class WatchdogConfig:
    # Industrial watchdogs poll at hundreds of ms; 200 ms is a generous
    # (fast) setting within the range §2.3 quotes.
    poll_interval_ns: int = msec(200)
    priority: int = DATA_PRIORITY


class PfcWatchdog:
    """Polls the live PFC pause state of every switch egress port."""

    def __init__(self, network: Network, config: Optional[WatchdogConfig] = None) -> None:
        self.network = network
        self.config = config if config is not None else WatchdogConfig()
        self.observations: List[WatchdogObservation] = []
        self.polls = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.network.sim.schedule(self.config.poll_interval_ns, self._poll)

    def stop(self) -> None:
        self._running = False

    def _poll(self) -> None:
        if not self._running:
            return
        now = self.network.sim.now
        self.polls += 1
        for name, switch in self.network.switches.items():
            for port_no in switch.ports:
                if switch.egress_paused(port_no, self.config.priority):
                    self.observations.append(
                        WatchdogObservation(time_ns=now, port=PortRef(name, port_no))
                    )
        self.network.sim.schedule(self.config.poll_interval_ns, self._poll)

    # -- analysis -------------------------------------------------------------

    def paused_ports_seen(self) -> Set[PortRef]:
        return {obs.port for obs in self.observations}

    def detected_episode(
        self, intervals: List[Tuple[int, int]], port: PortRef
    ) -> bool:
        """Did any poll land inside one of the (start, end) pause spans?"""
        times = [o.time_ns for o in self.observations if o.port == port]
        return any(
            any(start <= t <= end for t in times) for start, end in intervals
        )

    def coverage_against(
        self, true_intervals: Dict[PortRef, List[Tuple[int, int]]]
    ) -> float:
        """Fraction of ground-truth pause episodes at least one poll hit.

        ``true_intervals`` is typically built from a
        :class:`~repro.sim.trace.NetworkTracer` via ``paused_intervals``.
        """
        total = 0
        hit = 0
        by_port: Dict[PortRef, List[int]] = {}
        for obs in self.observations:
            by_port.setdefault(obs.port, []).append(obs.time_ns)
        for port, intervals in true_intervals.items():
            times = by_port.get(port, [])
            for start, end in intervals:
                total += 1
                if any(start <= t <= end for t in times):
                    hit += 1
        return hit / total if total else 1.0
