"""Baseline system definitions and their overhead models (§4.2/§4.3).

Each system is a combination of a *collection strategy* (which switches
report), a *visibility transform* (what the reports contain) and an
*overhead model* (bytes collected for diagnosis, Fig 9a; extra on-wire
bytes, Fig 9b):

================  ==========================  =========================
system            collection                  visibility
================  ==========================  =========================
HAWKEYE           victim path + PFC causality full (PFC-aware)
FULL_POLLING      every switch                full
VICTIM_ONLY       victim path only            full
PORT_ONLY         victim path + PFC causality port counters + meters
FLOW_ONLY         victim path only            flow entries only
SPIDERMON         victim path only            PFC-blind flow telemetry
NETSIGHT          every switch                per-packet postcards,
                                              PFC-blind
================  ==========================  =========================
"""

from __future__ import annotations

import enum

from ..telemetry.snapshot import SwitchReport
from .transforms import (
    strip_flow_telemetry,
    strip_pfc_visibility,
    strip_port_causality,
)

# Wire/record constants from the paper's descriptions.
SPIDERMON_FLOW_RECORD_BYTES = 36  # "36 bytes per flow"
SPIDERMON_HEADER_BYTES = 2  # "an extra 16-bit header field in every packet"
NETSIGHT_POSTCARD_BYTES = 15  # "~15 bytes per packet and per average hop"


class SystemKind(enum.Enum):
    HAWKEYE = "hawkeye"
    FULL_POLLING = "full-polling"
    VICTIM_ONLY = "victim-only"
    PORT_ONLY = "port-only"
    FLOW_ONLY = "flow-only"
    SPIDERMON = "spidermon"
    NETSIGHT = "netsight"

    @property
    def traces_pfc(self) -> bool:
        """Does polling propagate onto the PFC spreading path?"""
        return self in (SystemKind.HAWKEYE, SystemKind.PORT_ONLY)

    @property
    def collects_everywhere(self) -> bool:
        return self in (SystemKind.FULL_POLLING, SystemKind.NETSIGHT)

    @property
    def uses_polling_packets(self) -> bool:
        return self in (
            SystemKind.HAWKEYE,
            SystemKind.VICTIM_ONLY,
            SystemKind.PORT_ONLY,
            SystemKind.FLOW_ONLY,
        )

    @property
    def pfc_blind(self) -> bool:
        return self in (SystemKind.SPIDERMON, SystemKind.NETSIGHT)


def apply_visibility(kind: SystemKind, report: SwitchReport) -> SwitchReport:
    """Reduce a full report to what ``kind``'s telemetry records."""
    if kind is SystemKind.PORT_ONLY:
        return strip_flow_telemetry(report)
    if kind is SystemKind.FLOW_ONLY:
        return strip_port_causality(report)
    if kind.pfc_blind:
        return strip_pfc_visibility(report)
    return report


def processing_overhead_bytes(
    kind: SystemKind,
    reports: dict,
    data_pkt_hops: int,
) -> int:
    """Bytes of telemetry shipped to the analyzer for one diagnosis (Fig 9a)."""
    if kind is SystemKind.NETSIGHT:
        # Every packet leaves a postcard at every hop; all are collected.
        return data_pkt_hops * NETSIGHT_POSTCARD_BYTES
    if kind is SystemKind.SPIDERMON:
        flow_entries = sum(r.num_flow_entries() for r in reports.values())
        return flow_entries * SPIDERMON_FLOW_RECORD_BYTES
    return sum(r.payload_bytes() for r in reports.values())


def bandwidth_overhead_bytes(
    kind: SystemKind,
    polling_packets: int,
    polling_packet_size: int,
    data_pkts_sent: int,
    data_pkt_hops: int,
) -> int:
    """Extra on-wire monitoring bytes during the run (Fig 9b)."""
    if kind is SystemKind.NETSIGHT:
        return data_pkt_hops * NETSIGHT_POSTCARD_BYTES
    if kind is SystemKind.SPIDERMON:
        return data_pkts_sent * SPIDERMON_HEADER_BYTES
    if kind is SystemKind.FULL_POLLING:
        return 0  # no trigger traffic; collection is out-of-band
    return polling_packets * polling_packet_size
