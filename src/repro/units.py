"""Unit helpers shared across the simulator and the diagnosis stack.

All simulation time is kept as integer nanoseconds and all data sizes as
integer bytes, so that event ordering is exact and reproducible.  These
helpers exist so call sites read naturally (``usec(5)``, ``gbps(100)``)
instead of sprinkling magic powers of ten around.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time (integer nanoseconds)
# ---------------------------------------------------------------------------

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


def nsec(value: float) -> int:
    """Convert nanoseconds to the canonical integer-ns representation."""
    return int(round(value * NSEC))


def usec(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(round(value * USEC))


def msec(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(value * MSEC))


def sec(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(round(value * SEC))


# ---------------------------------------------------------------------------
# Data sizes (integer bytes)
# ---------------------------------------------------------------------------

BYTE = 1
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000


def kilobytes(value: float) -> int:
    """Convert kilobytes (decimal) to integer bytes."""
    return int(round(value * KB))


def megabytes(value: float) -> int:
    """Convert megabytes (decimal) to integer bytes."""
    return int(round(value * MB))


# ---------------------------------------------------------------------------
# Bandwidth (bytes per second internally; helpers take bits per second)
# ---------------------------------------------------------------------------


def gbps(value: float) -> float:
    """Convert gigabits/s to bytes/s."""
    return value * 1e9 / 8.0


def mbps(value: float) -> float:
    """Convert megabits/s to bytes/s."""
    return value * 1e6 / 8.0


# Fabrics use a handful of (frame size, link speed) combinations, but the
# conversion runs once per transmitted frame — memoize it.
_SER_DELAY_CACHE: dict = {}
SER_DELAY_CACHE_STATS = [0, 0]  # [hits, misses], surfaced via PerfStats


def serialization_delay_ns(size_bytes: int, bandwidth_bytes_per_sec: float) -> int:
    """Time to put ``size_bytes`` on a wire of the given bandwidth.

    Always at least 1 ns so that back-to-back transmissions of tiny frames
    still advance simulated time.
    """
    key = (size_bytes, bandwidth_bytes_per_sec)
    cached = _SER_DELAY_CACHE.get(key)
    if cached is None:
        if bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        delay = size_bytes * SEC / bandwidth_bytes_per_sec
        cached = max(1, int(round(delay)))
        _SER_DELAY_CACHE[key] = cached
        SER_DELAY_CACHE_STATS[1] += 1
    else:
        SER_DELAY_CACHE_STATS[0] += 1
    return cached


def bytes_per_ns(bandwidth_bytes_per_sec: float) -> float:
    """Bandwidth expressed as bytes per nanosecond."""
    return bandwidth_bytes_per_sec / SEC
