"""The service plane: a long-lived, multi-tenant diagnosis daemon.

``repro serve`` turns the replay-a-scenario-then-exit pipeline into a
resident service (SwitchPointer/007-style: operators query a monitor that
is already running).  One asyncio process owns a continuously-running
monitored fabric — the simulator advanced in bounded sim-time slices on a
single executor thread so the event loop stays responsive — and serves
concurrent clients over a line-oriented JSON protocol:

- **streaming subscriptions** to the live alert/incident feed
  (:class:`~repro.serve.broker.StreamBroker`: per-subscriber bounded
  queues, drop-oldest-with-notice slow-consumer eviction);
- **on-demand diagnosis queries** ("diagnose victim X now") behind
  admission control and per-tenant token-bucket rate limits
  (:class:`~repro.serve.admission.AdmissionController`), load-shedding
  with explicit ``rejected`` responses;
- **HTTP GET endpoints** on the same listener mounting the monitor's
  Prometheus/JSONL/HTML exporters plus ``/healthz`` and ``/servicez``
  self-observability (all ``serve.*`` metrics live in a
  :class:`~repro.obs.metrics.MetricsRegistry`).

The simulation/diagnosis side rides :class:`~repro.experiments.runner.
FabricSession`, so a served episode produces byte-identical verdicts to
the batch ``repro run`` path for the same scenario/seed.
"""

from .admission import AdmissionController, TokenBucket
from .broker import StreamBroker, Subscription
from .client import ServeClient, http_get
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode,
    parse_request,
)
from .service import DiagnosisService, ServeConfig

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "StreamBroker",
    "Subscription",
    "ServeClient",
    "http_get",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode",
    "parse_request",
    "DiagnosisService",
    "ServeConfig",
]
