"""A small asyncio client for the serve protocol (tests, benches, examples).

:class:`ServeClient` owns one connection and a background reader that
demultiplexes the two interleaved streams the server may send on it:
responses (matched to their request ``id`` and resolved as futures) and
unsolicited stream events (parked on :attr:`ServeClient.events` for
:meth:`next_event`).  Request ids are assigned automatically, so calls
can be pipelined from concurrent tasks over a single connection.

:func:`http_get` is the scrape-side counterpart: a blocking, raw-socket
one-shot GET against the same listener (no http.client dependency in the
hot path of the benches), returning ``(status, headers, body)``.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Dict, List, Optional, Tuple

from .protocol import MAX_LINE_BYTES, encode

__all__ = ["ServeClient", "http_get"]


class ServeClient:
    """One protocol connection; create via :meth:`connect`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        tenant: str = "anon",
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.tenant = tenant
        self.events: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        self.stray: List[Dict[str, Any]] = []  # responses with no waiter
        self.closed = False
        self._next_id = 1
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        tenant: str = "anon",
    ) -> "ServeClient":
        """Connect and bind the tenant (sends ``hello`` when non-anon)."""
        limit = 2 * MAX_LINE_BYTES
        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(
                unix_path, limit=limit
            )
        elif port is not None:
            reader, writer = await asyncio.open_connection(
                host or "127.0.0.1", port, limit=limit
            )
        else:
            raise ValueError("need a unix socket path or a TCP port")
        client = cls(reader, writer, tenant=tenant)
        if tenant != "anon":
            await client.hello(tenant)
        return client

    # -- plumbing ------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                message = json.loads(line)
                request_id = message.get("id")
                if message.get("type") == "event":
                    self.events.put_nowait(message)
                elif request_id in self._pending:
                    future = self._pending.pop(request_id)
                    if not future.done():
                        future.set_result(message)
                else:
                    self.stray.append(message)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("connection closed"))
            self._pending.clear()

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and await its matched response."""
        if self.closed:
            raise ConnectionError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        payload = {"op": op, "id": request_id}
        payload.update(fields)
        self.writer.write(encode(payload))
        await self.writer.drain()
        return await future

    # -- the protocol ops ----------------------------------------------------

    async def hello(self, tenant: str) -> Dict[str, Any]:
        self.tenant = tenant
        return await self.request("hello", tenant=tenant)

    async def subscribe(self) -> Dict[str, Any]:
        return await self.request("subscribe")

    async def unsubscribe(self) -> Dict[str, Any]:
        return await self.request("unsubscribe")

    async def query(self, victim: Optional[str] = None) -> Dict[str, Any]:
        fields = {} if victim is None else {"victim": victim}
        return await self.request("query", **fields)

    async def stats(self) -> Dict[str, Any]:
        return await self.request("stats")

    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def next_event(
        self, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """The next stream event (raises ``asyncio.TimeoutError``)."""
        if timeout is None:
            return await self.events.get()
        return await asyncio.wait_for(self.events.get(), timeout)

    async def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._reader_task.cancel()
            with_suppress = asyncio.gather(
                self._reader_task, return_exceptions=True
            )
            await with_suppress
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def http_get(
    path: str,
    unix_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    timeout_s: float = 10.0,
) -> Tuple[int, Dict[str, str], str]:
    """Blocking one-shot GET against the serve listener.

    Returns ``(status, headers, body)``.  Works over unix or TCP sockets
    — the stdlib http.client has no unix-socket support, and the serve
    listener always answers with ``Connection: close``, so read-to-EOF
    framing is sufficient.
    """
    if unix_path is not None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout_s)
        sock.connect(unix_path)
    elif port is not None:
        sock = socket.create_connection(
            (host or "127.0.0.1", port), timeout=timeout_s
        )
    else:
        raise ValueError("need a unix socket path or a TCP port")
    try:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: repro\r\n"
            f"Connection: close\r\n\r\n".encode()
        )
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    finally:
        sock.close()
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1]) if lines and lines[0] else 0
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body.decode()
