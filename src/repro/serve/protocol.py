"""The serve wire protocol: one JSON object per line, both directions.

Requests carry an ``op`` plus an optional client-chosen ``id`` that is
echoed on the matching response, so a client may pipeline requests over
one connection.  Stream events (``type: "event"``) are unsolicited and
interleave with responses; every event carries the server's wall-clock
``ts`` at publish time so clients can measure delivery lag.

Request ops::

    {"op": "hello", "tenant": "team-a"}          # bind the connection's tenant
    {"op": "subscribe", "id": 1}                  # start the alert/incident feed
    {"op": "unsubscribe", "id": 2}
    {"op": "query", "id": 3, "victim": "..."}    # diagnose one victim now
    {"op": "stats", "id": 4}                      # the /servicez document
    {"op": "ping", "id": 5}

Responses are ``{"ok": true, "type": ..., "id": ...}`` or
``{"ok": false, "type": "error" | "rejected", ...}``.  ``rejected`` is
load shedding, not failure: the admission controller refused the query
(``reason`` is ``rate-limit`` or ``overload``) and the client should back
off.  A terminal event — ``{"type": "event", "event": "shutdown"}`` or
``"evicted"`` — is always the last line a subscriber receives.

Framing is bounded: a request line longer than :data:`MAX_LINE_BYTES`
is a protocol error (the connection is closed after the error reply).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

PROTOCOL_VERSION = 1

# Bound on a single request line; generous for any legitimate request
# (the largest is a query naming one victim flow).
MAX_LINE_BYTES = 64 * 1024

#: Ops a client may send, with the extra fields each accepts.
REQUEST_OPS = {
    "hello": ("tenant",),
    "subscribe": (),
    "unsubscribe": (),
    "query": ("victim",),
    "stats": (),
    "ping": (),
}


class ProtocolError(ValueError):
    """A malformed request; ``code`` is the machine-readable reason."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol line: compact JSON + newline (the framing unit)."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def parse_request(line: bytes) -> Dict[str, Any]:
    """Validate one request line into a request dict.

    Raises :class:`ProtocolError` on oversized lines, non-JSON, non-object
    payloads, unknown ops and ill-typed fields — the service answers every
    one with an explicit ``error`` response instead of dying or silently
    dropping the line.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "line-too-long", f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        payload = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-json", f"request is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    op = payload.get("op")
    if not isinstance(op, str) or op not in REQUEST_OPS:
        raise ProtocolError(
            "unknown-op",
            f"op must be one of {sorted(REQUEST_OPS)}, got {op!r}",
        )
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError("bad-id", "id must be an int or a string")
    tenant = payload.get("tenant")
    if tenant is not None and (not isinstance(tenant, str) or not tenant):
        raise ProtocolError("bad-tenant", "tenant must be a non-empty string")
    victim = payload.get("victim")
    if victim is not None and not isinstance(victim, str):
        raise ProtocolError("bad-victim", "victim must be a string")
    return payload


# -- response builders (the service's vocabulary) ---------------------------


def ok(type_: str, request_id: Optional[Any] = None, **fields: Any) -> Dict[str, Any]:
    message: Dict[str, Any] = {"ok": True, "type": type_}
    if request_id is not None:
        message["id"] = request_id
    message.update(fields)
    return message


def error(
    code: str, detail: str, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    message: Dict[str, Any] = {
        "ok": False,
        "type": "error",
        "error": code,
        "detail": detail,
    }
    if request_id is not None:
        message["id"] = request_id
    return message


def rejected(
    reason: str, request_id: Optional[Any] = None, retry_after_s: float = 0.0
) -> Dict[str, Any]:
    """Explicit load-shedding: the query was refused, not lost."""
    message: Dict[str, Any] = {
        "ok": False,
        "type": "rejected",
        "reason": reason,
    }
    if retry_after_s > 0:
        message["retry_after_s"] = round(retry_after_s, 6)
    if request_id is not None:
        message["id"] = request_id
    return message


def event(kind: str, ts: float, seq: int, **fields: Any) -> Dict[str, Any]:
    message: Dict[str, Any] = {
        "type": "event",
        "event": kind,
        "ts": ts,
        "seq": seq,
    }
    message.update(fields)
    return message
