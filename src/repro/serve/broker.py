"""Fan-out of the live alert/incident feed to bounded subscriber queues.

One :class:`StreamBroker` sits between the fabric feed (the slice loop
draining :class:`~repro.monitor.monitor.FabricMonitor` alerts and
timeline incidents) and every subscriber connection.  Back-pressure
policy, chosen so a slow consumer can never stall the fabric or grow
server memory:

- every subscription owns a **bounded** ``asyncio.Queue``; publishing
  never awaits;
- when a subscriber's queue is full, the broker **evicts** it: the
  oldest queued event is dropped to make room for a terminal
  ``evicted`` event, the subscription stops receiving, and the
  connection's forwarder closes the stream after delivering the notice.
  Nothing is ever dropped *without* notice — the client either saw the
  event or saw a terminal event telling it the stream ended and why
  (the ``serve_scale`` bench gates this).

Shutdown uses the same mechanism: :meth:`close_all` enqueues a terminal
``shutdown`` event to every live subscription (evicting the oldest event
if the queue is full), so every stream ends with an explicit goodbye.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional

from ..obs.metrics import MetricsRegistry
from .protocol import event as make_event

__all__ = ["Subscription", "StreamBroker"]

#: Terminal event kinds — after one of these, a subscription is dead.
TERMINAL_EVENTS = ("evicted", "shutdown", "unsubscribed")


class Subscription:
    """One subscriber's bounded slice of the feed."""

    def __init__(self, sub_id: int, tenant: str, maxsize: int) -> None:
        self.sub_id = sub_id
        self.tenant = tenant
        self.queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue(
            maxsize=maxsize
        )
        self.closed = False       # no further events will be enqueued
        self.delivered = 0        # events the forwarder wrote to the socket
        self.dropped = 0          # events discarded to make room for a notice

    def terminal_put(self, message: Dict[str, Any]) -> None:
        """Enqueue a terminal event, evicting the oldest entry if full."""
        if self.closed:
            return
        self.closed = True
        while True:
            try:
                self.queue.put_nowait(message)
                return
            except asyncio.QueueFull:
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover - tiny race
                    pass


class StreamBroker:
    """Registry + fan-out: publish once, deliver to every live queue."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._subs: Dict[int, Subscription] = {}
        self._next_id = 1
        self._seq = 0

    # -- membership ----------------------------------------------------------

    def subscribe(self, tenant: str, maxsize: int = 256) -> Subscription:
        sub = Subscription(self._next_id, tenant, maxsize)
        self._next_id += 1
        self._subs[sub.sub_id] = sub
        self.metrics.inc("serve.stream.subscribed")
        self.metrics.inc(f"serve.tenant.{tenant}.streams")
        self.metrics.gauge("serve.stream.active").set(float(len(self._subs)))
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        if self._subs.pop(sub.sub_id, None) is not None:
            sub.closed = True
            self.metrics.gauge("serve.stream.active").set(
                float(len(self._subs))
            )

    @property
    def active(self) -> int:
        return len(self._subs)

    def subscriptions(self) -> List[Subscription]:
        return list(self._subs.values())

    # -- fan-out -------------------------------------------------------------

    def publish(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Deliver one event to every live subscription (never awaits)."""
        self._seq += 1
        message = make_event(kind, time.time(), self._seq, **fields)
        self.metrics.inc("serve.stream.published")
        for sub in list(self._subs.values()):
            if sub.closed:
                continue
            try:
                sub.queue.put_nowait(message)
            except asyncio.QueueFull:
                # Slow consumer: replace the oldest queued event with a
                # terminal notice and stop feeding this subscription.
                self._seq += 1
                sub.terminal_put(
                    make_event(
                        "evicted",
                        time.time(),
                        self._seq,
                        reason="slow-consumer",
                        dropped=sub.dropped + 1,
                    )
                )
                self.metrics.inc("serve.stream.evicted")
                self.unsubscribe(sub)
        return message

    def close_all(self, kind: str = "shutdown", **fields: Any) -> int:
        """Terminal event to every live stream; returns how many got one."""
        notified = 0
        for sub in list(self._subs.values()):
            self._seq += 1
            sub.terminal_put(make_event(kind, time.time(), self._seq, **fields))
            self.unsubscribe(sub)
            notified += 1
        return notified
