"""Admission control for the query path: stay responsive by refusing work.

Two independent guards, both answering with an explicit reason instead of
letting latency grow without bound:

- **per-tenant token buckets** — each tenant refills at ``rate_per_s``
  up to ``burst``; a query with no token is rejected ``rate-limit`` with
  a ``retry_after_s`` hint.  One noisy tenant cannot starve the rest.
- **global capacity** — at most ``max_inflight`` queries admitted at
  once plus ``max_queue`` waiting behind them; beyond that the service
  sheds load with ``overload``.  The sim/diagnosis executor is a single
  thread, so "in flight" means "admitted and not yet answered" — the
  bound is on total queued latency, not CPU parallelism.

Both guards count every decision into the ``serve.*`` metrics registry
so ``/servicez`` and the Prometheus endpoint expose admission behaviour
per tenant.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from ..obs.metrics import MetricsRegistry

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """A standard token bucket: ``rate_per_s`` refill, ``burst`` cap.

    Time is injected (monotonic seconds) so tests are deterministic.
    """

    __slots__ = ("rate_per_s", "burst", "tokens", "updated_s")

    def __init__(self, rate_per_s: float, burst: float, now_s: float = 0.0) -> None:
        if rate_per_s <= 0 or burst <= 0:
            raise ValueError("rate_per_s and burst must be positive")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated_s = now_s

    def _refill(self, now_s: float) -> None:
        elapsed = now_s - self.updated_s
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate_per_s)
        self.updated_s = now_s

    def take(self, now_s: float, cost: float = 1.0) -> bool:
        self._refill(now_s)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def retry_after_s(self, now_s: float, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will be available."""
        self._refill(now_s)
        deficit = cost - self.tokens
        return max(0.0, deficit / self.rate_per_s)


class AdmissionController:
    """Decide, count and bound the concurrently admitted queries."""

    def __init__(
        self,
        max_inflight: int = 2,
        max_queue: int = 32,
        tenant_rate_per_s: float = 50.0,
        tenant_burst: float = 20.0,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.tenant_rate_per_s = tenant_rate_per_s
        self.tenant_burst = tenant_burst
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock
        self.inflight = 0
        self._buckets: Dict[str, TokenBucket] = {}

    @property
    def capacity(self) -> int:
        return self.max_inflight + self.max_queue

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.tenant_rate_per_s, self.tenant_burst, now_s=self.clock()
            )
        return bucket

    def admit(self, tenant: str) -> Tuple[Optional[str], float]:
        """Try to admit one query for ``tenant``.

        Returns ``(None, 0.0)`` on admission (the caller must pair it
        with :meth:`release`), else ``(reason, retry_after_s)``.  Rate
        limits are checked before capacity so a throttled tenant never
        consumes queue slots.
        """
        metrics = self.metrics
        now_s = self.clock()
        bucket = self.bucket(tenant)
        if not bucket.take(now_s):
            metrics.inc("serve.queries.rejected.rate_limit")
            metrics.inc(f"serve.tenant.{tenant}.rejected")
            return "rate-limit", bucket.retry_after_s(now_s)
        if self.inflight >= self.capacity:
            metrics.inc("serve.queries.rejected.overload")
            metrics.inc(f"serve.tenant.{tenant}.rejected")
            return "overload", 0.0
        self.inflight += 1
        metrics.inc("serve.queries.accepted")
        metrics.inc(f"serve.tenant.{tenant}.queries")
        metrics.gauge("serve.queue.depth").set(float(self.inflight))
        return None, 0.0

    def release(self) -> None:
        """One admitted query finished (answered or failed)."""
        if self.inflight <= 0:
            raise RuntimeError("release() without a matching admit()")
        self.inflight -= 1
        self.metrics.gauge("serve.queue.depth").set(float(self.inflight))

    def counters(self) -> Dict[str, int]:
        """The admission slice of the ``/servicez`` document."""
        doc = self.metrics.to_dict()["counters"]
        return {
            "accepted": doc.get("serve.queries.accepted", 0),
            "rejected_rate_limit": doc.get(
                "serve.queries.rejected.rate_limit", 0
            ),
            "rejected_overload": doc.get("serve.queries.rejected.overload", 0),
            "inflight": self.inflight,
        }
