"""The diagnosis service: one asyncio loop, one live fabric, many tenants.

Execution model
---------------

The simulator is not thread-safe and diagnosis reads its live state, so
*all* fabric work — advancing the sim, finishing an episode, answering a
query — runs on a **single** executor thread, submitted job by job from
the event loop:

- the **slice loop** (:meth:`DiagnosisService._pump`) advances the
  current episode ``slice_ns`` of simulated time per job, then drains
  newly raised monitor alerts/timeline incidents into the
  :class:`~repro.serve.broker.StreamBroker`;
- **queries** interleave between slices on the same thread, so a query
  observes a quiescent fabric and the sim never races a diagnosis.
  Query latency is therefore bounded by (queue wait + one slice + the
  diagnosis itself) — which is exactly what the admission controller
  bounds and the ``serve_scale`` bench gates at p99.

Episodes: the fabric replays its scenario continuously.  Episode ``k``
is built at ``seed + k``, advanced to its duration, finished (the batch
epilogue — flush, per-victim diagnoses, incident linkage) and replaced
by episode ``k+1``.  Episode 0 is byte-identical to ``repro run
SCENARIO --seed SEED`` by construction (same
:class:`~repro.experiments.runner.FabricSession` path; pinned by
``tests/serve/test_differential.py``).

The same listener speaks two protocols: lines starting with ``GET ``/
``HEAD `` get a one-shot HTTP response (Prometheus/JSONL/HTML exporters,
``/healthz``, ``/servicez``); anything else is the line-oriented JSON
protocol of :mod:`repro.serve.protocol`.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..experiments.runner import FabricSession, RunConfig, RunResult
from ..monitor.export import (
    jsonl_snapshot,
    prometheus_text,
    registry_prometheus_text,
    render_html,
)
from ..monitor.monitor import MonitorConfig
from ..obs.metrics import MetricsRegistry
from ..units import usec
from ..workloads import SCENARIO_BUILDERS
from .admission import AdmissionController
from .broker import TERMINAL_EVENTS, StreamBroker, Subscription
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode,
    error,
    event as make_event,
    ok,
    parse_request,
    rejected,
)

__all__ = ["ServeConfig", "DiagnosisService"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` exposes as flags (frozen, picklable)."""

    scenario: str = "pfc-storm"
    seed: int = 1
    episodes: Optional[int] = None      # None = replay forever
    slice_us: float = 200.0             # sim time advanced per executor job
    interval_us: float = 100.0          # monitor sampling cadence
    max_inflight: int = 2               # admitted queries executing/waiting
    max_queue: int = 32                 # extra admitted queries queued
    tenant_rate_per_s: float = 50.0     # per-tenant token refill
    tenant_burst: float = 20.0          # per-tenant token cap
    sub_queue: int = 256                # per-subscriber event queue bound
    idle_sleep_s: float = 0.02          # loop nap once all episodes finished

    def run_config(self) -> RunConfig:
        return RunConfig(
            monitor=MonitorConfig(interval_ns=usec(self.interval_us))
        )


def _execute_query(
    session: FabricSession, victim_str: Optional[str]
) -> Dict[str, Any]:
    """Resolve and diagnose one victim on the executor thread.

    Runs with exclusive access to the fabric (single-thread executor), so
    it may read triggers/reports freely.  Returns the JSON-ready body of
    the ``result`` response.
    """
    scenario = session.scenario
    victims = {str(v.key): v.key for v in scenario.victims}
    if victim_str is None or victim_str == "primary":
        # The batch notion of "primary": the earliest-complaining victim,
        # falling back to the scenario's first victim pre-trigger.
        triggered = [
            t for t in session.agent.triggers if str(t.victim) in victims
        ]
        if triggered:
            key = min(triggered, key=lambda t: t.time_ns).victim
        elif victims:
            key = next(iter(victims.values()))
        else:
            return {"status": "no-victims", "victims": []}
    else:
        key = victims.get(victim_str)
        if key is None:
            return {
                "status": "unknown-victim",
                "victims": sorted(victims),
            }
    outcome = session.diagnose_now(key)
    if outcome is None:
        return {
            "status": "no-trigger",
            "victim": str(key),
            "sim_ns": session.now_ns,
        }
    diagnosis = outcome.diagnosis
    finding = diagnosis.primary()
    return {
        "status": "diagnosed",
        "victim": str(key),
        "sim_ns": session.now_ns,
        "trigger_ns": outcome.trigger.time_ns,
        "anomaly": finding.anomaly.value,
        "confidence": diagnosis.confidence,
        "completeness": diagnosis.completeness,
        "culprits": [str(k) for k in finding.culprit_keys()],
        "diagnosis": diagnosis.describe(),
    }


class DiagnosisService:
    """The long-lived server; all state lives on the event loop thread."""

    def __init__(
        self, config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        if self.config.scenario not in SCENARIO_BUILDERS:
            raise ValueError(
                f"unknown scenario {self.config.scenario!r}; choose from "
                f"{', '.join(sorted(SCENARIO_BUILDERS))}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.broker = StreamBroker(self.registry)
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
            tenant_rate_per_s=self.config.tenant_rate_per_s,
            tenant_burst=self.config.tenant_burst,
            metrics=self.registry,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-sim"
        )
        self.session: Optional[FabricSession] = None
        self.last_result: Optional[RunResult] = None
        self.episode = -1
        self.episodes_completed = 0
        self._alert_cursor = 0
        self._incident_cursor = 0
        self._episode_finished = False
        self._running = False
        self._started_s = time.monotonic()
        self._last_slice_s = time.monotonic()
        self._servers: List[asyncio.AbstractServer] = []
        self._pump_task: Optional[asyncio.Task] = None
        self._forwarders: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._stopped = asyncio.Event()
        self.addresses: List[str] = []

    # -- episode lifecycle ---------------------------------------------------

    def _start_episode(self) -> None:
        self.episode += 1
        seed = self.config.seed + self.episode
        scenario = SCENARIO_BUILDERS[self.config.scenario](seed=seed)
        self.session = FabricSession(scenario, self.config.run_config())
        self._alert_cursor = 0
        self._incident_cursor = 0
        self._episode_finished = False
        self.registry.gauge("serve.episode").set(float(self.episode))
        self.broker.publish(
            "episode-start",
            episode=self.episode,
            scenario=self.config.scenario,
            seed=seed,
        )

    def _drain_feed(self) -> None:
        """Publish monitor alerts/incidents raised since the last drain."""
        session = self.session
        if session is None or session.monitor is None:
            return
        monitor = session.monitor
        alerts = monitor.engine.alerts
        for alert in alerts[self._alert_cursor:]:
            self.broker.publish(
                "alert", episode=self.episode, **alert.to_dict()
            )
        self._alert_cursor = len(alerts)
        incidents = monitor.timeline.incidents
        for incident in incidents[self._incident_cursor:]:
            doc = incident.to_dict()
            doc.pop("alerts", None)  # the feed already streamed them
            self.broker.publish("incident", episode=self.episode, **doc)
        self._incident_cursor = len(incidents)

    async def _pump(self) -> None:
        """The slice loop: advance, drain, finish, repeat (or idle)."""
        loop = asyncio.get_running_loop()
        slice_ns = max(1, int(usec(self.config.slice_us)))
        while self._running:
            session = self.session
            if session is None:
                self._start_episode()
                continue
            if not session.complete:
                t0 = time.perf_counter()
                target = session.now_ns + slice_ns
                await loop.run_in_executor(
                    self._executor, session.advance, target
                )
                self.registry.inc("serve.slices")
                self.registry.histogram("serve.slice.wall_s").observe(
                    time.perf_counter() - t0
                )
                self.registry.gauge("serve.sim_ns").set(float(session.now_ns))
                self._last_slice_s = time.monotonic()
                self._drain_feed()
                continue
            if not self._episode_finished:
                result = await loop.run_in_executor(
                    self._executor, session.finish
                )
                self._episode_finished = True
                self.last_result = result
                self.episodes_completed += 1
                self.registry.inc("serve.episodes.completed")
                self._drain_feed()  # finish() records the incidents
                outcome = result.primary_outcome()
                self.broker.publish(
                    "episode-end",
                    episode=self.episode,
                    scenario=self.config.scenario,
                    seed=self.config.seed + self.episode,
                    alerts=len(result.monitor.alerts)
                    if result.monitor is not None else 0,
                    verdict=(
                        outcome.diagnosis.primary().anomaly.value
                        if outcome is not None and outcome.diagnosis is not None
                        else None
                    ),
                )
                continue
            if (
                self.config.episodes is None
                or self.episode + 1 < self.config.episodes
            ):
                self._start_episode()
                continue
            # All episodes replayed: stay up, serve queries/scrapes/streams.
            await asyncio.sleep(self.config.idle_sleep_s)

    # -- query path ----------------------------------------------------------

    async def _handle_query(
        self, tenant: str, victim: Optional[str], request_id: Any
    ) -> Dict[str, Any]:
        reason, retry_after = self.admission.admit(tenant)
        if reason is not None:
            return rejected(reason, request_id, retry_after_s=retry_after)
        session = self.session
        try:
            if session is None:
                return error("not-ready", "no episode is live yet", request_id)
            t0 = time.perf_counter()
            body = await asyncio.get_running_loop().run_in_executor(
                self._executor, _execute_query, session, victim
            )
            wall_s = time.perf_counter() - t0
            self.registry.histogram("serve.query.wall_s").observe(wall_s)
            self.registry.inc("serve.queries.completed")
            return ok(
                "result",
                request_id,
                episode=self.episode,
                wall_s=round(wall_s, 6),
                **body,
            )
        finally:
            self.admission.release()

    # -- self-observability --------------------------------------------------

    def servicez(self) -> Dict[str, Any]:
        """The ``/servicez`` document (also the ``stats`` op's body)."""
        doc = self.registry.to_dict()
        counters = doc["counters"]
        tenants: Dict[str, Dict[str, int]] = {}
        for name, value in counters.items():
            if not name.startswith("serve.tenant."):
                continue
            tenant, _, field = name[len("serve.tenant."):].rpartition(".")
            tenants.setdefault(tenant, {})[field] = value
        session = self.session
        uptime_s = time.monotonic() - self._started_s
        self.registry.gauge("serve.uptime_s").set(uptime_s)
        staleness = time.monotonic() - self._last_slice_s
        self.registry.gauge("serve.feed_staleness_s").set(staleness)
        return {
            "protocol": PROTOCOL_VERSION,
            "scenario": self.config.scenario,
            "seed": self.config.seed,
            "uptime_s": round(uptime_s, 3),
            "episode": self.episode,
            "episodes_completed": self.episodes_completed,
            "episode_complete": self._episode_finished,
            "sim_ns": session.now_ns if session is not None else 0,
            "sim_duration_ns": session.duration_ns if session is not None else 0,
            "feed_staleness_s": round(staleness, 3),
            "slice_us": self.config.slice_us,
            "slices": counters.get("serve.slices", 0),
            "connections": len(self._writers),
            "stream": {
                "active": self.broker.active,
                "published": counters.get("serve.stream.published", 0),
                "delivered": counters.get("serve.stream.delivered", 0),
                "evicted": counters.get("serve.stream.evicted", 0),
            },
            "admission": self.admission.counters(),
            "tenants": tenants,
            "query_wall_s": doc["histograms"].get("serve.query.wall_s", {}),
            "slice_wall_s": doc["histograms"].get("serve.slice.wall_s", {}),
        }

    # -- HTTP (scrape endpoints on the same listener) ------------------------

    async def _render_in_executor(self, fn, *args) -> str:
        """Exporters read live monitor state: serialize with the sim."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _handle_http(
        self, request_line: str, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.registry.inc("serve.http.requests")
        # Drain the (ignored) header block so the client sees a clean close.
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
        parts = request_line.split()
        path = parts[1] if len(parts) > 1 else "/"
        path = path.split("?", 1)[0]
        monitor = self.session.monitor if self.session is not None else None
        import json as _json

        status, content_type, body = 200, "text/plain; charset=utf-8", ""
        if path == "/healthz":
            body = "ok\n" if self._running else "stopping\n"
        elif path == "/servicez":
            content_type = "application/json"
            body = _json.dumps(self.servicez(), indent=2) + "\n"
        elif monitor is None:
            status, body = 503, "no live episode\n"
        elif path == "/metrics":
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            body = await self._render_in_executor(prometheus_text, monitor)
            body += registry_prometheus_text(self.registry)
        elif path == "/jsonl":
            content_type = "application/x-ndjson"
            body = await self._render_in_executor(
                lambda m: "\n".join(jsonl_snapshot(m)) + "\n", monitor
            )
        elif path in ("/html", "/dashboard"):
            content_type = "text/html; charset=utf-8"
            body = await self._render_in_executor(
                render_html, monitor, f"repro serve: {self.config.scenario}"
            )
        else:
            status, body = 404, f"no such endpoint: {path}\n"
        payload = body.encode()
        reason = {200: "OK", 404: "Not Found", 503: "Service Unavailable"}
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        with contextlib.suppress(ConnectionError):
            await writer.drain()

    # -- the JSON protocol ---------------------------------------------------

    async def _forward(
        self, sub: Subscription, writer: asyncio.StreamWriter
    ) -> None:
        """Drain one subscription's queue onto its connection."""
        try:
            while True:
                message = await sub.queue.get()
                writer.write(encode(message))
                await writer.drain()
                sub.delivered += 1
                self.registry.inc("serve.stream.delivered")
                lag = time.time() - message.get("ts", time.time())
                self.registry.histogram("serve.stream.lag_s").observe(
                    max(0.0, lag)
                )
                if message.get("event") in TERMINAL_EVENTS:
                    return
        except (ConnectionError, asyncio.CancelledError):
            self.broker.unsubscribe(sub)
            raise

    async def _dispatch(
        self,
        request: Dict[str, Any],
        state: Dict[str, Any],
        writer: asyncio.StreamWriter,
    ) -> Optional[Dict[str, Any]]:
        op = request["op"]
        request_id = request.get("id")
        if op == "hello":
            state["tenant"] = request.get("tenant") or state["tenant"]
            return ok(
                "hello",
                request_id,
                protocol=PROTOCOL_VERSION,
                tenant=state["tenant"],
                scenario=self.config.scenario,
                victims=sorted(
                    str(v.key) for v in self.session.scenario.victims
                ) if self.session is not None else [],
            )
        if op == "ping":
            return ok("pong", request_id, ts=time.time())
        if op == "stats":
            return ok("stats", request_id, stats=self.servicez())
        if op == "subscribe":
            if state.get("sub") is not None and not state["sub"].closed:
                return error(
                    "already-subscribed",
                    "one stream per connection; unsubscribe first",
                    request_id,
                )
            sub = self.broker.subscribe(
                state["tenant"], maxsize=self.config.sub_queue
            )
            state["sub"] = sub
            task = asyncio.ensure_future(self._forward(sub, writer))
            self._forwarders.add(task)
            task.add_done_callback(self._forwarders.discard)
            return ok("subscribed", request_id, sub=sub.sub_id)
        if op == "unsubscribe":
            sub = state.get("sub")
            if sub is None:
                return error("not-subscribed", "no active stream", request_id)
            # Terminal notice first (terminal_put is a no-op once closed),
            # so the forwarder drains the queue and exits cleanly.
            sub.terminal_put(
                make_event("unsubscribed", time.time(), 0, sub=sub.sub_id)
            )
            self.broker.unsubscribe(sub)
            state["sub"] = None
            return ok("unsubscribed", request_id, sub=sub.sub_id)
        if op == "query":
            return await self._handle_query(
                state["tenant"], request.get("victim"), request_id
            )
        raise ProtocolError("unknown-op", f"unhandled op {op!r}")

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        self.registry.inc("serve.connections.total")
        state: Dict[str, Any] = {"tenant": "anon", "sub": None}
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    writer.write(encode(error(
                        "line-too-long",
                        f"request line exceeds {MAX_LINE_BYTES} bytes",
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                if stripped.startswith(b"GET ") or stripped.startswith(b"HEAD "):
                    await self._handle_http(
                        stripped.decode("latin-1"), reader, writer
                    )
                    break
                try:
                    request = parse_request(stripped)
                except ProtocolError as exc:
                    self.registry.inc("serve.protocol.errors")
                    writer.write(encode(error(exc.code, exc.detail)))
                    await writer.drain()
                    continue
                response = await self._dispatch(request, state, writer)
                if response is not None:
                    writer.write(encode(response))
                    await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            sub = state.get("sub")
            if sub is not None:
                self.broker.unsubscribe(sub)
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- lifecycle -----------------------------------------------------------

    async def start(
        self,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> None:
        """Open the listener(s), start episode 0 and the slice loop."""
        if unix_path is None and port is None:
            raise ValueError("need a unix socket path or a TCP port")
        self._running = True
        self._started_s = time.monotonic()
        limit = 2 * MAX_LINE_BYTES
        # A subscriber swarm connects in one burst; the default listen
        # backlog (100) resets the overflow, so size for the swarm.
        backlog = 1024
        if unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_client, path=unix_path, limit=limit,
                backlog=backlog,
            )
            self._servers.append(server)
            self.addresses.append(f"unix:{unix_path}")
        if port is not None:
            server = await asyncio.start_server(
                self._handle_client, host or "127.0.0.1", port, limit=limit,
                backlog=backlog,
            )
            self._servers.append(server)
            sock = server.sockets[0].getsockname()
            self.addresses.append(f"tcp:{sock[0]}:{sock[1]}")
        self._start_episode()
        self._pump_task = asyncio.ensure_future(self._pump())

    async def stop(self, reason: str = "requested") -> None:
        """Shut down cleanly: goodbye every stream, close every socket,
        join the executor.  Idempotent."""
        if not self._running:
            await self._stopped.wait()
            return
        self._running = False
        if self._pump_task is not None:
            # The pump exits on the flag; it only ever awaits one bounded
            # slice (or a short idle nap), so this join is bounded too.
            with contextlib.suppress(asyncio.CancelledError):
                await self._pump_task
        self.broker.close_all("shutdown", reason=reason)
        if self._forwarders:
            # Every forwarder has a terminal event queued; give them a
            # bounded window to flush it, then cancel stragglers.
            done, pending = await asyncio.wait(
                list(self._forwarders), timeout=5.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(list(pending), timeout=1.0)
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for writer in list(self._writers):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._writers.clear()
        self._executor.shutdown(wait=True)
        self._stopped.set()

    async def run_until_signalled(self) -> None:
        """Serve until SIGTERM/SIGINT (the CLI's main loop)."""
        import signal

        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop_requested.set)
        try:
            await stop_requested.wait()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)
            await self.stop(reason="signal")
