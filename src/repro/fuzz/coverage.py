"""Coverage feedback for the scenario fuzzer.

The fuzzer has no ground truth for what a mutated scenario *should* do,
so novelty is defined over what the existing planes observed:

- the diagnosis verdict and its confidence (signature-miss and
  low-confidence outcomes are first-class coverage points);
- which Table-2 signature predicates matched the provenance graph;
- the alert-category combination the fabric monitor raised;
- the canonical *shape* of the provenance graph — per-port structural
  tuples plus loop lengths, hashed the way :mod:`repro.obs.canon`
  canonicalizes trace streams (content only, no ids).

A :class:`FuzzObservation` collects those signals; its
:func:`fingerprint` is the retention key of the corpus and the invariant
the minimizer must preserve.  :func:`interest_of` labels observations
that fall outside the paper's expectations — those are the fuzzer's
actual findings.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Optional, Tuple

from ..core.build import AnnotatedGraph
from ..core.graph import EdgeKind
from ..core.report import AnomalyType
from ..core.signatures import (
    find_port_loops,
    has_flow_contention,
    match_contention_masked_storm,
    match_in_loop_deadlock,
    match_micro_burst_incast,
    match_normal_contention,
    match_out_of_loop_deadlock,
    match_pfc_storm,
)
from ..monitor.timeline import ANOMALY_ALERT_CATEGORIES

NO_VERDICT = "no-verdict"

# The five anomaly classes of the paper's Table 2 (plus benign contention).
PAPER_CLASSES = frozenset({
    AnomalyType.MICRO_BURST_INCAST.value,
    AnomalyType.PFC_STORM.value,
    AnomalyType.IN_LOOP_DEADLOCK.value,
    AnomalyType.OUT_OF_LOOP_DEADLOCK_CONTENTION.value,
    AnomalyType.OUT_OF_LOOP_DEADLOCK_INJECTION.value,
    AnomalyType.NORMAL_CONTENTION.value,
})

KNOWN_ALERT_COMBOS = frozenset(
    frozenset(categories) for categories in ANOMALY_ALERT_CATEGORIES.values()
) | {frozenset()}

SIGNATURE_PREDICATES = {
    "micro-burst-incast": match_micro_burst_incast,
    "pfc-storm": match_pfc_storm,
    "in-loop-deadlock": match_in_loop_deadlock,
    "out-of-loop-deadlock": match_out_of_loop_deadlock,
    "contention-masked-storm": match_contention_masked_storm,
    "normal-contention": match_normal_contention,
}


@dataclass(frozen=True)
class FuzzObservation:
    """What the pipeline saw for one evaluated genome (picklable)."""

    verdict: str                      # AnomalyType.value or NO_VERDICT
    confidence: str                   # "full" when no diagnosis degraded it
    signatures: Tuple[str, ...]       # matching Table-2 predicate names
    alert_categories: Tuple[str, ...]
    graph_shape: str                  # sha256 of the canonical shape
    triggered: bool                   # did any victim complain?
    paused_ports: int                 # pfc-paused ports in the provenance

    def fingerprint(self) -> str:
        """The stable coverage identity of this observation."""
        blob = json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def graph_shape_hash(annotated: Optional[AnnotatedGraph]) -> str:
    """A canonical fingerprint of the provenance graph's *shape*.

    Content-and-structure only (the :mod:`repro.obs.canon` discipline):
    per-port tuples of (port-level out/in degree, paused, host peer,
    contention), sorted; loop lengths, sorted; and the flow-edge count
    bucketed by bit length so workload scale changes shape only in
    magnitude steps.  Names never enter, so isomorphic graphs on
    differently-labelled fabrics collide — which is exactly what corpus
    dedup wants.
    """
    if annotated is None:
        return "absent"
    graph = annotated.graph
    ports = []
    flow_edges = 0
    for port in graph.ports:
        meta = annotated.port_meta.get(port)
        in_pp = len(graph.in_edges(port, EdgeKind.PORT_PORT))
        in_fp = len(graph.in_edges(port, EdgeKind.FLOW_PORT))
        flow_edges += in_fp
        ports.append((
            graph.port_out_degree(port),
            in_pp,
            bool(meta is not None and meta.is_pfc_paused),
            bool(meta is not None and meta.peer_is_host),
            has_flow_contention(graph, port),
        ))
    shape = {
        "ports": sorted(ports),
        "loops": sorted(len(loop) for loop in find_port_loops(graph)),
        "flow_edges_bits": flow_edges.bit_length(),
    }
    blob = json.dumps(shape, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def observe(result) -> FuzzObservation:
    """Reduce a :class:`~repro.experiments.runner.RunResult` to coverage."""
    diagnosis = result.diagnosis()
    outcome = result.primary_outcome()
    annotated = outcome.annotated if outcome is not None else None

    if diagnosis is None:
        verdict, confidence = NO_VERDICT, "none"
    else:
        verdict = diagnosis.primary().anomaly.value
        confidence = diagnosis.confidence

    signatures: Tuple[str, ...] = ()
    paused = 0
    if annotated is not None:
        signatures = tuple(sorted(
            name
            for name, predicate in SIGNATURE_PREDICATES.items()
            if predicate(annotated)
        ))
        paused = sum(
            1 for meta in annotated.port_meta.values() if meta.is_pfc_paused
        )

    categories: Tuple[str, ...] = ()
    if result.monitor is not None:
        categories = tuple(sorted(result.monitor.engine.alerts_by_category()))

    return FuzzObservation(
        verdict=verdict,
        confidence=confidence,
        signatures=signatures,
        alert_categories=categories,
        graph_shape=graph_shape_hash(annotated),
        triggered=outcome is not None,
        paused_ports=paused,
    )


def interest_of(obs: FuzzObservation) -> Tuple[str, ...]:
    """Why this observation is a finding (empty tuple: routine coverage).

    - ``beyond-paper-class``: the verdict names an anomaly outside the
      paper's five classes (how ``contention-masked-pfc-storm`` was found);
    - ``unknown-verdict``: a victim complained but the diagnoser could not
      classify the provenance;
    - ``signature-miss``: a diagnosis landed yet no Table-2 predicate
      matches the graph it used;
    - ``silent-pause``: PFC activity (paused provenance ports or fabric
      alerts) with no victim complaint at all — anomalies the detection
      threshold sleeps through;
    - ``novel-alert-combo``: the monitor raised a category combination no
      known anomaly class is expected to produce.
    """
    kinds = []
    if obs.triggered and obs.verdict not in PAPER_CLASSES:
        kinds.append("beyond-paper-class")
    if obs.triggered and obs.verdict == AnomalyType.UNKNOWN.value:
        kinds.append("unknown-verdict")
    if obs.triggered and not obs.signatures:
        kinds.append("signature-miss")
    if not obs.triggered and (obs.paused_ports or obs.alert_categories):
        kinds.append("silent-pause")
    if (
        obs.alert_categories
        and frozenset(obs.alert_categories) not in KNOWN_ALERT_COMBOS
    ):
        kinds.append("novel-alert-combo")
    return tuple(kinds)
