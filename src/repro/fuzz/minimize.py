"""Delta-debugging minimizer for fuzz findings.

Greedy fixpoint reduction: for each gene (in declaration order) try a
deterministic ladder of simplifications — the default value first, then
binary steps toward it — keeping a candidate only when the re-evaluated
coverage fingerprint is unchanged.  The loop repeats until a full pass
accepts nothing.

Fixpoint implies idempotence: minimizing an already-minimal genome tries
the exact same candidate ladder, every candidate fails the fingerprint
check, and the genome comes back untouched.  That contract is what lets
minimized corpus reproducers be re-minimized (in CI, by later sessions)
without churning.
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Callable, List, Optional

from ..experiments.runner import RunConfig
from .engine import evaluate_genome
from .genome import ScenarioGenome

# Genes the minimizer never touches: identity/axes whose "default" is not
# meaningfully simpler and whose movement would change the scenario class.
_PINNED = ("seed", "topology")


def _candidate_ladder(genome: ScenarioGenome, name: str) -> List[object]:
    """Simpler values to try for one gene, most aggressive first."""
    current = getattr(genome, name)
    default = getattr(ScenarioGenome(), name)
    if current == default:
        return []
    if isinstance(current, bool) or isinstance(default, bool):
        return [default]
    ladder: List[object] = [default]
    # Binary step midway toward the default (ints stay ints).
    if isinstance(current, int) and isinstance(default, int):
        mid = (current + default) // 2
        if mid not in (current, default):
            ladder.append(mid)
    elif isinstance(current, float) or isinstance(default, float):
        mid = round((float(current) + float(default)) / 2.0, 6)
        if mid not in (current, default):
            ladder.append(mid)
    return ladder


def minimize(
    genome: ScenarioGenome,
    fingerprint: str,
    run_config: Optional[RunConfig] = None,
    evaluate: Optional[Callable[[ScenarioGenome], str]] = None,
    max_evaluations: int = 200,
) -> ScenarioGenome:
    """Shrink ``genome`` while its coverage fingerprint stays ``fingerprint``.

    ``evaluate`` maps a genome to its fingerprint (injectable for tests);
    the default builds and runs the scenario via :func:`evaluate_genome`.
    ``max_evaluations`` bounds the work on pathological plateaus.
    """
    if evaluate is None:
        def evaluate(g: ScenarioGenome) -> str:
            return evaluate_genome(g, run_config).fingerprint

    current = genome.normalized()
    spent = 0
    names = [
        f.name for f in fields(ScenarioGenome) if f.name not in _PINNED
    ]
    changed = True
    while changed and spent < max_evaluations:
        changed = False
        for name in names:
            for value in _candidate_ladder(current, name):
                candidate = replace(current, **{name: value}).normalized()
                if candidate == current:
                    continue
                if spent >= max_evaluations:
                    return current
                spent += 1
                if evaluate(candidate) == fingerprint:
                    current = candidate
                    changed = True
                    break
    return current
