"""The coverage-guided fuzz loop.

Generation-based search: a fixed-size batch of genomes is composed *before*
any of it is evaluated (all randomness drawn from the master RNG in a
fixed order), the batch is evaluated — in-process or across a fork pool,
order-stable either way — and retention/mutation decisions fold in
afterwards.  Batch composition therefore never depends on intra-batch
completion order, which is what makes ``jobs=N`` byte-identical to
``jobs=1``.

Seed corpus: a curated spread over the topology families plus unbiased
random draws.  Feedback: an evaluation is retained iff its coverage
fingerprint (verdict x confidence x signatures x alert combination x
graph shape) is new; retained genomes become mutation/crossover parents.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..experiments.runner import RunConfig, _pool_context, run_scenario
from ..monitor.monitor import MonitorConfig
from ..units import usec
from .coverage import FuzzObservation, interest_of, observe
from .genome import ScenarioGenome
from .mutate import crossover, mutate, random_genome


@dataclass
class FuzzConfig:
    """Knobs of one fuzz campaign (all defaults CI-safe)."""

    budget: int = 100          # total scenario evaluations
    seed: int = 1              # master RNG seed
    jobs: int = 1              # evaluation worker processes
    generation: int = 8        # evaluations composed per batch
    monitor_interval_us: float = 100.0

    def run_config(self) -> RunConfig:
        return RunConfig(
            monitor=MonitorConfig(
                interval_ns=usec(self.monitor_interval_us)
            )
        )


@dataclass
class FuzzEvaluation:
    """One evaluated genome (picklable; crosses the pool boundary)."""

    genome: ScenarioGenome
    observation: FuzzObservation
    fingerprint: str
    interest: Tuple[str, ...]
    diagnosis_text: Optional[str] = None


@dataclass
class FuzzReport:
    """The campaign's outcome: every retained coverage point, in order."""

    config: FuzzConfig
    evaluated: int = 0
    retained: List[FuzzEvaluation] = field(default_factory=list)

    @property
    def findings(self) -> List[FuzzEvaluation]:
        return [e for e in self.retained if e.interest]

    def coverage_keys(self) -> List[str]:
        return [e.fingerprint for e in self.retained]


def evaluate_genome(
    genome: ScenarioGenome, run_config: Optional[RunConfig] = None
) -> FuzzEvaluation:
    """Build, simulate, diagnose and reduce one genome to coverage."""
    config = run_config if run_config is not None else FuzzConfig().run_config()
    result = run_scenario(genome.build(), config)
    obs = observe(result)
    diagnosis = result.diagnosis()
    return FuzzEvaluation(
        genome=genome,
        observation=obs,
        fingerprint=obs.fingerprint(),
        interest=interest_of(obs),
        diagnosis_text=diagnosis.describe() if diagnosis is not None else None,
    )


def _eval_worker(item: Tuple[ScenarioGenome, RunConfig]) -> FuzzEvaluation:
    genome, run_config = item
    return evaluate_genome(genome, run_config)


def _evaluate_batch(
    batch: List[ScenarioGenome], run_config: RunConfig, jobs: int
) -> List[FuzzEvaluation]:
    items = [(genome, run_config) for genome in batch]
    if jobs <= 1 or len(batch) <= 1:
        return [_eval_worker(item) for item in items]
    workers = min(jobs, len(batch))
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_pool_context()
    ) as pool:
        return list(pool.map(_eval_worker, items))


def seed_genomes() -> List[ScenarioGenome]:
    """The deterministic first generation: one probe per fabric family."""
    base = ScenarioGenome()
    probes = [
        base,                                              # plain incast
        replace(base, incast_degree=0, storm_us=2500,
                storm_start_us=30, victim_kb=1500),        # host injection
        replace(base, storm_us=2500, storm_start_us=80),   # injection + incast
        replace(base, topology="ring", switches=4, hosts_per_switch=4,
                cbd_rewire=True, circulate=True, incast_degree=3,
                burst_kb=600, xoff_kb=30, xon_kb=5,
                kmin_kb=120, kmax_kb=400, duration_us=5000),
        replace(base, topology="leafspine", switches=4, oversub=0.25),
        replace(base, topology="dumbbell", hosts_per_switch=3,
                xoff_kb=200, xon_kb=100),
        replace(base, topology="line", switches=4, incast_degree=4),
    ]
    return [g.normalized() for g in probes]


def _compose_generation(
    size: int,
    rng: random.Random,
    parents: List[ScenarioGenome],
) -> List[ScenarioGenome]:
    """Draw the next batch from the retained corpus (or thin air)."""
    batch: List[ScenarioGenome] = []
    for _ in range(size):
        if not parents:
            batch.append(random_genome(rng))
            continue
        roll = rng.random()
        if roll < 0.15:
            batch.append(random_genome(rng))
        elif roll < 0.45 and len(parents) >= 2:
            a, b = rng.sample(parents, 2)
            batch.append(crossover(a, b, rng))
        else:
            batch.append(mutate(rng.choice(parents), rng))
    return batch


def run_fuzz(
    config: Optional[FuzzConfig] = None,
    progress: Optional[Callable[[int, FuzzReport], None]] = None,
) -> FuzzReport:
    """Run one campaign; a pure function of ``config`` (seed included)."""
    config = config if config is not None else FuzzConfig()
    run_config = config.run_config()
    rng = random.Random(config.seed)
    report = FuzzReport(config=config)
    seen: Dict[str, FuzzEvaluation] = {}
    parents: List[ScenarioGenome] = []

    while report.evaluated < config.budget:
        room = config.budget - report.evaluated
        if report.evaluated == 0:
            batch = seed_genomes()[:room]
        else:
            batch = _compose_generation(
                min(config.generation, room), rng, parents
            )
        for evaluation in _evaluate_batch(batch, run_config, config.jobs):
            report.evaluated += 1
            if evaluation.fingerprint in seen:
                continue
            seen[evaluation.fingerprint] = evaluation
            report.retained.append(evaluation)
            parents.append(evaluation.genome)
        if progress is not None:
            progress(report.evaluated, report)
    return report
