"""Seeded mutation and crossover over scenario genomes.

Every operator takes an explicit :class:`random.Random` and returns a
*normalized* genome, so (a) the fuzz loop's draws are a pure function of
its master seed, and (b) every product builds a runnable scenario (the
genome's validity projection runs on the way out).  Mutation perturbs one
axis at a time — coverage feedback attributes a new behaviour to the one
knob that moved.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, List, Tuple

from .genome import (
    FLOAT_RANGES,
    INT_RANGES,
    TOPOLOGY_KINDS,
    ScenarioGenome,
    genome_fields,
)

_BOOL_FIELDS = ("cbd_rewire", "circulate")


def _draw_int(rng: random.Random, name: str) -> int:
    lo, hi = INT_RANGES[name]
    return rng.randint(lo, hi)


def _draw_float(rng: random.Random, name: str) -> float:
    lo, hi = FLOAT_RANGES[name]
    # Quantize to 1/64 steps: coarse enough that mutation revisits values
    # (coverage keys repeat) and JSON round-trips stay exact.
    steps = 64
    return round(lo + (hi - lo) * rng.randint(0, steps) / steps, 6)


def _axes() -> List[Tuple[str, Callable[[ScenarioGenome, random.Random], ScenarioGenome]]]:
    axes: List[Tuple[str, Callable]] = []
    for name in INT_RANGES:
        if name == "seed":
            continue  # the seed axis gets a dedicated, smaller jump below

        def _int_axis(g, rng, name=name):
            return replace(g, **{name: _draw_int(rng, name)})

        axes.append((name, _int_axis))
    for name in FLOAT_RANGES:

        def _float_axis(g, rng, name=name):
            return replace(g, **{name: _draw_float(rng, name)})

        axes.append((name, _float_axis))
    for name in _BOOL_FIELDS:

        def _flip(g, rng, name=name):
            return replace(g, **{name: not getattr(g, name)})

        axes.append((name, _flip))
    axes.append((
        "topology",
        lambda g, rng: replace(g, topology=rng.choice(TOPOLOGY_KINDS)),
    ))
    axes.append((
        "seed",
        lambda g, rng: replace(g, seed=(g.seed + rng.randint(1, 32)) % 2**32),
    ))
    return axes


MUTATION_AXES = _axes()


def mutate(genome: ScenarioGenome, rng: random.Random) -> ScenarioGenome:
    """Perturb exactly one axis; always returns a valid (normalized) genome."""
    _, op = MUTATION_AXES[rng.randrange(len(MUTATION_AXES))]
    return op(genome, rng).normalized()


def crossover(
    a: ScenarioGenome, b: ScenarioGenome, rng: random.Random
) -> ScenarioGenome:
    """Field-wise uniform crossover of two genomes."""
    picks = {
        name: getattr(a if rng.random() < 0.5 else b, name)
        for name in genome_fields()
    }
    return ScenarioGenome(**picks).normalized()


def random_genome(rng: random.Random) -> ScenarioGenome:
    """An unbiased draw from the whole (normalized) genome space."""
    values = {name: _draw_int(rng, name) for name in INT_RANGES}
    values.update({name: _draw_float(rng, name) for name in FLOAT_RANGES})
    values.update({name: rng.random() < 0.5 for name in _BOOL_FIELDS})
    values["topology"] = rng.choice(TOPOLOGY_KINDS)
    return ScenarioGenome(**values).normalized()
