"""Persistent fuzz corpus: genomes + expected fingerprints on disk.

Each corpus entry is one JSON file under ``scenarios/`` carrying the
genome, the coverage fingerprint its evaluation must reproduce, the
observation that earned retention, and why it was interesting.  The
replay harness (``tests/fuzz/test_corpus_replay.py``) re-evaluates every
entry and asserts the fingerprint byte-identically — a committed corpus
is a regression suite for the whole pipeline, not just the fuzzer.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..experiments.runner import RunConfig
from .coverage import FuzzObservation
from .engine import FuzzEvaluation, evaluate_genome
from .genome import ScenarioGenome

CORPUS_FORMAT = 1


@dataclass
class CorpusEntry:
    """One retained scenario: rebuildable, replayable, diffable."""

    name: str
    genome: ScenarioGenome
    fingerprint: str
    interest: Tuple[str, ...] = ()
    observation: Optional[FuzzObservation] = None
    diagnosis_text: Optional[str] = None
    provenance: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "format": CORPUS_FORMAT,
            "name": self.name,
            "genome": json.loads(self.genome.to_json()),
            "fingerprint": self.fingerprint,
            "interest": list(self.interest),
        }
        if self.observation is not None:
            payload["observation"] = asdict(self.observation)
        if self.diagnosis_text is not None:
            payload["diagnosis"] = self.diagnosis_text
        if self.provenance:
            payload["provenance"] = dict(self.provenance)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CorpusEntry":
        if payload.get("format") != CORPUS_FORMAT:
            raise ValueError(
                f"unsupported corpus format: {payload.get('format')!r}"
            )
        observation = None
        if "observation" in payload:
            obs = dict(payload["observation"])
            obs["signatures"] = tuple(obs.get("signatures", ()))
            obs["alert_categories"] = tuple(obs.get("alert_categories", ()))
            observation = FuzzObservation(**obs)
        return cls(
            name=str(payload["name"]),
            genome=ScenarioGenome.from_json(json.dumps(payload["genome"])),
            fingerprint=str(payload["fingerprint"]),
            interest=tuple(payload.get("interest", ())),
            observation=observation,
            diagnosis_text=payload.get("diagnosis"),
            provenance=dict(payload.get("provenance", {})),
        )


def entry_from_evaluation(
    evaluation: FuzzEvaluation,
    name: Optional[str] = None,
    provenance: Optional[Dict[str, object]] = None,
) -> CorpusEntry:
    label = evaluation.interest[0] if evaluation.interest else "coverage"
    return CorpusEntry(
        name=name or f"{label}-{evaluation.fingerprint[:10]}",
        genome=evaluation.genome,
        fingerprint=evaluation.fingerprint,
        interest=evaluation.interest,
        observation=evaluation.observation,
        diagnosis_text=evaluation.diagnosis_text,
        provenance=provenance or {},
    )


def save_entry(directory: str, entry: CorpusEntry) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{entry.name}.json")
    with open(path, "w") as fh:
        json.dump(entry.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_corpus(directory: str) -> List[CorpusEntry]:
    """Every corpus entry under ``directory``, sorted by file name."""
    entries: List[CorpusEntry] = []
    if not os.path.isdir(directory):
        return entries
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name)) as fh:
            entries.append(CorpusEntry.from_dict(json.load(fh)))
    return entries


def replay_entry(
    entry: CorpusEntry, run_config: Optional[RunConfig] = None
) -> Tuple[bool, FuzzEvaluation]:
    """Re-evaluate one entry; True iff the fingerprint reproduced exactly."""
    evaluation = evaluate_genome(entry.genome, run_config)
    return evaluation.fingerprint == entry.fingerprint, evaluation
