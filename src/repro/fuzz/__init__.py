"""Coverage-guided scenario fuzzing: searching beyond Table 2.

The paper hand-crafts five anomaly classes; this package searches the
scenario space *around* them.  ``genome`` defines the typed search space,
``mutate`` the seeded operators, ``coverage`` the feedback signal drawn
from the existing diagnosis/monitor planes, ``engine`` the deterministic
generation loop, ``minimize`` the delta-debugging reducer, and ``corpus``
the on-disk reproducer format replayed by the test suite.
"""

from .corpus import (
    CORPUS_FORMAT,
    CorpusEntry,
    entry_from_evaluation,
    load_corpus,
    replay_entry,
    save_entry,
)
from .coverage import (
    NO_VERDICT,
    PAPER_CLASSES,
    FuzzObservation,
    graph_shape_hash,
    interest_of,
    observe,
)
from .engine import (
    FuzzConfig,
    FuzzEvaluation,
    FuzzReport,
    evaluate_genome,
    run_fuzz,
    seed_genomes,
)
from .genome import (
    FLOAT_RANGES,
    GENOME_FORMAT,
    INT_RANGES,
    TOPOLOGY_KINDS,
    ScenarioGenome,
    genome_fields,
)
from .minimize import minimize
from .mutate import MUTATION_AXES, crossover, mutate, random_genome

__all__ = [
    "CORPUS_FORMAT",
    "CorpusEntry",
    "entry_from_evaluation",
    "load_corpus",
    "replay_entry",
    "save_entry",
    "NO_VERDICT",
    "PAPER_CLASSES",
    "FuzzObservation",
    "graph_shape_hash",
    "interest_of",
    "observe",
    "FuzzConfig",
    "FuzzEvaluation",
    "FuzzReport",
    "evaluate_genome",
    "run_fuzz",
    "seed_genomes",
    "FLOAT_RANGES",
    "GENOME_FORMAT",
    "INT_RANGES",
    "TOPOLOGY_KINDS",
    "ScenarioGenome",
    "genome_fields",
    "minimize",
    "MUTATION_AXES",
    "crossover",
    "mutate",
    "random_genome",
]
