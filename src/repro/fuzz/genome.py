"""Scenario genomes: the typed search space of the coverage-guided fuzzer.

A :class:`ScenarioGenome` is a flat, picklable bundle of the knobs that
define one runnable scenario: topology family and size, oversubscription,
CBD-creating route rewires, incast shape (degree, burst size, tail,
pulsing, jitter), host PFC injection timing, PFC/ECN thresholds, and the
victim flow.  Unlike the hand-crafted builders in
:mod:`repro.workloads.anomalies`, a genome carries no intent — the fuzzer
mutates it blindly and lets the diagnosis pipeline say what the resulting
fabric did.

Two invariants make the search sound:

- ``normalized()`` maps *any* field assignment into the valid region
  (ranges clamped, Xon < Xoff, Kmin < Kmax, fat-tree K even, incast
  degree bounded by the host pool), so every mutation/crossover product
  builds a runnable scenario;
- ``build()`` is a pure function of the (normalized) genome: the same
  genome always yields the same fabric and flow schedule, which is what
  lets corpus entries replay byte-identically across processes and shards.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, List, Tuple

from ..core.report import AnomalyType
from ..sim.config import EcnConfig, PfcConfig, SimConfig
from ..sim.network import Network
from ..topology.builders import (
    build_dumbbell,
    build_fat_tree,
    build_leaf_spine,
    build_line,
    build_ring,
)
from ..topology.routing import RoutingTable, make_ring_cbd_routes
from ..units import KB, gbps, usec
from ..workloads.anomalies import add_background_traffic
from ..workloads.scenario import GroundTruth, Scenario

GENOME_FORMAT = 1

TOPOLOGY_KINDS: Tuple[str, ...] = (
    "fattree", "leafspine", "ring", "line", "dumbbell",
)

# Valid inclusive ranges for every numeric gene.  ``normalized`` clamps
# into these; the mutators draw from them.
INT_RANGES: Dict[str, Tuple[int, int]] = {
    "seed": (0, 2**32 - 1),
    "k": (4, 8),
    "switches": (3, 6),
    "hosts_per_switch": (1, 4),
    "incast_degree": (0, 8),
    "burst_kb": (50, 1000),
    "pulses": (1, 6),
    "pulse_gap_us": (20, 500),
    "jitter_us": (0, 10),
    "victim_kb": (100, 3000),
    "storm_us": (0, 3000),
    "storm_start_us": (10, 500),
    "duration_us": (1000, 5000),
    "xoff_kb": (20, 200),
    "xon_kb": (5, 195),
    "kmin_kb": (20, 400),
    "kmax_kb": (30, 1200),
}
FLOAT_RANGES: Dict[str, Tuple[float, float]] = {
    "link_gbps": (10.0, 100.0),
    "oversub": (0.25, 1.0),
    "flow_tail": (1.0, 8.0),
    "victim_rate": (0.05, 1.0),
    "background_load": (0.0, 0.15),
}


def _clamp(value, lo, hi):
    return lo if value < lo else hi if value > hi else value


@dataclass(frozen=True)
class ScenarioGenome:
    """One point in scenario space (all sizes in the unit of the suffix)."""

    seed: int = 1
    # Topology genes.
    topology: str = "fattree"
    k: int = 4                     # fat-tree arity
    switches: int = 4              # ring/line/leaf-spine width
    hosts_per_switch: int = 2
    link_gbps: float = 100.0
    oversub: float = 1.0           # core/spine bandwidth as a fraction of edge
    cbd_rewire: bool = False       # ring only: clockwise CBD route overrides
    # Workload genes.
    incast_degree: int = 5
    burst_kb: int = 500
    flow_tail: float = 1.0         # size multiplier on every third burst flow
    pulses: int = 1
    pulse_gap_us: int = 100
    jitter_us: int = 5
    victim_kb: int = 2000
    victim_rate: float = 1.0       # fraction of line rate (1.0 = unlimited)
    storm_us: int = 0              # PFC injection duration (0 = no injection)
    storm_start_us: int = 30
    circulate: bool = False        # ring CBD: add the circulation flows
    background_load: float = 0.0
    duration_us: int = 4000
    # PFC / ECN threshold genes.
    xoff_kb: int = 80
    xon_kb: int = 40
    kmin_kb: int = 40
    kmax_kb: int = 160

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        payload = {"format": GENOME_FORMAT}
        payload.update(asdict(self))
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioGenome":
        payload = json.loads(text)
        payload.pop("format", None)
        names = {f.name for f in fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(f"unknown genome fields: {sorted(unknown)}")
        return cls(**payload)

    def short_id(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:10]

    # -- validity ----------------------------------------------------------

    def host_pool(self) -> int:
        """How many hosts the (normalized) topology genes produce."""
        if self.topology == "fattree":
            return self.k * (self.k // 2) * self.hosts_per_switch
        if self.topology == "dumbbell":
            return 2 * self.hosts_per_switch
        return self.switches * self.hosts_per_switch

    def normalized(self) -> "ScenarioGenome":
        """Project the genome into the valid region (idempotent)."""
        changes: Dict[str, object] = {}
        for name, (lo, hi) in INT_RANGES.items():
            value = _clamp(int(getattr(self, name)), lo, hi)
            if value != getattr(self, name):
                changes[name] = value
        for name, (lo, hi) in FLOAT_RANGES.items():
            value = _clamp(float(getattr(self, name)), lo, hi)
            if value != getattr(self, name):
                changes[name] = value
        genome = replace(self, **changes) if changes else self

        changes = {}
        if genome.topology not in TOPOLOGY_KINDS:
            changes["topology"] = "fattree"
        topology = changes.get("topology", genome.topology)
        if genome.k % 2:
            changes["k"] = genome.k - 1
        if topology != "ring":
            if genome.cbd_rewire:
                changes["cbd_rewire"] = False
            if genome.circulate:
                changes["circulate"] = False
        elif genome.circulate and not genome.cbd_rewire:
            # Circulation flows realize a buffer dependency only when the
            # CBD routing misconfiguration is present.
            changes["circulate"] = False
        if genome.xon_kb >= genome.xoff_kb:
            changes["xon_kb"] = max(
                INT_RANGES["xon_kb"][0], genome.xoff_kb - 5
            )
        if genome.kmax_kb <= genome.kmin_kb:
            changes["kmax_kb"] = genome.kmin_kb + 10
        genome = replace(genome, **changes) if changes else genome

        # The incast pool excludes the target, the victim's endpoints.
        limit = max(0, genome.host_pool() - 3)
        if genome.incast_degree > limit:
            genome = replace(genome, incast_degree=limit)
        return genome

    # -- construction ------------------------------------------------------

    def _build_topology(self):
        bandwidth = gbps(self.link_gbps)
        uplink = gbps(self.link_gbps * self.oversub)
        if self.topology == "fattree":
            return build_fat_tree(
                k=self.k,
                bandwidth=bandwidth,
                hosts_per_edge=self.hosts_per_switch,
                core_bandwidth=uplink,
            )
        if self.topology == "leafspine":
            return build_leaf_spine(
                leaves=self.switches,
                spines=max(1, self.switches // 2),
                hosts_per_leaf=self.hosts_per_switch,
                bandwidth=bandwidth,
                spine_bandwidth=uplink,
            )
        if self.topology == "ring":
            return build_ring(
                num_switches=self.switches,
                hosts_per_switch=self.hosts_per_switch,
                bandwidth=bandwidth,
            )
        if self.topology == "line":
            return build_line(
                num_switches=self.switches,
                hosts_per_switch=self.hosts_per_switch,
                bandwidth=bandwidth,
            )
        return build_dumbbell(
            hosts_per_side=self.hosts_per_switch, bandwidth=bandwidth
        )

    def build(self) -> Scenario:
        """Materialize the genome as a runnable scenario.

        Ground truth is :data:`AnomalyType.UNKNOWN`: fuzzed scenarios have
        no oracle — the coverage map judges their outcome, not a truth
        match.
        """
        g = self.normalized()
        topo = g._build_topology()

        cfg = SimConfig()
        cfg.seed = g.seed
        cfg.pfc = PfcConfig(
            xoff_bytes=g.xoff_kb * KB, xon_bytes=g.xon_kb * KB
        )
        cfg.ecn = EcnConfig(
            kmin_bytes=g.kmin_kb * KB, kmax_bytes=g.kmax_kb * KB
        )

        routing = None
        if g.cbd_rewire:
            routing = RoutingTable(topo)
            ring = [f"SW{i}" for i in range(1, g.switches + 1)]
            dst_ips = {
                sw: [
                    topo.host_ip(f"H{i + 1}_{j}")
                    for j in range(g.hosts_per_switch)
                ]
                for i, sw in enumerate(ring)
            }
            make_ring_cbd_routes(routing, ring, dst_ips)
        net = Network(topo, routing=routing, config=cfg)
        rng = random.Random(g.seed)

        hosts = [h.name for h in topo.hosts]
        target = hosts[0]
        target_switch = topo.attachment_of(target).node
        sibling = next(
            (
                h for h in hosts
                if h != target and topo.attachment_of(h).node == target_switch
            ),
            None,
        )
        victim_dst = sibling if sibling is not None else target
        victim_src = next(
            h for h in reversed(hosts) if h not in (target, victim_dst)
        )

        # Incast sources, remote-first (the tail of the host list lives in
        # the farthest pod / switch), one pulse train per source.
        pool = [
            h for h in reversed(hosts)
            if h not in (target, victim_dst, victim_src)
        ]
        sources = pool[: g.incast_degree]
        port = 11000
        burst_flows = []
        for pulse in range(g.pulses if sources else 0):
            start = usec(40) + pulse * usec(g.pulse_gap_us)
            for i, src in enumerate(sources):
                jitter = rng.randrange(0, usec(g.jitter_us) + 1)
                size = g.burst_kb * KB
                if (i + pulse) % 3 == 0:
                    size = int(size * g.flow_tail)
                flow = net.make_flow(src, target, size, start + jitter,
                                     src_port=port)
                port += 1
                net.start_flow(flow)
                burst_flows.append(flow)

        if g.circulate:
            n = g.switches
            for i in range(n):
                src = f"H{i + 1}_0"
                dst = f"H{(i + 2) % n + 1}_0"
                flow = net.make_flow(src, dst, 5_000 * KB, usec(10),
                                     src_port=13000 + i)
                flow.max_rate = 0.3 * net.hosts[src].bandwidth
                net.start_flow(flow)

        if g.storm_us > 0:
            net.sim.schedule(
                usec(g.storm_start_us),
                lambda: net.hosts[target].start_pfc_injection(usec(g.storm_us)),
            )

        victim = net.make_flow(victim_src, victim_dst, g.victim_kb * KB,
                               usec(10), src_port=12000)
        if g.victim_rate < 1.0:
            victim.max_rate = g.victim_rate * net.hosts[victim_src].bandwidth
        net.start_flow(victim)

        exclude = {target, victim_src, victim_dst, *sources}
        if len(hosts) - len(exclude) >= 2:
            # The Poisson generator needs two free hosts; tiny fabrics
            # simply run without background.
            add_background_traffic(
                net, g.seed + 1000, g.background_load, usec(g.duration_us),
                exclude_hosts=exclude,
            )

        truth = GroundTruth(
            anomaly=AnomalyType.UNKNOWN,
            culprit_flows=[f.key for f in burst_flows],
            injecting_host=target if g.storm_us > 0 else None,
            initial_port=topo.attachment_of(target),
        )
        return Scenario(
            name=f"fuzz-{g.short_id()}",
            network=net,
            truth=truth,
            victims=[victim],
            duration_ns=usec(g.duration_us),
            description=(
                f"fuzzed {g.topology} fabric: incast degree "
                f"{len(sources)} x {g.pulses} pulse(s)"
                + (f", PFC injection {g.storm_us}us" if g.storm_us else "")
                + (", CBD rewire" if g.cbd_rewire else "")
            ),
        )


def genome_fields() -> List[str]:
    """The gene names in declaration order (mutation axis order)."""
    return [f.name for f in fields(ScenarioGenome)]
