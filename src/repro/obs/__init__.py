"""repro.obs — zero-dependency observability for the Hawkeye pipeline.

Three planes, one package:

- **tracing** (:mod:`.trace`, :mod:`.pipeline`, :mod:`.simtrace`): typed
  span/event records with sim-time timestamps and parent links, over
  swappable sinks; off by default via :data:`NULL_TRACER`;
- **metrics** (:mod:`.metrics`): counters/gauges/histograms absorbing the
  legacy per-component counter dicts, exported via ``--metrics-json``;
- **profiling** (:mod:`.profile`): per-stage wall-clock accounting folded
  into ``PerfStats.stages`` and ``BENCH_perf.json``.

:mod:`.tree` turns retained records back into the causal span tree the
``repro trace`` CLI renders and the invariant tests validate.
"""

from .canon import canonical_jsonl, canonicalize
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .pipeline import ObsConfig, PipelineObs, build_pipeline_obs
from .profile import StageProfile, merge_stage_dicts
from .simtrace import SimTraceObserver
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    AnyTracer,
    Event,
    JsonlSink,
    ListSink,
    NullSink,
    NullTracer,
    RingBufferSink,
    Sink,
    Span,
    Tracer,
)
from .tree import (
    SpanNode,
    build_tree,
    check_causal_chains,
    load_jsonl,
    render_tree,
    validate_records,
)

__all__ = [
    "AnyTracer",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSink",
    "NullTracer",
    "ObsConfig",
    "PipelineObs",
    "RingBufferSink",
    "SimTraceObserver",
    "Sink",
    "Span",
    "SpanNode",
    "StageProfile",
    "merge_stage_dicts",
    "Tracer",
    "build_pipeline_obs",
    "build_tree",
    "canonical_jsonl",
    "canonicalize",
    "check_causal_chains",
    "load_jsonl",
    "render_tree",
    "validate_records",
]
