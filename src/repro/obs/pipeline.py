"""Pipeline-aware span bookkeeping on top of the generic tracer.

:class:`PipelineObs` owns the span taxonomy of one scenario run and the
cross-component plumbing the raw :class:`~repro.obs.trace.Tracer` cannot
know about: which victim a polling mirror belongs to, which polling round
an epoch read should parent under, when a diagnosis span opens (first
trigger) and closes (verdict).  Components receive the ``PipelineObs``
(or ``None`` — the compiled-in fast path is a single ``is not None``
check) and call the domain hooks below; they never touch span ids.

Span taxonomy (parents in brackets):

- ``scenario``                       — the whole run (root)
- ``diagnosis`` [scenario]           — one victim complaint, trigger→verdict
- ``polling_round`` [diagnosis]      — one polling-packet generation
  (round 1 at the trigger; round N>1 per retransmission)
- ``epoch_read`` [polling_round]     — one switch-CPU register DMA read
- ``graph_build`` [diagnosis]        — Algorithm 1 for one victim
- ``port_pause`` [scenario]          — one PFC pause episode
  (emitted by :class:`~repro.obs.simtrace.SimTraceObserver`)

Event kinds: ``rtt_trigger``/``stall_trigger`` [diagnosis],
``polling_mirror``/``polling_forward``/``polling_suppressed``/
``polling_lost`` [polling_round], ``report_delivered``/``report_lost``/
``report_truncated``/``report_delayed`` [polling_round],
``signature_match`` and ``verdict`` [diagnosis], and the sim-level
``pkt_enqueue``/``pkt_dequeue``/``pause_rx``/``resume_rx`` [scenario].

Degradation contract: injected faults may *flag* spans (``degraded``
attrs, ``polling_lost``/``report_lost`` events) but the causal chain of a
diagnosis that produced a verdict is never silently absent — the chaos
trace-invariant tests pin this at 10% loss.

Every event emission also bumps the ``events.<kind>`` counter in the
attached :class:`~repro.obs.metrics.MetricsRegistry`; the trace-property
suite asserts counters and event counts never diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from .metrics import MetricsRegistry
from .trace import (
    AnyTracer,
    JsonlSink,
    NullSink,
    RingBufferSink,
    Sink,
    Span,
    Tracer,
)


@dataclass(frozen=True)
class ObsConfig:
    """Picklable observability knobs carried by ``RunConfig.obs``.

    A live tracer holds open file handles and span graphs and cannot
    cross the parallel runner's process boundary; this config can, and
    each worker builds its own tracer from it.
    """

    trace: bool = False            # build a real tracer (else NULL_TRACER)
    sink: str = "null"             # "null" | "ring" | "jsonl"
    jsonl_path: Optional[str] = None
    ring_capacity: int = 1 << 16
    sim_events: bool = False       # per-packet sim events (heavy; tests/CLI)

    def build_sink(self) -> Sink:
        if self.sink == "ring":
            return RingBufferSink(self.ring_capacity)
        if self.sink == "jsonl":
            if not self.jsonl_path:
                raise ValueError("ObsConfig(sink='jsonl') needs jsonl_path")
            return JsonlSink(self.jsonl_path)
        if self.sink == "null":
            return NullSink()
        raise ValueError(f"unknown trace sink {self.sink!r}")


class PipelineObs:
    """Domain-aware observability facade for one scenario run."""

    def __init__(
        self, tracer: AnyTracer, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.scenario_span: Optional[Span] = None
        # victim (FlowKey) -> its open diagnosis span / current polling round
        self._diagnosis: Dict[Any, Span] = {}
        self._round: Dict[Any, Span] = {}
        self._round_no: Dict[Any, int] = {}

    # -- internal -------------------------------------------------------------

    def _event(self, kind: str, span: Optional[Span], time_ns: int, **attrs) -> None:
        self.metrics.inc(f"events.{kind}")
        self.tracer.event(kind, span=span, time_ns=time_ns, **attrs)

    def _anchor(self, victim) -> Optional[Span]:
        """Best-effort parent for victim-scoped records: the victim's open
        polling round, else its diagnosis span, else the scenario root."""
        span = self._round.get(victim)
        if span is None:
            span = self._diagnosis.get(victim)
        return span if span is not None else self.scenario_span

    # -- scenario -------------------------------------------------------------

    def begin_scenario(self, name: str, start_ns: int = 0, **attrs) -> Span:
        self.scenario_span = self.tracer.begin_span(
            "scenario", name, start_ns, **attrs
        )
        return self.scenario_span

    def end_scenario(self, end_ns: int) -> None:
        """Close the root and sweep stragglers (flagged, never dropped)."""
        for victim, span in list(self._round.items()):
            self.tracer.end_span(span, end_ns, unresolved=True)
        self._round.clear()
        for victim, span in list(self._diagnosis.items()):
            # A diagnosis span still open here never reached a verdict
            # (e.g. the victim triggered but the runner found no report).
            self.tracer.end_span(span, end_ns, unresolved=True)
        self._diagnosis.clear()
        if self.scenario_span is not None:
            self.tracer.end_span(self.scenario_span, end_ns)
        self.tracer.finish(end_ns)

    # -- detection agent ------------------------------------------------------

    def on_trigger(
        self, victim, time_ns: int, rtt_ns: int, base_rtt_ns: int, kind: str = "rtt"
    ) -> None:
        """A victim complained.  First complaint opens its diagnosis span."""
        span = self._diagnosis.get(victim)
        if span is None:
            span = self.tracer.begin_span(
                "diagnosis",
                str(victim),
                time_ns,
                parent=self.scenario_span,
                victim=str(victim),
            )
            self._diagnosis[victim] = span
        self._event(
            f"{kind}_trigger",
            span,
            time_ns,
            rtt_ns=rtt_ns,
            base_rtt_ns=base_rtt_ns,
        )

    def on_polling_injected(self, victim, time_ns: int, attempt: int = 0) -> None:
        """A polling packet left the source host: a new trace generation."""
        previous = self._round.get(victim)
        if previous is not None:
            # Round N ended without satisfying the agent's report probe —
            # that is exactly why a retransmission happens.
            if attempt > 0:
                self.tracer.end_span(previous, time_ns, superseded=True)
            else:
                self.tracer.end_span(previous, time_ns)
        diagnosis = self._diagnosis.get(victim)
        number = self._round_no.get(victim, 0) + 1
        self._round_no[victim] = number
        self._round[victim] = self.tracer.begin_span(
            "polling_round",
            f"round-{number}",
            time_ns,
            parent=diagnosis if diagnosis is not None else self.scenario_span,
            attempt=attempt,
        )
        self.metrics.inc("polling.rounds")

    # -- polling engine -------------------------------------------------------

    def on_polling_mirror(self, switch: str, victim, time_ns: int) -> None:
        self._event("polling_mirror", self._anchor(victim), time_ns, switch=switch)

    def on_polling_forward(
        self, switch: str, victim, time_ns: int, fanout: int
    ) -> None:
        self._event(
            "polling_forward", self._anchor(victim), time_ns,
            switch=switch, fanout=fanout,
        )

    def on_polling_suppressed(self, switch: str, victim, time_ns: int, kind: str) -> None:
        self._event(
            "polling_suppressed", self._anchor(victim), time_ns,
            switch=switch, dedup=kind,
        )

    def on_polling_lost(self, switch: str, victim, time_ns: int) -> None:
        """Injected loss truncated the trace here: flag the round degraded."""
        span = self._round.get(victim)
        if span is not None:
            span.attrs["degraded"] = True
        self._event("polling_lost", self._anchor(victim), time_ns, switch=switch)

    # -- collector ------------------------------------------------------------

    def on_epoch_read(
        self,
        switch: str,
        victim,
        start_ns: int,
        end_ns: int,
        epochs: int,
        faults: tuple = (),
    ) -> None:
        """One register DMA read, from CPU-mirror to snapshot.

        Collector-side dedup means one read can serve several concurrent
        victims; the span parents under the round whose mirror most
        recently touched the switch (the read it actually drove).
        """
        span = self.tracer.begin_span(
            "epoch_read",
            switch,
            start_ns,
            parent=self._anchor(victim),
            switch=switch,
            epochs=epochs,
        )
        if faults:
            span.attrs["degraded"] = True
            span.attrs["faults"] = list(faults)
        self.tracer.end_span(span, end_ns)
        self.metrics.inc("collector.epoch_reads")

    def on_collection_shared(self, switch: str, victim, time_ns: int) -> None:
        """Collector dedup: this victim's mirror found a read already in
        flight (or just done) for the switch — its telemetry rides the
        concurrent victim's collection wave.  The event keeps the causal
        chain intact in this victim's subtree even though the ``epoch_read``
        span parents under the round that actually drove the read."""
        self._event(
            "epoch_shared", self._anchor(victim), time_ns, switch=switch
        )

    def on_report(
        self,
        fate: str,
        switch: str,
        victim,
        time_ns: int,
        faults: tuple = (),
        delay_ns: int = 0,
    ) -> None:
        """Report-channel outcome: ``delivered``/``lost``/``truncated``/``delayed``."""
        attrs: Dict[str, Any] = {"switch": switch}
        if faults:
            attrs["faults"] = list(faults)
        if delay_ns:
            attrs["delay_ns"] = delay_ns
        anchor = self._anchor(victim)
        if fate != "delivered":
            span = self._round.get(victim)
            if span is not None:
                span.attrs["degraded"] = True
        self._event(f"report_{fate}", anchor, time_ns, **attrs)

    # -- analyzer -------------------------------------------------------------

    def begin_graph_build(self, victim, time_ns: int) -> Span:
        return self.tracer.begin_span(
            "graph_build",
            str(victim) if victim is not None else "all",
            time_ns,
            parent=self._diagnosis.get(victim, self.scenario_span),
        )

    def end_graph_build(self, span: Span, time_ns: int, **attrs) -> None:
        self.tracer.end_span(span, time_ns, **attrs)
        self.metrics.inc("analyzer.graph_builds")

    def on_signature_match(
        self, victim, time_ns: int, anomaly: str, root_cause: str, port: str
    ) -> None:
        """Algorithm 2 matched one anomaly signature (a Finding)."""
        self._event(
            "signature_match",
            self._diagnosis.get(victim, self.scenario_span),
            time_ns,
            anomaly=anomaly,
            root_cause=root_cause,
            port=port,
        )

    def diagnosis_span_id(self, victim) -> Optional[int]:
        """Span id of the victim's open diagnosis span (read it *before*
        :meth:`on_verdict`, which closes and forgets the span)."""
        span = self._diagnosis.get(victim)
        return span.span_id if span is not None else None

    def on_verdict(self, victim, time_ns: int, diagnosis) -> None:
        """The diagnosis is final: emit the verdict and close the chain."""
        span = self._diagnosis.pop(victim, None)
        self._event(
            "verdict",
            span if span is not None else self.scenario_span,
            time_ns,
            anomaly=diagnosis.anomaly.value,
            confidence=diagnosis.confidence,
            completeness=diagnosis.completeness,
            findings=len(diagnosis.findings),
        )
        current_round = self._round.pop(victim, None)
        if current_round is not None:
            self.tracer.end_span(current_round, time_ns)
        if span is not None:
            attrs = {
                "anomaly": diagnosis.anomaly.value,
                "confidence": diagnosis.confidence,
            }
            if diagnosis.confidence != "full":
                attrs["degraded"] = True
            self.tracer.end_span(span, time_ns, **attrs)


def build_pipeline_obs(config: Optional[ObsConfig]) -> Optional[PipelineObs]:
    """The runner's entry point: ``None`` config (or trace off) -> ``None``,
    keeping every instrumented call site on the one-comparison fast path."""
    if config is None or not config.trace:
        return None
    return PipelineObs(Tracer(config.build_sink()), MetricsRegistry())
