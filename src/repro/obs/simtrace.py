"""Simulator-level trace events: per-packet accounting and pause spans.

A :class:`SimTraceObserver` is a :class:`~repro.sim.switch.SwitchObserver`
that translates the switch hooks into trace records:

- ``pkt_enqueue`` / ``pkt_dequeue`` events per egress enqueue/dequeue
  (the conservation law the property tests check: on a drained lossless
  fabric, enqueues == dequeues per switch — nothing is dropped);
- ``pause_rx`` / ``resume_rx`` events for PFC frames entering a port;
- one ``port_pause`` span per pause *episode* on a (switch, port): opened
  at the first PAUSE, extended by refresh frames, closed by the RESUME
  frame or by quanta expiry (whichever the frames imply came first).

This is deliberately opt-in (``ObsConfig.sim_events``): per-packet events
are far too hot for the leave-it-on default, but on the small fabrics of
the property tests they give the tracer a ground truth to check the
pipeline against.  Every event also bumps the matching ``events.*``
counter in the registry, so "metric counters == trace event counts" is an
asserted invariant, not an assumption.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..sim.packet import Packet, pause_quanta_to_ns
from ..sim.switch import Switch, SwitchObserver
from .metrics import MetricsRegistry
from .trace import AnyTracer, Span


class SimTraceObserver(SwitchObserver):
    """Emits sim-level events/spans under a parent (usually the scenario)."""

    def __init__(
        self,
        tracer: AnyTracer,
        metrics: Optional[MetricsRegistry] = None,
        parent: Optional[Span] = None,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.parent = parent
        # (switch, port) -> (open pause span, expected expiry time ns)
        self._pause: Dict[Tuple[str, int], Tuple[Span, int]] = {}

    # -- helpers --------------------------------------------------------------

    def _event(self, kind: str, time_ns: int, **attrs) -> None:
        self.metrics.inc(f"events.{kind}")
        self.tracer.event(kind, span=self.parent, time_ns=time_ns, **attrs)

    def _close_pause(self, key: Tuple[str, int], end_ns: int) -> None:
        span, _ = self._pause.pop(key)
        self.tracer.end_span(span, end_ns)

    # -- switch hooks ---------------------------------------------------------

    def on_egress_enqueue(
        self,
        switch: Switch,
        time_ns: int,
        pkt: Packet,
        egress_port: int,
        ingress_port,
        queue_depth_pkts: int,
        queue_bytes: int,
        port_paused: bool,
    ) -> None:
        self._event(
            "pkt_enqueue",
            time_ns,
            switch=switch.name,
            port=egress_port,
            paused=port_paused,
        )

    def on_egress_dequeue(
        self, switch: Switch, time_ns: int, pkt: Packet, egress_port: int
    ) -> None:
        self._event(
            "pkt_dequeue", time_ns, switch=switch.name, port=egress_port
        )

    def on_pfc_received(
        self, switch: Switch, time_ns: int, port: int, priority: int, quanta: int
    ) -> None:
        key = (switch.name, port)
        open_pause = self._pause.get(key)
        if quanta > 0:
            self._event(
                "pause_rx", time_ns, switch=switch.name, port=port, quanta=quanta
            )
            until = time_ns + pause_quanta_to_ns(
                quanta, switch.ports[port].bandwidth
            )
            if open_pause is not None:
                span, expiry = open_pause
                if time_ns >= expiry:
                    # The previous episode lapsed silently before this new
                    # PAUSE: close it at its expiry, then start afresh.
                    self._close_pause(key, expiry)
                    open_pause = None
                else:
                    # Refresh: same episode, pushed-out expiry.
                    self._pause[key] = (span, until)
            if open_pause is None:
                span = self.tracer.begin_span(
                    "port_pause",
                    f"{switch.name}.P{port}",
                    time_ns,
                    parent=self.parent,
                    switch=switch.name,
                    port=port,
                )
                self._pause[key] = (span, until)
        else:
            self._event(
                "resume_rx", time_ns, switch=switch.name, port=port
            )
            if open_pause is not None:
                span, expiry = open_pause
                # A RESUME after the quanta lapsed ends the episode at the
                # expiry, not at the (later) frame arrival.
                self._close_pause(key, min(time_ns, expiry))

    # -- teardown -------------------------------------------------------------

    def finish(self, now_ns: int) -> None:
        """Close episodes still open at end of run (expiry-capped)."""
        for key in sorted(self._pause):
            span, expiry = self._pause[key]
            self.tracer.end_span(span, min(now_ns, expiry))
        self._pause.clear()
