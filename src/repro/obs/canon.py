"""Canonical form for trace record streams.

A single-process run emits trace records in one global id sequence; a
sharded run (``repro.experiments.shardrun``) emits the *same records* but
numbered per worker and concatenated in shard order.  Record ids and
stream position therefore differ between the two executions even when
every record's content and causal ancestry are identical — which is
exactly the equivalence the sharded determinism suite needs to check.

:func:`canonicalize` reduces a record list to a normal form that depends
only on content and ancestry:

1. every record gets a *signature* — its content (type, kind, name,
   timestamps, attrs) joined with the signature of its parent chain, so
   two records agree iff they describe the same work anchored the same
   way;
2. records are sorted by signature and renumbered ``1..n`` in that
   order, and parent/span references are rewritten through the old→new
   id map;
3. the result is serialized as sorted-key compact JSONL.

Two runs are equivalent iff their canonical JSONL bytes are equal.
Records with identical signatures are interchangeable by construction
(their subtrees have identical signatures too), so the arbitrary order
among duplicates cannot change the output bytes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

_CONTENT_KEYS = ("type", "kind", "name", "start_ns", "end_ns", "time_ns")


def _signature(
    record: Dict[str, Any],
    by_id: Dict[int, Dict[str, Any]],
    memo: Dict[int, str],
) -> str:
    rid = record["id"]
    cached = memo.get(rid)
    if cached is not None:
        return cached
    content = {k: record[k] for k in _CONTENT_KEYS if k in record}
    content["attrs"] = record.get("attrs") or {}
    parent_id = record.get("parent", record.get("span"))
    parent = by_id.get(parent_id) if parent_id is not None else None
    if parent is not None:
        content["ancestry"] = _signature(parent, by_id, memo)
    sig = json.dumps(content, sort_keys=True, separators=(",", ":"))
    memo[rid] = sig
    return sig


def canonicalize(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Renumber and reorder ``records`` into their canonical form."""
    by_id = {r["id"]: r for r in records}
    memo: Dict[int, str] = {}
    ordered = sorted(records, key=lambda r: (_signature(r, by_id, memo), r["id"]))
    new_id = {r["id"]: i + 1 for i, r in enumerate(ordered)}
    canonical: List[Dict[str, Any]] = []
    for record in ordered:
        out = dict(record)
        out["id"] = new_id[record["id"]]
        for ref in ("parent", "span"):
            if ref in out and out[ref] is not None:
                out[ref] = new_id.get(out[ref], out[ref])
        canonical.append(out)
    return canonical


def canonical_jsonl(records: List[Dict[str, Any]]) -> bytes:
    """Canonical byte serialization — the determinism suite compares this."""
    lines = [
        json.dumps(r, sort_keys=True, separators=(",", ":"))
        for r in canonicalize(records)
    ]
    return ("\n".join(lines) + "\n").encode() if lines else b""
