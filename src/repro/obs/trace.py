"""Structured tracing: typed span/event records over swappable sinks.

The :class:`Tracer` is the pipeline's flight recorder.  Every record is
timestamped in **simulated** nanoseconds (never wall clock), carries a
monotonically increasing record id and an explicit parent link, and is
therefore a pure function of the run it observed: identical (seed,
scenario) runs emit byte-identical record streams, which the determinism
suite pins by comparing JSONL sink output bytes.

Two record types exist:

- a **span** covers an interval ``[start_ns, end_ns]`` of the pipeline
  (scenario, per-victim diagnosis, polling round, epoch read, graph
  build, port-pause episode).  Spans nest through ``parent``;
- an **event** marks an instant (RTT trigger, polling mirror/forward,
  report delivery, signature match, verdict) inside a span.

Sink contract (see DESIGN.md "Observability"): a sink's ``emit`` receives
each finished record exactly once, in emission order — events when they
fire, spans when they *end* — as a plain JSON-serializable dict.  Sinks
must not mutate records.  The tracer additionally retains every span and
event on itself (``tracer.spans`` / ``tracer.events``) so in-process
consumers (the span-tree renderer, the invariant tests) never depend on a
sink's retention policy (the ring sink drops old records by design).

The default tracer is :data:`NULL_TRACER`: a singleton whose methods
return immediately, so instrumented call sites cost one attribute check
when tracing is off — cheap enough to leave compiled in everywhere
(guarded by the perf-regression benchmark).
"""

from __future__ import annotations

import io
import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Union


class Sink:
    """Where finished trace records go.  Base class doubles as the no-op."""

    def emit(self, record: Dict[str, Any]) -> None:  # pragma: no cover - interface
        pass

    def close(self) -> None:
        pass


class NullSink(Sink):
    """Discards every record (the leave-it-on default)."""


class RingBufferSink(Sink):
    """Keeps the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 1 << 16) -> None:
        self.records: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)
        self.emitted += 1

    @property
    def dropped(self) -> int:
        """Records evicted by the ring (emitted but no longer retained)."""
        return self.emitted - len(self.records)


class JsonlSink(Sink):
    """Streams records as JSON lines (sorted keys, compact separators).

    With deterministic inputs the output file is byte-identical across
    runs — the determinism differential test compares raw bytes.
    """

    def __init__(self, target: Union[str, io.TextIOBase]) -> None:
        if isinstance(target, str):
            self._fh: Any = open(target, "w")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.emitted = 0

    def emit(self, record: Dict[str, Any]) -> None:
        self._fh.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self.emitted += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class ListSink(Sink):
    """Unbounded in-memory sink (tests and the CLI tree renderer)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)


class Span:
    """One interval of pipeline work.  Mutable until ended."""

    __slots__ = ("span_id", "parent_id", "kind", "name", "start_ns", "end_ns", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        kind: str,
        name: str,
        start_ns: int,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs = attrs

    @property
    def open(self) -> bool:
        return self.end_ns is None

    def to_record(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"..{self.end_ns}"
        return f"<span {self.span_id} {self.kind}:{self.name} {self.start_ns}{state}>"


class Event:
    """One instant of pipeline work, attached to a span."""

    __slots__ = ("event_id", "span_id", "kind", "name", "time_ns", "attrs")

    def __init__(
        self,
        event_id: int,
        span_id: Optional[int],
        kind: str,
        name: str,
        time_ns: int,
        attrs: Dict[str, Any],
    ) -> None:
        self.event_id = event_id
        self.span_id = span_id
        self.kind = kind
        self.name = name
        self.time_ns = time_ns
        self.attrs = attrs

    def to_record(self) -> Dict[str, Any]:
        return {
            "type": "event",
            "id": self.event_id,
            "span": self.span_id,
            "kind": self.kind,
            "name": self.name,
            "time_ns": self.time_ns,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<event {self.event_id} {self.kind}:{self.name} t={self.time_ns}>"


class Tracer:
    """Emits spans and events; retains them and forwards finished records.

    Record ids are a single shared sequence over spans and events, so the
    id order is the global emission order — the invariant tests use it to
    check causal ordering without trusting timestamps alone.
    """

    enabled = True

    def __init__(self, sink: Optional[Sink] = None) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.spans: List[Span] = []
        self.events: List[Event] = []
        self._next_id = 1
        self._open: Dict[int, Span] = {}
        self.finished = False

    # -- span lifecycle -------------------------------------------------------

    def begin_span(
        self,
        kind: str,
        name: str,
        start_ns: int,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            kind,
            name,
            start_ns,
            attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._open[span.span_id] = span
        return span

    def end_span(self, span: Span, end_ns: int, **attrs: Any) -> None:
        """Close a span; the finished record reaches the sink here."""
        if span.end_ns is not None:
            return  # idempotent: scenario teardown may sweep already-closed spans
        if attrs:
            span.attrs.update(attrs)
        span.end_ns = max(end_ns, span.start_ns)
        self._open.pop(span.span_id, None)
        self.sink.emit(span.to_record())

    def event(
        self,
        kind: str,
        name: str = "",
        span: Optional[Span] = None,
        time_ns: int = 0,
        **attrs: Any,
    ) -> Event:
        event = Event(
            self._next_id,
            span.span_id if span is not None else None,
            kind,
            name,
            time_ns,
            attrs,
        )
        self._next_id += 1
        self.events.append(event)
        self.sink.emit(event.to_record())
        return event

    # -- teardown -------------------------------------------------------------

    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def finish(self, end_ns: int) -> None:
        """Close any still-open spans (flagged) and close the sink.

        A span that had to be closed here means some pipeline stage never
        reached its natural end — the trace-invariant tests treat the
        ``unclosed`` flag as a degradation marker, never as absence.
        """
        # Close in id order so output order is deterministic.
        for span in sorted(self._open.values(), key=lambda s: s.span_id):
            self.end_span(span, end_ns, unclosed=True)
        self.finished = True
        self.sink.close()

    # -- introspection --------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Every retained record, in id order (spans and events merged)."""
        merged = [span.to_record() for span in self.spans]
        merged.extend(event.to_record() for event in self.events)
        merged.sort(key=lambda r: r["id"])
        return merged


class _NullSpan(Span):
    """Shared inert span handed out by the null tracer."""

    def __init__(self) -> None:
        super().__init__(0, None, "null", "null", 0, {})


class NullTracer:
    """API-compatible no-op.  ``enabled`` is the fast-path guard."""

    enabled = False

    def __init__(self) -> None:
        self.sink = NullSink()
        self.spans: List[Span] = []
        self.events: List[Event] = []
        self.finished = False

    def begin_span(self, kind, name, start_ns, parent=None, **attrs) -> Span:
        return NULL_SPAN

    def end_span(self, span, end_ns, **attrs) -> None:
        pass

    def event(self, kind, name="", span=None, time_ns=0, **attrs) -> None:
        return None

    def open_spans(self) -> List[Span]:
        return []

    def finish(self, end_ns: int) -> None:
        pass

    def records(self) -> List[Dict[str, Any]]:
        return []


NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()

AnyTracer = Union[Tracer, NullTracer]
