"""Per-stage wall-clock profiling for the pipeline.

A :class:`StageProfile` accumulates wall seconds and call counts per named
pipeline stage (simulate, flush, select-reports, graph-build, diagnose,
qualify).  The runner keeps one per run and folds the result into
``PerfStats.stages`` so ``BENCH_perf.json`` carries per-stage breakdowns;
when a :class:`~repro.obs.metrics.MetricsRegistry` is attached, each stage
exit also feeds a ``stage.<name>_s`` histogram with the per-call duration.

Wall-clock numbers never enter the trace stream (they would break the
byte-identical determinism contract); they live only here and in metrics.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .metrics import MetricsRegistry


class StageProfile:
    """Accumulates {stage: (wall seconds, calls)} with ~two clock reads/call."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._wall: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self.metrics = metrics

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def add(self, name: str, wall_s: float, calls: int = 1) -> None:
        self._wall[name] = self._wall.get(name, 0.0) + wall_s
        self._calls[name] = self._calls.get(name, 0) + calls
        if self.metrics is not None:
            self.metrics.histogram(f"stage.{name}_s").observe(wall_s)

    def wall_s(self, name: str) -> float:
        return self._wall.get(name, 0.0)

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """``PerfStats.stages`` payload: {stage: {wall_s, calls}}, sorted."""
        return {
            name: {"wall_s": self._wall[name], "calls": self._calls[name]}
            for name in sorted(self._wall)
        }

    def absorb(self, stages: Dict[str, Dict[str, Any]]) -> None:
        """Fold another profile's ``to_dict`` payload into this one."""
        for name, entry in stages.items():
            self.add(name, entry.get("wall_s", 0.0), entry.get("calls", 1))


def merge_stage_dicts(
    stage_dicts: "list[Dict[str, Dict[str, Any]]]",
) -> Dict[str, Dict[str, Any]]:
    """Merge per-worker ``StageProfile.to_dict`` payloads.

    Parallel workers run stages concurrently, so the *sum* of their wall
    clocks overstates elapsed time by up to the worker count.  The merged
    entry therefore carries both: ``wall_s``/``calls`` summed (total CPU
    spent in the stage) and ``max_wall_s`` (the slowest single worker — the
    stage's contribution to the critical path).
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for stages in stage_dicts:
        for name, entry in stages.items():
            slot = merged.setdefault(
                name, {"wall_s": 0.0, "calls": 0, "max_wall_s": 0.0}
            )
            wall = entry.get("wall_s", 0.0)
            slot["wall_s"] += wall
            slot["calls"] += entry.get("calls", 1)
            # Honor an upstream max (already-merged payloads) over the sum.
            slot["max_wall_s"] = max(
                slot["max_wall_s"], entry.get("max_wall_s", wall)
            )
    return {name: merged[name] for name in sorted(merged)}
