"""Span-tree assembly, rendering and invariant checking.

Works on the plain record dicts every sink receives (and
``Tracer.records()`` returns), so the same code serves three consumers:
the ``repro trace`` CLI renderer, the trace-invariant test suite, and
anyone replaying a JSONL trace file offline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

# The causal chain a completed diagnosis must show, in order: the trigger
# that started it, the polling round it launched, the telemetry it
# collected, the graph it built and the verdict it reached.
TRIGGER_EVENTS = ("rtt_trigger", "stall_trigger")
REPORT_EVENTS = ("report_delivered",)


class SpanNode:
    """One span plus its child spans and attached events, in record order."""

    __slots__ = ("record", "children", "events")

    def __init__(self, record: Dict[str, Any]) -> None:
        self.record = record
        self.children: List["SpanNode"] = []
        self.events: List[Dict[str, Any]] = []

    @property
    def kind(self) -> str:
        return self.record["kind"]

    @property
    def name(self) -> str:
        return self.record["name"]

    @property
    def attrs(self) -> Dict[str, Any]:
        return self.record.get("attrs") or {}

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> List["SpanNode"]:
        return [node for node in self.walk() if node.kind == kind]

    def all_events(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for node in self.walk():
            out.extend(node.events)
        return out


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JsonlSink file back into records."""
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def build_tree(
    records: Iterable[Dict[str, Any]],
) -> Tuple[List[SpanNode], List[str]]:
    """Assemble roots from records; returns ``(roots, orphan errors)``.

    An *orphan* is a span whose ``parent`` id, or an event whose ``span``
    id, names a span that never appeared — the trace-invariant tests
    require the error list to be empty for every run.
    """
    spans: Dict[int, SpanNode] = {}
    ordered: List[Dict[str, Any]] = sorted(records, key=lambda r: r["id"])
    errors: List[str] = []
    for record in ordered:
        if record["type"] == "span":
            spans[record["id"]] = SpanNode(record)
    roots: List[SpanNode] = []
    for record in ordered:
        if record["type"] == "span":
            node = spans[record["id"]]
            parent_id = record.get("parent")
            if parent_id is None:
                roots.append(node)
            elif parent_id in spans:
                spans[parent_id].children.append(node)
            else:
                errors.append(
                    f"orphan span {record['id']} ({record['kind']}): "
                    f"parent {parent_id} not in trace"
                )
                roots.append(node)
        else:
            span_id = record.get("span")
            if span_id is None:
                errors.append(
                    f"orphan event {record['id']} ({record['kind']}): no span"
                )
            elif span_id in spans:
                spans[span_id].events.append(record)
            else:
                errors.append(
                    f"orphan event {record['id']} ({record['kind']}): "
                    f"span {span_id} not in trace"
                )
    return roots, errors


def validate_records(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Structural invariants every trace must satisfy.

    - no orphan spans or events (parent links resolve);
    - every span is closed with ``end_ns >= start_ns``;
    - record ids are unique and events never precede their span's start.
    """
    records = list(records)
    _, errors = build_tree(records)
    seen_ids = set()
    spans: Dict[int, Dict[str, Any]] = {}
    for record in records:
        if record["id"] in seen_ids:
            errors.append(f"duplicate record id {record['id']}")
        seen_ids.add(record["id"])
        if record["type"] == "span":
            spans[record["id"]] = record
            if record["end_ns"] is None:
                errors.append(f"span {record['id']} ({record['kind']}) never ended")
            elif record["end_ns"] < record["start_ns"]:
                errors.append(f"span {record['id']} ends before it starts")
    for record in records:
        if record["type"] != "event":
            continue
        span = spans.get(record.get("span"))
        if span is not None and record["time_ns"] < span["start_ns"]:
            errors.append(
                f"event {record['id']} ({record['kind']}) at {record['time_ns']} "
                f"precedes its span's start {span['start_ns']}"
            )
    return errors


def check_causal_chains(records: Iterable[Dict[str, Any]]) -> Dict[str, List[str]]:
    """Per-diagnosis completeness: what each victim's chain is missing.

    Returns ``{victim: [missing links]}`` — an empty list means a complete
    chain: trigger → polling round → CPU mirror → collection (an
    ``epoch_read`` span, or an ``epoch_shared`` event when collector dedup
    rode a concurrent victim's read) → report delivery → graph build →
    verdict.  A span flagged ``unresolved`` (the victim triggered but the
    run ended before the analyzer produced a verdict — e.g. a culprit flow
    whose own RTT also spiked) is reported as ``["unresolved"]`` and not
    held to the rest of the contract; the degradation rule is that chains
    may be *flagged*, never silently absent.
    """
    roots, _ = build_tree(records)
    out: Dict[str, List[str]] = {}
    for root in roots:
        for diag in root.find("diagnosis"):
            victim = diag.attrs.get("victim", diag.name)
            if diag.attrs.get("unresolved"):
                out[victim] = ["unresolved"]
                continue
            missing: List[str] = []
            events = diag.all_events()
            kinds = {e["kind"] for e in events}
            shared = "epoch_shared" in kinds
            if not kinds.intersection(TRIGGER_EVENTS):
                missing.append("trigger")
            if not diag.find("polling_round"):
                missing.append("polling_round")
            if "polling_mirror" not in kinds:
                missing.append("polling_mirror")
            if not diag.find("epoch_read") and not shared:
                missing.append("epoch_read")
            if not kinds.intersection(REPORT_EVENTS) and not shared:
                missing.append("report_delivered")
            if not diag.find("graph_build"):
                missing.append("graph_build")
            if "verdict" not in kinds:
                missing.append("verdict")
            out[victim] = missing
    return out


# ---------------------------------------------------------------------------
# Rendering (the ``repro trace`` CLI)
# ---------------------------------------------------------------------------

_SKIP_ATTRS = {"victim", "switch"}  # already part of the label


def _fmt_time(ns: Optional[int]) -> str:
    return "?" if ns is None else f"{ns / 1e6:.3f}ms"


def _fmt_attrs(attrs: Dict[str, Any]) -> str:
    parts = []
    for key in sorted(attrs):
        if key in _SKIP_ATTRS:
            continue
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.3g}"
        elif isinstance(value, list):
            value = ",".join(str(v) for v in value)
        parts.append(f"{key}={value}")
    return f" [{' '.join(parts)}]" if parts else ""


def _span_label(node: SpanNode) -> str:
    record = node.record
    label = (
        f"{node.kind} {node.name} "
        f"({_fmt_time(record['start_ns'])} .. {_fmt_time(record['end_ns'])})"
    )
    return label + _fmt_attrs(node.attrs)


def _event_label(event: Dict[str, Any]) -> str:
    attrs = event.get("attrs") or {}
    where = f" @ {attrs['switch']}" if "switch" in attrs else ""
    return (
        f"{event['kind']}{where} t={_fmt_time(event['time_ns'])}"
        + _fmt_attrs(attrs)
    )


def render_tree(roots: List[SpanNode]) -> str:
    """Pretty-print span trees with box-drawing connectors."""
    lines: List[str] = []

    def emit(node: SpanNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_span_label(node))
            child_prefix = ""
        else:
            connector = "`- " if is_last else "|- "
            lines.append(prefix + connector + _span_label(node))
            child_prefix = prefix + ("   " if is_last else "|  ")
        # Interleave events and child spans in time order (ties: record id).
        items: List[Tuple[Tuple[int, int], Any]] = [
            ((e["time_ns"], e["id"]), e) for e in node.events
        ]
        items.extend(
            ((c.record["start_ns"], c.record["id"]), c) for c in node.children
        )
        items.sort(key=lambda pair: pair[0])
        for i, (_, item) in enumerate(items):
            last = i == len(items) - 1
            if isinstance(item, SpanNode):
                emit(item, child_prefix, last, False)
            else:
                connector = "`- " if last else "|- "
                lines.append(child_prefix + connector + _event_label(item))

    for i, root in enumerate(roots):
        if i:
            lines.append("")
        emit(root, "", True, True)
    return "\n".join(lines)
