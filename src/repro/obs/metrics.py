"""Metrics registry: counters, gauges and histograms with a JSON export.

The registry is the single place run-level numbers end up.  It absorbs
(and supersedes as the canonical export) the ad-hoc counter dicts that
grew across PR1-PR3 — ``PerfStats`` event-loop/cache counters,
``FaultInjector.stats``, ``CollectionStats`` and the polling/agent
reliability tallies — plus the trace-derived per-kind event counts, so
``--metrics-json`` gives one coherent document per run.

Two usage modes:

- **live**: components increment counters as they go (the sim-trace
  observer and :class:`~repro.obs.pipeline.PipelineObs` do this — the
  trace-property tests assert live counters match trace event counts);
- **absorb**: at end of run the runner pulls every legacy counter dict in
  with :meth:`MetricsRegistry.absorb_counters`, which namespaces them
  without touching the sources (the old attributes keep working).

Metric names are dotted paths (``polling.packets_forwarded``); the export
nests them by the first segment and sorts keys, so the JSON is stable.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional

# Histogram quantile resolution: 64 power-of-two buckets centered on 1.0.
# Bucket ``i`` covers ``[2**(i-33), 2**(i-32))``; the extremes clamp, so
# any positive value lands somewhere and zero/negatives take bucket 0.
_HIST_BUCKETS = 64
_HIST_BIAS = 32


def _bucket_index(value: float) -> int:
    if value <= 0.0:
        return 0
    # frexp(v) = (m, e) with v = m * 2**e, 0.5 <= m < 1  =>  log2-floor = e-1.
    e = math.frexp(value)[1]
    idx = e + _HIST_BIAS
    if idx < 0:
        return 0
    if idx >= _HIST_BUCKETS:
        return _HIST_BUCKETS - 1
    return idx


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins number."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values with approximate quantiles.

    Full-fidelity distributions are overkill for per-stage wall times and
    span durations; observation stays O(1) — the scalar summary plus one
    increment into a fixed set of power-of-two buckets, from which
    :meth:`quantile` interpolates p50/p95/p99 (exact within a factor-of-two
    bucket, clamped to the true observed min/max).
    """

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: List[int] = [0] * _HIST_BUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._buckets[_bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Approximate ``q``-quantile via the log2 buckets (None if empty)."""
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        cumulative = 0
        for idx, n in enumerate(self._buckets):
            if n == 0:
                continue
            if cumulative + n >= rank:
                # Interpolate within the bucket's [2^(idx-33), 2^(idx-32)).
                low = 0.0 if idx == 0 else 2.0 ** (idx - _HIST_BIAS - 1)
                high = 2.0 ** (idx - _HIST_BIAS)
                frac = (rank - cumulative) / n
                value = low + frac * (high - low)
                # The observed extremes are exact; never report outside them.
                return min(max(value, self.min), self.max)
            cumulative += n
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Get-or-create registry of named counters/gauges/histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    # -- convenience ----------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def counter_value(self, name: str) -> int:
        metric = self._counters.get(name)
        return metric.value if metric is not None else 0

    def absorb_counters(self, prefix: str, counters: Mapping[str, Any]) -> None:
        """Fold a legacy counter mapping in under ``prefix.``.

        Only integer-valued entries are absorbed as counters; nested
        mappings (the cache hit/miss dicts) recurse with their key joined
        into the name.
        """
        for key, value in counters.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, Mapping):
                self.absorb_counters(name, value)
            elif isinstance(value, bool):
                self.counter(name).inc(int(value))
            elif isinstance(value, int):
                self.counter(name).inc(value)
            elif isinstance(value, float):
                self.gauge(name).set(value)

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Sorted, JSON-ready view (the ``--metrics-json`` document body)."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.to_dict()
                for name, metric in sorted(self._histograms.items())
            },
        }
