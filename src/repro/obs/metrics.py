"""Metrics registry: counters, gauges and histograms with a JSON export.

The registry is the single place run-level numbers end up.  It absorbs
(and supersedes as the canonical export) the ad-hoc counter dicts that
grew across PR1-PR3 — ``PerfStats`` event-loop/cache counters,
``FaultInjector.stats``, ``CollectionStats`` and the polling/agent
reliability tallies — plus the trace-derived per-kind event counts, so
``--metrics-json`` gives one coherent document per run.

Two usage modes:

- **live**: components increment counters as they go (the sim-trace
  observer and :class:`~repro.obs.pipeline.PipelineObs` do this — the
  trace-property tests assert live counters match trace event counts);
- **absorb**: at end of run the runner pulls every legacy counter dict in
  with :meth:`MetricsRegistry.absorb_counters`, which namespaces them
  without touching the sources (the old attributes keep working).

Metric names are dotted paths (``polling.packets_forwarded``); the export
nests them by the first segment and sorts keys, so the JSON is stable.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins number."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    Full-fidelity distributions are overkill for per-stage wall times and
    span durations; the lean summary keeps observation O(1) and the JSON
    small, following the lean-accounting discipline the monitoring layer
    itself preaches.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create registry of named counters/gauges/histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    # -- convenience ----------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def counter_value(self, name: str) -> int:
        metric = self._counters.get(name)
        return metric.value if metric is not None else 0

    def absorb_counters(self, prefix: str, counters: Mapping[str, Any]) -> None:
        """Fold a legacy counter mapping in under ``prefix.``.

        Only integer-valued entries are absorbed as counters; nested
        mappings (the cache hit/miss dicts) recurse with their key joined
        into the name.
        """
        for key, value in counters.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, Mapping):
                self.absorb_counters(name, value)
            elif isinstance(value, bool):
                self.counter(name).inc(int(value))
            elif isinstance(value, int):
                self.counter(name).inc(value)
            elif isinstance(value, float):
                self.gauge(name).set(value)

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Sorted, JSON-ready view (the ``--metrics-json`` document body)."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.to_dict()
                for name, metric in sorted(self._histograms.items())
            },
        }
