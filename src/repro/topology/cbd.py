"""Cyclic-buffer-dependency (CBD) analysis on routing state.

PFC deadlocks require a CBD (§2.1): a cycle of egress buffers each waiting
on the next.  Given the topology and the (possibly misconfigured) routing,
this module builds the static *buffer dependency graph* — an edge from
egress port ``A.p`` to egress port ``B.q`` whenever some flow class is
routed through ``A.p`` into switch ``B`` and onward through ``B.q`` — and
enumerates its cycles.

This is the prevention-side complement to Hawkeye's runtime deadlock
diagnosis (the paper points to Tagger-style CBD checking for resolution):
a network whose buffer dependency graph is acyclic cannot deadlock, no
matter what traffic arrives.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .graph import PortRef, Topology
from .routing import RoutingError, RoutingTable


def buffer_dependency_graph(
    topology: Topology, routing: RoutingTable
) -> Dict[PortRef, Set[PortRef]]:
    """Static buffer dependencies implied by the routing tables.

    For every (switch, destination-host) routing decision we link each
    *upstream* egress port that can deliver traffic into the switch to the
    egress port that traffic would leave through.  Host-facing egress ports
    are terminal (hosts sink traffic) and get no outgoing edges.
    """
    deps: Dict[PortRef, Set[PortRef]] = {}
    for host in topology.hosts:
        dst_ip = topology.host_ip(host.name)
        for switch in topology.switches:
            try:
                egress_ports = routing.ecmp_ports(switch.name, dst_ip)
            except RoutingError:
                continue
            for egress_no in egress_ports:
                egress = PortRef(switch.name, egress_no)
                # Any neighbor that routes toward this switch for dst can
                # push traffic into `egress`.
                for in_port, remote in topology.neighbors(switch.name):
                    if in_port == egress_no:
                        continue
                    if topology.node(remote.node).is_host:
                        continue
                    try:
                        remote_ports = routing.ecmp_ports(remote.node, dst_ip)
                    except RoutingError:
                        continue
                    if remote.port in remote_ports:
                        deps.setdefault(remote, set()).add(egress)
    return deps


def find_cbd_cycles(deps: Dict[PortRef, Set[PortRef]]) -> List[List[PortRef]]:
    """All distinct simple cycles of the buffer dependency graph."""
    cycles: List[List[PortRef]] = []
    seen: Set[frozenset] = set()

    def dfs(node: PortRef, stack: List[PortRef], on_stack: Set[PortRef], visited: Set[PortRef]):
        stack.append(node)
        on_stack.add(node)
        visited.add(node)
        for succ in deps.get(node, ()):
            if succ in on_stack:
                cycle = stack[stack.index(succ):]
                sig = frozenset(cycle)
                if sig not in seen:
                    seen.add(sig)
                    cycles.append(list(cycle))
            elif succ not in visited:
                dfs(succ, stack, on_stack, visited)
        stack.pop()
        on_stack.remove(node)

    visited: Set[PortRef] = set()
    for start in list(deps):
        if start not in visited:
            dfs(start, [], set(), visited)
    return cycles


def has_cbd(topology: Topology, routing: RoutingTable) -> bool:
    """Can this routing state deadlock at all?"""
    return bool(find_cbd_cycles(buffer_dependency_graph(topology, routing)))


def check_deadlock_free(topology: Topology, routing: RoutingTable) -> List[List[PortRef]]:
    """Return the CBD cycles (empty list == provably deadlock-free)."""
    return find_cbd_cycles(buffer_dependency_graph(topology, routing))
