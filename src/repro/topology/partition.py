"""Deterministic topology partitioning for the sharded simulator.

The sharded runner (``repro.sim.shard`` / ``repro.experiments.shardrun``)
splits one fabric across worker processes.  The partitioner assigns every
node to exactly one shard, keeping *atomic groups* together:

- On a fat-tree, removing the core layer leaves one connected component per
  pod, so pods are the atomic groups and only agg<->core links are cut.
- On fabrics with no host-free core layer (ring, line, dumbbell,
  leaf-spine), each host-bearing switch plus its hosts forms a group, and
  inter-switch links are the cut set.

Hosts always land in the same shard as their ToR, so host<->switch links
are never cut — only switch<->switch links carry inter-shard traffic.  The
conservative-lookahead barrier uses the minimum propagation delay over the
cut links: a frame sent at time ``t`` across a cut link cannot arrive
before ``t + lookahead_ns``, so every shard may safely simulate
``lookahead_ns - 1`` beyond the earliest pending event fabric-wide.

Everything here is name-ordered and seed-free, so all workers (and the
parent) derive the identical plan from the shared topology.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .graph import Link, Topology


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic assignment of topology nodes to shards."""

    shards: int  # effective shard count (may be clamped below the request)
    requested_shards: int
    assignment: Dict[str, int] = field(compare=False)
    groups: Tuple[Tuple[str, ...], ...] = field(compare=False)
    cut_links: Tuple[Link, ...] = field(compare=False)
    lookahead_ns: int = 0

    def nodes_of(self, shard_id: int) -> List[str]:
        return sorted(n for n, s in self.assignment.items() if s == shard_id)

    def shard_sizes(self) -> List[int]:
        sizes = [0] * self.shards
        for sid in self.assignment.values():
            sizes[sid] += 1
        return sizes


def _atomic_groups(topo: Topology) -> Tuple[List[Tuple[str, ...]], List[str]]:
    """Atomic node groups plus the leftover (freely placeable) switches.

    Core-like switches — no attached hosts and no neighbor with attached
    hosts — are lifted out first; the connected components of what remains
    are the groups (fat-tree pods).  If that still leaves one component,
    fall back to ToR-level groups (each host-bearing switch + its hosts)
    and treat every other switch as freely placeable.
    """
    hosts_of: Dict[str, List[str]] = {}
    for host in topo.hosts:
        tor = topo.attachment_of(host.name).node
        hosts_of.setdefault(tor, []).append(host.name)

    adjacency: Dict[str, Set[str]] = {n.name: set() for n in topo.nodes}
    for link in topo.links:
        adjacency[link.a.node].add(link.b.node)
        adjacency[link.b.node].add(link.a.node)

    core_like = {
        sw.name
        for sw in topo.switches
        if sw.name not in hosts_of
        and not any(nb in hosts_of for nb in adjacency[sw.name])
    }

    kept = sorted(n.name for n in topo.nodes if n.name not in core_like)
    kept_set = set(kept)
    seen: Set[str] = set()
    components: List[Tuple[str, ...]] = []
    for start in kept:
        if start in seen:
            continue
        comp = []
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            comp.append(node)
            for nb in sorted(adjacency[node]):
                if nb in kept_set and nb not in seen:
                    seen.add(nb)
                    queue.append(nb)
        components.append(tuple(sorted(comp)))

    if len(components) > 1:
        return components, sorted(core_like)

    # Single component: group each ToR with its hosts; everything else
    # (core-like or hostless transit switches) is freely placeable.
    groups = [
        tuple(sorted([tor, *hosts_of[tor]])) for tor in sorted(hosts_of)
    ]
    grouped = {n for g in groups for n in g}
    loose = sorted(
        sw.name for sw in topo.switches if sw.name not in grouped
    )
    return groups, loose


def partition_topology(topo: Topology, shards: int) -> ShardPlan:
    """Partition ``topo`` into at most ``shards`` balanced shards.

    The effective shard count is clamped to the number of atomic groups
    (a pod cannot be split), so the plan's ``shards`` may be lower than
    requested.  Groups are packed largest-first onto the least-loaded
    shard; freely placeable switches are then dealt round-robin in name
    order.  The whole procedure is deterministic given the topology.
    """
    if shards < 1:
        raise ValueError(f"shard count must be positive, got {shards}")

    groups, loose = _atomic_groups(topo)
    effective = max(1, min(shards, len(groups)))

    assignment: Dict[str, int] = {}
    loads = [0] * effective
    for group in sorted(groups, key=lambda g: (-len(g), g)):
        sid = min(range(effective), key=lambda s: (loads[s], s))
        for node in group:
            assignment[node] = sid
        loads[sid] += len(group)
    for idx, node in enumerate(loose):
        assignment[node] = idx % effective

    for node in topo.nodes:
        assignment.setdefault(node.name, 0)

    cut_links = tuple(
        link
        for link in topo.links
        if assignment[link.a.node] != assignment[link.b.node]
    )
    for link in cut_links:
        if not (
            topo.node(link.a.node).is_switch
            and topo.node(link.b.node).is_switch
        ):
            raise ValueError(f"partition cut a host link: {link}")

    lookahead_ns = min((link.delay_ns for link in cut_links), default=0)
    if cut_links and lookahead_ns < 1:
        raise ValueError(
            "cannot shard: a cut link has zero propagation delay, "
            "so no conservative lookahead window exists"
        )

    return ShardPlan(
        shards=effective,
        requested_shards=shards,
        assignment=assignment,
        groups=tuple(sorted(groups)),
        cut_links=cut_links,
        lookahead_ns=lookahead_ns,
    )
