"""Routing: shortest-path ECMP tables plus misconfiguration injection.

Routing is computed once from the topology (BFS from every host) into
per-switch next-hop tables keyed by destination IP.  ECMP picks among
equal-cost ports with a deterministic CRC32 hash of the flow 5-tuple, so
the simulator and the offline analyzer always agree on a flow's path.

Deadlock scenarios (§2.1) are crafted by *static route overrides* that force
selected ``(switch, destination)`` pairs onto specific ports, reproducing
the "routing misconfiguration" root causes the paper injects.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import PortRef, Topology

MAX_PATH_HOPS = 64


class RoutingError(Exception):
    """Raised when no route exists or a path exceeds the hop cap."""


def _stable_hash(*parts: object) -> int:
    """A process-independent hash (Python's ``hash`` is salted per run)."""
    blob = "|".join(str(p) for p in parts).encode()
    return zlib.crc32(blob)


class RoutingTable:
    """Per-switch ECMP next-hop tables with static overrides.

    The table maps ``(switch_name, dst_ip)`` to the list of equal-cost
    egress ports.  ``select_port`` resolves the ECMP choice for a concrete
    flow; ``flow_path`` walks the whole path (used by the victim-path
    polling forwarding and by ground-truth bookkeeping).
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        # switch -> dst_ip -> sorted list of egress ports
        self._ecmp: Dict[str, Dict[str, List[int]]] = {}
        self._static: Dict[Tuple[str, str], int] = {}
        # Resolved (switch, dst_ip, flow) -> port choices.  ``select_port``
        # runs once per packet per hop; the ECMP hash is deterministic, so
        # the answer is a pure function of this key and of the overrides —
        # the cache is flushed whenever overrides change.
        self._select_cache: Dict[Tuple, int] = {}
        self.select_cache_hits = 0
        self.select_cache_misses = 0
        self._build()

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        """Build every host's next-hop tables with one BFS per ToR.

        A single-homed host's distance to any other node is exactly one
        more than its ToR's, so all hosts behind one ToR share the same
        shortest-path next hops everywhere except at the ToR itself
        (where the next hop is the host-facing port).  BFS therefore runs
        once per *edge switch*, not once per host, over a plain-tuple
        adjacency list — at fleet scale (K=16, 1024 hosts) this takes the
        table build from minutes to seconds.  Hosts that are not
        single-homed (only reachable by driving the table directly in
        tests) keep the exact per-host BFS.
        """
        topo = self.topology
        for sw in topo.switches:
            self._ecmp[sw.name] = {}
        # node -> [(local_port, remote_node)], in link-addition order —
        # the same order ``Topology.neighbors`` yields, without paying a
        # PortRef construction and hash per step.
        adj: Dict[str, List[Tuple[int, str]]] = {n.name: [] for n in topo.nodes}
        for link in topo.links:
            adj[link.a.node].append((link.a.port, link.b.node))
            adj[link.b.node].append((link.b.port, link.a.node))

        by_tor: Dict[str, List[str]] = {}
        for host in topo.hosts:
            entries = adj[host.name]
            if len(entries) == 1:
                by_tor.setdefault(entries[0][1], []).append(host.name)
            else:
                self._build_for_host(host.name)

        switch_names = [sw.name for sw in topo.switches]
        for tor, host_names in by_tor.items():
            dist: Dict[str, int] = {tor: 0}
            frontier = deque([tor])
            while frontier:
                node = frontier.popleft()
                d = dist[node] + 1
                for _, remote in adj[node]:
                    if remote not in dist:
                        dist[remote] = d
                        frontier.append(remote)
            dist_get = dist.get
            # Shared next-hop port lists for every switch except the ToR.
            shared: List[Tuple[str, List[int]]] = []
            for sw in switch_names:
                dsw = dist_get(sw)
                if dsw is None or sw == tor:
                    continue
                ports = sorted(
                    port
                    for port, remote in adj[sw]
                    if dist_get(remote) == dsw - 1
                )
                if ports:
                    shared.append((sw, ports))
            for host_name in host_names:
                dst_ip = topo.host_ip(host_name)
                for sw, ports in shared:
                    self._ecmp[sw][dst_ip] = ports
                # At the ToR the next hop is the host-facing port itself.
                self._ecmp[tor][dst_ip] = [
                    port for port, remote in adj[tor] if remote == host_name
                ]

    def _build_for_host(self, host_name: str) -> None:
        """BFS outward from a host; record all shortest next-hops per switch."""
        topo = self.topology
        dst_ip = topo.host_ip(host_name)
        dist: Dict[str, int] = {host_name: 0}
        frontier = deque([host_name])
        while frontier:
            node = frontier.popleft()
            for _, remote in topo.neighbors(node):
                if remote.node not in dist:
                    dist[remote.node] = dist[node] + 1
                    frontier.append(remote.node)
        for sw in topo.switches:
            if sw.name not in dist:
                continue
            ports = [
                port
                for port, remote in topo.neighbors(sw.name)
                if remote.node in dist and dist[remote.node] == dist[sw.name] - 1
            ]
            if ports:
                self._ecmp[sw.name][dst_ip] = sorted(ports)

    # -- overrides ------------------------------------------------------------

    def set_static_route(self, switch: str, dst_ip: str, port: int) -> None:
        """Force traffic for ``dst_ip`` at ``switch`` onto ``port``.

        This models the routing misconfigurations (link failures, port flaps,
        transient loops) that create cyclic buffer dependencies in the paper.
        """
        node = self.topology.node(switch)
        if not node.is_switch:
            raise RoutingError(f"{switch} is not a switch")
        if port not in node.ports:
            raise RoutingError(f"{switch} has no port {port}")
        self._static[(switch, dst_ip)] = port
        self._select_cache.clear()

    def clear_static_route(self, switch: str, dst_ip: str) -> None:
        self._static.pop((switch, dst_ip), None)
        self._select_cache.clear()

    @property
    def static_routes(self) -> Dict[Tuple[str, str], int]:
        return dict(self._static)

    # -- lookups --------------------------------------------------------------

    def ecmp_ports(self, switch: str, dst_ip: str) -> List[int]:
        """The equal-cost egress port set (static override wins)."""
        override = self._static.get((switch, dst_ip))
        if override is not None:
            return [override]
        try:
            return list(self._ecmp[switch][dst_ip])
        except KeyError:
            raise RoutingError(f"no route at {switch} toward {dst_ip}") from None

    def select_port(self, switch: str, dst_ip: str, flow_hash_key: object) -> int:
        """Resolve the ECMP choice for one flow, deterministically."""
        cache_key = (switch, dst_ip, flow_hash_key)
        try:
            cached = self._select_cache.get(cache_key)
        except TypeError:  # unhashable flow key: resolve without caching
            cached = None
            cache_key = None
        if cached is not None:
            self.select_cache_hits += 1
            return cached
        self.select_cache_misses += 1
        ports = self.ecmp_ports(switch, dst_ip)
        if len(ports) == 1:
            port = ports[0]
        else:
            port = ports[_stable_hash(switch, dst_ip, flow_hash_key) % len(ports)]
        if cache_key is not None:
            self._select_cache[cache_key] = port
        return port

    def flow_path(
        self,
        src_host: str,
        dst_ip: str,
        flow_hash_key: object,
        max_hops: int = MAX_PATH_HOPS,
    ) -> List[PortRef]:
        """Egress ports traversed by a flow, source NIC first.

        Returns ``[H.P, SW_a.P_x, SW_b.P_y, ...]`` ending with the ToR port
        facing the destination host.  Raises :class:`RoutingError` if the
        path exceeds ``max_hops`` (a routing loop).
        """
        topo = self.topology
        dst_host = topo.host_of_ip(dst_ip)
        path: List[PortRef] = [topo.host_port(src_host)]
        current = topo.peer_port(path[0]).node
        hops = 0
        while current != dst_host:
            if hops >= max_hops:
                raise RoutingError(
                    f"path {src_host}->{dst_ip} exceeded {max_hops} hops (loop?)"
                )
            port = self.select_port(current, dst_ip, flow_hash_key)
            egress = PortRef(current, port)
            path.append(egress)
            current = topo.peer_port(egress).node
            hops += 1
        return path

    def switch_path(
        self, src_host: str, dst_ip: str, flow_hash_key: object
    ) -> List[str]:
        """Just the switch names along a flow's path, in order."""
        return [ref.node for ref in self.flow_path(src_host, dst_ip, flow_hash_key)[1:]]


def make_ring_cbd_routes(
    routing: RoutingTable,
    ring_switches: Sequence[str],
    dst_ips_per_switch: Dict[str, List[str]],
) -> None:
    """Force clockwise routing around a switch ring to create a CBD.

    ``ring_switches`` lists the ring in clockwise order.  For each switch,
    destinations attached two or more hops away (clockwise) are forced onto
    the clockwise ring port, so that every ring buffer waits on the next —
    the cyclic buffer dependency required for PFC deadlock (§2.1).

    ``dst_ips_per_switch`` maps each ring switch to the host IPs attached
    to it.
    """
    topo = routing.topology
    n = len(ring_switches)
    if n < 3:
        raise RoutingError("a CBD ring needs at least 3 switches")
    clockwise_port: Dict[str, int] = {}
    for i, sw in enumerate(ring_switches):
        nxt = ring_switches[(i + 1) % n]
        port = _port_toward(topo, sw, nxt)
        if port is None:
            raise RoutingError(f"{sw} has no direct link to {nxt}")
        clockwise_port[sw] = port
    for i, sw in enumerate(ring_switches):
        # Route clockwise to every non-local ring switch's hosts.
        for step in range(1, n):
            target = ring_switches[(i + step) % n]
            if target == sw:
                continue
            for ip in dst_ips_per_switch.get(target, []):
                routing.set_static_route(sw, ip, clockwise_port[sw])


def _port_toward(topo: Topology, switch: str, neighbor: str) -> Optional[int]:
    for port, remote in topo.neighbors(switch):
        if remote.node == neighbor:
            return port
    return None
