"""Standard topology builders used by the paper's evaluation.

The paper evaluates on a Fat-Tree (K=4) with 20 switches, 100 Gbps links and
2 us link delay (§4.1).  We additionally provide a leaf-spine builder and a
dumbbell builder for unit tests and small case studies.
"""

from __future__ import annotations

from ..units import gbps, usec
from .graph import Topology

DEFAULT_BANDWIDTH = gbps(100)
DEFAULT_DELAY_NS = usec(2)


def build_fat_tree(
    k: int = 4,
    bandwidth: float = DEFAULT_BANDWIDTH,
    delay_ns: int = DEFAULT_DELAY_NS,
    hosts_per_edge: int | None = None,
    core_bandwidth: float | None = None,
) -> Topology:
    """Build a K-ary fat-tree [14].

    A K-ary fat-tree has K pods, each with K/2 edge and K/2 aggregation
    switches, plus (K/2)^2 core switches.  K=4 yields the paper's 20-switch
    topology.  Node naming:

    - core switches:        ``C{i}``       (i in 0..(K/2)^2-1)
    - aggregation switches: ``A{pod}_{i}`` (i in 0..K/2-1)
    - edge switches:        ``E{pod}_{i}``
    - hosts:                ``H{pod}_{edge}_{j}``

    Host IPs are ``10.{pod}.{edge}.{j+2}`` following the fat-tree addressing
    convention.

    ``core_bandwidth`` overrides the agg<->core link speed; setting it below
    ``bandwidth`` yields an oversubscribed core (the fuzzer's main lever for
    pushing congestion up a tier).
    """
    if k % 2 != 0 or k < 2:
        raise ValueError("fat-tree K must be a positive even number")
    half = k // 2
    if hosts_per_edge is None:
        hosts_per_edge = half
    if core_bandwidth is None:
        core_bandwidth = bandwidth

    topo = Topology(name=f"fattree-k{k}")

    core = [f"C{i}" for i in range(half * half)]
    for name in core:
        topo.add_switch(name)

    for pod in range(k):
        aggs = [f"A{pod}_{i}" for i in range(half)]
        edges = [f"E{pod}_{i}" for i in range(half)]
        for name in aggs + edges:
            topo.add_switch(name)
        # edge <-> agg full bipartite inside the pod
        for edge in edges:
            for agg in aggs:
                topo.add_link(edge, agg, bandwidth, delay_ns)
        # agg <-> core: agg i connects to core group i
        for i, agg in enumerate(aggs):
            for j in range(half):
                topo.add_link(agg, core[i * half + j], core_bandwidth, delay_ns)

    for pod in range(k):
        for e in range(half):
            for j in range(hosts_per_edge):
                host = f"H{pod}_{e}_{j}"
                topo.add_host(host, ip=f"10.{pod}.{e}.{j + 2}")
                topo.add_link(host, f"E{pod}_{e}", bandwidth, delay_ns)

    return topo


def build_leaf_spine(
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 4,
    bandwidth: float = DEFAULT_BANDWIDTH,
    delay_ns: int = DEFAULT_DELAY_NS,
    spine_bandwidth: float | None = None,
) -> Topology:
    """Build a two-tier leaf-spine fabric.

    Naming: spines ``S{i}``, leaves ``L{i}``, hosts ``H{leaf}_{j}``.
    ``spine_bandwidth`` overrides the leaf<->spine uplink speed for
    oversubscribed fabrics.
    """
    if leaves < 1 or spines < 1:
        raise ValueError("need at least one leaf and one spine")
    if spine_bandwidth is None:
        spine_bandwidth = bandwidth
    topo = Topology(name=f"leafspine-{leaves}x{spines}")
    for s in range(spines):
        topo.add_switch(f"S{s}")
    for l in range(leaves):
        topo.add_switch(f"L{l}")
        for s in range(spines):
            topo.add_link(f"L{l}", f"S{s}", spine_bandwidth, delay_ns)
        for j in range(hosts_per_leaf):
            host = f"H{l}_{j}"
            topo.add_host(host, ip=f"10.{l}.0.{j + 2}")
            topo.add_link(host, f"L{l}", bandwidth, delay_ns)
    return topo


def build_dumbbell(
    hosts_per_side: int = 2,
    bandwidth: float = DEFAULT_BANDWIDTH,
    delay_ns: int = DEFAULT_DELAY_NS,
) -> Topology:
    """Two switches joined by one link, hosts on both sides.

    The smallest topology that can show PFC back-pressure across a hop.
    Naming: switches ``SW1``/``SW2``, hosts ``HL{j}`` (on SW1), ``HR{j}``
    (on SW2).
    """
    topo = Topology(name="dumbbell")
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    topo.add_link("SW1", "SW2", bandwidth, delay_ns)
    for j in range(hosts_per_side):
        left = f"HL{j}"
        topo.add_host(left, ip=f"10.1.0.{j + 2}")
        topo.add_link(left, "SW1", bandwidth, delay_ns)
    for j in range(hosts_per_side):
        right = f"HR{j}"
        topo.add_host(right, ip=f"10.2.0.{j + 2}")
        topo.add_link(right, "SW2", bandwidth, delay_ns)
    return topo


def build_line(
    num_switches: int = 3,
    hosts_per_switch: int = 2,
    bandwidth: float = DEFAULT_BANDWIDTH,
    delay_ns: int = DEFAULT_DELAY_NS,
) -> Topology:
    """A chain of switches ``SW1 - SW2 - ... - SWn`` with hosts on each.

    Useful for multi-hop PFC spreading scenarios like Figure 1(a).
    Naming: switches ``SW{i}`` (1-based), hosts ``H{i}_{j}``.
    """
    if num_switches < 1:
        raise ValueError("need at least one switch")
    topo = Topology(name=f"line-{num_switches}")
    for i in range(1, num_switches + 1):
        topo.add_switch(f"SW{i}")
    for i in range(1, num_switches):
        topo.add_link(f"SW{i}", f"SW{i + 1}", bandwidth, delay_ns)
    for i in range(1, num_switches + 1):
        for j in range(hosts_per_switch):
            host = f"H{i}_{j}"
            topo.add_host(host, ip=f"10.{i}.0.{j + 2}")
            topo.add_link(host, f"SW{i}", bandwidth, delay_ns)
    return topo


def build_ring(
    num_switches: int = 4,
    hosts_per_switch: int = 2,
    bandwidth: float = DEFAULT_BANDWIDTH,
    delay_ns: int = DEFAULT_DELAY_NS,
) -> Topology:
    """A ring of switches — the canonical cyclic-buffer-dependency substrate.

    With routing that pushes flows around the ring in one direction, PFC
    deadlocks (Figure 1(c)/(d)) can form.  Naming matches :func:`build_line`.
    """
    if num_switches < 3:
        raise ValueError("a ring needs at least 3 switches")
    topo = Topology(name=f"ring-{num_switches}")
    for i in range(1, num_switches + 1):
        topo.add_switch(f"SW{i}")
    for i in range(1, num_switches + 1):
        nxt = i % num_switches + 1
        topo.add_link(f"SW{i}", f"SW{nxt}", bandwidth, delay_ns)
    for i in range(1, num_switches + 1):
        for j in range(hosts_per_switch):
            host = f"H{i}_{j}"
            topo.add_host(host, ip=f"10.{i}.0.{j + 2}")
            topo.add_link(host, f"SW{i}", bandwidth, delay_ns)
    return topo
