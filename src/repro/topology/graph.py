"""Network topology model: nodes, ports and links.

The topology is the static wiring shared by the simulator, the telemetry
layer and the diagnosis analyzer.  Nodes are either switches or hosts; each
node exposes numbered ports; links connect exactly two ``(node, port)``
endpoints and carry bandwidth/propagation-delay attributes.

Port references are written ``SW1.P1`` throughout the codebase (matching the
paper's figures), via :class:`PortRef`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


class NodeKind(enum.Enum):
    """The two node roles in an RDMA fabric."""

    SWITCH = "switch"
    HOST = "host"


@dataclass(frozen=True, order=True)
class PortRef:
    """A ``(node, port)`` endpoint, e.g. ``SW1.P1``."""

    node: str
    port: int

    def __str__(self) -> str:
        return f"{self.node}.P{self.port}"

    def __repr__(self) -> str:
        return f"PortRef({self})"


@dataclass
class Node:
    """A switch or host with a set of numbered ports."""

    name: str
    kind: NodeKind
    ports: List[int] = field(default_factory=list)

    @property
    def is_switch(self) -> bool:
        return self.kind is NodeKind.SWITCH

    @property
    def is_host(self) -> bool:
        return self.kind is NodeKind.HOST


@dataclass
class Link:
    """A full-duplex link between two port endpoints."""

    a: PortRef
    b: PortRef
    bandwidth: float  # bytes per second
    delay_ns: int  # one-way propagation delay

    def other_end(self, end: PortRef) -> PortRef:
        if end == self.a:
            return self.b
        if end == self.b:
            return self.a
        raise ValueError(f"{end} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"{self.a}<->{self.b}"


class TopologyError(Exception):
    """Raised on inconsistent topology construction or lookups."""


class Topology:
    """A named collection of nodes and links with endpoint lookups.

    The class enforces that every port participates in at most one link and
    provides the peer lookups (`peer_port`, `link_at`) that the simulator
    and the PFC causality tracer rely on.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: List[Link] = []
        self._link_by_end: Dict[PortRef, Link] = {}
        self._host_ips: Dict[str, str] = {}
        self._ip_hosts: Dict[str, str] = {}

    # -- construction -------------------------------------------------------

    def add_switch(self, name: str) -> Node:
        """Register a switch node.  Ports are allocated by ``add_link``."""
        return self._add_node(name, NodeKind.SWITCH)

    def add_host(self, name: str, ip: Optional[str] = None) -> Node:
        """Register a host node and assign it an IP address."""
        node = self._add_node(name, NodeKind.HOST)
        addr = ip if ip is not None else f"10.0.0.{len(self._host_ips) + 1}"
        if addr in self._ip_hosts:
            raise TopologyError(f"duplicate host IP {addr}")
        self._host_ips[name] = addr
        self._ip_hosts[addr] = name
        return node

    def _add_node(self, name: str, kind: NodeKind) -> Node:
        if name in self._nodes:
            raise TopologyError(f"duplicate node name {name!r}")
        node = Node(name=name, kind=kind)
        self._nodes[name] = node
        return node

    def add_link(
        self,
        a_node: str,
        b_node: str,
        bandwidth: float,
        delay_ns: int,
        a_port: Optional[int] = None,
        b_port: Optional[int] = None,
    ) -> Link:
        """Connect two nodes with a full-duplex link.

        Port numbers are auto-allocated (next free index per node) unless
        given explicitly.  Each port may carry only one link.
        """
        a = PortRef(a_node, self._claim_port(a_node, a_port))
        b = PortRef(b_node, self._claim_port(b_node, b_port))
        link = Link(a=a, b=b, bandwidth=bandwidth, delay_ns=delay_ns)
        self._links.append(link)
        self._link_by_end[a] = link
        self._link_by_end[b] = link
        return link

    def _claim_port(self, node_name: str, port: Optional[int]) -> int:
        node = self.node(node_name)
        if port is None:
            port = (max(node.ports) + 1) if node.ports else 1
        if port in node.ports:
            raise TopologyError(f"port {node_name}.P{port} already in use")
        node.ports.append(port)
        return port

    # -- lookups -------------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def switches(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.is_switch]

    @property
    def hosts(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.is_host]

    @property
    def links(self) -> List[Link]:
        return list(self._links)

    def link_at(self, end: PortRef) -> Link:
        try:
            return self._link_by_end[end]
        except KeyError:
            raise TopologyError(f"no link at {end}") from None

    def has_link_at(self, end: PortRef) -> bool:
        return end in self._link_by_end

    def peer_port(self, end: PortRef) -> PortRef:
        """The remote endpoint of the link attached at ``end``."""
        return self.link_at(end).other_end(end)

    def neighbors(self, node_name: str) -> Iterator[Tuple[int, PortRef]]:
        """Yield ``(local_port, remote_endpoint)`` for each attached link."""
        for port in self.node(node_name).ports:
            end = PortRef(node_name, port)
            if end in self._link_by_end:
                yield port, self.peer_port(end)

    def host_ip(self, host_name: str) -> str:
        try:
            return self._host_ips[host_name]
        except KeyError:
            raise TopologyError(f"no IP for host {host_name!r}") from None

    def host_of_ip(self, ip: str) -> str:
        try:
            return self._ip_hosts[ip]
        except KeyError:
            raise TopologyError(f"no host with IP {ip!r}") from None

    def host_port(self, host_name: str) -> PortRef:
        """The single port of a host (hosts are single-homed)."""
        node = self.node(host_name)
        if not node.is_host:
            raise TopologyError(f"{host_name} is not a host")
        connected = [
            PortRef(host_name, p)
            for p in node.ports
            if PortRef(host_name, p) in self._link_by_end
        ]
        if len(connected) != 1:
            raise TopologyError(
                f"host {host_name} has {len(connected)} connected ports, expected 1"
            )
        return connected[0]

    def attachment_of(self, host_name: str) -> PortRef:
        """The switch-side port a host hangs off (ToR egress toward the host)."""
        return self.peer_port(self.host_port(host_name))

    def __str__(self) -> str:
        return (
            f"Topology({self.name}: {len(self.switches)} switches, "
            f"{len(self.hosts)} hosts, {len(self._links)} links)"
        )
