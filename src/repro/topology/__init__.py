"""Topology substrate: graph model, standard builders and ECMP routing."""

from .graph import Link, Node, NodeKind, PortRef, Topology, TopologyError
from .builders import (
    build_dumbbell,
    build_fat_tree,
    build_leaf_spine,
    build_line,
    build_ring,
)
from .partition import ShardPlan, partition_topology
from .routing import RoutingError, RoutingTable, make_ring_cbd_routes
from .cbd import (
    buffer_dependency_graph,
    check_deadlock_free,
    find_cbd_cycles,
    has_cbd,
)

__all__ = [
    "Link",
    "Node",
    "NodeKind",
    "PortRef",
    "Topology",
    "TopologyError",
    "build_dumbbell",
    "build_fat_tree",
    "build_leaf_spine",
    "build_line",
    "build_ring",
    "RoutingError",
    "RoutingTable",
    "ShardPlan",
    "partition_topology",
    "make_ring_cbd_routes",
    "buffer_dependency_graph",
    "check_deadlock_free",
    "find_cbd_cycles",
    "has_cbd",
]
