"""Empirical RoCEv2 workload models (§4.1).

The paper's workload comes from an industrial data center [54] with a
long-tailed flow size distribution: <80% of flows are smaller than 10 MB,
<90% smaller than 100 MB, and ~10% between 100 MB and 300 MB.  We sample a
piecewise log-uniform distribution matching exactly those quantiles.

A ``scale`` factor shrinks sizes for simulation speed (the default
experiments use 1/1000, i.e. KB instead of MB); the *relative* shape —
which is what queueing and PFC dynamics react to — is preserved.  Flow
arrivals follow a Poisson process whose rate is set from the target link
load, and endpoints are picked uniformly at random.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..units import KB, MB


@dataclass(frozen=True)
class SizeBand:
    low: int
    high: int
    probability: float


DEFAULT_BANDS = (
    SizeBand(low=10 * KB, high=10 * MB, probability=0.80),
    SizeBand(low=10 * MB, high=100 * MB, probability=0.10),
    SizeBand(low=100 * MB, high=300 * MB, probability=0.10),
)


class FlowSizeDistribution:
    """Piecewise log-uniform sampler matching the paper's quantiles."""

    def __init__(
        self,
        bands: Sequence[SizeBand] = DEFAULT_BANDS,
        scale: float = 1.0,
        min_size: int = 1 * KB,
    ) -> None:
        total = sum(b.probability for b in bands)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"band probabilities sum to {total}, expected 1.0")
        self.bands = tuple(bands)
        self.scale = scale
        self.min_size = min_size

    def sample(self, rng: random.Random) -> int:
        r = rng.random()
        cumulative = 0.0
        band = self.bands[-1]
        for candidate in self.bands:
            cumulative += candidate.probability
            if r <= cumulative:
                band = candidate
                break
        log_low, log_high = math.log(band.low), math.log(band.high)
        size = math.exp(rng.uniform(log_low, log_high)) * self.scale
        return max(self.min_size, int(size))

    def mean(self) -> float:
        """Analytic mean of the (scaled) distribution."""
        total = 0.0
        for band in self.bands:
            log_low, log_high = math.log(band.low), math.log(band.high)
            band_mean = (band.high - band.low) / (log_high - log_low)
            total += band.probability * band_mean
        return max(self.min_size, total * self.scale)


class PoissonArrivals:
    """Poisson flow arrival process scaled to a target link load.

    ``load`` is the average fraction of each host's line rate consumed by
    the generated traffic; the arrival rate per host is then
    ``load * bandwidth / mean_flow_size``.
    """

    def __init__(
        self,
        sizes: FlowSizeDistribution,
        load: float,
        host_bandwidth: float,
        seed: int = 1,
    ) -> None:
        if not 0 < load < 1:
            raise ValueError("load must be in (0, 1)")
        self.sizes = sizes
        self.load = load
        self.host_bandwidth = host_bandwidth
        self.rng = random.Random(seed)
        self.rate_per_ns = load * host_bandwidth / sizes.mean() / 1e9

    def generate(
        self,
        hosts: Sequence[str],
        duration_ns: int,
        start_ns: int = 0,
        exclude_pairs: Optional[set] = None,
    ) -> List[Tuple[int, str, str, int]]:
        """Yield ``(start_time, src, dst, size)`` tuples, time-sorted.

        The per-fabric rate is ``rate_per_ns * len(hosts)``; sources and
        destinations are picked uniformly (never equal), skipping pairs in
        ``exclude_pairs``.
        """
        if len(hosts) < 2:
            raise ValueError("need at least two hosts")
        events: List[Tuple[int, str, str, int]] = []
        aggregate_rate = self.rate_per_ns * len(hosts)
        t = float(start_ns)
        end = start_ns + duration_ns
        while True:
            t += self.rng.expovariate(aggregate_rate)
            if t >= end:
                break
            src = self.rng.choice(hosts)
            dst = self.rng.choice(hosts)
            while dst == src:
                dst = self.rng.choice(hosts)
            if exclude_pairs and (src, dst) in exclude_pairs:
                continue
            events.append((int(t), src, dst, self.sizes.sample(self.rng)))
        return events
