"""Scenario and ground-truth containers used by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.report import AnomalyType
from ..sim.flow import Flow
from ..sim.network import Network
from ..sim.packet import FlowKey
from ..topology.graph import PortRef


@dataclass
class GroundTruth:
    """What a perfect diagnoser should report for a crafted scenario."""

    anomaly: AnomalyType
    culprit_flows: List[FlowKey] = field(default_factory=list)
    injecting_host: Optional[str] = None
    initial_port: Optional[PortRef] = None
    loop_ports: List[PortRef] = field(default_factory=list)


@dataclass
class Scenario:
    """A ready-to-run network with injected anomaly and ground truth.

    Builders create the network and schedule all flows/injections but never
    run the simulator — the harness first attaches whichever telemetry
    system is under test, then calls ``network.run``.
    """

    name: str
    network: Network
    truth: GroundTruth
    victims: List[Flow]
    duration_ns: int
    description: str = ""

    @property
    def victim_keys(self) -> List[FlowKey]:
        return [flow.key for flow in self.victims]
