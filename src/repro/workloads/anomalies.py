"""Anomaly scenario builders (§2.1 / §4.1).

Each builder crafts one of the paper's representative RDMA NPAs on a
concrete topology, schedules the traffic that causes it, and records the
ground truth used for precision/recall scoring:

- **Incast back-pressure** (Figure 1a): synchronized line-rate micro-bursts
  converge on one host; PFC spreads hop-by-hop and pauses a victim flow
  that never traverses the congestion point.
- **PFC storm** (Figure 1b): a host continuously injects PAUSE frames
  (broken NIC / slow receiver); innocent traffic toward it freezes the
  fabric upstream.
- **Initiator-in-loop deadlock** (Figure 1c): a routing misconfiguration
  creates a cyclic buffer dependency on a 4-switch ring; a short burst at
  a ring port closes the pause cycle permanently.
- **Initiator-out-of-loop deadlock** (Figure 1d): same CBD, but the pause
  cycle is closed by host PFC injection (or host-port incast) outside the
  loop.
- **Normal flow contention**: queueing without any PFC (ample buffers).

Deadlocks run on the ring topology — the CBD substrate the paper's own
Figure 1(c)/(d) depicts — while the other anomalies run on the fat-tree
(K=4, 20 switches) of §4.1.  Sizes are in the hundreds of KB (the paper's
MB-scale bursts scaled ~1/1000 for simulation speed; PFC dynamics depend on
rates and thresholds, not absolute sizes).
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from ..core.report import AnomalyType
from ..sim.config import PfcConfig, SimConfig
from ..sim.flow import Flow
from ..sim.network import Network
from ..topology.builders import build_fat_tree, build_ring
from ..topology.graph import PortRef, Topology
from ..topology.routing import RoutingTable, make_ring_cbd_routes
from ..units import KB, msec, usec
from .distributions import FlowSizeDistribution, PoissonArrivals
from .scenario import GroundTruth, Scenario

BACKGROUND_SCALE = 1e-3  # documented size scale for background flows


def _config(seed: int, base: Optional[SimConfig] = None) -> SimConfig:
    config = base if base is not None else SimConfig()
    config.seed = seed
    return config


def add_background_traffic(
    network: Network,
    seed: int,
    load: float,
    duration_ns: int,
    start_ns: int = 0,
    exclude_hosts: Optional[Set[str]] = None,
    src_port_base: int = 30000,
) -> List[Flow]:
    """Sprinkle Poisson background flows over the fabric at ``load``."""
    if load <= 0:
        return []
    exclude = exclude_hosts or set()
    hosts = [h.name for h in network.topology.hosts if h.name not in exclude]
    bandwidth = network.hosts[hosts[0]].bandwidth or 12.5e9
    sizes = FlowSizeDistribution(scale=BACKGROUND_SCALE)
    arrivals = PoissonArrivals(sizes, load=load, host_bandwidth=bandwidth, seed=seed)
    flows: List[Flow] = []
    for i, (t, src, dst, size) in enumerate(
        arrivals.generate(hosts, duration_ns, start_ns=start_ns)
    ):
        flow = network.make_flow(src, dst, size, t, src_port=src_port_base + i)
        network.start_flow(flow)
        flows.append(flow)
    return flows


# ---------------------------------------------------------------------------
# PFC back-pressure by incast micro-bursts (Figure 1a)
# ---------------------------------------------------------------------------


def incast_backpressure_scenario(
    seed: int = 1,
    load: float = 0.0,
    num_bursts: int = 6,
    burst_size: int = 700 * KB,
    duration_ns: int = msec(4),
    config: Optional[SimConfig] = None,
) -> Scenario:
    """Synchronized micro-bursts into one host; victim off the burst path."""
    topo = build_fat_tree(k=4)
    cfg = _config(seed, config)
    if config is None:
        # Moderately deep ingress headroom (80 KB Xoff): hop-level queues
        # grow enough that the victim's degradation clearly crosses even the
        # strictest detection threshold the paper sweeps (500% of RTT).
        cfg.pfc = PfcConfig(xoff_bytes=80 * KB, xon_bytes=40 * KB)
    net = Network(topo, config=cfg)
    rng = random.Random(seed)

    target = "H0_0_0"
    burst_sources = ["H1_0_0", "H1_0_1", "H1_1_0", "H1_1_1", "H2_0_0", "H2_0_1"]
    burst_sources = burst_sources[:num_bursts]
    burst_start = usec(40)
    culprits = []
    for i, src in enumerate(burst_sources):
        jitter = rng.randrange(0, usec(5))
        flow = net.make_flow(src, target, burst_size, burst_start + jitter,
                             src_port=11000 + i)
        net.start_flow(flow)
        culprits.append(flow)

    # Victim: same destination edge switch, different destination host — it
    # shares the paused upstream ports but never the congested egress.  Long
    # enough (2 MB ~ 160 us at line rate) to span the burst period.
    victim = net.make_flow("H0_1_0", "H0_0_1", 2_000 * KB, usec(10), src_port=12000)
    net.start_flow(victim)

    add_background_traffic(
        net, seed + 1000, load, duration_ns,
        exclude_hosts={target, "H0_0_1", "H0_1_0", *burst_sources},
    )

    truth = GroundTruth(
        anomaly=AnomalyType.MICRO_BURST_INCAST,
        culprit_flows=[f.key for f in culprits],
        initial_port=topo.attachment_of(target),
    )
    return Scenario(
        name=f"incast-backpressure-seed{seed}",
        network=net,
        truth=truth,
        victims=[victim],
        duration_ns=duration_ns,
        description="Synchronized micro-bursts into H0_0_0 back-pressure the pod.",
    )


# ---------------------------------------------------------------------------
# PFC storm by host injection (Figure 1b)
# ---------------------------------------------------------------------------


def pfc_storm_scenario(
    seed: int = 1,
    load: float = 0.0,
    storm_duration_ns: int = msec(3),
    duration_ns: int = msec(4),
    config: Optional[SimConfig] = None,
) -> Scenario:
    """A host floods PAUSE frames; innocent senders freeze the fabric."""
    topo = build_fat_tree(k=4)
    net = Network(topo, config=_config(seed, config))

    injector = "H0_0_0"
    # Innocent traffic toward the injecting host keeps the frozen queues fed.
    # Two flows per source (distinct 5-tuples) so the ECMP spread covers both
    # aggregation switches of the destination pod.
    innocents = ["H1_0_0", "H1_1_0", "H2_0_0"]
    innocent_flows = []
    for i, src in enumerate(innocents):
        for j in range(2):
            flow = net.make_flow(
                src, injector, 400 * KB, usec(20), src_port=11000 + 2 * i + j
            )
            # Application-limited: 6 x 15% of line rate stays below the host
            # link capacity, so the traffic is innocent until the storm.
            flow.max_rate = 0.15 * net.hosts[src].bandwidth
            net.start_flow(flow)
            innocent_flows.append(flow)

    victim = net.make_flow("H0_1_0", "H0_0_1", 2_000 * KB, usec(10), src_port=12000)
    net.start_flow(victim)

    storm_start = usec(30)
    net.sim.schedule(storm_start, lambda: net.hosts[injector].start_pfc_injection(storm_duration_ns))

    add_background_traffic(
        net, seed + 1000, load, duration_ns,
        exclude_hosts={injector, "H0_0_1", "H0_1_0", *innocents},
    )

    truth = GroundTruth(
        anomaly=AnomalyType.PFC_STORM,
        injecting_host=injector,
        initial_port=topo.attachment_of(injector),
    )
    return Scenario(
        name=f"pfc-storm-seed{seed}",
        network=net,
        truth=truth,
        victims=[victim],
        duration_ns=duration_ns,
        description=f"{injector} continuously injects PFC PAUSE frames.",
    )


# ---------------------------------------------------------------------------
# Contention-masked PFC storm (fuzzer-promoted; not in the paper's Table 2)
# ---------------------------------------------------------------------------


def contention_masked_storm_scenario(
    seed: int = 1,
    num_bursts: int = 5,
    burst_size: int = 500 * KB,
    storm_duration_ns: int = msec(3),
    duration_ns: int = msec(4),
    config: Optional[SimConfig] = None,
) -> Scenario:
    """A host injects PAUSE frames *while* an incast converges on its port.

    Discovered by the coverage-guided scenario fuzzer (``repro.fuzz``):
    the terminal port of the PFC provenance shows host-injection evidence
    (paused, host peer) *and* positive contention contributors at the same
    time — a signal combination outside Table 2 that the original
    signature rows collapsed into plain flow contention, blaming only the
    masking flows and never the broken NIC.
    """
    topo = build_fat_tree(k=4)
    cfg = _config(seed, config)
    if config is None:
        cfg.pfc = PfcConfig(xoff_bytes=80 * KB, xon_bytes=40 * KB)
    net = Network(topo, config=cfg)
    rng = random.Random(seed)

    injector = "H0_0_0"
    burst_sources = ["H1_0_0", "H1_0_1", "H1_1_0", "H2_0_0", "H2_1_0"]
    burst_sources = burst_sources[:num_bursts]
    burst_start = usec(40)
    culprits = []
    for i, src in enumerate(burst_sources):
        jitter = rng.randrange(0, usec(5))
        flow = net.make_flow(src, injector, burst_size, burst_start + jitter,
                             src_port=11000 + i)
        net.start_flow(flow)
        culprits.append(flow)

    # The storm starts *after* the bursts land: the converging traffic has
    # already queued unpaused at the port (so the replay sees positive
    # contention contributors there) when the host freezes it with PAUSE
    # injection.  Injection-first ordering would exclude every burst packet
    # as paused and collapse the case into a plain storm.
    net.sim.schedule(
        usec(80), lambda: net.hosts[injector].start_pfc_injection(storm_duration_ns)
    )

    victim = net.make_flow("H0_1_0", "H0_0_1", 2_000 * KB, usec(10), src_port=12000)
    net.start_flow(victim)

    truth = GroundTruth(
        anomaly=AnomalyType.CONTENTION_MASKED_STORM,
        injecting_host=injector,
        culprit_flows=[f.key for f in culprits],
        initial_port=topo.attachment_of(injector),
    )
    return Scenario(
        name=f"contention-masked-storm-seed{seed}",
        network=net,
        truth=truth,
        victims=[victim],
        duration_ns=duration_ns,
        description=(
            f"{injector} injects PFC PAUSE frames while an incast converges "
            "on its port: injection masked by contention."
        ),
    )


# ---------------------------------------------------------------------------
# Deadlocks on the ring CBD (Figures 1c, 1d)
# ---------------------------------------------------------------------------


def _ring_network(
    seed: int, config: Optional[SimConfig], hosts_per_switch: int = 4
) -> Tuple[Topology, Network, List[str]]:
    """Ring-4 fabric with clockwise (CBD) routing misconfiguration."""
    topo = build_ring(num_switches=4, hosts_per_switch=hosts_per_switch)
    routing = RoutingTable(topo)
    ring = ["SW1", "SW2", "SW3", "SW4"]
    dst_ips = {
        sw: [topo.host_ip(f"H{i + 1}_{j}") for j in range(hosts_per_switch)]
        for i, sw in enumerate(ring)
    }
    make_ring_cbd_routes(routing, ring, dst_ips)
    cfg = _config(seed, config)
    # Deadlock formation requires the initial line-rate burst to out-run ECN
    # throttling; raise the marking threshold accordingly (the queues of
    # interest are frozen by PFC, not shaped by ECN, once the cycle closes).
    cfg.ecn.kmin_bytes = max(cfg.ecn.kmin_bytes, 120 * KB)
    cfg.ecn.kmax_bytes = max(cfg.ecn.kmax_bytes, 400 * KB)
    # Shallow PFC headroom with wide hysteresis: the cascade closes the
    # cycle before the initiating burst ends, and the ring-destined bytes
    # stuck above Xon keep every ring ingress asserting PAUSE — making the
    # deadlock persistent, as in Figure 1(c).
    cfg.pfc = PfcConfig(xoff_bytes=30 * KB, xon_bytes=5 * KB)
    net = Network(topo, routing=routing, config=cfg)
    return topo, net, ring


def _ring_port(topo: Topology, src_switch: str, dst_switch: str) -> PortRef:
    for port, remote in topo.neighbors(src_switch):
        if remote.node == dst_switch:
            return PortRef(src_switch, port)
    raise ValueError(f"no ring link {src_switch}->{dst_switch}")


def _circulation_flows(
    net: Network, size: int = 5_000 * KB, rate_fraction: float = 0.3
) -> List[Flow]:
    """Four two-hop clockwise flows that realize the buffer dependency.

    Each ring link carries two of them, so they are rate-capped (application
    -limited) to ``rate_fraction`` of line rate apiece — the CBD is benign
    until something else congests a ring port, exactly as in Figure 1(c)/(d).
    """
    pairs = [("H1_0", "H3_0"), ("H2_0", "H4_0"), ("H3_0", "H1_0"), ("H4_0", "H2_0")]
    flows = []
    for i, (src, dst) in enumerate(pairs):
        flow = net.make_flow(src, dst, size, usec(10), src_port=13000 + i)
        flow.max_rate = rate_fraction * net.hosts[src].bandwidth
        net.start_flow(flow)
        flows.append(flow)
    return flows


def _ring_loop_ports(topo: Topology) -> List[PortRef]:
    ring = ["SW1", "SW2", "SW3", "SW4"]
    return [
        _ring_port(topo, ring[i], ring[(i + 1) % 4]) for i in range(4)
    ]


def in_loop_deadlock_scenario(
    seed: int = 1,
    burst_size: int = 600 * KB,
    duration_ns: int = msec(5),
    config: Optional[SimConfig] = None,
) -> Scenario:
    """Short burst at a ring port closes the pause cycle (Figure 1c)."""
    topo, net, _ = _ring_network(seed, config)
    # 0.4 of line rate apiece puts 0.8 standing load on every ring link:
    # once the micro-burst closes the pause cycle, the circulating bytes
    # alone hold each ring ingress above Xon, so the wedge is
    # self-sustaining rather than sensitive to same-instant event order.
    circulation = _circulation_flows(net, rate_fraction=0.4)

    # Micro-bursts over the SW2->SW3 ring link: local hosts on SW2 blast a
    # host on SW3 — the in-loop initial congestion point.
    culprits = []
    for i, src in enumerate(["H2_1", "H2_2", "H2_3"]):
        flow = net.make_flow(src, "H3_1", burst_size, usec(50) + i * usec(1),
                             src_port=11000 + i)
        net.start_flow(flow)
        culprits.append(flow)

    # Root causes: the micro-bursts, plus the two circulation flows whose
    # packets genuinely occupy the initially congested ring queue (F1 from
    # SW1 and F2 from SW2 both traverse the SW2->SW3 link).
    crossing = [circulation[0].key, circulation[1].key]
    truth = GroundTruth(
        anomaly=AnomalyType.IN_LOOP_DEADLOCK,
        culprit_flows=[f.key for f in culprits] + crossing,
        initial_port=_ring_port(topo, "SW2", "SW3"),
        loop_ports=_ring_loop_ports(topo),
    )
    return Scenario(
        name=f"in-loop-deadlock-seed{seed}",
        network=net,
        truth=truth,
        victims=list(circulation),
        duration_ns=duration_ns,
        description="CBD ring; in-loop micro-burst at SW2->SW3 causes deadlock.",
    )


def out_of_loop_deadlock_scenario(
    seed: int = 1,
    injection: bool = True,
    duration_ns: int = msec(5),
    config: Optional[SimConfig] = None,
) -> Scenario:
    """PFC injected (or incast) outside the CBD closes the cycle (Figure 1d)."""
    topo, net, _ = _ring_network(seed, config)
    circulation = _circulation_flows(net)

    target = "H2_1"
    # Remote traffic toward the target keeps SW2's ring ingress loaded; it is
    # innocent and application-limited (the ring stays uncongested until the
    # injection/incast below).
    feeders = []
    for i, src in enumerate(["H1_1", "H1_2"]):
        flow = net.make_flow(src, target, 800 * KB, usec(20), src_port=11000 + i)
        flow.max_rate = 0.25 * net.hosts[src].bandwidth
        net.start_flow(flow)
        feeders.append(flow)

    if injection:
        net.sim.schedule(
            usec(40), lambda: net.hosts[target].start_pfc_injection(msec(4))
        )
        truth = GroundTruth(
            anomaly=AnomalyType.OUT_OF_LOOP_DEADLOCK_INJECTION,
            injecting_host=target,
            initial_port=topo.attachment_of(target),
            loop_ports=_ring_loop_ports(topo),
        )
        desc = f"CBD ring; {target} injects PFC, deadlocking the loop."
        culprit_flows: List[Flow] = []
    else:
        # Out-of-loop contention: local incast onto the target's host port,
        # long enough to hold the cycle closed past the detection window.
        culprit_flows = []
        for i, src in enumerate(["H2_2", "H2_3"]):
            flow = net.make_flow(src, target, 4_000 * KB, usec(40) + i * usec(1),
                                 src_port=11500 + i)
            net.start_flow(flow)
            culprit_flows.append(flow)
        truth = GroundTruth(
            anomaly=AnomalyType.OUT_OF_LOOP_DEADLOCK_CONTENTION,
            culprit_flows=[f.key for f in culprit_flows] + [f.key for f in feeders],
            initial_port=topo.attachment_of(target),
            loop_ports=_ring_loop_ports(topo),
        )
        desc = f"CBD ring; incast at {target}'s port deadlocks the loop."

    return Scenario(
        name=f"out-of-loop-deadlock-{'inj' if injection else 'cont'}-seed{seed}",
        network=net,
        truth=truth,
        victims=list(circulation) + feeders,
        duration_ns=duration_ns,
        description=desc,
    )


# ---------------------------------------------------------------------------
# Normal flow contention (no PFC)
# ---------------------------------------------------------------------------


def normal_contention_scenario(
    seed: int = 1,
    load: float = 0.0,
    duration_ns: int = msec(3),
    config: Optional[SimConfig] = None,
) -> Scenario:
    """Plain intra-queue contention with buffers ample enough to avoid PFC."""
    topo = build_fat_tree(k=4)
    cfg = _config(seed, config)
    # Deep-buffer regime: congestion queues without ever crossing Xoff.
    cfg.pfc = PfcConfig(xoff_bytes=4_000 * KB, xon_bytes=2_000 * KB)
    cfg.ecn.kmin_bytes = 400 * KB
    cfg.ecn.kmax_bytes = 1_200 * KB
    net = Network(topo, config=cfg)

    target = "H0_0_0"
    culprits = []
    sources = ["H1_0_0", "H1_1_0", "H2_0_0", "H2_1_0", "H1_0_1", "H2_0_1"]
    for i, src in enumerate(sources):
        flow = net.make_flow(src, target, 800 * KB, usec(30) + i * usec(1),
                             src_port=11000 + i)
        net.start_flow(flow)
        culprits.append(flow)

    # Victim shares the congested egress queue with the culprits; it starts
    # mid-burst so its packets see the full backlog.
    victim = net.make_flow("H3_0_0", target, 400 * KB, usec(60), src_port=12000)
    net.start_flow(victim)

    add_background_traffic(
        net, seed + 1000, load, duration_ns,
        exclude_hosts={target, "H3_0_0", *(f.src_host for f in culprits)},
    )

    truth = GroundTruth(
        anomaly=AnomalyType.NORMAL_CONTENTION,
        culprit_flows=[f.key for f in culprits],
        initial_port=topo.attachment_of(target),
    )
    return Scenario(
        name=f"normal-contention-seed{seed}",
        network=net,
        truth=truth,
        victims=[victim],
        duration_ns=duration_ns,
        description="Six senders share H0_0_0's queue; buffers deep enough for no PFC.",
    )


# ---------------------------------------------------------------------------
# LoRDMA-style low-rate attack (§2.1: "PFC backpressure ... can also be
# potentially exploited by attackers, such as LoRDMA attacks")
# ---------------------------------------------------------------------------


def lordma_attack_scenario(
    seed: int = 1,
    pulse_size: int = 400 * KB,
    pulse_interval_ns: int = usec(400),
    num_pulses: int = 6,
    duration_ns: int = msec(4),
    config: Optional[SimConfig] = None,
) -> Scenario:
    """Periodic synchronized micro-burst pulses with a low *average* rate.

    Each pulse briefly overwhelms the target's ToR port and fires a PFC
    back-pressure wave that pauses the victim; between pulses the network
    looks healthy, so rate-based monitoring sees nothing unusual.  Hawkeye
    still catches it: the victim's inflated RTT triggers polling during a
    pulse, and the telemetry epochs holding the pulse identify the attack
    flows as the contention contributors.
    """
    topo = build_fat_tree(k=4)
    cfg = _config(seed, config)
    if config is None:
        cfg.pfc = PfcConfig(xoff_bytes=80 * KB, xon_bytes=40 * KB)
    net = Network(topo, config=cfg)
    rng = random.Random(seed)

    target = "H0_0_0"
    attackers = ["H1_0_0", "H1_1_0", "H2_0_0", "H2_1_0", "H1_0_1", "H2_0_1"]
    attack_flows = []
    port = 11000
    for pulse in range(num_pulses):
        start = usec(40) + pulse * pulse_interval_ns
        for attacker in attackers:
            jitter = rng.randrange(0, usec(2))
            flow = net.make_flow(attacker, target, pulse_size, start + jitter,
                                 src_port=port)
            port += 1
            net.start_flow(flow)
            attack_flows.append(flow)

    # The target of the attack: a moderate-rate (application-limited)
    # production flow — LoRDMA degrades well-behaved tenants covertly.
    victim = net.make_flow("H0_1_0", "H0_0_1", 3_000 * KB, usec(10), src_port=12000)
    victim.max_rate = 0.6 * net.hosts["H0_1_0"].bandwidth
    net.start_flow(victim)

    truth = GroundTruth(
        anomaly=AnomalyType.MICRO_BURST_INCAST,
        culprit_flows=[f.key for f in attack_flows],
        initial_port=topo.attachment_of(target),
    )
    return Scenario(
        name=f"lordma-attack-seed{seed}",
        network=net,
        truth=truth,
        victims=[victim],
        duration_ns=duration_ns,
        description=(
            "Low-rate periodic burst pulses (LoRDMA-style) covertly pause "
            f"the victim via PFC waves from {target}'s ToR."
        ),
    )


# ---------------------------------------------------------------------------
# Fleet-scale incast: every pod busy, one diagnosed victim (sharding workload)
# ---------------------------------------------------------------------------


def fleet_incast_scenario(
    seed: int = 1,
    k: int = 8,
    burst_size: int = 400 * KB,
    local_burst_size: int = 300 * KB,
    duration_ns: int = msec(4),
    config: Optional[SimConfig] = None,
) -> Scenario:
    """Datacenter-scale incast: a K-ary fat-tree with every pod under load.

    Pod 0 reproduces the Figure 1a anomaly — remote micro-bursts converge
    on ``H0_0_0`` and back-pressure an innocent victim flow — while every
    other pod runs an independent intra-pod incast of its own.  The
    per-pod incasts never share a queue with the diagnosed victim; they
    exist to spread simulation work uniformly over the fabric, which is
    exactly the load shape the sharded runner
    (:mod:`repro.experiments.shardrun`) partitions by pod.  K=8 is the
    aggregate-throughput benchmark; K=16 is the hosts-by-flows frontier.
    """
    topo = build_fat_tree(k=k)
    cfg = _config(seed, config)
    if config is None:
        cfg.pfc = PfcConfig(xoff_bytes=80 * KB, xon_bytes=40 * KB)
    net = Network(topo, config=cfg)
    rng = random.Random(seed)
    half = k // 2

    # The diagnosed anomaly, pod 0: cross-pod senders burst into H0_0_0
    # (the incast_backpressure_scenario shape, scaled with K).  One
    # source per edge of pods 1 and 2 — K senders — so the PFC cascade
    # covers every aggregation switch of pod 0 even though ECMP spreads
    # the bursts over K/2 of them; with the paper's K=4 pod the original
    # six senders achieve the same coverage.
    target = "H0_0_0"
    burst_sources = [f"H{p}_{e}_0" for p in (1, 2) for e in range(half)]
    burst_start = usec(40)
    culprits = []
    port = 11000
    for src in burst_sources:
        jitter = rng.randrange(0, usec(5))
        flow = net.make_flow(src, target, burst_size, burst_start + jitter,
                             src_port=port)
        port += 1
        net.start_flow(flow)
        culprits.append(flow)

    victim = net.make_flow("H0_1_0", "H0_0_1", 2_000 * KB, usec(10), src_port=12000)
    net.start_flow(victim)

    # Background anomalies, pods 1..K-1: an intra-pod incast per pod
    # (sources on edges 1 and 2, sink on edge 0).  Uniform per-pod load —
    # no queue is shared with pod 0's victim.
    for pod in range(1, k):
        sink = f"H{pod}_0_1"
        for e in (1, 2):
            for j in (0, 1):
                src = f"H{pod}_{e}_{j}"
                jitter = rng.randrange(0, usec(5))
                flow = net.make_flow(src, sink, local_burst_size,
                                     burst_start + jitter, src_port=port)
                port += 1
                net.start_flow(flow)

    truth = GroundTruth(
        anomaly=AnomalyType.MICRO_BURST_INCAST,
        culprit_flows=[f.key for f in culprits],
        initial_port=topo.attachment_of(target),
    )
    return Scenario(
        name=f"fleet-incast-k{k}-seed{seed}",
        network=net,
        truth=truth,
        victims=[victim],
        duration_ns=duration_ns,
        description=(
            f"K={k} fat-tree with an incast in every pod; pod 0's incast "
            "back-pressures the diagnosed victim."
        ),
    )


SCENARIO_BUILDERS = {
    "lordma-attack": lordma_attack_scenario,
    "incast-backpressure": incast_backpressure_scenario,
    "pfc-storm": pfc_storm_scenario,
    "contention-masked-storm": contention_masked_storm_scenario,
    "in-loop-deadlock": in_loop_deadlock_scenario,
    "out-of-loop-deadlock": out_of_loop_deadlock_scenario,
    "normal-contention": normal_contention_scenario,
    "fleet-incast-k8": lambda seed=1: fleet_incast_scenario(seed=seed, k=8),
    "fleet-incast-k16": lambda seed=1: fleet_incast_scenario(seed=seed, k=16),
}
