"""Workload generation: empirical traffic model and anomaly injectors."""

from .anomalies import (
    lordma_attack_scenario,
    BACKGROUND_SCALE,
    SCENARIO_BUILDERS,
    add_background_traffic,
    contention_masked_storm_scenario,
    fleet_incast_scenario,
    in_loop_deadlock_scenario,
    incast_backpressure_scenario,
    normal_contention_scenario,
    out_of_loop_deadlock_scenario,
    pfc_storm_scenario,
)
from .distributions import (
    DEFAULT_BANDS,
    FlowSizeDistribution,
    PoissonArrivals,
    SizeBand,
)
from .scenario import GroundTruth, Scenario

__all__ = [
    "BACKGROUND_SCALE",
    "SCENARIO_BUILDERS",
    "add_background_traffic",
    "contention_masked_storm_scenario",
    "fleet_incast_scenario",
    "in_loop_deadlock_scenario",
    "incast_backpressure_scenario",
    "lordma_attack_scenario",
    "normal_contention_scenario",
    "out_of_loop_deadlock_scenario",
    "pfc_storm_scenario",
    "DEFAULT_BANDS",
    "FlowSizeDistribution",
    "PoissonArrivals",
    "SizeBand",
    "GroundTruth",
    "Scenario",
]
