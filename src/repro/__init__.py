"""Hawkeye reproduction: diagnosing RDMA network performance anomalies
with PFC provenance (SIGCOMM 2025).

Public API layout:

- :mod:`repro.topology` — fabric graphs, builders, ECMP routing
- :mod:`repro.sim` — discrete-event RDMA/PFC network simulator
- :mod:`repro.telemetry` — Hawkeye's PFC-aware epoch telemetry
- :mod:`repro.collection` — detection agent, polling packets, collection
- :mod:`repro.core` — provenance graph construction and diagnosis
- :mod:`repro.baselines` — SpiderMon, NetSight, polling/telemetry ablations
- :mod:`repro.workloads` — traffic generation and anomaly injectors
- :mod:`repro.experiments` — scenario runner, scoring, overhead accounting
"""

__version__ = "1.0.0"
