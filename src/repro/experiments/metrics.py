"""Precision/recall scoring against scenario ground truth (§4.2).

The paper's definitions: a *true positive* identifies both the exact
anomaly case (e.g., a deadlock) and the corresponding root causes (e.g.,
the burst flows); *false positives* report an incorrect case or root
cause; *false negatives* are anomalies that were never reported at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.report import Diagnosis, RootCauseKind
from ..workloads.scenario import GroundTruth


@dataclass
class ScoreConfig:
    # A contention diagnosis must recover at least this fraction of the
    # ground-truth culprit flows (the paper's case studies call out the
    # "main contributor flows" rather than every burst member)...
    culprit_recall_threshold: float = 0.3
    # ... and at most this fraction of its reported culprits may be wrong.
    culprit_noise_threshold: float = 0.34


def diagnosis_correct(
    diagnosis: Diagnosis,
    truth: GroundTruth,
    config: Optional[ScoreConfig] = None,
) -> bool:
    """Is this a true positive (anomaly case AND root cause both right)?"""
    config = config if config is not None else ScoreConfig()
    primary = diagnosis.primary()
    if primary.anomaly is not truth.anomaly:
        return False
    if truth.injecting_host is not None:
        return (
            primary.root_cause is RootCauseKind.HOST_PFC_INJECTION
            and primary.injecting_source == truth.injecting_host
        )
    if truth.culprit_flows:
        reported = set(primary.culprit_keys())
        expected = set(truth.culprit_flows)
        if not reported:
            return False
        recovered = len(reported & expected) / len(expected)
        noise = len(reported - expected) / len(reported)
        if noise > config.culprit_noise_threshold:
            return False
        if recovered >= config.culprit_recall_threshold:
            return True
        # Congestion control can reshape a symmetric burst so that one flow
        # dominates the queue; naming only the dominant true culprits (zero
        # innocents blamed) still identifies the root cause.
        return noise == 0.0 and len(reported & expected) >= 1
    return True


@dataclass
class AccuracyCounter:
    """Tallies TP/FP/FN across scenario runs the paper's way."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    labels: List[str] = field(default_factory=list)

    def add(
        self,
        diagnosis: Optional[Diagnosis],
        truth: GroundTruth,
        config: Optional[ScoreConfig] = None,
        label: str = "",
    ) -> bool:
        """Record one run's outcome; returns whether it was a TP."""
        if diagnosis is None or not diagnosis.findings:
            self.fn += 1
            self.labels.append(f"FN {label}")
            return False
        if diagnosis_correct(diagnosis, truth, config):
            self.tp += 1
            self.labels.append(f"TP {label}")
            return True
        self.fp += 1
        self.labels.append(f"FP {label}: got {diagnosis.primary().describe()}")
        return False

    @property
    def precision(self) -> float:
        reported = self.tp + self.fp
        return self.tp / reported if reported else 0.0

    @property
    def recall(self) -> float:
        # The paper counts an anomaly as "recalled" when it is reported at
        # all; unreported anomalies are the false negatives.
        total = self.tp + self.fp + self.fn
        return (self.tp + self.fp) / total if total else 0.0

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn
