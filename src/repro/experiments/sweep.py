"""Parameter-sweep utilities: grid runs, accuracy aggregation, CSV export.

The benchmarks use these helpers implicitly through their own loops; this
module packages the same machinery for interactive use and the CLI's
``sweep`` subcommand: build a grid over (scenario × epoch × threshold ×
system × seeds), run it, and tabulate precision/recall per cell.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, IO, Iterable, List, Optional, Sequence, Tuple

from concurrent.futures import ProcessPoolExecutor

from ..baselines.systems import SystemKind
from ..monitor.monitor import MonitorConfig
from ..workloads.scenario import Scenario
from .metrics import AccuracyCounter, ScoreConfig
from .runner import RunConfig, _pool_context, run_scenario

ScenarioBuilder = Callable[..., Scenario]


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell of the parameter sweep."""

    scenario: str
    system: SystemKind = SystemKind.HAWKEYE
    epoch_size_ns: int = 1 << 20
    threshold: float = 3.0
    # Frozen (hence picklable) monitor knobs; each pool worker builds its
    # own FabricMonitor from them, exactly like RunConfig.obs.
    monitor: Optional[MonitorConfig] = None

    def run_config(self) -> RunConfig:
        return RunConfig(
            system=self.system,
            epoch_size_ns=self.epoch_size_ns,
            threshold_multiplier=self.threshold,
            monitor=self.monitor,
        )


@dataclass
class SweepResult:
    point: SweepPoint
    accuracy: AccuracyCounter
    processing_bytes: int = 0
    bandwidth_bytes: int = 0
    # Per-stage wall seconds summed over the cell's seeds (from each run's
    # StageProfile via PerfStats.stages): where this grid cell spent time.
    stage_wall_s: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Tuple:
        return (
            self.point.scenario,
            self.point.system.value,
            self.point.epoch_size_ns,
            f"{self.point.threshold:.1f}",
            f"{self.accuracy.precision:.3f}",
            f"{self.accuracy.recall:.3f}",
            self.processing_bytes,
            self.bandwidth_bytes,
        )


CSV_HEADER = (
    "scenario",
    "system",
    "epoch_ns",
    "threshold",
    "precision",
    "recall",
    "processing_bytes",
    "bandwidth_bytes",
)


def grid(
    scenarios: Sequence[str],
    systems: Sequence[SystemKind] = (SystemKind.HAWKEYE,),
    epoch_sizes_ns: Sequence[int] = (1 << 20,),
    thresholds: Sequence[float] = (3.0,),
) -> List[SweepPoint]:
    """The cartesian product of sweep axes."""
    return [
        SweepPoint(scenario=s, system=sys, epoch_size_ns=e, threshold=t)
        for s, sys, e, t in itertools.product(
            scenarios, systems, epoch_sizes_ns, thresholds
        )
    ]


def _sweep_cell(item: Tuple[SweepPoint, ScenarioBuilder, int]) -> Tuple:
    """Worker for one (grid point, seed) cell; returns picklable pieces."""
    point, builder, seed = item
    scenario = builder(seed=seed)
    outcome = run_scenario(scenario, point.run_config())
    stage_walls = (
        {name: s["wall_s"] for name, s in outcome.perf.stages.items()}
        if outcome.perf is not None
        else {}
    )
    return (
        outcome.diagnosis(),
        scenario.truth,
        outcome.processing_bytes,
        outcome.bandwidth_bytes,
        stage_walls,
    )


def run_sweep(
    points: Iterable[SweepPoint],
    builders: Dict[str, ScenarioBuilder],
    seeds: Sequence[int] = (1, 2),
    score: Optional[ScoreConfig] = None,
    progress: Optional[Callable[[SweepPoint], None]] = None,
    jobs: int = 1,
) -> List[SweepResult]:
    """Run every grid cell over the given seeds.

    With ``jobs > 1`` the (point × seed) cells run across a process pool;
    every cell is an independent seeded simulation, so the aggregated
    results are identical to the serial order-of-execution.
    """
    points = list(points)
    items = [
        (point, builders[point.scenario], seed) for point in points for seed in seeds
    ]
    if jobs > 1 and len(items) > 1:
        workers = min(jobs, len(items))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            cells = list(pool.map(_sweep_cell, items))
    else:
        cells = [_sweep_cell(item) for item in items]

    results: List[SweepResult] = []
    per_point = len(list(seeds))
    for i, point in enumerate(points):
        accuracy = AccuracyCounter()
        processing = bandwidth = 0
        stage_wall_s: Dict[str, float] = {}
        for j, seed in enumerate(seeds):
            diagnosis, truth, cell_processing, cell_bandwidth, cell_stages = cells[
                i * per_point + j
            ]
            accuracy.add(diagnosis, truth, score, label=f"seed{seed}")
            processing += cell_processing
            bandwidth += cell_bandwidth
            for name, wall in cell_stages.items():
                stage_wall_s[name] = stage_wall_s.get(name, 0.0) + wall
        results.append(
            SweepResult(
                point=point,
                accuracy=accuracy,
                processing_bytes=processing,
                bandwidth_bytes=bandwidth,
                stage_wall_s=stage_wall_s,
            )
        )
        if progress is not None:
            progress(point)
    return results


def write_csv(results: Iterable[SweepResult], fh: IO[str]) -> int:
    """Dump sweep results as CSV; returns the number of data rows."""
    writer = csv.writer(fh)
    writer.writerow(CSV_HEADER)
    count = 0
    for result in results:
        writer.writerow(result.row())
        count += 1
    return count


def best_configuration(results: Sequence[SweepResult]) -> Optional[SweepResult]:
    """The cell with the best (precision, recall) lexicographic score."""
    scored = [r for r in results]
    if not scored:
        return None
    return max(scored, key=lambda r: (r.accuracy.precision, r.accuracy.recall))
