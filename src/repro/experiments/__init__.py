"""Experiment harness: runner, scoring and hardware models."""

from .hardware import (
    MemoryBreakdown,
    cpu_poll_time_ms,
    telemetry_memory,
    tofino_resource_usage,
    total_collection_time_ms,
)
from .metrics import AccuracyCounter, ScoreConfig, diagnosis_correct
from .perfstats import (
    BENCH_PERF_FILENAME,
    PerfStats,
    load_bench_json,
    write_bench_json,
)
from .runner import (
    FabricSession,
    RunConfig,
    RunResult,
    RunSummary,
    ScenarioSpec,
    VictimOutcome,
    causal_switches_of,
    diagnose_victims,
    run_scenario,
    run_scenarios_parallel,
    select_reports,
    summarize_run,
)
from .shardrun import run_scenario_sharded

__all__ = [
    "MemoryBreakdown",
    "cpu_poll_time_ms",
    "telemetry_memory",
    "tofino_resource_usage",
    "total_collection_time_ms",
    "AccuracyCounter",
    "ScoreConfig",
    "diagnosis_correct",
    "BENCH_PERF_FILENAME",
    "PerfStats",
    "load_bench_json",
    "write_bench_json",
    "FabricSession",
    "RunConfig",
    "RunResult",
    "RunSummary",
    "ScenarioSpec",
    "VictimOutcome",
    "causal_switches_of",
    "diagnose_victims",
    "run_scenario",
    "run_scenario_sharded",
    "run_scenarios_parallel",
    "select_reports",
    "summarize_run",
]

from .analyzer import (  # noqa: E402  (appended exports)
    AnalyzerConfig,
    AnalyzerService,
    Incident,
    deploy_analyzer,
)

__all__ += [
    "AnalyzerConfig",
    "AnalyzerService",
    "Incident",
    "deploy_analyzer",
]

from .sweep import (  # noqa: E402  (appended exports)
    CSV_HEADER,
    SweepPoint,
    SweepResult,
    best_configuration,
    grid,
    run_sweep,
    write_csv,
)

__all__ += [
    "CSV_HEADER",
    "SweepPoint",
    "SweepResult",
    "best_configuration",
    "grid",
    "run_sweep",
    "write_csv",
]
