"""Sharded scenario execution: one fabric, many worker processes.

:func:`run_scenario_sharded` partitions a scenario's topology into pods
(:func:`repro.topology.partition.partition_topology`), forks one worker
per shard, and advances all shards in lockstep epochs under a
conservative-lookahead barrier:

- every worker owns the switches and hosts of its shard and simulates
  them with a full private pipeline (telemetry deployment, collector,
  polling engine, detection agent, fault injector, fabric monitor);
- frames addressed to a remote node are flattened into the shard's
  outbox (:class:`repro.sim.network.Network`) instead of its event loop;
- at each barrier the orchestrator grants a new epoch horizon
  ``T' = min(duration, m + L - 1)`` where ``m`` is the earliest pending
  work anywhere (local events or in-flight frames) and ``L`` is the
  minimum cut-link latency.  No frame sent inside an epoch can arrive
  within it (delivery delay >= link latency + serialization), so workers
  never see a remote frame late.

Chaos runs shard cleanly because the fault injector draws every decision
from a per-``(category, entity)`` RNG stream (see
:mod:`repro.faults.injector`): a switch's fault fates are identical
whether it is simulated in-process or in any worker, and the per-shard
incident logs merge canonically (:func:`repro.faults.injector
.merge_shard_incidents`).  Polling retry/backoff needs two extras: the
parent caps each epoch so no retry check fires with incomplete remote
state (workers report their earliest pending check; the barrier lands
just before it, with a one-tick micro-epoch when the check is immediately
due), and workers exchange *control records* — per-switch report-delivery
times, per-victim trace sets and retransmission resets — as diffs
relayed through the barrier, so the path-coverage probe and the polling
dedup windows see the same fabric-wide state the single-process run
sees.  The continuous fabric monitor shards the same way: every alert
rule is per-subject and every subject lives in exactly one shard, so
per-worker monitors sample exactly their slice and the parent merges
alerts canonically (:class:`repro.monitor.merge.MergedMonitor`).

Cross-shard frames travel over one of two transports
(``REPRO_SHARD_TRANSPORT`` selects: ``auto``/``pipe``/``shm``): large
per-destination batches ride fixed-width int64 rows in parity-split
``multiprocessing.shared_memory`` rings (:mod:`repro.experiments
.shmring`) with only row *counts* crossing the barrier pipes, while
small batches, codec misses and ring overflows ride the pickled pipe
path unchanged.  Every ring row carries an epoch/index integrity stamp:
torn or stale rows raise at drain time (surfacing as a ``transport``
worker failure), and rows that fail the writer's read-back verify spill
to the pipe per frame (``PerfStats.transport["integrity_spills"]``).

Worker supervision: a barrier watchdog (``--shard-timeout`` /
``REPRO_SHARD_TIMEOUT``, default 60 s) bounds every wait on a worker.  A
hung, crashed or transport-poisoned worker trips the watchdog; the
parent then terminates the fleet, cleans up the shared segment on every
exit path (``finally`` + ``atexit`` + SIGTERM), and follows
``REPRO_SHARD_FALLBACK``: ``serial`` (default) reruns the scenario once
on the single-process engine — byte-identical result, just slower;
``degrade`` finishes the survivors and returns a diagnosis whose
``completeness``/``missing_switches`` reflect the lost pods (never a
full-confidence verdict); ``fail`` raises.

Determinism: deliveries are ordered by the engine's canonical
``(send time, trigger schedule time, source, per-source seq)`` key in a
per-timestamp delivery band, never by schedule-call order — so merging
frames from another process reproduces the exact per-node event order of
the single-process engine, and the merged diagnosis (and canonicalized
obs trace, see :mod:`repro.obs.canon`) is byte-identical to ``shards=1``.

The analyzer half (report selection through verdict) runs once, in the
parent, over the merged worker state — the same
:func:`repro.experiments.runner.diagnose_victims` the in-process runner
uses.

Not supported with ``shards > 1`` (raises ``ValueError``): full-network
collection baselines (global trigger fan-out) and per-packet sim tracing
(per-shard record floods).  Retry policies whose ``report_timeout_ns``
does not exceed the partition's lookahead fall back to the serial engine
(the barrier cannot land between a trigger and its first check).
"""

from __future__ import annotations

import atexit
import gc
import os
import signal
import threading
import time
from dataclasses import asdict
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..baselines.systems import (
    bandwidth_overhead_bytes,
    processing_overhead_bytes,
)
from ..collection.agent import AgentConfig, DetectionAgent
from ..collection.collector import TelemetryCollector
from ..collection.polling import PollingConfig, PollingEngine
from ..faults.injector import make_injector, merge_shard_incidents
from ..monitor.merge import MergedMonitor
from ..monitor.monitor import FabricMonitor
from ..obs import (
    Event,
    MetricsRegistry,
    PipelineObs,
    Span,
    StageProfile,
    Tracer,
    merge_stage_dicts,
)
from ..obs.trace import NullSink
from ..sim.packet import POLLING_PACKET_SIZE, FlowKey
from ..sim.shard import shard_build_context
from ..telemetry.hawkeye import HawkeyeDeployment, TelemetryConfig
from ..telemetry.snapshot import SwitchReport
from ..topology.partition import ShardPlan, partition_topology
from ..units import usec
from .perfstats import PerfStats, diff_cache_counters, global_cache_counters
from .shmring import (
    SHM_MIN_FRAMES,
    ShmFrameTransport,
    ShmRingIntegrityError,
    build_transport,
)
from .supervise import (
    FALLBACK_DEGRADE,
    FALLBACK_FAIL,
    FALLBACK_SERIAL,
    ShardCrashed,
    ShardTimeout,
    ShardWorkerError,
    resolve_fallback,
    resolve_timeout,
    resolve_transport_mode,
)
from .runner import (
    RunConfig,
    RunResult,
    ScenarioSpec,
    causal_switches_of,
    diagnose_victims,
    run_scenario,
)

# Chaos-test hook: when set, called as ``fn(shard_id, epoch_no)`` at the
# top of every epoch inside each worker (inherited through fork).  A
# returned action string simulates a failure mode: ``"sigkill"`` kills
# the worker outright, ``"hang"`` wedges it past any sane watchdog
# deadline, ``"corrupt-ring"`` scribbles over an inbound shm ring row so
# the drain trips the integrity check.  ``None`` / unknown = no-op.
_TEST_WORKER_ABORT: Optional[Callable[[int, int], Optional[str]]] = None


class ShardPipelineObs(PipelineObs):
    """Worker-side observability that remembers what it could not anchor.

    A worker has no scenario span (the parent owns the root) and only its
    own victims' diagnosis/round spans; records for a *remote* victim fall
    back to no parent.  Each fallback is noted as ``(record id, victim)``
    so the merge step can re-anchor the record under the victim's round
    span — reproducing exactly the parent the single-process
    :meth:`PipelineObs._anchor` would have chosen.
    """

    def __init__(self, tracer: Tracer, metrics: MetricsRegistry) -> None:
        super().__init__(tracer, metrics)
        self.fallbacks: List[Tuple[int, str]] = []

    def _note(self, victim) -> None:
        if (
            victim is not None
            and self._round.get(victim) is None
            and self._diagnosis.get(victim) is None
        ):
            # The next record created gets id ``tracer._next_id``.
            self.fallbacks.append((self.tracer._next_id, str(victim)))

    def on_polling_mirror(self, switch, victim, time_ns):
        self._note(victim)
        super().on_polling_mirror(switch, victim, time_ns)

    def on_polling_forward(self, switch, victim, time_ns, fanout):
        self._note(victim)
        super().on_polling_forward(switch, victim, time_ns, fanout)

    def on_polling_suppressed(self, switch, victim, time_ns, kind):
        self._note(victim)
        super().on_polling_suppressed(switch, victim, time_ns, kind)

    def on_polling_lost(self, switch, victim, time_ns):
        self._note(victim)
        super().on_polling_lost(switch, victim, time_ns)

    def on_collection_shared(self, switch, victim, time_ns):
        self._note(victim)
        super().on_collection_shared(switch, victim, time_ns)

    def on_epoch_read(self, switch, victim, start_ns, end_ns, epochs, faults=()):
        self._note(victim)
        super().on_epoch_read(switch, victim, start_ns, end_ns, epochs, faults)

    def on_report(self, fate, switch, victim, time_ns, faults=(), delay_ns=0):
        self._note(victim)
        super().on_report(fate, switch, victim, time_ns, faults, delay_ns)


def _unsupported(config: RunConfig) -> Optional[str]:
    if config.obs is not None and config.obs.sim_events:
        return "per-packet sim tracing (per-shard record floods)"
    if config.system.collects_everywhere:
        return "full-network collection baselines (global trigger fan-out)"
    return None


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


def _shard_worker_main(
    conn,
    spec: ScenarioSpec,
    config: RunConfig,
    plan: ShardPlan,
    shard_id: int,
    transport: Optional[ShmFrameTransport],
    transport_mode: str,
) -> None:
    """One shard's process: build the shard view, obey epoch barriers.

    ``transport`` is the parent-created shared-memory ring set, inherited
    through fork (never pickled); ``transport_mode`` is the effective
    mode — ``"shm"`` forces every routable batch onto the rings,
    ``"auto"`` applies the :data:`~repro.experiments.shmring
    .SHM_MIN_FRAMES` threshold per batch, ``"pipe"`` (or a ``None``
    transport) keeps the legacy pickled path.
    """
    try:
        with shard_build_context(plan.assignment, shard_id):
            scenario = spec.build()
        net = scenario.network
        metrics = MetricsRegistry()
        obs: Optional[ShardPipelineObs] = None
        if config.obs is not None and config.obs.trace:
            obs = ShardPipelineObs(Tracer(NullSink()), metrics)
        # Construction order mirrors run_scenario exactly: same-timestamp
        # timer events (monitor ticks vs stall checks vs DMA reads) break
        # ties by schedule order, which must match the in-process engine.
        monitor: Optional[FabricMonitor] = None
        if config.monitor is not None and config.monitor.enabled:
            monitor = FabricMonitor(net, config.monitor, metrics=metrics).start()
        injector = make_injector(config.faults, shard_id=shard_id)
        deployment = HawkeyeDeployment(
            net,
            TelemetryConfig(scheme=config.scheme(), flow_slots=config.flow_slots),
        )
        collector = TelemetryCollector(
            deployment, injector=injector, retry=config.retry, obs=obs
        )
        kind = config.system
        engine: Optional[PollingEngine] = None
        if kind.uses_polling_packets or kind.pfc_blind:
            engine = PollingEngine(
                net,
                deployment,
                PollingConfig(
                    trace_pfc=kind.traces_pfc, use_meters=config.use_meters
                ),
                injector=injector,
                obs=obs,
            )
            engine.add_mirror_listener(collector.on_polling_mirror)
        agent = DetectionAgent(
            net,
            AgentConfig(threshold_multiplier=config.threshold_multiplier),
            retry=config.retry,
            injector=injector,
            obs=obs,
            monitor=monitor,
        )

        # Remote-shard control view (retry runs only): latest report
        # delivery per remote switch and remote trace sets per victim,
        # built from the control records the barrier relays.  Complete
        # through the previous epoch's horizon — the parent's checkpoint
        # capping guarantees no retry check fires needing fresher state.
        retry_on = config.retry is not None
        view_deliveries: Dict[str, int] = {}
        view_traces: Dict[FlowKey, Set[str]] = {}
        resets_out: List[Tuple[int, FlowKey]] = []
        shipped_deliveries: Dict[str, int] = {}
        shipped_traces: Dict[FlowKey, Set[str]] = {}
        spills_shipped = 0
        if retry_on:
            if engine is not None:
                # The sharded path-coverage probe: identical to the
                # in-process probe in run_scenario, with the remote halves
                # of "traced" and "reported" supplied by the control view.
                probe_slack_ns = usec(200)

                def _path_probe(victim_key: FlowKey, since_ns: int) -> bool:
                    src_host = net.topology.host_of_ip(victim_key.src_ip)
                    expected = set(
                        net.routing.switch_path(
                            src_host, victim_key.dst_ip, victim_key
                        )
                    )
                    expected |= engine.switches_traced_for(victim_key)
                    expected |= view_traces.get(victim_key, set())
                    cutoff = since_ns - probe_slack_ns
                    reported = collector.switches_reported_since(cutoff)
                    for sw, t in view_deliveries.items():
                        if t >= cutoff:
                            reported.add(sw)
                    return expected <= reported

                agent.set_report_probe(_path_probe)
                agent.add_retransmit_listener(engine.reset_victim)

                def _note_reset(victim: FlowKey) -> None:
                    resets_out.append((net.sim.now, victim))

                agent.add_retransmit_listener(_note_reset)
            else:

                def _any_probe(victim_key: FlowKey, since_ns: int) -> bool:
                    if collector.has_report_since(victim_key, since_ns):
                        return True
                    return any(t >= since_ns for t in view_deliveries.values())

                agent.set_report_probe(_any_probe)

        duration = scenario.duration_ns
        node_shard = plan.assignment
        profile = StageProfile()
        # Construction allocated the long-lived object graph; what follows
        # is steady-state churn that reference counting alone reclaims, so
        # cycle-collector sweeps are pure overhead on the busy path.
        gc.collect()
        gc.disable()

        busy_s = 0.0
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "epoch":
                epoch_no, until, frames, shm_counts, control = msg[1:6]
                if _TEST_WORKER_ABORT is not None:
                    action = _TEST_WORKER_ABORT(shard_id, epoch_no)
                    if action == "sigkill":
                        os.kill(os.getpid(), signal.SIGKILL)
                    elif action == "hang":
                        time.sleep(3600)
                    elif (
                        action == "corrupt-ring"
                        and transport is not None
                        and shm_counts
                    ):
                        src0 = next(iter(shm_counts))
                        transport._words[
                            transport._base(src0, shard_id, epoch_no - 1)
                        ] = 0
                if shm_counts:
                    with profile.stage("shard_transport"):
                        for src, count in shm_counts.items():
                            frames.extend(
                                transport.read_epoch(
                                    src, shard_id, epoch_no - 1, count
                                )
                            )
                if control:
                    for sw, t in control["deliveries"]:
                        if view_deliveries.get(sw, -1) < t:
                            view_deliveries[sw] = t
                    for victim, sw in control["traces"]:
                        view_traces.setdefault(victim, set()).add(sw)
                    if engine is not None and control["resets"]:
                        # Remote retransmissions reopen this shard's dedup
                        # windows before any retransmitted frame can arrive
                        # (arrivals land strictly beyond the grant that
                        # contained the reset).  Canonical order keeps
                        # multi-reset epochs deterministic.
                        for _t, victim in sorted(
                            control["resets"], key=lambda r: (r[0], str(r[1]))
                        ):
                            engine.reset_victim(victim)
                # CPU time, not wall time: on a machine with fewer cores
                # than shards the workers time-share, and wall time would
                # charge each shard for its siblings' slices.  With one
                # core per shard the two are equal.
                t0 = time.process_time()
                with profile.stage("shard_run"):
                    net.deliver_wire_batch(frames)
                    net.run(until)
                busy_s += time.process_time() - t0
                outbox = net.outbox
                net.outbox = []
                # Route the outbox here (not in the parent): per-dest
                # batches go to the rings when eligible, the rest rides
                # the pipe.  ``out_min`` covers *every* frame — arrivals
                # past the horizon still bound the next epoch grant.
                out_min: Optional[int] = None
                shm_counts_out: Dict[int, int] = {}
                pipe_out: Dict[int, List[tuple]] = {}
                overflow = 0
                if outbox:
                    with profile.stage("shard_transport"):
                        by_dest: Dict[int, List[tuple]] = {}
                        for frame in outbox:
                            arrival = frame[0]
                            if out_min is None or arrival < out_min:
                                out_min = arrival
                            if arrival <= duration:
                                by_dest.setdefault(
                                    node_shard[frame[1]], []
                                ).append(frame)
                        for dest, dest_frames in by_dest.items():
                            use_shm = transport is not None and (
                                transport_mode == "shm"
                                or len(dest_frames) >= SHM_MIN_FRAMES
                            )
                            if use_shm:
                                written, leftover = transport.write_epoch(
                                    shard_id, dest, epoch_no, dest_frames
                                )
                                if written:
                                    shm_counts_out[dest] = written
                                if leftover:
                                    overflow += len(leftover)
                                    pipe_out[dest] = leftover
                            else:
                                pipe_out[dest] = dest_frames
                next_ckpt = (
                    agent.next_pending_retry(net.sim.now) if retry_on else None
                )
                control_out: Optional[Dict[str, list]] = None
                if retry_on:
                    deliveries_diff: List[Tuple[str, int]] = []
                    for sw, t in collector._delivery_times.items():
                        if shipped_deliveries.get(sw, -1) < t:
                            shipped_deliveries[sw] = t
                            deliveries_diff.append((sw, t))
                    traces_diff: List[Tuple[FlowKey, str]] = []
                    if engine is not None:
                        for victim, sws in engine._victim_switches.items():
                            shipped = shipped_traces.setdefault(victim, set())
                            fresh = sws - shipped
                            if fresh:
                                shipped |= fresh
                                traces_diff.extend(
                                    (victim, sw) for sw in sorted(fresh)
                                )
                    control_out = {
                        "deliveries": deliveries_diff,
                        "traces": traces_diff,
                        "resets": resets_out[:],
                    }
                    resets_out.clear()
                integrity_delta = 0
                if transport is not None:
                    integrity_delta = transport.integrity_spills - spills_shipped
                    spills_shipped = transport.integrity_spills
                conn.send(
                    (
                        "done",
                        shm_counts_out,
                        pipe_out,
                        overflow,
                        net.sim.peek_next_time(),
                        out_min,
                        next_ckpt,
                        control_out,
                        integrity_delta,
                    )
                )
            elif op == "finish":
                collector.flush_pending(net.sim.now)
                if monitor is not None:
                    monitor.finish(net.sim.now)
                conn.send(
                    (
                        "final",
                        _final_blob(
                            net, collector, engine, agent, deployment, obs,
                            metrics, busy_s, profile, injector, monitor,
                        ),
                    )
                )
                conn.close()
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown shard op {op!r}")
    except Exception as exc:  # pragma: no cover - shipped to parent for re-raise
        import traceback

        kind = "transport" if isinstance(exc, ShmRingIntegrityError) else "worker"
        try:
            conn.send(("error", traceback.format_exc(), kind))
        except Exception:
            pass


def _final_blob(
    net, collector, engine, agent, deployment, obs, metrics, busy_s, profile,
    injector, monitor,
) -> Dict[str, Any]:
    """Everything the parent needs to merge one shard's finished state."""
    blob: Dict[str, Any] = {
        "shard_id": net.shard_id,
        "reports": [r.to_columnar() for r in collector.reports],
        "triggers": list(agent.triggers),
        "victim_switches": (
            {k: set(v) for k, v in engine._victim_switches.items()}
            if engine is not None
            else {}
        ),
        "collector_stats": asdict(collector.stats),
        "polling_counters": {
            "packets_forwarded": engine.polling_packets_forwarded if engine else 0,
            "packets_suppressed": engine.polling_packets_suppressed if engine else 0,
            "packets_lost": engine.polling_packets_lost if engine else 0,
        },
        "fault_incidents": list(injector.incidents) if injector is not None else [],
        "agent_counters": {
            "retransmissions": agent.retransmissions,
            "retries_recovered": agent.retries_recovered,
            "retries_exhausted": agent.retries_exhausted,
            "restarts": agent.restarts,
        },
        "monitor": (
            {"alerts": list(monitor.alerts), "counters": monitor.counters()}
            if monitor is not None
            else None
        ),
        "sim_counters": net.sim.counters(),
        "data_pkt_hops": sum(sw.stats.data_pkts for sw in net.switches.values()),
        "data_pkts_sent": sum(f.packets_sent for f in net.flows),
        "cache_counters": {
            name: {"hits": h, "misses": m}
            for name, (h, m) in deployment.cache_counters().items()
        },
        "ecmp_cache": {
            "hits": net.routing.select_cache_hits,
            "misses": net.routing.select_cache_misses,
        },
        "metrics_counters": {
            name: counter.value for name, counter in metrics._counters.items()
        },
        "busy_s": busy_s,
        "stages": profile.to_dict(),
        "trigger_count": len(agent.triggers),
    }
    if obs is not None:
        tracer = obs.tracer
        blob["obs"] = {
            "spans": [s.to_record() for s in tracer.spans],
            "events": [e.to_record() for e in tracer.events],
            "open_ids": [s.span_id for s in tracer.open_spans()],
            "diag_spans": {v: s.span_id for v, s in obs._diagnosis.items()},
            "round_spans": {v: s.span_id for v, s in obs._round.items()},
            "round_no": dict(obs._round_no),
            "fallbacks": list(obs.fallbacks),
            "next_id": tracer._next_id,
        }
    return blob


# ---------------------------------------------------------------------------
# Orchestrator
# ---------------------------------------------------------------------------


def _merge_obs(
    parent_obs: PipelineObs, blobs: List[Dict[str, Any]]
) -> None:
    """Fold worker trace records into the parent tracer, re-anchored.

    Worker record ids are offset into one global sequence; spans and
    events that a worker could only anchor to its (absent) root are
    re-parented under the merged scenario span, and the victim-scoped
    fallbacks noted by :class:`ShardPipelineObs` are re-anchored under
    the victim's polling round (or diagnosis) span open at their
    timestamp — the parent single-process ``_anchor`` would have chosen.
    Open diagnosis/round spans are revived into the parent's bookkeeping
    so the analyzer phase closes them exactly as ``run_scenario`` does.
    """
    tracer = parent_obs.tracer
    scenario_span = parent_obs.scenario_span
    assert scenario_span is not None
    next_id = tracer._next_id
    spans_by_id: Dict[int, Span] = {scenario_span.span_id: scenario_span}
    events_by_id: Dict[int, Event] = {}
    fallbacks: List[Tuple[int, str]] = []

    for blob in blobs:
        payload = blob.get("obs")
        if payload is None:
            continue
        offset = next_id
        next_id += payload["next_id"]
        open_ids = set(payload["open_ids"])
        for rec in payload["spans"]:
            parent_id = rec["parent"]
            span = Span(
                rec["id"] + offset,
                parent_id + offset if parent_id is not None else scenario_span.span_id,
                rec["kind"],
                rec["name"],
                rec["start_ns"],
                dict(rec["attrs"]),
            )
            if rec["id"] not in open_ids:
                span.end_ns = rec["end_ns"]
            spans_by_id[span.span_id] = span
            tracer.spans.append(span)
            if rec["id"] in open_ids:
                tracer._open[span.span_id] = span
        for rec in payload["events"]:
            span_id = rec["span"]
            event = Event(
                rec["id"] + offset,
                span_id + offset if span_id is not None else scenario_span.span_id,
                rec["kind"],
                rec["name"],
                rec["time_ns"],
                dict(rec["attrs"]),
            )
            events_by_id[event.event_id] = event
            tracer.events.append(event)
        fallbacks.extend((rid + offset, vstr) for rid, vstr in payload["fallbacks"])
        for victim, span_id in payload["diag_spans"].items():
            parent_obs._diagnosis[victim] = spans_by_id[span_id + offset]
        for victim, span_id in payload["round_spans"].items():
            parent_obs._round[victim] = spans_by_id[span_id + offset]
        for victim, number in payload["round_no"].items():
            parent_obs._round_no[victim] = number

    tracer._next_id = next_id
    tracer.spans.sort(key=lambda s: s.span_id)
    tracer.events.sort(key=lambda e: e.event_id)

    # Victim name -> its diagnosis span and (start-ordered) round spans.
    diag_of: Dict[str, Span] = {}
    rounds_of: Dict[str, List[Span]] = {}
    for span in tracer.spans:
        if span.kind == "diagnosis":
            diag_of[span.attrs.get("victim", span.name)] = span
    for span in tracer.spans:
        if span.kind == "polling_round":
            parent = spans_by_id.get(span.parent_id)
            if parent is not None and parent.kind == "diagnosis":
                victim = parent.attrs.get("victim", parent.name)
                rounds_of.setdefault(victim, []).append(span)
    for spans in rounds_of.values():
        spans.sort(key=lambda s: (s.start_ns, s.span_id))

    for rid, victim in fallbacks:
        span = spans_by_id.get(rid)
        event = events_by_id.get(rid)
        at_ns = span.start_ns if span is not None else event.time_ns
        candidates = [
            r for r in rounds_of.get(victim, []) if r.start_ns <= at_ns
        ]
        target: Optional[Span] = candidates[-1] if candidates else None
        if target is None:
            diagnosis = diag_of.get(victim)
            if diagnosis is not None and diagnosis.start_ns <= at_ns:
                target = diagnosis
        if target is None:
            target = scenario_span
        if span is not None:
            span.parent_id = target.span_id
        else:
            event.span_id = target.span_id


def _degrade_outcomes(
    outcomes, scenario, net, traced_of, lost_switches: Set[str]
) -> None:
    """Stamp every diagnosis with the telemetry the lost shards took.

    ``Diagnosis.confidence`` is derived (full iff completeness is 1.0
    with nothing missing or degraded), so folding the lost pods' switches
    into ``missing_switches`` and recomputing completeness against the
    enlarged expected set guarantees no full-confidence verdict can
    survive a lost shard.
    """
    if not lost_switches:
        return
    for victim, outcome in zip(scenario.victims, outcomes):
        diagnosis = outcome.diagnosis
        if diagnosis is None:
            continue
        prev_missing = set(diagnosis.missing_switches)
        expected = set(
            net.routing.switch_path(victim.src_host, victim.key.dst_ip, victim.key)
        )
        if traced_of is not None:
            expected |= traced_of(victim.key)
        expected |= prev_missing | lost_switches
        missing = prev_missing | lost_switches
        diagnosis.missing_switches = sorted(missing)
        diagnosis.completeness = (
            len(expected - missing) / len(expected) if expected else 1.0
        )


def run_scenario_sharded(
    spec: ScenarioSpec, config: Optional[RunConfig] = None
) -> RunResult:
    """Run one scenario partitioned across ``config.shards`` processes.

    The parent builds the full (unrun) scenario for topology, routing,
    ground truth and the analyzer phase; each forked worker rebuilds the
    scenario as a shard view and simulates only its own nodes.  Returns a
    :class:`RunResult` whose diagnoses are byte-identical to
    :func:`run_scenario` on the same spec.
    """
    import multiprocessing

    config = config if config is not None else RunConfig()
    reason = _unsupported(config)
    if config.shards > 1 and reason is not None:
        raise ValueError(f"shards={config.shards} does not support {reason}")
    # Supervision policy resolves before anything forks: an unknown
    # environment value must be a loud startup error, never a silent
    # default applied mid-fleet.
    timeout_s = resolve_timeout(getattr(config, "shard_timeout_s", None))
    fallback = resolve_fallback()
    requested_mode = resolve_transport_mode()

    wall_start = time.perf_counter()
    scenario = spec.build()
    net = scenario.network
    plan = partition_topology(net.topology, config.shards)
    if plan.shards <= 1:
        return run_scenario(scenario, config)
    if config.retry is not None and plan.lookahead_ns >= config.retry.report_timeout_ns:
        # A retry check could fire inside the epoch that scheduled it,
        # before its checkpoint ever reaches a barrier — the capping
        # protocol cannot protect it.  The serial engine is the correct
        # executor for such a tightly-wound policy.
        return run_scenario(scenario, config)

    caches_before = global_cache_counters()
    metrics = MetricsRegistry()
    profile = StageProfile(metrics)
    kind = config.system
    retry_on = config.retry is not None

    obs: Optional[PipelineObs] = None
    if config.obs is not None and config.obs.trace:
        obs = PipelineObs(Tracer(config.obs.build_sink()), metrics)
        obs.begin_scenario(scenario.name, start_ns=0, system=kind.value)

    fork_available = "fork" in multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if fork_available else None)

    # Shared-memory rings must exist before forking (workers inherit the
    # mapping; under spawn the transport object cannot cross at all, so
    # non-fork platforms stay on the pipe path).
    transport: Optional[ShmFrameTransport] = None
    if requested_mode != "pipe" and fork_available:
        transport = build_transport(plan.shards, net.topology)
    transport_mode = requested_mode if transport is not None else "pipe"

    conns: List[Any] = []
    procs: List[Any] = []

    # Every exit path — normal return, exception unwind, SIGTERM, even
    # interpreter shutdown with workers still forked — must kill the
    # fleet and unlink the shared segment; both operations are
    # idempotent, so belt (finally) and suspenders (atexit/signal)
    # cannot double-free.
    def _emergency_cleanup() -> None:
        for proc in procs:
            if proc.is_alive():
                proc.kill()
        if transport is not None:
            transport.destroy()

    atexit.register(_emergency_cleanup)
    installed_sig = False
    old_sigterm = None
    if threading.current_thread() is threading.main_thread():

        def _on_sigterm(signum, frame):  # pragma: no cover - signal path
            raise SystemExit(143)

        try:
            old_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
            installed_sig = True
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass

    duration = scenario.duration_ns
    lookahead = max(plan.lookahead_ns, 1)
    frames_for: List[List[tuple]] = [[] for _ in range(plan.shards)]
    shm_counts_for: List[Dict[int, int]] = [{} for _ in range(plan.shards)]
    control_for: List[Optional[dict]] = [None] * plan.shards
    barrier_epochs = 0
    shm_frames = 0
    pipe_frames = 0
    shm_fallback = 0
    integrity_spills = 0
    failure: Optional[ShardWorkerError] = None
    lost_shards: Set[int] = set()
    blobs: List[Optional[Dict[str, Any]]] = [None] * plan.shards

    def _recv(shard_id: int, deadline: float):
        """Watchdog recv: bounded by ``deadline``, alive-checked.

        Raises :class:`ShardWorkerError` (or a subclass) instead of ever
        blocking forever on a dead or wedged worker.
        """
        conn = conns[shard_id]
        proc = procs[shard_id]
        while True:
            if conn.poll(0.05):
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    raise ShardCrashed(
                        shard_id,
                        f"shard {shard_id} worker died mid-protocol "
                        f"(exitcode {proc.exitcode})",
                    ) from None
                if msg[0] == "error":
                    err_kind = msg[2] if len(msg) > 2 else "worker"
                    raise ShardWorkerError(
                        shard_id,
                        f"shard {shard_id} failed:\n{msg[1]}",
                        kind=err_kind,
                    )
                return msg
            if not proc.is_alive() and not conn.poll(0):
                raise ShardCrashed(
                    shard_id,
                    f"shard {shard_id} worker died mid-protocol "
                    f"(exitcode {proc.exitcode})",
                )
            if time.monotonic() > deadline:
                raise ShardTimeout(
                    shard_id,
                    f"shard {shard_id} missed the barrier watchdog deadline "
                    f"({timeout_s:g}s)",
                )

    def _collect_degraded(exc: ShardWorkerError) -> Set[int]:
        """Degrade path: finish the survivors, record who was lost."""
        lost = {exc.shard_id}
        procs[exc.shard_id].kill()  # reaped in the outer finally
        deadline = time.monotonic() + timeout_s
        for sid in range(plan.shards):
            if sid in lost:
                continue
            try:
                conns[sid].send(("finish",))
            except (BrokenPipeError, OSError):
                lost.add(sid)
        for sid in range(plan.shards):
            if sid in lost:
                continue
            try:
                while True:
                    msg = _recv(sid, deadline)
                    if msg[0] == "final":
                        blobs[msg[1]["shard_id"]] = msg[1]
                        break
                    # A stale "done" from the epoch in flight when the
                    # fleet failed: drop it and keep draining.
            except ShardWorkerError:
                lost.add(sid)
        return lost

    try:
        for shard_id in range(plan.shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(
                    child_conn, spec, config, plan, shard_id, transport,
                    transport_mode,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        with profile.stage("simulate"):
            until = 0
            while True:
                epoch_no = barrier_epochs
                barrier_epochs += 1
                deadline = time.monotonic() + timeout_s
                for shard_id, conn in enumerate(conns):
                    conn.send(
                        (
                            "epoch",
                            epoch_no,
                            until,
                            frames_for[shard_id],
                            shm_counts_for[shard_id],
                            control_for[shard_id],
                        )
                    )
                    frames_for[shard_id] = []
                    shm_counts_for[shard_id] = {}
                    control_for[shard_id] = None
                earliest: Optional[int] = None
                min_ckpt: Optional[int] = None
                round_controls: List[Optional[dict]] = [None] * plan.shards
                for shard_id in range(plan.shards):
                    (
                        _, counts_out, pipe_out, overflow, peek, out_min,
                        next_ckpt, control_out, integrity_delta,
                    ) = _recv(shard_id, deadline)
                    if peek is not None and (earliest is None or peek < earliest):
                        earliest = peek
                    if out_min is not None and (
                        earliest is None or out_min < earliest
                    ):
                        earliest = out_min
                    if next_ckpt is not None and (
                        min_ckpt is None or next_ckpt < min_ckpt
                    ):
                        min_ckpt = next_ckpt
                    round_controls[shard_id] = control_out
                    integrity_spills += integrity_delta
                    for dest, count in counts_out.items():
                        shm_counts_for[dest][shard_id] = count
                        shm_frames += count
                    for dest, dest_frames in pipe_out.items():
                        frames_for[dest].extend(dest_frames)
                        pipe_frames += len(dest_frames)
                    shm_fallback += overflow
                if until >= duration:
                    break
                if earliest is None:
                    until_next = duration
                else:
                    until_next = min(
                        duration, max(earliest + lookahead - 1, until + 1)
                    )
                if min_ckpt is not None:
                    # Land the barrier just before the earliest pending
                    # retry check, so the check executes with the remote
                    # control view complete through check-time - 1.  A
                    # check due on the very next tick gets a one-tick
                    # micro-epoch ending exactly AT it — with concurrent
                    # victims two checks can share one grant otherwise.
                    if min_ckpt - 1 > until:
                        until_next = min(until_next, min_ckpt - 1)
                    elif min_ckpt == until + 1:
                        until_next = min(until_next, min_ckpt)
                if retry_on:
                    # Relay each shard the union of the *other* shards'
                    # control records from this round.
                    for dest in range(plan.shards):
                        merged = {"deliveries": [], "traces": [], "resets": []}
                        for sid in range(plan.shards):
                            if sid == dest:
                                continue
                            c = round_controls[sid]
                            if not c:
                                continue
                            merged["deliveries"].extend(c["deliveries"])
                            merged["traces"].extend(c["traces"])
                            merged["resets"].extend(c["resets"])
                        control_for[dest] = merged
                until = until_next
        with profile.stage("flush_pending"):
            deadline = time.monotonic() + timeout_s
            for conn in conns:
                conn.send(("finish",))
            for shard_id in range(plan.shards):
                msg = _recv(shard_id, deadline)
                blobs[msg[1]["shard_id"]] = msg[1]
    except ShardWorkerError as exc:
        failure = exc
        if fallback == FALLBACK_FAIL:
            raise RuntimeError(
                f"sharded run lost a worker and REPRO_SHARD_FALLBACK=fail: {exc}"
            ) from exc
        if fallback == FALLBACK_DEGRADE:
            lost_shards = _collect_degraded(exc)
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.kill()
                proc.join(timeout=5)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if transport is not None:
            transport.destroy()
        atexit.unregister(_emergency_cleanup)
        if installed_sig:
            signal.signal(signal.SIGTERM, old_sigterm)

    supervision: Dict[str, Any] = {"timeout_s": timeout_s, "fallback": fallback}
    if failure is not None and fallback == FALLBACK_SERIAL:
        # The parent's scenario was built but never run — rerunning it on
        # the single-process engine reproduces the sharded result
        # byte-for-byte (the same path ``shards<=1`` takes).
        result = run_scenario(scenario, config)
        supervision.update(
            {
                "fallback_ran": "serial",
                "lost_shards": [failure.shard_id],
                "failure": str(failure),
                "failure_kind": failure.kind,
            }
        )
        if result.perf is not None:
            result.perf.supervision = supervision
        return result
    if failure is not None:
        supervision.update(
            {
                "fallback_ran": "degrade",
                "lost_shards": sorted(lost_shards),
                "failure": str(failure),
                "failure_kind": failure.kind,
            }
        )

    # -- merge ---------------------------------------------------------------
    live_blobs = [blob for blob in blobs if blob is not None]
    reports: List[SwitchReport] = []
    for blob in live_blobs:
        reports.extend(SwitchReport.from_columnar(b) for b in blob["reports"])
    reports.sort(key=lambda r: (r.collect_time, r.switch))
    triggers = sorted(
        (t for blob in live_blobs for t in blob["triggers"]),
        key=lambda t: (t.time_ns, str(t.victim)),
    )
    victim_switches: Dict[FlowKey, set] = {}
    for blob in live_blobs:
        for victim, switches in blob["victim_switches"].items():
            victim_switches.setdefault(victim, set()).update(switches)
    traced_of: Optional[Callable[[FlowKey], set]] = None
    if kind.uses_polling_packets or kind.pfc_blind:
        traced_of = lambda key: set(victim_switches.get(key, ()))  # noqa: E731
    if obs is not None:
        _merge_obs(obs, live_blobs)

    merged_monitor: Optional[MergedMonitor] = None
    if config.monitor is not None and config.monitor.enabled:
        merged_monitor = MergedMonitor(
            [
                blob["monitor"]["alerts"] if blob and blob.get("monitor") else None
                for blob in blobs
            ],
            [
                blob["monitor"]["counters"] if blob and blob.get("monitor") else None
                for blob in blobs
            ],
        )

    outcomes = diagnose_victims(
        scenario,
        config,
        net,
        reports,
        triggers,
        traced_of,
        duration,
        obs=obs,
        monitor=merged_monitor,
        profile=profile,
    )
    if lost_shards:
        lost_switch_names = {
            name
            for name, sid in plan.assignment.items()
            if sid in lost_shards and name in net.switches
        }
        _degrade_outcomes(outcomes, scenario, net, traced_of, lost_switch_names)

    # -- accounting ----------------------------------------------------------
    data_pkt_hops = sum(blob["data_pkt_hops"] for blob in live_blobs)
    data_pkts_sent = sum(blob["data_pkts_sent"] for blob in live_blobs)
    polling_pkts = sum(
        blob["polling_counters"]["packets_forwarded"] for blob in live_blobs
    ) + len(triggers)
    primary = next(
        (
            o
            for o in sorted(
                (o for o in outcomes if o.trigger is not None),
                key=lambda o: o.trigger.time_ns,
            )
        ),
        None,
    )
    diagnosis_reports = primary.reports_used if primary is not None else {}
    processing = processing_overhead_bytes(kind, diagnosis_reports, data_pkt_hops)
    bandwidth = bandwidth_overhead_bytes(
        kind, polling_pkts, POLLING_PACKET_SIZE, data_pkts_sent, data_pkt_hops
    )
    causal: set = set()
    for victim in scenario.victims:
        causal |= causal_switches_of(scenario, victim.key)

    cache_stats = diff_cache_counters(caches_before, global_cache_counters())
    ecmp = {"hits": 0, "misses": 0}
    merged_caches: Dict[str, Dict[str, int]] = {}
    collector_stats: Dict[str, int] = {}
    sim_counters: Dict[str, int] = {}
    agent_counters = {
        "retransmissions": 0,
        "retries_recovered": 0,
        "retries_exhausted": 0,
        "restarts": 0,
    }
    for blob in live_blobs:
        ecmp["hits"] += blob["ecmp_cache"]["hits"]
        ecmp["misses"] += blob["ecmp_cache"]["misses"]
        for name, hm in blob["cache_counters"].items():
            slot = merged_caches.setdefault(name, {"hits": 0, "misses": 0})
            slot["hits"] += hm["hits"]
            slot["misses"] += hm["misses"]
        for name, value in blob["collector_stats"].items():
            collector_stats[name] = collector_stats.get(name, 0) + value
        for name, value in blob["sim_counters"].items():
            sim_counters[name] = sim_counters.get(name, 0) + value
        ac = blob["agent_counters"]
        agent_counters["retransmissions"] += ac["retransmissions"]
        agent_counters["retries_recovered"] += ac["retries_recovered"]
        agent_counters["retries_exhausted"] += ac["retries_exhausted"]
        # Every shard draws the shared agent-restart stream identically;
        # the counts are copies of one another, not parts of a sum.
        agent_counters["restarts"] = max(
            agent_counters["restarts"], ac["restarts"]
        )
        metrics.absorb_counters("", blob["metrics_counters"])
    cache_stats["ecmp_select"] = ecmp
    cache_stats.update(merged_caches)

    # -- chaos accounting (canonical incident merge) --------------------------
    incidents_merged, fault_stats = merge_shard_incidents(
        [blob["fault_incidents"] if blob is not None else None for blob in blobs]
    )
    fault_counters: Dict[str, int] = {}
    fault_incidents: List[str] = []
    if config.faults is not None and config.faults.enabled:
        fault_counters.update(fault_stats)
        fault_incidents = [i.describe() for i in incidents_merged]
    for name, value in (
        ("agent_retransmissions", agent_counters["retransmissions"]),
        ("agent_retries_recovered", agent_counters["retries_recovered"]),
        ("agent_retries_exhausted", agent_counters["retries_exhausted"]),
        ("agent_restarts", agent_counters["restarts"]),
        (
            "polling_packets_lost",
            sum(
                blob["polling_counters"]["packets_lost"] for blob in live_blobs
            ),
        ),
        ("dma_retries", collector_stats.get("dma_retries", 0)),
        ("dma_reads_abandoned", collector_stats.get("dma_reads_abandoned", 0)),
        ("stale_reads", collector_stats.get("stale_reads", 0)),
        ("reports_lost", collector_stats.get("reports_lost", 0)),
        ("reports_truncated", collector_stats.get("reports_truncated", 0)),
        ("reports_delayed", collector_stats.get("reports_delayed", 0)),
    ):
        if value:
            fault_counters[name] = value
    for sid in sorted(lost_shards):
        fault_incidents.append(
            f"t={duration} shard_worker_lost @ shard{sid} "
            f"({supervision.get('failure_kind', 'worker')})"
        )

    events_run = sim_counters.get("events_run", 0)
    busy = [blob["busy_s"] for blob in live_blobs]
    max_busy_s = max(busy) if busy else 0.0
    wall_s = time.perf_counter() - wall_start
    # Parent stages (simulate, flush_pending, analyzer stages) carry
    # wall_s/calls; worker stages (shard_run, shard_transport) are merged
    # across shards into summed wall_s plus max_wall_s — the slowest
    # shard, i.e. the stage's critical-path contribution.
    stages = {
        **profile.to_dict(),
        **merge_stage_dicts([blob.get("stages", {}) for blob in live_blobs]),
    }
    sim_wall_s = stages.get("simulate", {}).get("wall_s", wall_s)
    perf = PerfStats(
        scenario=scenario.name,
        wall_s=wall_s,
        events_run=events_run,
        events_per_sec=events_run / wall_s if wall_s > 0 else 0.0,
        peak_pending_events=max(
            (blob["sim_counters"].get("max_pending_entries", 0) for blob in live_blobs),
            default=0,
        ),
        events_purged=sim_counters.get("events_purged", 0),
        compactions=sim_counters.get("compactions", 0),
        caches=cache_stats,
        faults=fault_counters,
        stages=stages,
        shards=plan.shards,
        barrier_epochs=barrier_epochs,
        barrier_stall_s=max(sim_wall_s - max_busy_s, 0.0),
        aggregate_events_per_sec=(
            events_run / max_busy_s if max_busy_s > 0 else 0.0
        ),
        transport={
            "mode": transport_mode,
            "requested": requested_mode,
            "capacity": transport.capacity if transport is not None else 0,
            "shm_frames": shm_frames,
            "pipe_frames": pipe_frames,
            "shm_fallback_frames": shm_fallback,
            "integrity_spills": integrity_spills,
        },
        supervision=supervision,
    )

    metrics.absorb_counters("sim", sim_counters)
    metrics.absorb_counters("cache", cache_stats)
    metrics.absorb_counters("collection", collector_stats)
    metrics.absorb_counters(
        "agent", {"triggers": len(triggers), **agent_counters}
    )
    if traced_of is not None:
        polling_totals = {"packets_forwarded": 0, "packets_suppressed": 0, "packets_lost": 0}
        for blob in live_blobs:
            for name in polling_totals:
                polling_totals[name] += blob["polling_counters"][name]
        metrics.absorb_counters("polling", polling_totals)
    if fault_counters:
        metrics.absorb_counters("faults", fault_counters)
    if merged_monitor is not None:
        metrics.absorb_counters("monitor", merged_monitor.counters())
    metrics.gauge("run.wall_s").set(perf.wall_s)
    metrics.gauge("run.sim_ns").set(float(duration))

    if obs is not None:
        obs.end_scenario(duration)

    return RunResult(
        scenario=scenario,
        config=config,
        outcomes=outcomes,
        collected_switches=sorted({r.switch for r in reports}),
        causal_switches=causal,
        processing_bytes=processing,
        bandwidth_bytes=bandwidth,
        polling_packets=polling_pkts,
        collections=collector_stats.get("collections", 0),
        events_run=events_run,
        data_pkt_hops=data_pkt_hops,
        perf=perf,
        fault_counters=fault_counters,
        fault_incidents=fault_incidents,
        metrics=metrics,
        obs=obs,
        monitor=merged_monitor,
    )
