"""Sharded scenario execution: one fabric, many worker processes.

:func:`run_scenario_sharded` partitions a scenario's topology into pods
(:func:`repro.topology.partition.partition_topology`), forks one worker
per shard, and advances all shards in lockstep epochs under a
conservative-lookahead barrier:

- every worker owns the switches and hosts of its shard and simulates
  them with a full private pipeline (telemetry deployment, collector,
  polling engine, detection agent);
- frames addressed to a remote node are flattened into the shard's
  outbox (:class:`repro.sim.network.Network`) instead of its event loop;
- at each barrier the orchestrator grants a new epoch horizon
  ``T' = min(duration, m + L - 1)`` where ``m`` is the earliest pending
  work anywhere (local events or in-flight frames) and ``L`` is the
  minimum cut-link latency.  No frame sent inside an epoch can arrive
  within it (delivery delay >= link latency + serialization), so workers
  never see a remote frame late.

Cross-shard frames travel over one of two transports
(``REPRO_SHARD_TRANSPORT`` selects: ``auto``/``pipe``/``shm``): large
per-destination batches ride fixed-width int64 rows in parity-split
``multiprocessing.shared_memory`` rings (:mod:`repro.experiments
.shmring`) with only row *counts* crossing the barrier pipes, while
small batches, codec misses and ring overflows ride the pickled pipe
path unchanged.  Each worker routes its own outbox by the shard plan;
the orchestrator just relays counts and leftovers.

Determinism: deliveries are ordered by the engine's canonical
``(send time, trigger schedule time, source, per-source seq)`` key in a
per-timestamp delivery band, never by schedule-call order — so merging
frames from another process reproduces the exact per-node event order of
the single-process engine, and the merged diagnosis (and canonicalized
obs trace, see :mod:`repro.obs.canon`) is byte-identical to ``shards=1``.

The analyzer half (report selection through verdict) runs once, in the
parent, over the merged worker state — the same
:func:`repro.experiments.runner.diagnose_victims` the in-process runner
uses.

Not supported with ``shards > 1`` (raises ``ValueError``): fault
injection/retry (the injector's RNG stream is global), the continuous
fabric monitor, full-network collection baselines, and per-packet sim
tracing — each couples shards through state the barrier protocol does
not ship.
"""

from __future__ import annotations

import gc
import os
import time
from dataclasses import asdict
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..baselines.systems import (
    bandwidth_overhead_bytes,
    processing_overhead_bytes,
)
from ..collection.agent import AgentConfig, DetectionAgent
from ..collection.collector import TelemetryCollector
from ..collection.polling import PollingConfig, PollingEngine
from ..obs import (
    Event,
    MetricsRegistry,
    PipelineObs,
    Span,
    StageProfile,
    Tracer,
    merge_stage_dicts,
)
from ..obs.trace import NullSink
from ..sim.packet import POLLING_PACKET_SIZE, FlowKey
from ..sim.shard import shard_build_context
from ..telemetry.hawkeye import HawkeyeDeployment, TelemetryConfig
from ..telemetry.snapshot import SwitchReport
from ..topology.partition import ShardPlan, partition_topology
from .perfstats import PerfStats, diff_cache_counters, global_cache_counters
from .shmring import SHM_MIN_FRAMES, ShmFrameTransport, build_transport
from .runner import (
    RunConfig,
    RunResult,
    ScenarioSpec,
    causal_switches_of,
    diagnose_victims,
    run_scenario,
)


class ShardPipelineObs(PipelineObs):
    """Worker-side observability that remembers what it could not anchor.

    A worker has no scenario span (the parent owns the root) and only its
    own victims' diagnosis/round spans; records for a *remote* victim fall
    back to no parent.  Each fallback is noted as ``(record id, victim)``
    so the merge step can re-anchor the record under the victim's round
    span — reproducing exactly the parent the single-process
    :meth:`PipelineObs._anchor` would have chosen.
    """

    def __init__(self, tracer: Tracer, metrics: MetricsRegistry) -> None:
        super().__init__(tracer, metrics)
        self.fallbacks: List[Tuple[int, str]] = []

    def _note(self, victim) -> None:
        if (
            victim is not None
            and self._round.get(victim) is None
            and self._diagnosis.get(victim) is None
        ):
            # The next record created gets id ``tracer._next_id``.
            self.fallbacks.append((self.tracer._next_id, str(victim)))

    def on_polling_mirror(self, switch, victim, time_ns):
        self._note(victim)
        super().on_polling_mirror(switch, victim, time_ns)

    def on_polling_forward(self, switch, victim, time_ns, fanout):
        self._note(victim)
        super().on_polling_forward(switch, victim, time_ns, fanout)

    def on_polling_suppressed(self, switch, victim, time_ns, kind):
        self._note(victim)
        super().on_polling_suppressed(switch, victim, time_ns, kind)

    def on_polling_lost(self, switch, victim, time_ns):
        self._note(victim)
        super().on_polling_lost(switch, victim, time_ns)

    def on_collection_shared(self, switch, victim, time_ns):
        self._note(victim)
        super().on_collection_shared(switch, victim, time_ns)

    def on_epoch_read(self, switch, victim, start_ns, end_ns, epochs, faults=()):
        self._note(victim)
        super().on_epoch_read(switch, victim, start_ns, end_ns, epochs, faults)

    def on_report(self, fate, switch, victim, time_ns, faults=(), delay_ns=0):
        self._note(victim)
        super().on_report(fate, switch, victim, time_ns, faults, delay_ns)


def _unsupported(config: RunConfig) -> Optional[str]:
    if config.faults is not None:
        return "fault injection (global injector RNG stream)"
    if config.retry is not None:
        return "polling retry/backoff (depends on fault injection)"
    if config.monitor is not None and config.monitor.enabled:
        return "continuous fabric monitoring (fabric-global alert state)"
    if config.obs is not None and config.obs.sim_events:
        return "per-packet sim tracing (per-shard record floods)"
    if config.system.collects_everywhere:
        return "full-network collection baselines (global trigger fan-out)"
    return None


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


def _shard_worker_main(
    conn,
    spec: ScenarioSpec,
    config: RunConfig,
    plan: ShardPlan,
    shard_id: int,
    transport: Optional[ShmFrameTransport],
    transport_mode: str,
) -> None:
    """One shard's process: build the shard view, obey epoch barriers.

    ``transport`` is the parent-created shared-memory ring set, inherited
    through fork (never pickled); ``transport_mode`` is the effective
    mode — ``"shm"`` forces every routable batch onto the rings,
    ``"auto"`` applies the :data:`~repro.experiments.shmring
    .SHM_MIN_FRAMES` threshold per batch, ``"pipe"`` (or a ``None``
    transport) keeps the legacy pickled path.
    """
    try:
        with shard_build_context(plan.assignment, shard_id):
            scenario = spec.build()
        net = scenario.network
        metrics = MetricsRegistry()
        obs: Optional[ShardPipelineObs] = None
        if config.obs is not None and config.obs.trace:
            obs = ShardPipelineObs(Tracer(NullSink()), metrics)
        deployment = HawkeyeDeployment(
            net,
            TelemetryConfig(scheme=config.scheme(), flow_slots=config.flow_slots),
        )
        collector = TelemetryCollector(deployment, obs=obs)
        kind = config.system
        engine: Optional[PollingEngine] = None
        if kind.uses_polling_packets or kind.pfc_blind:
            engine = PollingEngine(
                net,
                deployment,
                PollingConfig(
                    trace_pfc=kind.traces_pfc, use_meters=config.use_meters
                ),
                obs=obs,
            )
            engine.add_mirror_listener(collector.on_polling_mirror)
        agent = DetectionAgent(
            net,
            AgentConfig(threshold_multiplier=config.threshold_multiplier),
            obs=obs,
        )

        duration = scenario.duration_ns
        node_shard = plan.assignment
        profile = StageProfile()
        # Construction allocated the long-lived object graph; what follows
        # is steady-state churn that reference counting alone reclaims, so
        # cycle-collector sweeps are pure overhead on the busy path.
        gc.collect()
        gc.disable()

        busy_s = 0.0
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "epoch":
                epoch_no, until, frames, shm_counts = msg[1:5]
                if shm_counts:
                    with profile.stage("shard_transport"):
                        for src, count in shm_counts.items():
                            frames.extend(
                                transport.read_epoch(
                                    src, shard_id, epoch_no - 1, count
                                )
                            )
                # CPU time, not wall time: on a machine with fewer cores
                # than shards the workers time-share, and wall time would
                # charge each shard for its siblings' slices.  With one
                # core per shard the two are equal.
                t0 = time.process_time()
                with profile.stage("shard_run"):
                    net.deliver_wire_batch(frames)
                    net.run(until)
                busy_s += time.process_time() - t0
                outbox = net.outbox
                net.outbox = []
                # Route the outbox here (not in the parent): per-dest
                # batches go to the rings when eligible, the rest rides
                # the pipe.  ``out_min`` covers *every* frame — arrivals
                # past the horizon still bound the next epoch grant.
                out_min: Optional[int] = None
                shm_counts_out: Dict[int, int] = {}
                pipe_out: Dict[int, List[tuple]] = {}
                overflow = 0
                if outbox:
                    with profile.stage("shard_transport"):
                        by_dest: Dict[int, List[tuple]] = {}
                        for frame in outbox:
                            arrival = frame[0]
                            if out_min is None or arrival < out_min:
                                out_min = arrival
                            if arrival <= duration:
                                by_dest.setdefault(
                                    node_shard[frame[1]], []
                                ).append(frame)
                        for dest, dest_frames in by_dest.items():
                            use_shm = transport is not None and (
                                transport_mode == "shm"
                                or len(dest_frames) >= SHM_MIN_FRAMES
                            )
                            if use_shm:
                                written, leftover = transport.write_epoch(
                                    shard_id, dest, epoch_no, dest_frames
                                )
                                if written:
                                    shm_counts_out[dest] = written
                                if leftover:
                                    overflow += len(leftover)
                                    pipe_out[dest] = leftover
                            else:
                                pipe_out[dest] = dest_frames
                conn.send(
                    (
                        "done",
                        shm_counts_out,
                        pipe_out,
                        overflow,
                        net.sim.peek_next_time(),
                        out_min,
                    )
                )
            elif op == "finish":
                collector.flush_pending(net.sim.now)
                conn.send(
                    (
                        "final",
                        _final_blob(
                            net, collector, engine, agent, deployment, obs,
                            metrics, busy_s, profile,
                        ),
                    )
                )
                conn.close()
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown shard op {op!r}")
    except Exception:  # pragma: no cover - shipped to parent for re-raise
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


def _final_blob(
    net, collector, engine, agent, deployment, obs, metrics, busy_s, profile
) -> Dict[str, Any]:
    """Everything the parent needs to merge one shard's finished state."""
    blob: Dict[str, Any] = {
        "shard_id": net.shard_id,
        "reports": [r.to_columnar() for r in collector.reports],
        "triggers": list(agent.triggers),
        "victim_switches": (
            {k: set(v) for k, v in engine._victim_switches.items()}
            if engine is not None
            else {}
        ),
        "collector_stats": asdict(collector.stats),
        "polling_counters": {
            "packets_forwarded": engine.polling_packets_forwarded if engine else 0,
            "packets_suppressed": engine.polling_packets_suppressed if engine else 0,
            "packets_lost": engine.polling_packets_lost if engine else 0,
        },
        "sim_counters": net.sim.counters(),
        "data_pkt_hops": sum(sw.stats.data_pkts for sw in net.switches.values()),
        "data_pkts_sent": sum(f.packets_sent for f in net.flows),
        "cache_counters": {
            name: {"hits": h, "misses": m}
            for name, (h, m) in deployment.cache_counters().items()
        },
        "ecmp_cache": {
            "hits": net.routing.select_cache_hits,
            "misses": net.routing.select_cache_misses,
        },
        "metrics_counters": {
            name: counter.value for name, counter in metrics._counters.items()
        },
        "busy_s": busy_s,
        "stages": profile.to_dict(),
        "trigger_count": len(agent.triggers),
    }
    if obs is not None:
        tracer = obs.tracer
        blob["obs"] = {
            "spans": [s.to_record() for s in tracer.spans],
            "events": [e.to_record() for e in tracer.events],
            "open_ids": [s.span_id for s in tracer.open_spans()],
            "diag_spans": {v: s.span_id for v, s in obs._diagnosis.items()},
            "round_spans": {v: s.span_id for v, s in obs._round.items()},
            "round_no": dict(obs._round_no),
            "fallbacks": list(obs.fallbacks),
            "next_id": tracer._next_id,
        }
    return blob


# ---------------------------------------------------------------------------
# Orchestrator
# ---------------------------------------------------------------------------


def _merge_obs(
    parent_obs: PipelineObs, blobs: List[Dict[str, Any]]
) -> None:
    """Fold worker trace records into the parent tracer, re-anchored.

    Worker record ids are offset into one global sequence; spans and
    events that a worker could only anchor to its (absent) root are
    re-parented under the merged scenario span, and the victim-scoped
    fallbacks noted by :class:`ShardPipelineObs` are re-anchored under
    the victim's polling round (or diagnosis) span open at their
    timestamp — the parent single-process ``_anchor`` would have chosen.
    Open diagnosis/round spans are revived into the parent's bookkeeping
    so the analyzer phase closes them exactly as ``run_scenario`` does.
    """
    tracer = parent_obs.tracer
    scenario_span = parent_obs.scenario_span
    assert scenario_span is not None
    next_id = tracer._next_id
    spans_by_id: Dict[int, Span] = {scenario_span.span_id: scenario_span}
    events_by_id: Dict[int, Event] = {}
    fallbacks: List[Tuple[int, str]] = []

    for blob in blobs:
        payload = blob.get("obs")
        if payload is None:
            continue
        offset = next_id
        next_id += payload["next_id"]
        open_ids = set(payload["open_ids"])
        for rec in payload["spans"]:
            parent_id = rec["parent"]
            span = Span(
                rec["id"] + offset,
                parent_id + offset if parent_id is not None else scenario_span.span_id,
                rec["kind"],
                rec["name"],
                rec["start_ns"],
                dict(rec["attrs"]),
            )
            if rec["id"] not in open_ids:
                span.end_ns = rec["end_ns"]
            spans_by_id[span.span_id] = span
            tracer.spans.append(span)
            if rec["id"] in open_ids:
                tracer._open[span.span_id] = span
        for rec in payload["events"]:
            span_id = rec["span"]
            event = Event(
                rec["id"] + offset,
                span_id + offset if span_id is not None else scenario_span.span_id,
                rec["kind"],
                rec["name"],
                rec["time_ns"],
                dict(rec["attrs"]),
            )
            events_by_id[event.event_id] = event
            tracer.events.append(event)
        fallbacks.extend((rid + offset, vstr) for rid, vstr in payload["fallbacks"])
        for victim, span_id in payload["diag_spans"].items():
            parent_obs._diagnosis[victim] = spans_by_id[span_id + offset]
        for victim, span_id in payload["round_spans"].items():
            parent_obs._round[victim] = spans_by_id[span_id + offset]
        for victim, number in payload["round_no"].items():
            parent_obs._round_no[victim] = number

    tracer._next_id = next_id
    tracer.spans.sort(key=lambda s: s.span_id)
    tracer.events.sort(key=lambda e: e.event_id)

    # Victim name -> its diagnosis span and (start-ordered) round spans.
    diag_of: Dict[str, Span] = {}
    rounds_of: Dict[str, List[Span]] = {}
    for span in tracer.spans:
        if span.kind == "diagnosis":
            diag_of[span.attrs.get("victim", span.name)] = span
    for span in tracer.spans:
        if span.kind == "polling_round":
            parent = spans_by_id.get(span.parent_id)
            if parent is not None and parent.kind == "diagnosis":
                victim = parent.attrs.get("victim", parent.name)
                rounds_of.setdefault(victim, []).append(span)
    for spans in rounds_of.values():
        spans.sort(key=lambda s: (s.start_ns, s.span_id))

    for rid, victim in fallbacks:
        span = spans_by_id.get(rid)
        event = events_by_id.get(rid)
        at_ns = span.start_ns if span is not None else event.time_ns
        candidates = [
            r for r in rounds_of.get(victim, []) if r.start_ns <= at_ns
        ]
        target: Optional[Span] = candidates[-1] if candidates else None
        if target is None:
            diagnosis = diag_of.get(victim)
            if diagnosis is not None and diagnosis.start_ns <= at_ns:
                target = diagnosis
        if target is None:
            target = scenario_span
        if span is not None:
            span.parent_id = target.span_id
        else:
            event.span_id = target.span_id


def run_scenario_sharded(
    spec: ScenarioSpec, config: Optional[RunConfig] = None
) -> RunResult:
    """Run one scenario partitioned across ``config.shards`` processes.

    The parent builds the full (unrun) scenario for topology, routing,
    ground truth and the analyzer phase; each forked worker rebuilds the
    scenario as a shard view and simulates only its own nodes.  Returns a
    :class:`RunResult` whose diagnoses are byte-identical to
    :func:`run_scenario` on the same spec.
    """
    import multiprocessing

    config = config if config is not None else RunConfig()
    reason = _unsupported(config)
    if config.shards > 1 and reason is not None:
        raise ValueError(f"shards={config.shards} does not support {reason}")

    wall_start = time.perf_counter()
    scenario = spec.build()
    net = scenario.network
    plan = partition_topology(net.topology, config.shards)
    if plan.shards <= 1:
        return run_scenario(scenario, config)

    caches_before = global_cache_counters()
    metrics = MetricsRegistry()
    profile = StageProfile(metrics)
    kind = config.system

    obs: Optional[PipelineObs] = None
    if config.obs is not None and config.obs.trace:
        obs = PipelineObs(Tracer(config.obs.build_sink()), metrics)
        obs.begin_scenario(scenario.name, start_ns=0, system=kind.value)

    fork_available = "fork" in multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if fork_available else None)

    # Shared-memory rings must exist before forking (workers inherit the
    # mapping; under spawn the transport object cannot cross at all, so
    # non-fork platforms stay on the pipe path).
    requested_mode = os.environ.get("REPRO_SHARD_TRANSPORT", "auto")
    if requested_mode not in ("auto", "pipe", "shm"):
        requested_mode = "auto"
    transport: Optional[ShmFrameTransport] = None
    if requested_mode != "pipe" and fork_available:
        transport = build_transport(plan.shards, net.topology)
    transport_mode = requested_mode if transport is not None else "pipe"

    conns = []
    procs = []
    for shard_id in range(plan.shards):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, spec, config, plan, shard_id, transport, transport_mode),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        conns.append(parent_conn)
        procs.append(proc)

    duration = scenario.duration_ns
    lookahead = max(plan.lookahead_ns, 1)
    frames_for: List[List[tuple]] = [[] for _ in range(plan.shards)]
    shm_counts_for: List[Dict[int, int]] = [{} for _ in range(plan.shards)]
    barrier_epochs = 0
    max_busy_s = 0.0
    shm_frames = 0
    pipe_frames = 0
    shm_fallback = 0

    def _recv(shard_id: int):
        msg = conns[shard_id].recv()
        if msg[0] == "error":
            for proc in procs:
                proc.terminate()
            raise RuntimeError(f"shard {shard_id} failed:\n{msg[1]}")
        return msg

    try:
        with profile.stage("simulate"):
            until = 0
            while True:
                epoch_no = barrier_epochs
                barrier_epochs += 1
                for shard_id, conn in enumerate(conns):
                    conn.send(
                        (
                            "epoch",
                            epoch_no,
                            until,
                            frames_for[shard_id],
                            shm_counts_for[shard_id],
                        )
                    )
                    frames_for[shard_id] = []
                    shm_counts_for[shard_id] = {}
                earliest: Optional[int] = None
                for shard_id in range(plan.shards):
                    _, counts_out, pipe_out, overflow, peek, out_min = _recv(
                        shard_id
                    )
                    if peek is not None and (earliest is None or peek < earliest):
                        earliest = peek
                    if out_min is not None and (
                        earliest is None or out_min < earliest
                    ):
                        earliest = out_min
                    for dest, count in counts_out.items():
                        shm_counts_for[dest][shard_id] = count
                        shm_frames += count
                    for dest, dest_frames in pipe_out.items():
                        frames_for[dest].extend(dest_frames)
                        pipe_frames += len(dest_frames)
                    shm_fallback += overflow
                if until >= duration:
                    break
                if earliest is None:
                    until = duration
                else:
                    until = min(duration, max(earliest + lookahead - 1, until + 1))
        blobs = [None] * plan.shards
        with profile.stage("flush_pending"):
            for conn in conns:
                conn.send(("finish",))
            for shard_id in range(plan.shards):
                msg = _recv(shard_id)
                blobs[msg[1]["shard_id"]] = msg[1]
    finally:
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.terminate()
        if transport is not None:
            transport.destroy()

    # -- merge ---------------------------------------------------------------
    reports: List[SwitchReport] = []
    for blob in blobs:
        reports.extend(SwitchReport.from_columnar(b) for b in blob["reports"])
    reports.sort(key=lambda r: (r.collect_time, r.switch))
    triggers = sorted(
        (t for blob in blobs for t in blob["triggers"]),
        key=lambda t: (t.time_ns, str(t.victim)),
    )
    victim_switches: Dict[FlowKey, set] = {}
    for blob in blobs:
        for victim, switches in blob["victim_switches"].items():
            victim_switches.setdefault(victim, set()).update(switches)
    traced_of: Optional[Callable[[FlowKey], set]] = None
    if kind.uses_polling_packets or kind.pfc_blind:
        traced_of = lambda key: set(victim_switches.get(key, ()))  # noqa: E731
    if obs is not None:
        _merge_obs(obs, blobs)

    outcomes = diagnose_victims(
        scenario,
        config,
        net,
        reports,
        triggers,
        traced_of,
        duration,
        obs=obs,
        monitor=None,
        profile=profile,
    )

    # -- accounting ----------------------------------------------------------
    data_pkt_hops = sum(blob["data_pkt_hops"] for blob in blobs)
    data_pkts_sent = sum(blob["data_pkts_sent"] for blob in blobs)
    polling_pkts = sum(
        blob["polling_counters"]["packets_forwarded"] for blob in blobs
    ) + len(triggers)
    primary = next(
        (
            o
            for o in sorted(
                (o for o in outcomes if o.trigger is not None),
                key=lambda o: o.trigger.time_ns,
            )
        ),
        None,
    )
    diagnosis_reports = primary.reports_used if primary is not None else {}
    processing = processing_overhead_bytes(kind, diagnosis_reports, data_pkt_hops)
    bandwidth = bandwidth_overhead_bytes(
        kind, polling_pkts, POLLING_PACKET_SIZE, data_pkts_sent, data_pkt_hops
    )
    causal: set = set()
    for victim in scenario.victims:
        causal |= causal_switches_of(scenario, victim.key)

    cache_stats = diff_cache_counters(caches_before, global_cache_counters())
    ecmp = {"hits": 0, "misses": 0}
    merged_caches: Dict[str, Dict[str, int]] = {}
    collector_stats: Dict[str, int] = {}
    sim_counters: Dict[str, int] = {}
    for blob in blobs:
        ecmp["hits"] += blob["ecmp_cache"]["hits"]
        ecmp["misses"] += blob["ecmp_cache"]["misses"]
        for name, hm in blob["cache_counters"].items():
            slot = merged_caches.setdefault(name, {"hits": 0, "misses": 0})
            slot["hits"] += hm["hits"]
            slot["misses"] += hm["misses"]
        for name, value in blob["collector_stats"].items():
            collector_stats[name] = collector_stats.get(name, 0) + value
        for name, value in blob["sim_counters"].items():
            sim_counters[name] = sim_counters.get(name, 0) + value
        metrics.absorb_counters("", blob["metrics_counters"])
    cache_stats["ecmp_select"] = ecmp
    cache_stats.update(merged_caches)

    events_run = sim_counters.get("events_run", 0)
    busy = [blob["busy_s"] for blob in blobs]
    max_busy_s = max(busy) if busy else 0.0
    wall_s = time.perf_counter() - wall_start
    # Parent stages (simulate, flush_pending, analyzer stages) carry
    # wall_s/calls; worker stages (shard_run, shard_transport) are merged
    # across shards into summed wall_s plus max_wall_s — the slowest
    # shard, i.e. the stage's critical-path contribution.
    stages = {
        **profile.to_dict(),
        **merge_stage_dicts([blob.get("stages", {}) for blob in blobs]),
    }
    sim_wall_s = stages.get("simulate", {}).get("wall_s", wall_s)
    perf = PerfStats(
        scenario=scenario.name,
        wall_s=wall_s,
        events_run=events_run,
        events_per_sec=events_run / wall_s if wall_s > 0 else 0.0,
        peak_pending_events=max(
            blob["sim_counters"].get("max_pending_entries", 0) for blob in blobs
        ),
        events_purged=sim_counters.get("events_purged", 0),
        compactions=sim_counters.get("compactions", 0),
        caches=cache_stats,
        stages=stages,
        shards=plan.shards,
        barrier_epochs=barrier_epochs,
        barrier_stall_s=max(sim_wall_s - max_busy_s, 0.0),
        aggregate_events_per_sec=(
            events_run / max_busy_s if max_busy_s > 0 else 0.0
        ),
        transport={
            "mode": transport_mode,
            "requested": requested_mode,
            "capacity": transport.capacity if transport is not None else 0,
            "shm_frames": shm_frames,
            "pipe_frames": pipe_frames,
            "shm_fallback_frames": shm_fallback,
        },
    )

    metrics.absorb_counters("sim", sim_counters)
    metrics.absorb_counters("cache", cache_stats)
    metrics.absorb_counters("collection", collector_stats)
    metrics.absorb_counters(
        "agent",
        {
            "triggers": len(triggers),
            "retransmissions": 0,
            "retries_recovered": 0,
            "retries_exhausted": 0,
            "restarts": 0,
        },
    )
    if traced_of is not None:
        polling_totals = {"packets_forwarded": 0, "packets_suppressed": 0, "packets_lost": 0}
        for blob in blobs:
            for name in polling_totals:
                polling_totals[name] += blob["polling_counters"][name]
        metrics.absorb_counters("polling", polling_totals)
    metrics.gauge("run.wall_s").set(perf.wall_s)
    metrics.gauge("run.sim_ns").set(float(duration))

    if obs is not None:
        obs.end_scenario(duration)

    return RunResult(
        scenario=scenario,
        config=config,
        outcomes=outcomes,
        collected_switches=sorted({r.switch for r in reports}),
        causal_switches=causal,
        processing_bytes=processing,
        bandwidth_bytes=bandwidth,
        polling_packets=polling_pkts,
        collections=collector_stats.get("collections", 0),
        events_run=events_run,
        data_pkt_hops=data_pkt_hops,
        perf=perf,
        metrics=metrics,
        obs=obs,
        monitor=None,
    )
