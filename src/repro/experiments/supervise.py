"""Worker supervision policy for the multiprocess planes.

The sharded simulator (:mod:`repro.experiments.shardrun`) and the
analyzer pool (:mod:`repro.experiments.analyzerpool`) both fork workers
that can hang or die (OOM kill, SIGKILL, a crashed native extension).
This module centralizes the knobs that decide what the parent does about
it:

* ``--shard-timeout`` / ``REPRO_SHARD_TIMEOUT`` — how long the parent's
  barrier watchdog waits for any single worker reply before declaring
  the worker lost (seconds, strictly positive float; default 60).
* ``REPRO_SHARD_FALLBACK`` — what happens after a loss:
  ``serial`` (default) terminates every worker, cleans up the shared
  segment, and reruns the scenario once on the deterministic
  single-process engine — byte-identical output, just slower;
  ``degrade`` keeps the survivors' partial results and surfaces a
  degraded diagnosis whose completeness reflects the lost pods;
  ``fail`` raises.

Unknown environment values are a loud startup error, not a silent
default: a chaos harness that *thinks* it is testing the degrade path
must never quietly run the serial one.
"""

from __future__ import annotations

import os
from typing import Optional

DEFAULT_SHARD_TIMEOUT_S = 60.0

FALLBACK_SERIAL = "serial"
FALLBACK_DEGRADE = "degrade"
FALLBACK_FAIL = "fail"
FALLBACK_MODES = (FALLBACK_SERIAL, FALLBACK_DEGRADE, FALLBACK_FAIL)

TRANSPORT_MODES = ("auto", "shm", "pipe")


class ShardWorkerError(RuntimeError):
    """A shard/analyzer worker failed; the watchdog decides what's next.

    ``kind`` distinguishes worker faults (crash, unhandled exception)
    from transport faults (a torn/stale shm ring detected at drain time)
    — both take the same fallback path but are accounted separately.
    """

    def __init__(self, shard_id: int, message: str, kind: str = "worker") -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.kind = kind


class ShardTimeout(ShardWorkerError):
    """A worker missed the barrier deadline (hung, or silently wedged)."""


class ShardCrashed(ShardWorkerError):
    """A worker process died (nonzero exit, SIGKILL) mid-protocol."""


def resolve_timeout(config_timeout_s: Optional[float] = None) -> float:
    """The barrier watchdog deadline in seconds.

    Precedence: explicit config (``--shard-timeout``) over the
    ``REPRO_SHARD_TIMEOUT`` environment, over the default.  Rejects
    non-positive and non-numeric values loudly.
    """
    if config_timeout_s is not None:
        if config_timeout_s <= 0:
            raise ValueError(
                f"shard timeout must be a positive number of seconds, "
                f"got {config_timeout_s!r}"
            )
        return float(config_timeout_s)
    raw = os.environ.get("REPRO_SHARD_TIMEOUT")
    if raw is None or raw == "":
        return DEFAULT_SHARD_TIMEOUT_S
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SHARD_TIMEOUT={raw!r} is not a number (seconds expected)"
        ) from None
    if value <= 0:
        raise ValueError(
            f"REPRO_SHARD_TIMEOUT={raw!r} must be a positive number of seconds"
        )
    return value


def resolve_fallback() -> str:
    """The configured reaction to a lost worker (``REPRO_SHARD_FALLBACK``)."""
    raw = os.environ.get("REPRO_SHARD_FALLBACK")
    if raw is None or raw == "":
        return FALLBACK_SERIAL
    if raw not in FALLBACK_MODES:
        raise ValueError(
            f"unknown REPRO_SHARD_FALLBACK={raw!r} "
            f"(expected one of: {', '.join(FALLBACK_MODES)})"
        )
    return raw


def resolve_transport_mode() -> str:
    """The requested cross-shard transport (``REPRO_SHARD_TRANSPORT``).

    Unknown values are rejected at startup — a typo like ``shmem`` must
    not silently behave like ``auto``.
    """
    raw = os.environ.get("REPRO_SHARD_TRANSPORT")
    if raw is None or raw == "":
        return "auto"
    if raw not in TRANSPORT_MODES:
        raise ValueError(
            f"unknown REPRO_SHARD_TRANSPORT={raw!r} "
            f"(expected one of: {', '.join(TRANSPORT_MODES)})"
        )
    return raw
