"""Shared-memory frame rings for the sharded simulator's barrier transport.

The PR 6 barrier ships every cross-shard frame through a pickled
``multiprocessing`` pipe: each WireFrame (a nest of tuples holding node
names, IPs and packet fields) is pickled by the worker, copied through
the kernel twice, and unpickled by its peer — per frame, per epoch.
Frames are fixed-width records over a small closed vocabulary (the
topology's node names and host IPs, the packet-type enum), so the
exchange maps naturally onto flat int64 rows in one
``multiprocessing.shared_memory`` segment instead.

Layout: one *ring* per directed shard pair, each ring split into two
halves selected by barrier-epoch parity.  Shard ``i`` writes its epoch-e
frames for shard ``j`` into half ``e % 2`` of ring ``(i, j)`` while ``j``
is still reading ``i``'s epoch-(e-1) frames from the other half — the
lockstep barrier guarantees nobody is two epochs ahead, so the parity
split makes the rings race-free without locks.  Row counts travel in the
(tiny) barrier pipe messages; the rows themselves never touch a pipe.

Encoding is intentionally numpy-free (``array('q')`` + ``memoryview
.cast('q')``) so the scalar-fallback CI leg exercises the same code.
Frames the codec cannot represent (an interned id missing, a field
outside int64) fall back to the pipe per-frame; delivery order is
unaffected either way because the receiving engine orders deliveries by
the canonical ``(send_time, exec_sched, src, seq)`` key, not by
transport arrival order.

Crash safety: every row is bracketed by a *stamp* word (first) and an
identical *seal* word (last), both encoding ``(epoch_no + 1, row
index)``.  A reader that finds a mismatched stamp — a stale row from an
earlier epoch after a writer died mid-batch, or a torn row from a writer
killed mid-copy — raises :class:`ShmRingIntegrityError` instead of
decoding garbage into the simulation.  Writers additionally read each
row back after the copy; a row that does not verify (the segment went
bad under us) is spilled to the pickled-pipe path per frame and counted
in :attr:`ShmFrameTransport.integrity_spills`, so a flaky segment
degrades to the slow path rather than corrupting frames.

Lifecycle: the parent creates the segment *before* forking workers, so
only the parent ever registers it with the resource tracker; workers
inherit the mapping and the parent alone closes + unlinks it.  Both
:meth:`close_local` and :meth:`destroy` are idempotent so the parent can
register them with ``atexit`` *and* call them from ``finally`` / signal
handlers without double-free errors.
"""

from __future__ import annotations

from array import array
from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.packet import PacketType

# Words per encoded frame payload: 7 header words (arrival, target node,
# target port, 4-field delivery key) + 20 wire words (packet fields, flow
# 5-tuple with presence flag).
PAYLOAD_WORDS = 27

# Payload plus the integrity stamp (word 0) and seal (last word).
ROW_WORDS = PAYLOAD_WORDS + 2

# The stamp packs (epoch_no + 1) above the row index, so the row index
# must fit in this many bits — which also bounds ring capacity.
_STAMP_INDEX_BITS = 20
MAX_CAPACITY = 1 << _STAMP_INDEX_BITS

# Rows per ring half.  A ring overflow is not an error — excess frames
# ride the pipe — but it forfeits the fast path, so size for the largest
# observed per-(pair, epoch) burst with ample headroom.
DEFAULT_CAPACITY = 1024

# In "auto" mode batches smaller than this stay on the pipe: below it the
# per-batch bookkeeping costs more than pickling a handful of frames.
SHM_MIN_FRAMES = 8


class ShmRingIntegrityError(RuntimeError):
    """A drained ring row failed its stamp/seal check (torn or stale)."""


def _row_stamp(epoch_no: int, index: int) -> int:
    # +1 so epoch 0 never stamps as 0 — a zeroed (never-written) row must
    # not validate for any epoch.
    return ((epoch_no + 1) << _STAMP_INDEX_BITS) | index


class ShmFrameTransport:
    """One shared segment holding the parity-split frame rings.

    Create in the parent before forking; workers use the inherited object
    directly (`write_epoch` / `read_epoch`).  Only the parent may call
    :meth:`destroy`.
    """

    def __init__(
        self,
        shards: int,
        node_names: Iterable[str],
        ips: Iterable[str],
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity >= MAX_CAPACITY:
            raise ValueError(
                f"ring capacity {capacity} exceeds the stamp's "
                f"{_STAMP_INDEX_BITS}-bit row-index space ({MAX_CAPACITY - 1})"
            )
        self.shards = shards
        self.capacity = capacity
        # Per-process count of rows that failed write-time verification
        # and were spilled to the pipe.  The segment is fork-shared but
        # this attribute is not: each worker ships its own delta through
        # the barrier for the parent's PerfStats.
        self.integrity_spills = 0
        self._closed = False
        self._destroyed = False
        self._node_list = list(dict.fromkeys(node_names))
        self._ip_list = list(dict.fromkeys(ips))
        self._ptype_list = [p.value for p in PacketType]
        self._node_id = {name: i for i, name in enumerate(self._node_list)}
        self._ip_id = {ip: i for i, ip in enumerate(self._ip_list)}
        self._ptype_id = {v: i for i, v in enumerate(self._ptype_list)}
        # ring (src, dst) -> word offset of half 0; half 1 follows it.
        self._half_words = capacity * ROW_WORDS
        total_words = shards * shards * 2 * self._half_words
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(total_words, 1) * 8
        )
        self._words = memoryview(self._shm.buf).cast("q")

    # -- geometry -----------------------------------------------------------------

    def _base(self, src: int, dst: int, epoch_no: int) -> int:
        ring = (src * self.shards + dst) * 2 + (epoch_no % 2)
        return ring * self._half_words

    # -- codec --------------------------------------------------------------------

    def encode(self, frame: tuple) -> Optional[array]:
        """The int64 payload words for one WireFrame, or None if
        unrepresentable (stamp/seal are added per row slot at write time)."""
        arrival, node, port, key, wire = frame
        send_time, exec_sched, src, seq = key
        (
            ptype, flow5, size, priority, pseq, create_time, ecn, ce,
            pfc_priority, pause_quanta, polling, echo_time, acked_bytes,
            is_last, hops,
        ) = wire
        node_id = self._node_id.get(node)
        src_id = self._node_id.get(src)
        ptype_id = self._ptype_id.get(ptype)
        if node_id is None or src_id is None or ptype_id is None:
            return None
        if flow5 is None:
            has_flow = fsrc = fdst = fsport = fdport = fproto = 0
        else:
            has_flow = 1
            fsrc = self._ip_id.get(flow5[0])
            fdst = self._ip_id.get(flow5[1])
            if fsrc is None or fdst is None:
                return None
            fsport, fdport, fproto = flow5[2], flow5[3], flow5[4]
        words = (
            arrival, node_id, port,
            send_time, exec_sched, src_id, seq,
            ptype_id, has_flow, fsrc, fdst, fsport, fdport, fproto,
            size, priority, pseq, create_time, int(ecn), int(ce),
            pfc_priority, pause_quanta, int(polling), echo_time,
            acked_bytes, int(is_last), hops,
        )
        try:
            return array("q", words)
        except (OverflowError, TypeError):
            return None

    def decode_row(self, words) -> tuple:
        """The WireFrame a row was encoded from (tuple-equal round trip)."""
        (
            arrival, node_id, port,
            send_time, exec_sched, src_id, seq,
            ptype_id, has_flow, fsrc, fdst, fsport, fdport, fproto,
            size, priority, pseq, create_time, ecn, ce,
            pfc_priority, pause_quanta, polling, echo_time,
            acked_bytes, is_last, hops,
        ) = words
        flow5 = (
            (self._ip_list[fsrc], self._ip_list[fdst], fsport, fdport, fproto)
            if has_flow
            else None
        )
        wire = (
            self._ptype_list[ptype_id], flow5, size, priority, pseq,
            create_time, bool(ecn), bool(ce), pfc_priority, pause_quanta,
            polling, echo_time, acked_bytes, bool(is_last), hops,
        )
        key = (send_time, exec_sched, self._node_list[src_id], seq)
        return (arrival, self._node_list[node_id], port, key, wire)

    # -- per-epoch exchange -------------------------------------------------------

    def write_epoch(
        self, src: int, dst: int, epoch_no: int, frames: List[tuple]
    ) -> Tuple[int, List[tuple]]:
        """Write one epoch's frames into ring ``(src, dst)``.

        Returns ``(rows written, frames that must ride the pipe)`` — the
        leftovers are codec misses, anything past ring capacity, and rows
        that failed the write-back verification (counted in
        :attr:`integrity_spills`).
        """
        base = self._base(src, dst, epoch_no)
        words = self._words
        written = 0
        leftover: List[tuple] = []
        for frame in frames:
            if written >= self.capacity:
                leftover.append(frame)
                continue
            payload = self.encode(frame)
            if payload is None:
                leftover.append(frame)
                continue
            stamp = _row_stamp(epoch_no, written)
            row = array("q", (stamp,))
            row.extend(payload)
            row.append(stamp)
            offset = base + written * ROW_WORDS
            words[offset : offset + ROW_WORDS] = row
            # Read-back verify (memoryview/array compare runs at C speed):
            # a row the segment did not faithfully retain rides the pipe
            # instead of reaching a peer torn.  The slot is reused for the
            # next frame.
            if words[offset : offset + ROW_WORDS] != row:
                self.integrity_spills += 1
                leftover.append(frame)
                continue
            written += 1
        return written, leftover

    def read_epoch(self, src: int, dst: int, epoch_no: int, count: int) -> List[tuple]:
        """Decode ``count`` rows shard ``src`` wrote for ``dst`` at ``epoch_no``.

        Raises :class:`ShmRingIntegrityError` when a row's stamp or seal
        does not match the expected ``(epoch, index)`` — a stale row left
        by a dead writer, or a torn row from a writer killed mid-copy.
        """
        base = self._base(src, dst, epoch_no)
        words = self._words
        decode = self.decode_row
        frames: List[tuple] = []
        for i in range(count):
            offset = base + i * ROW_WORDS
            row = words[offset : offset + ROW_WORDS].tolist()
            expected = _row_stamp(epoch_no, i)
            if row[0] != expected or row[-1] != expected:
                raise ShmRingIntegrityError(
                    f"ring ({src}->{dst}) epoch {epoch_no} row {i}: "
                    f"stamp/seal ({row[0]:#x}, {row[-1]:#x}) != {expected:#x} "
                    f"(torn or stale row)"
                )
            frames.append(decode(row[1:-1]))
        return frames

    # -- lifecycle ----------------------------------------------------------------

    def close_local(self) -> None:
        """Drop this process's mapping (parent only; workers just exit).

        Idempotent: safe from ``finally`` after an earlier explicit call.
        """
        if self._closed:
            return
        self._closed = True
        self._words.release()
        self._shm.close()

    def destroy(self) -> None:
        """Parent-only: unmap and remove the segment.

        Idempotent and tolerant of a segment already gone, so it can be
        wired to ``atexit``/signal handlers *and* run from ``finally``
        on every exit path without stranding or double-freeing.
        """
        self.close_local()
        if self._destroyed:
            return
        self._destroyed = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def build_transport(
    shards: int, topology, capacity: int = DEFAULT_CAPACITY
) -> Optional[ShmFrameTransport]:
    """A transport sized for ``topology``, or None if shm is unavailable.

    A capacity outside the stamp's index space is a caller bug and is
    raised, not silently degraded to the pipe path.
    """
    if capacity >= MAX_CAPACITY:
        raise ValueError(
            f"ring capacity {capacity} exceeds the stamp's row-index space"
        )
    try:
        return ShmFrameTransport(
            shards,
            node_names=(n.name for n in topology.nodes),
            ips=(topology.host_ip(h.name) for h in topology.hosts),
            capacity=capacity,
        )
    except (OSError, ValueError):
        return None
