"""Scenario runner: simulate, collect, diagnose and account — for Hawkeye
and every baseline system (§4).

One :func:`run_scenario` call takes a freshly built scenario, attaches the
system under test, runs the simulator, then produces per-victim diagnoses
plus the overhead/coverage accounting the evaluation figures need.

:func:`run_scenarios_parallel` fans independent scenario runs out over a
process pool.  Scenarios are rebuilt inside each worker from a
:class:`ScenarioSpec` (a live scenario holds scheduled closures and cannot
cross a process boundary) and reduced to a picklable :class:`RunSummary`;
because every run is seeded through its spec and the simulator is
deterministic, ``jobs=N`` produces byte-identical summaries to ``jobs=1``.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..baselines.systems import (
    SystemKind,
    apply_visibility,
    bandwidth_overhead_bytes,
    processing_overhead_bytes,
)
from ..collection.agent import AgentConfig, DetectionAgent, TriggerEvent
from ..collection.collector import TelemetryCollector
from ..collection.polling import PollingConfig, PollingEngine
from ..core.build import AnnotatedGraph, build_provenance
from ..faults.injector import make_injector
from ..faults.plan import FaultPlan, RetryPolicy
from ..core.diagnosis import Diagnoser
from ..core.report import Diagnosis
from ..monitor.monitor import FabricMonitor, MonitorConfig
from ..obs import (
    MetricsRegistry,
    ObsConfig,
    PipelineObs,
    SimTraceObserver,
    StageProfile,
    Tracer,
)
from ..sim.packet import POLLING_PACKET_SIZE, FlowKey
from ..telemetry.epoch import EpochScheme
from ..telemetry.hawkeye import HawkeyeDeployment, TelemetryConfig
from ..telemetry.snapshot import SwitchReport
from ..units import usec
from ..workloads.scenario import Scenario
from .metrics import diagnosis_correct
from .perfstats import PerfStats, diff_cache_counters, global_cache_counters


@dataclass
class RunConfig:
    """Everything the parameter sweeps of Fig 7/8 vary."""

    system: SystemKind = SystemKind.HAWKEYE
    epoch_size_ns: int = 1 << 20  # ~1 ms
    epoch_index_bits: int = 2  # ring of 4 epochs
    threshold_multiplier: float = 3.0  # 300% of base RTT
    flow_slots: int = 4096
    exclude_paused_in_contention: bool = True  # ablation knob
    use_meters: bool = True  # ablation knob: False = ITSY-style 1-bit presence
    # Chaos testing: a seeded fault plan for the collection pipeline, and
    # the retry/backoff policy that answers it.  ``faults=None`` (or an
    # all-zero plan) keeps the pipeline on the fault-free fast path.
    faults: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    # Observability: ``None`` (or ``trace=False``) keeps every instrumented
    # call site on the is-None fast path; a live tracer is built per run
    # (and per worker — the frozen config is what crosses process pools).
    obs: Optional[ObsConfig] = None
    # Continuous fabric monitoring: ``None`` (or ``enabled=False``) keeps
    # the sim on the no-monitor fast path; like ``obs``, the frozen config
    # crosses process pools and each worker builds its own FabricMonitor.
    monitor: Optional[MonitorConfig] = None
    # Partition one fabric across this many worker processes (see
    # ``repro.experiments.shardrun``).  ``1`` runs in-process; values above
    # the topology's pod count are clamped by the partitioner.
    shards: int = 1
    # Fan the analysis plane (per-victim provenance construction, or the
    # per-epoch replay prewarm when only one victim triggered) across this
    # many worker processes (see ``repro.experiments.analyzerpool``).
    # ``1`` keeps diagnosis in-process; outcomes are identical either way.
    analyzer_jobs: int = 1
    # Watchdog deadline (seconds) for any single shard/analyzer worker
    # reply before the parent declares the worker lost (see
    # ``repro.experiments.supervise``).  ``None`` defers to the
    # ``REPRO_SHARD_TIMEOUT`` environment, then the 60 s default.
    shard_timeout_s: Optional[float] = None

    def scheme(self) -> EpochScheme:
        return EpochScheme.from_epoch_size(
            self.epoch_size_ns, index_bits=self.epoch_index_bits
        )


@dataclass
class VictimOutcome:
    victim: FlowKey
    trigger: Optional[TriggerEvent]
    diagnosis: Optional[Diagnosis]
    annotated: Optional[AnnotatedGraph] = None
    reports_used: Dict[str, SwitchReport] = field(default_factory=dict)


@dataclass
class RunResult:
    scenario: Scenario
    config: RunConfig
    outcomes: List[VictimOutcome]
    collected_switches: List[str]
    causal_switches: Set[str]
    processing_bytes: int
    bandwidth_bytes: int
    polling_packets: int
    collections: int
    events_run: int
    data_pkt_hops: int
    perf: Optional[PerfStats] = None
    # Chaos accounting: per-fault-type/recovery counters and the ordered
    # incident log (both empty on fault-free runs).
    fault_counters: Dict[str, int] = field(default_factory=dict)
    fault_incidents: List[str] = field(default_factory=list)
    # Observability: the run's metrics registry (always present) and the
    # pipeline tracer facade (None unless RunConfig.obs enabled tracing).
    metrics: Optional[MetricsRegistry] = None
    obs: Optional[PipelineObs] = None
    # Continuous fabric monitor (None unless RunConfig.monitor enabled it).
    monitor: Optional[FabricMonitor] = None

    def primary_outcome(self) -> Optional[VictimOutcome]:
        """The earliest-complaining victim's outcome (the paper diagnoses
        one anomaly per complaint; concurrent victims share telemetry)."""
        triggered = [o for o in self.outcomes if o.trigger is not None]
        if not triggered:
            return None
        return min(triggered, key=lambda o: o.trigger.time_ns)

    def diagnosis(self) -> Optional[Diagnosis]:
        outcome = self.primary_outcome()
        return outcome.diagnosis if outcome else None

    def used_switches(self) -> List[str]:
        """Switches whose telemetry the primary diagnosis actually used."""
        outcome = self.primary_outcome()
        if outcome is None:
            return []
        return sorted(outcome.reports_used)

    @property
    def causal_coverage(self) -> float:
        """Fraction of causally relevant switches the diagnosis had data for."""
        if not self.causal_switches:
            return 1.0
        hit = len(self.causal_switches & set(self.used_switches()))
        return hit / len(self.causal_switches)


def select_reports(
    reports: List[SwitchReport], trigger_time: int, slack_ns: int = usec(200)
) -> Dict[str, SwitchReport]:
    """Pick, per switch, the report that best covers a trigger.

    Preference order: the earliest report collected at/after the trigger
    (the collection its own polling packet drove), else the freshest report
    within ``slack_ns`` before it (a concurrent victim's collection the
    dedup interval made us share), else the latest earlier report.
    """
    by_switch: Dict[str, List[SwitchReport]] = {}
    for report in reports:
        by_switch.setdefault(report.switch, []).append(report)
    chosen: Dict[str, SwitchReport] = {}
    for switch, candidates in by_switch.items():
        candidates.sort(key=lambda r: r.collect_time)
        after = [r for r in candidates if r.collect_time >= trigger_time]
        near = [
            r for r in candidates if trigger_time - slack_ns <= r.collect_time < trigger_time
        ]
        if after:
            chosen[switch] = after[0]
        elif near:
            chosen[switch] = near[-1]
        else:
            chosen[switch] = candidates[-1]
    return chosen


def _qualify_diagnosis(
    diagnosis: Diagnosis,
    net,
    traced_of: Optional[Callable[[FlowKey], Set[str]]],
    victim,
    reports: Dict[str, SwitchReport],
) -> None:
    """Stamp a diagnosis with how complete and clean its telemetry was.

    The *expected* switch set is what the analyzer can legitimately know
    without ground truth: the victim's routed path, plus whatever the
    polling trace actually covered, plus the frontier gaps the provenance
    builder marked.  Lost polling packets shrink the trace and lost reports
    shrink coverage, so the shortfall is exactly what degraded.
    """
    expected: Set[str] = set(
        net.routing.switch_path(victim.src_host, victim.key.dst_ip, victim.key)
    )
    if traced_of is not None:
        expected |= traced_of(victim.key)
    expected |= set(diagnosis.missing_switches)
    covered = set(reports)
    diagnosis.completeness = (
        len(expected & covered) / len(expected) if expected else 1.0
    )
    diagnosis.missing_switches = sorted(
        set(diagnosis.missing_switches) | (expected - covered)
    )
    diagnosis.degraded_reports = sorted(
        f"{name}[{','.join(report.faults)}]"
        for name, report in reports.items()
        if report.faults
    )


def diagnose_victims(
    scenario: Scenario,
    config: RunConfig,
    net,
    reports_list: List[SwitchReport],
    triggers: Sequence[TriggerEvent],
    traced_of: Optional[Callable[[FlowKey], Set[str]]],
    now_ns: int,
    obs: Optional[PipelineObs] = None,
    monitor: Optional[FabricMonitor] = None,
    profile: Optional[StageProfile] = None,
) -> List[VictimOutcome]:
    """Produce one :class:`VictimOutcome` per scenario victim.

    This is the analyzer half of a run, shared between the in-process
    runner (which passes its live collector/engine/agent state) and the
    sharded orchestrator (which passes the merged state of its workers):
    report selection, visibility transform, provenance construction,
    diagnosis and qualification — identical inputs produce identical
    outcomes no matter which execution produced the telemetry.
    """
    if profile is None:
        profile = StageProfile(MetricsRegistry())
    diagnoser = Diagnoser()

    pending: List[Tuple] = []  # (victim, trigger) pairs in victim order
    outcomes_by_victim: Dict[FlowKey, VictimOutcome] = {}
    for victim in scenario.victims:
        trigger = next((t for t in triggers if t.victim == victim.key), None)
        if trigger is None:
            outcomes_by_victim[victim.key] = VictimOutcome(victim.key, None, None)
        else:
            pending.append((victim, trigger))

    jobs = max(1, config.analyzer_jobs)
    if jobs > 1 and obs is None and monitor is None and pending:
        # The analysis fan-out (repro.experiments.analyzerpool): victims
        # across workers when several triggered, otherwise the per-epoch
        # replay prewarm.  obs/monitor hooks need the live in-parent
        # objects, so tracing/monitoring runs pin diagnosis in-process.
        from . import analyzerpool  # deferred: import cycle

        done = analyzerpool.diagnose_pending_parallel(
            scenario, config, net, reports_list,
            traced_of, now_ns, pending, profile, jobs,
        )
        if done is not None:
            outcomes_by_victim.update((o.victim, o) for o in done)
            pending = []

    for victim, trigger in pending:
        outcome = _diagnose_one(
            victim, trigger, config, net, reports_list, traced_of,
            now_ns, diagnoser, profile, obs=obs, monitor=monitor,
        )
        outcomes_by_victim[outcome.victim] = outcome
    return [outcomes_by_victim[v.key] for v in scenario.victims]


def _diagnose_one(
    victim,
    trigger: TriggerEvent,
    config: RunConfig,
    net,
    reports_list: List[SwitchReport],
    traced_of: Optional[Callable[[FlowKey], Set[str]]],
    now_ns: int,
    diagnoser: Diagnoser,
    profile: StageProfile,
    obs: Optional[PipelineObs] = None,
    monitor: Optional[FabricMonitor] = None,
) -> VictimOutcome:
    """Diagnose one triggered victim: the per-victim unit of the analyzer.

    Pure function of its telemetry inputs (plus perf side effects on
    ``profile``), so the analyzer pool can run it in forked workers and get
    outcomes identical to the in-process loop.
    """
    kind = config.system
    scheme = config.scheme()
    with profile.stage("select_reports"):
        raw = select_reports(reports_list, trigger.time_ns)
    if traced_of is not None:
        # Each diagnosis consumes telemetry only from the switches its
        # own polling trace covered (concurrent victims of the same
        # anomaly share reports; unrelated switches are never fetched).
        traced = traced_of(victim.key)
        raw = {name: r for name, r in raw.items() if name in traced}
    if not kind.traces_pfc and not kind.collects_everywhere:
        # Victim-path-only systems diagnose each complaint from the
        # telemetry of that victim's own path — the whole point of the
        # Fig 8 comparison is that this misses part of the PFC loop.
        src_host = net.topology.host_of_ip(victim.key.src_ip)
        on_path = set(
            net.routing.switch_path(src_host, victim.key.dst_ip, victim.key)
        )
        raw = {name: r for name, r in raw.items() if name in on_path}
    reports = {name: apply_visibility(kind, r) for name, r in raw.items()}
    with profile.stage("graph_build"):
        annotated = build_provenance(
            reports,
            net.topology,
            window_ns=scheme.window_ns,
            victim=victim.key,
            exclude_paused=config.exclude_paused_in_contention,
            epoch_size_ns=scheme.epoch_size_ns,
            obs=obs,
            now_ns=now_ns,
        )
    victim_path = net.routing.flow_path(
        victim.src_host, victim.key.dst_ip, victim.key
    )[1:]
    with profile.stage("diagnose"):
        diagnosis = diagnoser.diagnose(
            annotated,
            victim.key,
            victim_path_ports=victim_path,
            obs=obs,
            now_ns=now_ns,
        )
    with profile.stage("qualify"):
        _qualify_diagnosis(diagnosis, net, traced_of, victim, reports)
    if monitor is not None:
        # The obs span must be read before on_verdict closes it.
        span_id = obs.diagnosis_span_id(victim.key) if obs is not None else None
        monitor.timeline.record_diagnosis(
            diagnosis, trigger.time_ns, now_ns, span_id=span_id
        )
    if obs is not None:
        obs.on_verdict(victim.key, now_ns, diagnosis)
    return VictimOutcome(victim.key, trigger, diagnosis, annotated, reports)


def causal_switches_of(scenario: Scenario, victim: FlowKey) -> Set[str]:
    """The switches a diagnosis provably needs: the victim's path, the PFC
    loop (if any) and the initial congestion switch."""
    net = scenario.network
    truth = scenario.truth
    src_host = net.topology.host_of_ip(victim.src_ip)
    causal = set(net.routing.switch_path(src_host, victim.dst_ip, victim))
    causal.update(p.node for p in truth.loop_ports)
    if truth.initial_port is not None:
        causal.add(truth.initial_port.node)
    return causal


class FabricSession:
    """A live monitored fabric with the system under test attached.

    The construction half of :func:`run_scenario`, factored out so two
    execution modes share one attach path:

    - **batch** (``repro run`` and every experiment harness):
      :meth:`advance` once to the scenario's duration, then
      :meth:`finish` — exactly the old ``run_scenario`` body;
    - **service** (``repro serve``): :meth:`advance` repeatedly in
      *bounded sim-time slices* on an executor thread (so an asyncio loop
      stays responsive between slices), answer on-demand
      :meth:`diagnose_now` queries between slices, and :meth:`finish`
      when the episode's duration is reached.

    Because :meth:`~repro.sim.engine.Simulator.run` executes events in
    timestamp order regardless of how many ``until_ns`` stops partition
    the timeline, slicing never reorders work: a session advanced in N
    slices produces byte-identical diagnoses to one advanced in a single
    call (pinned by ``tests/serve/test_differential.py``).
    """

    def __init__(
        self, scenario: Scenario, config: Optional[RunConfig] = None
    ) -> None:
        self.wall_start = time.perf_counter()
        self.scenario = scenario
        self.config = config = config if config is not None else RunConfig()
        kind = config.system
        self.net = net = scenario.network
        scheme = config.scheme()
        # Scope the process-global and routing-instance cache counters to
        # this run by differencing (the caches persist across runs in one
        # process).
        self._caches_before = global_cache_counters()
        self._ecmp_before = (
            net.routing.select_cache_hits, net.routing.select_cache_misses
        )

        self.metrics = metrics = MetricsRegistry()
        self.profile = StageProfile(metrics)
        self.obs: Optional[PipelineObs] = None
        self._sim_obs: Optional[SimTraceObserver] = None
        if config.obs is not None and config.obs.trace:
            self.obs = obs = PipelineObs(Tracer(config.obs.build_sink()), metrics)
            obs.begin_scenario(
                scenario.name, start_ns=net.sim.now, system=kind.value
            )
            if config.obs.sim_events:
                self._sim_obs = SimTraceObserver(
                    obs.tracer, metrics, parent=obs.scenario_span
                )
                for switch in net.switches.values():
                    switch.add_observer(self._sim_obs)
        obs = self.obs

        self.monitor: Optional[FabricMonitor] = None
        if config.monitor is not None and config.monitor.enabled:
            self.monitor = FabricMonitor(
                net, config.monitor, metrics=metrics
            ).start()
        monitor = self.monitor

        self.injector = make_injector(config.faults)
        self.deployment = HawkeyeDeployment(
            net, TelemetryConfig(scheme=scheme, flow_slots=config.flow_slots)
        )
        self.collector = collector = TelemetryCollector(
            self.deployment, injector=self.injector, retry=config.retry, obs=obs
        )
        self.engine: Optional[PollingEngine] = None
        if kind.uses_polling_packets or kind.pfc_blind:
            # PFC-blind baselines still collect reactively along the victim
            # path (SpiderMon's collection model); their visibility
            # transform blinds the *contents* later.
            self.engine = engine = PollingEngine(
                net,
                self.deployment,
                PollingConfig(
                    trace_pfc=kind.traces_pfc, use_meters=config.use_meters
                ),
                injector=self.injector,
                obs=obs,
            )
            engine.add_mirror_listener(collector.on_polling_mirror)
        engine = self.engine

        self.agent = agent = DetectionAgent(
            net,
            AgentConfig(threshold_multiplier=config.threshold_multiplier),
            retry=config.retry,
            injector=self.injector,
            obs=obs,
            monitor=monitor,
        )
        if config.retry is not None:
            if engine is not None:
                # Path-coverage probe: a trigger is answered only once every
                # switch the analyzer will want — the victim's routed path
                # plus whatever the polling trace reached — has delivered a
                # report the diagnosis would accept (at/after the trigger,
                # or within the ``select_reports`` slack just before it).
                # A single lost report, or a polling packet dying mid-path,
                # leaves a hole here and drives a retransmission.
                probe_slack_ns = usec(200)

                def _path_probe(victim_key: FlowKey, since_ns: int) -> bool:
                    src_host = net.topology.host_of_ip(victim_key.src_ip)
                    expected = set(
                        net.routing.switch_path(
                            src_host, victim_key.dst_ip, victim_key
                        )
                    )
                    expected |= engine.switches_traced_for(victim_key)
                    return expected <= collector.switches_reported_since(
                        since_ns - probe_slack_ns
                    )

                agent.set_report_probe(_path_probe)
                agent.add_retransmit_listener(engine.reset_victim)
            else:
                agent.set_report_probe(collector.has_report_since)
        if kind.collects_everywhere:
            # Full-network collection is subject to the same CPU read
            # latency as polling-driven collection.
            def _full_poll(_ev) -> None:
                net.sim.schedule(
                    collector.read_delay_ns,
                    lambda: collector.collect_all(net.sim.now),
                )

            agent.add_trigger_listener(_full_poll)

        self._finalized = False

    # -- execution -----------------------------------------------------------

    @property
    def now_ns(self) -> int:
        return self.net.sim.now

    @property
    def duration_ns(self) -> int:
        return self.scenario.duration_ns

    @property
    def complete(self) -> bool:
        """Has the scenario's full duration been simulated?"""
        return self.net.sim.now >= self.scenario.duration_ns

    def advance(self, until_ns: int) -> int:
        """Run the fabric up to ``until_ns`` (clamped to the duration).

        Returns the new simulated time.  Bounded slices are the service
        plane's unit of work: each call runs on an executor thread while
        the event loop serves clients, and the clock never runs past the
        scenario's end.
        """
        target = min(until_ns, self.scenario.duration_ns)
        if target > self.net.sim.now:
            with self.profile.stage("simulate"):
                self.net.run(target)
        return self.net.sim.now

    def finalize(self) -> None:
        """Flush pending telemetry reads and stop the observers (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        with self.profile.stage("flush_pending"):
            self.collector.flush_pending(self.net.sim.now)
        if self._sim_obs is not None:
            self._sim_obs.finish(self.net.sim.now)
        if self.monitor is not None:
            self.monitor.finish(self.net.sim.now)

    # -- on-demand diagnosis (the service plane's query path) ----------------

    def trigger_of(self, victim_key: FlowKey):
        """The victim's first complaint, or None if it never triggered."""
        return next(
            (t for t in self.agent.triggers if t.victim == victim_key), None
        )

    def diagnose_now(
        self, victim_key: FlowKey, record_incident: bool = False
    ) -> Optional[VictimOutcome]:
        """Diagnose one victim from the telemetry collected *so far*.

        Pure read of the session's collected state: no flush, no trace
        spans, and (unless ``record_incident``) no timeline write — so a
        mid-run query can never perturb the final batch-equivalent
        diagnosis.  Returns ``None`` when the victim has not complained
        yet (nothing to diagnose is an answer, not an error).
        """
        trigger = self.trigger_of(victim_key)
        if trigger is None:
            return None
        victim = next(
            (v for v in self.scenario.victims if v.key == victim_key), None
        )
        if victim is None:
            return None
        return _diagnose_one(
            victim,
            trigger,
            self.config,
            self.net,
            self.collector.reports,
            self.engine.switches_traced_for if self.engine is not None else None,
            self.net.sim.now,
            Diagnoser(),
            self.profile,
            obs=None,
            monitor=self.monitor if record_incident else None,
        )

    # -- completion ----------------------------------------------------------

    def finish(self) -> RunResult:
        """Finalize, diagnose every victim and account — the batch epilogue."""
        self.finalize()
        scenario, config, net = self.scenario, self.config, self.net
        kind = config.system
        collector, engine, agent = self.collector, self.engine, self.agent
        monitor, obs, metrics = self.monitor, self.obs, self.metrics

        outcomes = diagnose_victims(
            scenario,
            config,
            net,
            collector.reports,
            agent.triggers,
            engine.switches_traced_for if engine is not None else None,
            net.sim.now,
            obs=obs,
            monitor=monitor,
            profile=self.profile,
        )

        data_pkt_hops = sum(sw.stats.data_pkts for sw in net.switches.values())
        data_pkts_sent = sum(f.packets_sent for f in net.flows)
        polling_pkts = (engine.polling_packets_forwarded if engine else 0) + len(
            agent.triggers
        )
        # Processing overhead = the telemetry one diagnosis consumes
        # (Fig 9a); NetSight is the exception: it ships every postcard
        # regardless.
        primary = next(
            (o for o in sorted(
                (o for o in outcomes if o.trigger is not None),
                key=lambda o: o.trigger.time_ns,
            )),
            None,
        )
        diagnosis_reports = primary.reports_used if primary is not None else {}
        processing = processing_overhead_bytes(
            kind, diagnosis_reports, data_pkt_hops
        )
        bandwidth = bandwidth_overhead_bytes(
            kind, polling_pkts, POLLING_PACKET_SIZE, data_pkts_sent, data_pkt_hops
        )

        causal: Set[str] = set()
        for victim in scenario.victims:
            causal |= causal_switches_of(scenario, victim.key)

        cache_stats = diff_cache_counters(
            self._caches_before, global_cache_counters()
        )
        cache_stats["ecmp_select"] = {
            "hits": net.routing.select_cache_hits - self._ecmp_before[0],
            "misses": net.routing.select_cache_misses - self._ecmp_before[1],
        }
        for name, (hits, misses) in self.deployment.cache_counters().items():
            cache_stats[name] = {"hits": hits, "misses": misses}

        fault_counters: Dict[str, int] = {}
        fault_incidents: List[str] = []
        if self.injector is not None:
            fault_counters.update(self.injector.stats)
            fault_incidents = self.injector.incident_log()
        for name, value in (
            ("agent_retransmissions", agent.retransmissions),
            ("agent_retries_recovered", agent.retries_recovered),
            ("agent_retries_exhausted", agent.retries_exhausted),
            ("agent_restarts", agent.restarts),
            ("polling_packets_lost", engine.polling_packets_lost if engine else 0),
            ("dma_retries", collector.stats.dma_retries),
            ("dma_reads_abandoned", collector.stats.dma_reads_abandoned),
            ("stale_reads", collector.stats.stale_reads),
            ("reports_lost", collector.stats.reports_lost),
            ("reports_truncated", collector.stats.reports_truncated),
            ("reports_delayed", collector.stats.reports_delayed),
        ):
            if value:
                fault_counters[name] = value

        perf = PerfStats.from_run(
            scenario.name,
            net.sim,
            time.perf_counter() - self.wall_start,
            caches=cache_stats,
            faults=fault_counters,
            stages=self.profile.to_dict(),
        )

        # Fold every legacy counter surface into the one registry the
        # ``--metrics-json`` export reads (the trace-derived ``events.*``
        # counters are already live in it).
        metrics.absorb_counters("sim", net.sim.counters())
        metrics.absorb_counters("cache", cache_stats)
        metrics.absorb_counters("collection", asdict(collector.stats))
        metrics.absorb_counters(
            "agent",
            {
                "triggers": len(agent.triggers),
                "retransmissions": agent.retransmissions,
                "retries_recovered": agent.retries_recovered,
                "retries_exhausted": agent.retries_exhausted,
                "restarts": agent.restarts,
            },
        )
        if engine is not None:
            metrics.absorb_counters(
                "polling",
                {
                    "packets_forwarded": engine.polling_packets_forwarded,
                    "packets_suppressed": engine.polling_packets_suppressed,
                    "packets_lost": engine.polling_packets_lost,
                },
            )
        if fault_counters:
            metrics.absorb_counters("faults", fault_counters)
        if monitor is not None:
            metrics.absorb_counters("monitor", monitor.counters())
        metrics.gauge("run.wall_s").set(perf.wall_s)
        metrics.gauge("run.sim_ns").set(float(net.sim.now))

        if obs is not None:
            obs.end_scenario(net.sim.now)

        return RunResult(
            scenario=scenario,
            config=config,
            outcomes=outcomes,
            collected_switches=collector.collected_switches(),
            causal_switches=causal,
            processing_bytes=processing,
            bandwidth_bytes=bandwidth,
            polling_packets=polling_pkts,
            collections=collector.stats.collections,
            events_run=net.sim.events_run,
            data_pkt_hops=data_pkt_hops,
            perf=perf,
            fault_counters=fault_counters,
            fault_incidents=fault_incidents,
            metrics=metrics,
            obs=obs,
            monitor=monitor,
        )


def run_scenario(scenario: Scenario, config: Optional[RunConfig] = None) -> RunResult:
    """Attach the system under test, run, and diagnose every victim."""
    session = FabricSession(scenario, config)
    session.advance(scenario.duration_ns)
    return session.finish()


# ---------------------------------------------------------------------------
# Parallel execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """A rebuildable reference to a scenario: builder name + seed.

    Workers receive specs instead of scenarios because a built scenario
    holds a simulator with scheduled closures and is not picklable; the
    builders in :data:`repro.workloads.SCENARIO_BUILDERS` are deterministic
    functions of their seed, so rebuilding is exact.

    Fuzzed scenarios have no named builder: ``genome_json`` carries the
    serialized :class:`~repro.fuzz.genome.ScenarioGenome` instead, and
    rebuilding decodes it — equally deterministic, so the sharded and
    parallel runners treat genome scenarios like any other spec.
    """

    builder: str
    seed: int = 1
    label: Optional[str] = None
    genome_json: Optional[str] = None

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        if self.genome_json is not None:
            return f"genome[{self.builder}]"
        return f"{self.builder}[seed={self.seed}]"

    def build(self) -> Scenario:
        if self.genome_json is not None:
            from ..fuzz.genome import ScenarioGenome  # deferred: import cycle

            return ScenarioGenome.from_json(self.genome_json).build()
        from ..workloads import SCENARIO_BUILDERS  # deferred: import cycle

        return SCENARIO_BUILDERS[self.builder](seed=self.seed)


@dataclass
class RunSummary:
    """The picklable reduction of a :class:`RunResult`.

    Carries everything the experiment figures and the determinism checks
    compare; drops the live network/scenario objects that cannot cross a
    process boundary.
    """

    spec: ScenarioSpec
    diagnosis_text: Optional[str]
    correct: bool
    causal_coverage: float
    events_run: int
    processing_bytes: int
    bandwidth_bytes: int
    polling_packets: int
    collections: int
    perf: Optional[PerfStats] = None
    # Degradation qualifiers of the primary diagnosis (chaos runs).
    completeness: float = 1.0
    confidence: str = "full"
    fault_counters: Dict[str, int] = field(default_factory=dict)
    fault_incidents: List[str] = field(default_factory=list)
    # Continuous-monitoring reduction (zero/empty when monitoring was off).
    alerts: int = 0
    incidents: int = 0
    alert_categories: Dict[str, int] = field(default_factory=dict)
    early_warnings: int = 0
    # The primary diagnosis's input telemetry in the columnar wire format
    # (switch -> SwitchReport.to_columnar()): flat interned arrays pickle
    # far smaller and faster across the worker boundary than per-entry
    # FlowEntry/PortEntry object graphs.
    primary_reports_columnar: Optional[Dict[str, Dict]] = None

    def primary_reports(self) -> Optional[Dict[str, SwitchReport]]:
        """Rebuild the shipped diagnosis-input reports (orders intact)."""
        if self.primary_reports_columnar is None:
            return None
        return {
            name: SwitchReport.from_columnar(blob)
            for name, blob in self.primary_reports_columnar.items()
        }


def summarize_run(
    spec: ScenarioSpec,
    scenario: Scenario,
    result: RunResult,
    ship_reports: bool = False,
) -> RunSummary:
    """Reduce a completed run to its picklable summary.

    ``ship_reports`` additionally packs the primary diagnosis's input
    telemetry as columnar blobs so the parent process can re-run provenance
    construction without re-simulating.
    """
    diagnosis = result.diagnosis()
    reports_columnar = None
    if ship_reports:
        primary = result.primary_outcome()
        if primary is not None:
            reports_columnar = {
                name: report.to_columnar()
                for name, report in primary.reports_used.items()
            }
    return RunSummary(
        spec=spec,
        diagnosis_text=diagnosis.describe() if diagnosis is not None else None,
        correct=diagnosis_correct(diagnosis, scenario.truth),
        causal_coverage=result.causal_coverage,
        events_run=result.events_run,
        processing_bytes=result.processing_bytes,
        bandwidth_bytes=result.bandwidth_bytes,
        polling_packets=result.polling_packets,
        collections=result.collections,
        perf=result.perf,
        completeness=diagnosis.completeness if diagnosis is not None else 1.0,
        confidence=diagnosis.confidence if diagnosis is not None else "full",
        fault_counters=dict(result.fault_counters),
        fault_incidents=list(result.fault_incidents),
        alerts=len(result.monitor.alerts) if result.monitor is not None else 0,
        incidents=(
            len(result.monitor.timeline.incidents)
            if result.monitor is not None
            else 0
        ),
        alert_categories=(
            result.monitor.engine.alerts_by_category()
            if result.monitor is not None
            else {}
        ),
        early_warnings=(
            sum(
                1
                for i in result.monitor.timeline.incidents
                if i.early_warning
            )
            if result.monitor is not None
            else 0
        ),
        primary_reports_columnar=reports_columnar,
    )


def _run_spec_worker(item: Tuple[ScenarioSpec, RunConfig, bool]) -> RunSummary:
    """Process-pool entry point: build, run, summarize one spec."""
    spec, config, ship_reports = item
    scenario = spec.build()
    result = run_scenario(scenario, config)
    return summarize_run(spec, scenario, result, ship_reports=ship_reports)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork``: workers inherit the parent's interpreter state
    (including the hash salt), so any hash-order-dependent iteration
    behaves exactly as in-process execution."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_scenarios_parallel(
    specs: Iterable[ScenarioSpec],
    config: Optional[RunConfig] = None,
    jobs: int = 1,
    ship_reports: bool = False,
) -> List[RunSummary]:
    """Run independent scenarios across a process pool.

    Results come back in spec order regardless of completion order, and
    are identical to ``jobs=1`` (each run is fully determined by its spec's
    seed).  ``jobs=1`` runs in-process with no pool overhead.
    ``ship_reports`` makes each summary carry the primary diagnosis's input
    telemetry as compact columnar blobs (see :class:`RunSummary`).
    """
    config = config if config is not None else RunConfig()
    spec_list = list(specs)
    items = [(spec, config, ship_reports) for spec in spec_list]
    if jobs <= 1 or len(spec_list) <= 1:
        return [_run_spec_worker(item) for item in items]
    workers = min(jobs, len(spec_list))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return list(pool.map(_run_spec_worker, items))
