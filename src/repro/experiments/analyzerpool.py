"""Process-pool fan-out for the analysis plane.

The sharded simulator (PR 6) left provenance construction as the
single-process tail at fleet scale: one parent process replays every
epoch's queues and builds every victim's graph while the shard workers
sit idle.  This module fans the two independent axes of that work across
forked workers:

- **victims** — each triggered victim's diagnosis
  (:func:`repro.experiments.runner._diagnose_one`) is a pure function of
  the collected telemetry, so concurrent victims (deadlock scenarios
  complain four at a time) build their graphs in parallel;
- **epochs** — with a single victim there is no victim-level parallelism,
  but Algorithm 1's per-epoch replay is memoized on the shared
  ``EpochData`` objects (:func:`repro.core.build._epoch_contribution`), so
  the pool pre-warms the replay caches epoch-by-epoch and the serial
  diagnosis then runs against hot caches.

Workers are always *forked*: the parent installs its live state in a
module global right before creating the pool, children inherit it by COW,
and only the picklable results (outcomes / contribution lists) cross back.

Supervision: every victim future is bounded by the shared watchdog
deadline (``--shard-timeout`` / ``REPRO_SHARD_TIMEOUT``, see
:mod:`repro.experiments.supervise`).  A worker that dies (OOM kill,
SIGKILL, crashed extension) or hangs past the deadline forfeits the
pool: the parent kills the survivors and diagnoses every unfinished
victim serially with a fresh :class:`~repro.core.diagnosis.Diagnoser` —
the diagnosis is a pure function of parent-owned state, so the recovered
outcome is identical to what the worker would have returned.  Nothing
here changes any result — the caller falls back to the in-process loop
whenever fork is unavailable or the pool cannot be built, and the
differential tests pin ``analyzer_jobs=N`` outcomes identical to ``=1``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..baselines.systems import SystemKind
from ..core.build import _epoch_contribution
from ..obs import StageProfile
from ..sim.packet import FlowKey
from ..telemetry.snapshot import SwitchReport
from .supervise import resolve_timeout

# Fewer cold epochs than this and the fork + pickle overhead of the
# prewarm pool exceeds the replay work it parallelizes.
MIN_PREWARM_EPOCHS = 4

# Fork-inherited parent state, installed immediately before pool creation
# and cleared after; workers read it, never mutate it.
_DIAG_STATE: Optional[tuple] = None
_WARM_STATE: Optional[tuple] = None

# Chaos-test hook: when set, called as ``fn(idx)`` at the top of each
# victim diagnosis inside the pool worker (inherited through fork).
# ``"sigkill"`` kills the worker, ``"hang"`` wedges it past the watchdog;
# anything else is a no-op.
_TEST_ANALYZER_ABORT: Optional[Callable[[int], Optional[str]]] = None


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _diagnose_worker(idx: int) -> Tuple[object, dict]:
    """Pool entry point: diagnose the idx-th pending victim."""
    from ..core.diagnosis import Diagnoser
    from .runner import _diagnose_one

    if _TEST_ANALYZER_ABORT is not None:
        action = _TEST_ANALYZER_ABORT(idx)
        if action == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "hang":
            time.sleep(3600)
    scenario, config, net, reports_list, traced_of, now_ns, pending = _DIAG_STATE
    victim, trigger = pending[idx]
    profile = StageProfile()
    outcome = _diagnose_one(
        victim, trigger, config, net, reports_list, traced_of,
        now_ns, Diagnoser(), profile,
    )
    return outcome, profile.to_dict()


def _warm_worker(idx: int) -> Tuple[int, list]:
    """Pool entry point: replay the idx-th cold epoch's queues."""
    epochs, replay_t, exclude_paused = _WARM_STATE
    return idx, _epoch_contribution(epochs[idx], replay_t, exclude_paused)


def warm_replay_caches(
    reports_list: Sequence[SwitchReport],
    replay_t: int,
    exclude_paused: bool,
    jobs: int,
) -> int:
    """Pre-populate ``EpochData.replay_cache`` across forked workers.

    Returns the number of epochs warmed (0 when the pool was not worth
    spinning up).  Safe to call with reports other code is about to
    diagnose from: the installed entries are exactly what
    ``_epoch_contribution`` would compute in-process.
    """
    global _WARM_STATE
    cache_key = (replay_t, exclude_paused)
    cold: list = []
    seen: Set[int] = set()
    for report in reports_list:
        for epoch in report.epochs:
            if id(epoch) in seen:
                continue
            seen.add(id(epoch))
            if cache_key not in epoch.replay_cache:
                cold.append(epoch)
    if len(cold) < MIN_PREWARM_EPOCHS or jobs <= 1 or not fork_available():
        return 0
    ctx = multiprocessing.get_context("fork")
    _WARM_STATE = (cold, replay_t, exclude_paused)
    try:
        with ctx.Pool(processes=min(jobs, len(cold))) as pool:
            for idx, items in pool.imap_unordered(_warm_worker, range(len(cold))):
                cold[idx].replay_cache[cache_key] = items
    except OSError:
        return 0
    finally:
        _WARM_STATE = None
    return len(cold)


def diagnose_pending_parallel(
    scenario,
    config,
    net,
    reports_list: List[SwitchReport],
    traced_of: Optional[Callable[[FlowKey], Set[str]]],
    now_ns: int,
    pending: List[tuple],
    profile: StageProfile,
    jobs: int,
) -> Optional[list]:
    """Diagnose the pending (victim, trigger) pairs across forked workers.

    Returns the outcome list in ``pending`` order, or ``None`` to tell the
    caller to run its in-process loop (fork unavailable, pool failure, or
    the single-victim case — which this function first accelerates by
    pre-warming the per-epoch replay caches).  Victims whose worker died
    or hung past the watchdog deadline are diagnosed serially in the
    parent, so the returned list is always complete and identical to the
    in-process loop's.
    """
    global _DIAG_STATE
    if not fork_available():
        return None
    if len(pending) <= 1:
        kind = config.system
        identity_visibility = (
            kind not in (SystemKind.PORT_ONLY, SystemKind.FLOW_ONLY)
            and not kind.pfc_blind
        )
        if identity_visibility:
            # apply_visibility shares the EpochData objects, so warming the
            # raw reports warms exactly what the diagnosis will replay.
            scheme = config.scheme()
            with profile.stage("replay_prewarm"):
                warm_replay_caches(
                    reports_list,
                    scheme.epoch_size_ns,
                    config.exclude_paused_in_contention,
                    jobs,
                )
        return None

    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FutureTimeout
    from concurrent.futures.process import BrokenProcessPool

    timeout_s = resolve_timeout(getattr(config, "shard_timeout_s", None))
    ctx = multiprocessing.get_context("fork")
    _DIAG_STATE = (
        scenario, config, net, reports_list, traced_of, now_ns, pending
    )
    results: List[Optional[tuple]] = [None] * len(pending)
    pool: Optional[ProcessPoolExecutor] = None
    try:
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)), mp_context=ctx
            )
            futures = [
                pool.submit(_diagnose_worker, idx) for idx in range(len(pending))
            ]
        except OSError:
            return None
        # One shared deadline for the whole batch: the victims run
        # concurrently, so per-future waits consume the same budget.
        deadline = time.monotonic() + timeout_s
        for idx, future in enumerate(futures):
            remaining = max(deadline - time.monotonic(), 0.0)
            try:
                results[idx] = future.result(timeout=remaining)
            except (FutureTimeout, BrokenProcessPool, OSError):
                # A dead or wedged worker poisons the whole pool (its
                # siblings share the executor's call queue): kill every
                # worker outright — terminate() is not enough for a hung
                # one — and recover the stragglers serially below.
                for proc in list(getattr(pool, "_processes", {}).values()):
                    proc.kill()
                break
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        _DIAG_STATE = None

    missing = [idx for idx, result in enumerate(results) if result is None]
    if missing:
        from ..core.diagnosis import Diagnoser
        from .runner import _diagnose_one

        with profile.stage("analyzer_recover"):
            for idx in missing:
                victim, trigger = pending[idx]
                recover_profile = StageProfile()
                outcome = _diagnose_one(
                    victim, trigger, config, net, reports_list, traced_of,
                    now_ns, Diagnoser(), recover_profile,
                )
                results[idx] = (outcome, recover_profile.to_dict())
    for _, stages in results:
        # Summed across workers: total analyzer CPU, same semantics as the
        # serial loop's accumulation (elapsed time is what benches gate).
        profile.absorb(stages)
    return [outcome for outcome, _ in results]
