"""Analytic hardware models for the testbed figures (§4.5, Fig 13/14).

Fig 13(a) reports Tofino resource usage of the P4 implementation; Fig 13(b)
shows telemetry SRAM scaling with epoch count and flow count; §4.5 reports
CPU poll latency (~80 ms for 2 epochs, ~120 ms for 4, with 64 ports and
4096 flows per epoch).  These are properties of the register layout, not of
traffic, so we model them analytically from the same layout arithmetic the
software telemetry uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..telemetry.records import (
    FLOW_ENTRY_BYTES,
    METER_ENTRY_BYTES,
    PORT_ENTRY_BYTES,
    PORT_STATUS_BYTES,
)

TOFINO_SRAM_BYTES = 120 * 1024 * 1024 // 8  # ~15 MB usable SRAM per pipe


@dataclass
class MemoryBreakdown:
    """Telemetry SRAM usage, bytes (Fig 13b's three series)."""

    flow_telemetry: int
    port_telemetry: int
    causality_structure: int

    @property
    def total(self) -> int:
        return self.flow_telemetry + self.port_telemetry + self.causality_structure


def telemetry_memory(
    num_epochs: int, flow_slots: int, num_ports: int = 64
) -> MemoryBreakdown:
    """Register bytes for a given telemetry sizing.

    Flow telemetry grows O(#flows); the port telemetry and the Figure-3
    causality structure are bounded by the port count (the paper's
    "small and constant" series).
    """
    return MemoryBreakdown(
        flow_telemetry=num_epochs * flow_slots * FLOW_ENTRY_BYTES,
        port_telemetry=num_epochs * num_ports * PORT_ENTRY_BYTES,
        causality_structure=(
            num_epochs * num_ports * num_ports * METER_ENTRY_BYTES
            + num_ports * PORT_STATUS_BYTES
        ),
    )


def tofino_resource_usage() -> Dict[str, float]:
    """Approximate resource shares of the Tofino prototype (Fig 13a).

    Modelled constants reflecting the prototype's reported footprint
    (~2500 lines of P4 across both pipelines): fractions of each resource
    class consumed.
    """
    return {
        "SRAM": 0.18,
        "TCAM": 0.05,
        "Stateful ALU": 0.25,
        "PHV": 0.21,
        "Stages": 10 / 12,
        "VLIW instructions": 0.15,
    }


def cpu_poll_time_ms(
    num_epochs: int, num_ports: int = 64, flow_slots: int = 4096
) -> float:
    """CPU time to DMA-sync and filter the telemetry registers (§4.5).

    Calibrated to the paper's measurements: 80 ms for 2 epochs and 120 ms
    for 4 (64 ports, 4096 flows/epoch) — a fixed REGISTER_SYNC setup cost
    plus a per-epoch scan cost proportional to the register volume.
    """
    base_ms = 40.0
    reference_epoch_bytes = (
        4096 * FLOW_ENTRY_BYTES + 64 * PORT_ENTRY_BYTES + 64 * 64 * METER_ENTRY_BYTES
    )
    epoch_bytes = (
        flow_slots * FLOW_ENTRY_BYTES
        + num_ports * PORT_ENTRY_BYTES
        + num_ports * num_ports * METER_ENTRY_BYTES
    )
    per_epoch_ms = 20.0 * epoch_bytes / reference_epoch_bytes
    return base_ms + num_epochs * per_epoch_ms


def total_collection_time_ms(num_switches: int, num_epochs: int) -> float:
    """End-to-end collection latency across switches (§4.5).

    Polling packets fan out within microseconds and each switch CPU polls
    in parallel, so total time is one switch's poll time — independent of
    the switch count (the paper's scalability claim).
    """
    del num_switches  # parallel collection: deliberately unused
    return cpu_poll_time_ms(num_epochs)
