"""The analyzer service: continuous trigger-to-diagnosis operation.

The runner in :mod:`repro.experiments.runner` scores crafted scenarios
offline.  This module is the *operational* layer a deployment would run:
it subscribes to detection-agent triggers, waits for the asynchronous
telemetry reads driven by the polling engine, shares one diagnosis among
concurrent complaints about the same anomaly (the paper's F1–F4 deadlock
victims), and keeps a queryable incident history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..collection.agent import DetectionAgent, TriggerEvent
from ..collection.collector import TelemetryCollector
from ..collection.polling import PollingEngine
from ..core.build import AnnotatedGraph, build_provenance
from ..core.diagnosis import Diagnoser
from ..core.report import Diagnosis
from ..sim.network import Network
from ..sim.packet import FlowKey
from ..telemetry.epoch import EpochScheme
from ..units import usec
from .runner import select_reports


@dataclass
class Incident:
    """One diagnosed anomaly occurrence, possibly with several victims."""

    first_trigger: TriggerEvent
    victims: List[FlowKey] = field(default_factory=list)
    diagnosis: Optional[Diagnosis] = None
    annotated: Optional[AnnotatedGraph] = None
    switches: Set[str] = field(default_factory=set)

    @property
    def time_ns(self) -> int:
        return self.first_trigger.time_ns

    def describe(self) -> str:
        head = (
            f"incident at t={self.time_ns / 1e6:.3f} ms, "
            f"{len(self.victims)} victim(s), "
            f"switches: {', '.join(sorted(self.switches)) or '-'}"
        )
        if self.diagnosis is None:
            return head + "\n  (no diagnosis)"
        return head + "\n" + self.diagnosis.describe()


@dataclass
class AnalyzerConfig:
    # Triggers whose causal traces overlap within this window are treated
    # as complaints about the same incident.
    incident_window_ns: int = usec(500)
    # Delay from trigger to diagnosis, covering polling propagation and the
    # collector's asynchronous register reads.
    diagnosis_delay_ns: int = usec(400)
    # Fan the per-epoch replay prewarm of each incident's telemetry across
    # this many forked workers before building the victims' graphs
    # (see ``repro.experiments.analyzerpool``); 1 stays in-process.
    analyzer_jobs: int = 1


class AnalyzerService:
    """Binds agent + engine + collector into a continuous diagnosis loop."""

    def __init__(
        self,
        network: Network,
        agent: DetectionAgent,
        engine: PollingEngine,
        collector: TelemetryCollector,
        scheme: EpochScheme,
        config: Optional[AnalyzerConfig] = None,
        diagnoser: Optional[Diagnoser] = None,
    ) -> None:
        self.network = network
        self.agent = agent
        self.engine = engine
        self.collector = collector
        self.scheme = scheme
        self.config = config if config is not None else AnalyzerConfig()
        self.diagnoser = diagnoser if diagnoser is not None else Diagnoser()
        self.incidents: List[Incident] = []
        self._open: List[Incident] = []
        # (incident time, reports seen) -> report selection.  The collector's
        # report list is append-only, so the pair fully determines the result;
        # deadlock incidents whose four victims trigger within one window
        # re-select against an unchanged list.
        self._select_cache: dict = {}
        agent.add_trigger_listener(self._on_trigger)

    # -- trigger handling -------------------------------------------------------

    def _on_trigger(self, event: TriggerEvent) -> None:
        incident = self._match_incident(event)
        if incident is not None:
            incident.victims.append(event.victim)
            return
        incident = Incident(first_trigger=event, victims=[event.victim])
        self._open.append(incident)
        self.incidents.append(incident)
        self.network.sim.schedule(
            self.config.diagnosis_delay_ns, lambda: self._diagnose(incident)
        )

    def _match_incident(self, event: TriggerEvent) -> Optional[Incident]:
        """An open incident whose causal trace overlaps this victim's."""
        now = self.network.sim.now
        trace = self.engine.switches_traced_for(event.victim)
        for incident in reversed(self.incidents):
            if now - incident.time_ns > self.config.incident_window_ns:
                break
            if not trace or trace & incident.switches:
                # No trace yet (polling in flight) within the window counts
                # as the same burst of complaints; overlapping traces always do.
                return incident
        return None

    # -- diagnosis -----------------------------------------------------------------

    def _diagnose(self, incident: Incident) -> None:
        """Diagnose each complaining victim; report the most severe view.

        Victims of the same incident see it from different vantage points —
        a flow local to the congested switch sees plain contention, while a
        flow paused hops away sees the full PFC causality.  The incident's
        diagnosis is the most severe (deepest) of its victims' diagnoses.
        """
        self.collector.flush_pending(self.network.sim.now)
        select_key = (incident.time_ns, len(self.collector.reports))
        raw = self._select_cache.get(select_key)
        if raw is None:
            raw = select_reports(self.collector.reports, incident.time_ns)
            self._select_cache[select_key] = raw
        if self.config.analyzer_jobs > 1:
            # Hot replay caches before the (serial, sim-clocked) victim
            # loop; results are identical either way — the cache entries
            # are exactly what _epoch_contribution would compute inline.
            from .analyzerpool import warm_replay_caches

            warm_replay_caches(
                list(raw.values()),
                self.scheme.epoch_size_ns,
                True,
                self.config.analyzer_jobs,
            )
        best: Optional[Diagnosis] = None
        best_annotated: Optional[AnnotatedGraph] = None
        for victim in dict.fromkeys(incident.victims):
            trace = self.engine.switches_traced_for(victim)
            incident.switches |= trace
            reports = {n: r for n, r in raw.items() if n in trace}
            if not reports:
                continue
            annotated = build_provenance(
                reports,
                self.network.topology,
                window_ns=self.scheme.window_ns,
                victim=victim,
                epoch_size_ns=self.scheme.epoch_size_ns,
            )
            src_host = self.network.topology.host_of_ip(victim.src_ip)
            victim_path = self.network.routing.flow_path(
                src_host, victim.dst_ip, victim
            )[1:]
            diagnosis = self.diagnoser.diagnose(
                annotated, victim, victim_path_ports=victim_path
            )
            if not diagnosis.findings:
                continue
            if best is None or diagnosis.primary().severity > best.primary().severity:
                best, best_annotated = diagnosis, annotated
        incident.diagnosis = best
        incident.annotated = best_annotated
        if incident in self._open:
            self._open.remove(incident)

    # -- queries ----------------------------------------------------------------------

    def diagnosed_incidents(self) -> List[Incident]:
        return [i for i in self.incidents if i.diagnosis is not None]

    def incidents_for(self, victim: FlowKey) -> List[Incident]:
        return [i for i in self.incidents if victim in i.victims]

    def summary(self) -> str:
        lines = [f"{len(self.incidents)} incident(s), "
                 f"{len(self.diagnosed_incidents())} diagnosed"]
        for incident in self.incidents:
            lines.append(incident.describe())
        return "\n".join(lines)


def deploy_analyzer(network: Network, **kwargs) -> AnalyzerService:
    """One-call operational deployment: Hawkeye stack + analyzer service."""
    from ..collection import deploy_hawkeye

    deployment, agent, engine, collector = deploy_hawkeye(network)
    return AnalyzerService(
        network,
        agent,
        engine,
        collector,
        scheme=deployment.config.scheme,
        **kwargs,
    )
