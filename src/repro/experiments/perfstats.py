"""Performance accounting for scenario runs.

Every :func:`repro.experiments.run_scenario` call times the simulation and
snapshots the engine's event-loop counters into a :class:`PerfStats`
record: events executed, events per wall-clock second, peak event-queue
depth, purged (cancelled) entries and compaction sweeps.  The benchmark
suite aggregates these into ``BENCH_perf.json`` so optimization work has
a before/after paper trail.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

BENCH_PERF_FILENAME = "BENCH_perf.json"


@dataclass
class PerfStats:
    """Wall-clock and event-loop statistics for one scenario run."""

    scenario: str
    wall_s: float
    events_run: int
    events_per_sec: float
    peak_pending_events: int
    events_purged: int = 0
    compactions: int = 0

    @classmethod
    def from_run(cls, scenario_name: str, sim: Any, wall_s: float) -> "PerfStats":
        """Snapshot a :class:`~repro.sim.engine.Simulator`'s counters."""
        events = sim.events_run
        return cls(
            scenario=scenario_name,
            wall_s=wall_s,
            events_run=events,
            events_per_sec=events / wall_s if wall_s > 0 else 0.0,
            peak_pending_events=sim.max_pending_entries,
            events_purged=sim.events_purged,
            compactions=sim.compactions,
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PerfStats":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})


def environment_info() -> Dict[str, str]:
    """The platform facts a perf number is meaningless without."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def write_bench_json(
    path: Union[str, Path], payload: Dict[str, Any]
) -> Path:
    """Write a benchmark payload (adds environment metadata); returns path."""
    path = Path(path)
    document = {"environment": environment_info(), **payload}
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def load_bench_json(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Read a benchmark payload; ``None`` if absent or unparsable."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
