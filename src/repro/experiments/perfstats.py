"""Performance accounting for scenario runs.

Every :func:`repro.experiments.run_scenario` call times the simulation and
snapshots the engine's event-loop counters into a :class:`PerfStats`
record: events executed, events per wall-clock second, peak event-queue
depth, purged (cancelled) entries and compaction sweeps.  The benchmark
suite aggregates these into ``BENCH_perf.json`` so optimization work has
a before/after paper trail.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

BENCH_PERF_FILENAME = "BENCH_perf.json"


@dataclass
class PerfStats:
    """Wall-clock and event-loop statistics for one scenario run."""

    scenario: str
    wall_s: float
    events_run: int
    events_per_sec: float
    peak_pending_events: int
    events_purged: int = 0
    compactions: int = 0
    # Memoization-cache effectiveness: cache name -> {"hits": N, "misses": N}.
    # Covers the process-global caches (serialization delay, pause quanta,
    # report aggregation, replay contribution) scoped to this run by
    # before/after differencing, plus the per-run instance caches (ECMP
    # select, telemetry snapshot/epoch materialization).
    caches: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Fault-injection and reliability counters (chaos runs): incident kind
    # or recovery action -> count.  Empty on fault-free runs.
    faults: Dict[str, int] = field(default_factory=dict)
    # Per-stage wall-clock breakdown from the runner's StageProfile:
    # stage name -> {"wall_s": float, "calls": int}.  Stages cover the whole
    # pipeline (simulate, flush_pending, select_reports, graph_build,
    # diagnose, qualify), so BENCH_perf.json can show where time goes.
    stages: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    # Sharded execution (``repro.experiments.shardrun``): worker count,
    # barrier accounting, and the aggregate event rate — total events
    # divided by the *slowest* shard's busy CPU seconds, i.e. the rate
    # the fabric achieves with one core per shard (CPU time so that
    # core-starved CI machines don't charge a shard for its siblings'
    # scheduler slices).  All zero on single-process runs.
    shards: int = 0
    barrier_epochs: int = 0
    barrier_stall_s: float = 0.0
    aggregate_events_per_sec: float = 0.0
    # Cross-shard frame transport accounting (sharded runs only): the mode
    # actually used ("shm" rings or pickled "pipe"), frames carried by each
    # path, and fallbacks (ring overflow / codec misses / rows failing the
    # write-back integrity verify).  Empty on single-process runs.
    transport: Dict[str, Any] = field(default_factory=dict)
    # Worker-supervision accounting (sharded runs only): the watchdog
    # timeout and fallback mode in force, plus — after a worker loss —
    # which shards were lost and which fallback actually ran.  Empty on
    # single-process runs.
    supervision: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_run(
        cls,
        scenario_name: str,
        sim: Any,
        wall_s: float,
        caches: Optional[Dict[str, Dict[str, int]]] = None,
        faults: Optional[Dict[str, int]] = None,
        stages: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> "PerfStats":
        """Snapshot a :class:`~repro.sim.engine.Simulator`'s counters."""
        events = sim.events_run
        return cls(
            scenario=scenario_name,
            wall_s=wall_s,
            events_run=events,
            events_per_sec=events / wall_s if wall_s > 0 else 0.0,
            peak_pending_events=sim.max_pending_entries,
            events_purged=sim.events_purged,
            compactions=sim.compactions,
            caches=caches if caches is not None else {},
            faults=faults if faults is not None else {},
            stages=stages if stages is not None else {},
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PerfStats":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})


def global_cache_counters() -> Dict[str, Tuple[int, int]]:
    """Current (hits, misses) of every process-global memoization cache.

    Runs scope these to themselves by snapshotting before and differencing
    after (see :func:`diff_cache_counters`) — the caches survive across
    runs in one process, so absolute values mix scenarios.
    """
    from ..core.build import CONTRIB_CACHE_STATS
    from ..sim.packet import PAUSE_NS_CACHE_STATS
    from ..telemetry.snapshot import AGG_CACHE_STATS
    from ..units import SER_DELAY_CACHE_STATS

    return {
        "serialization_delay": (SER_DELAY_CACHE_STATS[0], SER_DELAY_CACHE_STATS[1]),
        "pause_quanta": (PAUSE_NS_CACHE_STATS[0], PAUSE_NS_CACHE_STATS[1]),
        "report_agg": (AGG_CACHE_STATS[0], AGG_CACHE_STATS[1]),
        "replay_contribution": (CONTRIB_CACHE_STATS[0], CONTRIB_CACHE_STATS[1]),
    }


def diff_cache_counters(
    before: Dict[str, Tuple[int, int]], after: Dict[str, Tuple[int, int]]
) -> Dict[str, Dict[str, int]]:
    """Per-cache hit/miss deltas between two counter snapshots."""
    out: Dict[str, Dict[str, int]] = {}
    for name, (hits, misses) in after.items():
        h0, m0 = before.get(name, (0, 0))
        out[name] = {"hits": hits - h0, "misses": misses - m0}
    return out


def environment_info() -> Dict[str, Any]:
    """The platform facts a perf number is meaningless without."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count() or 1,
    }


def write_bench_json(
    path: Union[str, Path],
    payload: Dict[str, Any],
    environment_extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a benchmark payload (adds environment metadata); returns path.

    ``environment_extra`` merges run-shape facts (e.g. the shard count a
    fleet-scale gate ran with) into the environment block, next to the
    host's ``cpu_count``.  Extras already present in ``payload``'s
    environment survive the rewrite (platform facts are refreshed), so
    benchmark files can each contribute keys regardless of write order.
    """
    path = Path(path)
    environment = dict(payload.pop("environment", None) or {})
    environment.update(environment_info())
    if environment_extra:
        environment.update(environment_extra)
    document = {"environment": environment, **payload}
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def load_bench_json(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Read a benchmark payload; ``None`` if absent or unparsable."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
