"""Packet and flow-key models for the RDMA simulator.

Packets are plain mutable objects (``__slots__`` for speed) covering the
frame types the paper's system touches: RoCEv2 data, ACKs, DCQCN CNPs, PFC
PAUSE/RESUME frames, and Hawkeye polling packets (§3.4, Figure 5).
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Optional

# Traffic classes.  RoCEv2 data rides the lossless priority; ACK/CNP and
# Hawkeye polling packets ride the control priority, which PFC never pauses
# (the paper assigns polling packets "the same priority as control packets
# (e.g., CNP) to avoid potential queuing delay").
DATA_PRIORITY = 3
CONTROL_PRIORITY = 6

PFC_FRAME_SIZE = 64
ACK_SIZE = 64
CNP_SIZE = 64
POLLING_PACKET_SIZE = 64

# IEEE 802.1Qbb: one pause quantum is the time to transmit 512 bits.
PAUSE_QUANTA_BITS = 512
MAX_PAUSE_QUANTA = 0xFFFF


@dataclass(frozen=True, order=True)
class FlowKey:
    """A RoCEv2 5-tuple identifying one flow.

    Keys are hashed on every per-packet dict access across the simulator and
    telemetry, so the hash is computed once at construction — and it is the
    *stable* CRC32 (not Python's per-process salted hash), which keeps any
    hash-ordered container behaviour identical between the serial runner and
    parallel worker processes.
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int = 17  # RoCEv2 rides UDP

    def __post_init__(self) -> None:
        blob = (
            f"{self.src_ip}|{self.dst_ip}|{self.src_port}|"
            f"{self.dst_port}|{self.protocol}"
        ).encode()
        object.__setattr__(self, "_crc", zlib.crc32(blob))

    def __hash__(self) -> int:  # process-independent, precomputed
        return self._crc  # type: ignore[attr-defined]

    def stable_hash(self) -> int:
        """Deterministic 32-bit hash (Python's ``hash`` is salted per run)."""
        return self._crc  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return (
            f"{self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port}"
            f"/{self.protocol}"
        )


class PacketType(enum.Enum):
    DATA = "data"
    ACK = "ack"
    CNP = "cnp"
    PFC = "pfc"
    POLLING = "polling"


class PollingFlag(enum.IntEnum):
    """Polling flag specifications (Table 1)."""

    USELESS = 0b00
    VICTIM_PATH = 0b01
    PFC_CAUSALITY = 0b10
    BOTH = 0b11

    @property
    def traces_victim_path(self) -> bool:
        return bool(self.value & 0b01)

    @property
    def traces_pfc(self) -> bool:
        return bool(self.value & 0b10)


class Packet:
    """One simulated frame.

    ``flow`` is set for DATA/ACK/CNP/POLLING; PFC frames are per-port and
    carry ``pfc_priority``/``pause_quanta`` instead (quanta 0 is a RESUME).
    ``ingress_port`` is transient per-hop bookkeeping used for buffer
    accounting and the PFC causality meters.

    Packets are pooled: terminal consumers (a host absorbing a frame, a
    switch absorbing a PFC/polling frame) call :meth:`recycle`, and the
    factory classmethods reuse recycled objects instead of allocating.  A
    recycled packet must never be retained — observers and telemetry read
    fields synchronously during dispatch and keep only scalars, which is
    what makes the freelist safe.
    """

    __slots__ = (
        "ptype",
        "flow",
        "size",
        "priority",
        "seq",
        "create_time",
        "ecn_capable",
        "ce_marked",
        "pfc_priority",
        "pause_quanta",
        "polling_flag",
        "ingress_port",
        "echo_time",
        "acked_bytes",
        "is_last",
        "hops",
    )

    def __init__(
        self,
        ptype: PacketType,
        size: int,
        priority: int,
        flow: Optional[FlowKey] = None,
        seq: int = 0,
        create_time: int = 0,
    ) -> None:
        self.ptype = ptype
        self.flow = flow
        self.size = size
        self.priority = priority
        self.seq = seq
        self.create_time = create_time
        self.ecn_capable = ptype is PacketType.DATA
        self.ce_marked = False
        self.pfc_priority = 0
        self.pause_quanta = 0
        self.polling_flag = PollingFlag.USELESS
        self.ingress_port: Optional[int] = None
        self.echo_time = 0
        self.acked_bytes = 0
        self.is_last = False
        self.hops = 0

    # -- freelist -------------------------------------------------------------

    _pool: list = []
    _POOL_MAX = 8192

    @classmethod
    def _new(
        cls,
        ptype: PacketType,
        size: int,
        priority: int,
        flow: Optional[FlowKey] = None,
        seq: int = 0,
        create_time: int = 0,
    ) -> "Packet":
        """Pooled allocation: reuse a recycled packet when one is available."""
        pool = cls._pool
        if not pool:
            return cls(ptype, size, priority, flow=flow, seq=seq, create_time=create_time)
        pkt = pool.pop()
        pkt.ptype = ptype
        pkt.flow = flow
        pkt.size = size
        pkt.priority = priority
        pkt.seq = seq
        pkt.create_time = create_time
        pkt.ecn_capable = ptype is PacketType.DATA
        pkt.ce_marked = False
        pkt.pfc_priority = 0
        pkt.pause_quanta = 0
        pkt.polling_flag = PollingFlag.USELESS
        pkt.ingress_port = None
        pkt.echo_time = 0
        pkt.acked_bytes = 0
        pkt.is_last = False
        pkt.hops = 0
        return pkt

    def recycle(self) -> None:
        """Return a dead packet to the pool (caller must drop its reference)."""
        pool = Packet._pool
        if len(pool) < Packet._POOL_MAX:
            pool.append(self)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def data(
        cls,
        flow: FlowKey,
        size: int,
        seq: int,
        now: int,
        priority: int = DATA_PRIORITY,
        is_last: bool = False,
    ) -> "Packet":
        pkt = cls._new(PacketType.DATA, size, priority, flow=flow, seq=seq, create_time=now)
        pkt.is_last = is_last
        return pkt

    @classmethod
    def ack(cls, flow: FlowKey, now: int, echo_time: int, acked_bytes: int) -> "Packet":
        """ACK for ``flow`` (the key is the *data* flow's key, not reversed)."""
        pkt = cls._new(PacketType.ACK, ACK_SIZE, CONTROL_PRIORITY, flow=flow, create_time=now)
        pkt.echo_time = echo_time
        pkt.acked_bytes = acked_bytes
        return pkt

    @classmethod
    def cnp(cls, flow: FlowKey, now: int) -> "Packet":
        return cls._new(PacketType.CNP, CNP_SIZE, CONTROL_PRIORITY, flow=flow, create_time=now)

    @classmethod
    def pfc(cls, priority: int, quanta: int, now: int) -> "Packet":
        if not 0 <= quanta <= MAX_PAUSE_QUANTA:
            raise ValueError(f"pause quanta {quanta} out of range")
        pkt = cls._new(PacketType.PFC, PFC_FRAME_SIZE, CONTROL_PRIORITY, create_time=now)
        pkt.pfc_priority = priority
        pkt.pause_quanta = quanta
        return pkt

    @classmethod
    def polling(cls, victim: FlowKey, flag: PollingFlag, now: int) -> "Packet":
        """A Hawkeye polling packet (Figure 5): victim 5-tuple + flag."""
        pkt = cls._new(
            PacketType.POLLING,
            POLLING_PACKET_SIZE,
            CONTROL_PRIORITY,
            flow=victim,
            create_time=now,
        )
        pkt.polling_flag = flag
        return pkt

    @property
    def is_pause(self) -> bool:
        return self.ptype is PacketType.PFC and self.pause_quanta > 0

    @property
    def is_resume(self) -> bool:
        return self.ptype is PacketType.PFC and self.pause_quanta == 0

    def copy_polling(self, flag: "PollingFlag", now: int) -> "Packet":
        """Duplicate a polling packet with a (possibly different) flag."""
        assert self.ptype is PacketType.POLLING and self.flow is not None
        dup = Packet.polling(self.flow, flag, now)
        dup.hops = self.hops
        return dup

    def __repr__(self) -> str:
        if self.ptype is PacketType.PFC:
            kind = "PAUSE" if self.is_pause else "RESUME"
            return f"Packet(PFC {kind} prio={self.pfc_priority})"
        if self.ptype is PacketType.POLLING:
            return f"Packet(POLLING flag={self.polling_flag:#04b} victim={self.flow})"
        return f"Packet({self.ptype.value} {self.flow} seq={self.seq} size={self.size})"


# (quanta, bandwidth) pairs are drawn from a handful of config values, so a
# plain dict memoizes every conversion the hot PFC paths ever ask for.
_PAUSE_NS_CACHE: dict = {}
PAUSE_NS_CACHE_STATS = [0, 0]  # [hits, misses], surfaced via PerfStats


def pause_quanta_to_ns(quanta: int, bandwidth_bytes_per_sec: float) -> int:
    """Duration of ``quanta`` pause quanta on a link of the given speed."""
    key = (quanta, bandwidth_bytes_per_sec)
    cached = _PAUSE_NS_CACHE.get(key)
    if cached is None:
        bits = quanta * PAUSE_QUANTA_BITS
        cached = max(0, int(round(bits / 8 * 1e9 / bandwidth_bytes_per_sec)))
        _PAUSE_NS_CACHE[key] = cached
        PAUSE_NS_CACHE_STATS[1] += 1
    else:
        PAUSE_NS_CACHE_STATS[0] += 1
    return cached
