"""Discrete-event simulation engine.

A hybrid slotted-timer-wheel + heap scheduler with integer-nanosecond
timestamps:

- Events are stored in *slots*: one FIFO list per distinct timestamp
  (a hashed timing wheel whose slots are materialized on demand).  The
  dominant event classes — PFC pause refresh/expiry and per-packet dequeue
  wakeups — land on already-occupied timestamps more than half the time,
  so scheduling them is an O(1) list append with no heap traffic.
- A binary heap orders only the *distinct* occupied slot times, each
  pushed exactly once when its slot is created.
- Cancellation is O(1) (a flag on the handle); dead entries are purged
  when their slot drains and by periodic compaction sweeps, so cancelled
  entries cannot accumulate across long runs.

Within a slot, events run in schedule order (each append carries a later
schedule sequence), which keeps runs fully deterministic; across slots the
heap yields times in increasing order.  Callbacks may carry pre-bound
arguments (``schedule(delay, fn, *args)``) so hot call sites avoid
allocating a closure per event.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, Dict, List, Optional

# Compaction sweep cadence: after this many executed events, sweep all
# slots and drop cancelled entries.  Amortized cost is O(pending / interval)
# per event — negligible — while bounding dead-entry accumulation.
COMPACT_INTERVAL_EVENTS = 1 << 15


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: int, fn: Callable[..., None], args: tuple) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; O(1), it will be dropped when its slot drains."""
        self.cancelled = True


class PeriodicHandle:
    """A self-rescheduling periodic event; ``cancel()`` stops the chain.

    Each firing cancels nothing and allocates nothing beyond the next
    :class:`EventHandle`; cancellation flags the live handle, so the chain
    dies at its next scheduled instant like any other cancelled event.
    """

    __slots__ = ("_sim", "interval_ns", "fn", "fired", "_next", "cancelled")

    def __init__(self, sim: "Simulator", interval_ns: int, fn: Callable[[], None]) -> None:
        self._sim = sim
        self.interval_ns = interval_ns
        self.fn = fn
        self.fired = 0
        self.cancelled = False
        self._next = sim.schedule(interval_ns, self._fire)

    def _fire(self) -> None:
        self.fired += 1
        self._next = self._sim.schedule(self.interval_ns, self._fire)
        self.fn()

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._next.cancel()


class Simulator:
    """The event loop shared by every simulated component."""

    def __init__(self) -> None:
        self.now: int = 0
        # time -> FIFO list of handles scheduled for that instant.
        self._slots: Dict[int, List[EventHandle]] = {}
        # Heap of occupied slot times; exactly one entry per live slot.
        self._slot_heap: List[int] = []
        self._events_run: int = 0
        self._events_purged: int = 0
        self._compactions: int = 0
        self._pending: int = 0
        self._max_pending: int = 0
        self._next_compact_at: int = COMPACT_INTERVAL_EVENTS

    # -- introspection (performance reporting & tests) -------------------------

    @property
    def events_run(self) -> int:
        """Total events executed so far."""
        return self._events_run

    @property
    def events_purged(self) -> int:
        """Cancelled entries dropped (at slot drain or by compaction)."""
        return self._events_purged

    @property
    def compactions(self) -> int:
        """Number of compaction sweeps performed."""
        return self._compactions

    @property
    def pending_entries(self) -> int:
        """Entries currently queued (live + cancelled-but-unpurged)."""
        return self._pending

    @property
    def max_pending_entries(self) -> int:
        """Peak event-queue depth observed (perf accounting)."""
        return self._max_pending

    def counters(self) -> Dict[str, int]:
        """Event-loop counters as one dict (metrics-registry absorption)."""
        return {
            "events_run": self._events_run,
            "events_purged": self._events_purged,
            "compactions": self._compactions,
            "pending_entries": self._pending,
            "max_pending_entries": self._max_pending,
        }

    # -- scheduling -------------------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[..., None], *args) -> EventHandle:
        """Run ``fn(*args)`` after ``delay_ns`` nanoseconds of simulated time."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ns})")
        return self.schedule_at(self.now + delay_ns, fn, *args)

    def schedule_at(self, time_ns: int, fn: Callable[..., None], *args) -> EventHandle:
        """Run ``fn(*args)`` at an absolute simulated time."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at {time_ns} (now is {self.now})"
            )
        handle = EventHandle(time_ns, fn, args)
        slot = self._slots.get(time_ns)
        if slot is None:
            self._slots[time_ns] = [handle]
            heappush(self._slot_heap, time_ns)
        else:
            slot.append(handle)
        pending = self._pending + 1
        self._pending = pending
        if pending > self._max_pending:
            self._max_pending = pending
        return handle

    def schedule_every(
        self, interval_ns: int, fn: Callable[[], None]
    ) -> PeriodicHandle:
        """Run ``fn()`` every ``interval_ns``, starting one interval from now."""
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        return PeriodicHandle(self, interval_ns, fn)

    # -- the event loop ---------------------------------------------------------

    def run(self, until_ns: Optional[int] = None) -> None:
        """Drain the event queue, optionally stopping at ``until_ns``.

        Events scheduled exactly at ``until_ns`` still execute; the clock
        never runs past it.  Cancelled head entries (including whole dead
        slots) are purged *before* the stopping check, so the ``until_ns``
        comparison never consults a dead head entry.
        """
        slots = self._slots
        slot_heap = self._slot_heap
        while slot_heap:
            time_ns = slot_heap[0]
            slot = slots[time_ns]
            # Drop the cancelled prefix so the head is live (or the slot dies).
            i = 0
            n = len(slot)
            while i < n and slot[i].cancelled:
                i += 1
            if i == n:
                heappop(slot_heap)
                del slots[time_ns]
                self._events_purged += n
                self._pending -= n
                continue
            if until_ns is not None and time_ns > until_ns:
                if i:
                    del slot[:i]
                    self._events_purged += i
                    self._pending -= i
                break
            # Detach the slot; same-time events scheduled by callbacks open a
            # fresh slot for this time and run after it (schedule order).
            heappop(slot_heap)
            del slots[time_ns]
            self.now = time_ns
            self._pending -= n
            executed = 0
            while i < n:
                handle = slot[i]
                i += 1
                if handle.cancelled:
                    continue
                executed += 1
                handle.fn(*handle.args)
            self._events_run += executed
            self._events_purged += n - executed
            if self._events_run >= self._next_compact_at:
                self._next_compact_at = self._events_run + COMPACT_INTERVAL_EVENTS
                self.compact()
        if until_ns is not None and self.now < until_ns:
            self.now = until_ns

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if the queue is idle."""
        slots = self._slots
        slot_heap = self._slot_heap
        while slot_heap:
            time_ns = slot_heap[0]
            slot = slots[time_ns]
            i = 0
            n = len(slot)
            while i < n and slot[i].cancelled:
                i += 1
            if i < n:
                if i:
                    del slot[:i]
                    self._events_purged += i
                    self._pending -= i
                return time_ns
            heappop(slot_heap)
            del slots[time_ns]
            self._events_purged += n
            self._pending -= n
        return None

    def compact(self) -> int:
        """Drop every cancelled entry and empty slot; returns entries purged.

        Runs automatically every ``COMPACT_INTERVAL_EVENTS`` executed events;
        callers with bursty cancellation patterns may invoke it directly.
        """
        purged = 0
        dead_slots = []
        for time_ns, slot in self._slots.items():
            if any(h.cancelled for h in slot):
                live = [h for h in slot if not h.cancelled]
                purged += len(slot) - len(live)
                if live:
                    self._slots[time_ns] = live
                else:
                    dead_slots.append(time_ns)
        if dead_slots:
            for time_ns in dead_slots:
                del self._slots[time_ns]
            # Rebuild in place: ``run`` holds a local alias to this list.
            self._slot_heap[:] = self._slots.keys()
            heapify(self._slot_heap)
        self._events_purged += purged
        self._pending -= purged
        self._compactions += 1
        return purged
