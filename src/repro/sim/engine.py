"""Discrete-event simulation engine.

A minimal, fast event loop: integer-nanosecond timestamps, a binary heap of
``(time, sequence, callback)`` entries, and cancellable handles.  The
sequence number breaks ties so same-time events run in schedule order, which
keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("time", "fn", "cancelled")

    def __init__(self, time: int, fn: Callable[[], None]) -> None:
        self.time = time
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class Simulator:
    """The event loop shared by every simulated component."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[tuple] = []
        self._seq: int = 0
        self._events_run: int = 0

    @property
    def events_run(self) -> int:
        """Total events executed so far (for performance reporting)."""
        return self._events_run

    def schedule(self, delay_ns: int, fn: Callable[[], None]) -> EventHandle:
        """Run ``fn`` after ``delay_ns`` nanoseconds of simulated time."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ns})")
        return self.schedule_at(self.now + delay_ns, fn)

    def schedule_at(self, time_ns: int, fn: Callable[[], None]) -> EventHandle:
        """Run ``fn`` at an absolute simulated time."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at {time_ns} (now is {self.now})"
            )
        handle = EventHandle(time_ns, fn)
        heapq.heappush(self._heap, (time_ns, self._seq, handle))
        self._seq += 1
        return handle

    def run(self, until_ns: Optional[int] = None) -> None:
        """Drain the event queue, optionally stopping at ``until_ns``.

        Events scheduled exactly at ``until_ns`` still execute; the clock
        never runs past it.
        """
        while self._heap:
            time_ns, _, handle = self._heap[0]
            if until_ns is not None and time_ns > until_ns:
                break
            heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time_ns
            self._events_run += 1
            handle.fn()
        if until_ns is not None and self.now < until_ns:
            self.now = until_ns

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if the queue is idle."""
        while self._heap:
            time_ns, _, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return time_ns
        return None
