"""Discrete-event simulation engine.

A hybrid slotted-timer-wheel + heap scheduler with integer-nanosecond
timestamps:

- Events are stored in *slots*: one FIFO list per distinct timestamp
  (a hashed timing wheel whose slots are materialized on demand).  The
  dominant event classes — PFC pause refresh/expiry and per-packet dequeue
  wakeups — land on already-occupied timestamps more than half the time,
  so scheduling them is an O(1) list append with no heap traffic.
- A binary heap orders only the *distinct* occupied slot times, each
  pushed exactly once when its slot is created.
- Cancellation is O(1) (a flag on the handle); dead entries are purged
  when their slot drains and by periodic compaction sweeps, so cancelled
  entries cannot accumulate across long runs.

Within a slot, events run in schedule order (each append carries a later
schedule sequence), which keeps runs fully deterministic; across slots the
heap yields times in increasing order.  Callbacks may carry pre-bound
arguments (``schedule(delay, fn, *args)``) so hot call sites avoid
allocating a closure per event.

Inter-node packet deliveries use a separate *delivery band* per timestamp
(:meth:`Simulator.schedule_delivery`), merged with the ordinary slot by
*schedule time*: an entry scheduled (or sent) earlier executes earlier, an
exact tie goes to the ordinary entry, and deliveries tied on send time
order first by the schedule time of the event that issued the send (its
ordering provenance), then by the canonical ``(source, per-source
sequence)`` key.
Because a delivery's position no longer depends on *which process issued
the schedule call* — only on shippable values — the sharded runner
(``repro.sim.shard``) can split one fabric across worker processes and
still replay the exact per-node event order of a single-process run,
while a single-process run deviates from the legacy scheduler only on
exact schedule-time ties.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from operator import itemgetter
from typing import Callable, Dict, List, Optional, Tuple

_DELIVERY_ORDER = itemgetter(0)

# Compaction sweep cadence: after this many executed events, sweep all
# slots and drop cancelled entries.  Amortized cost is O(pending / interval)
# per event — negligible — while bounding dead-entry accumulation.
COMPACT_INTERVAL_EVENTS = 1 << 15


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("time", "sched", "fn", "args", "cancelled")

    def __init__(
        self, time: int, sched: int, fn: Callable[..., None], args: tuple
    ) -> None:
        self.time = time
        self.sched = sched  # simulated instant the schedule call was made
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; O(1), it will be dropped when its slot drains."""
        self.cancelled = True


class PeriodicHandle:
    """A self-rescheduling periodic event; ``cancel()`` stops the chain.

    Each firing cancels nothing and allocates nothing beyond the next
    :class:`EventHandle`; cancellation flags the live handle, so the chain
    dies at its next scheduled instant like any other cancelled event.
    """

    __slots__ = ("_sim", "interval_ns", "fn", "fired", "_next", "cancelled")

    def __init__(self, sim: "Simulator", interval_ns: int, fn: Callable[[], None]) -> None:
        self._sim = sim
        self.interval_ns = interval_ns
        self.fn = fn
        self.fired = 0
        self.cancelled = False
        self._next = sim.schedule(interval_ns, self._fire)

    def _fire(self) -> None:
        self.fired += 1
        self._next = self._sim.schedule(self.interval_ns, self._fire)
        self.fn()

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._next.cancel()


class Simulator:
    """The event loop shared by every simulated component."""

    def __init__(self) -> None:
        self.now: int = 0
        # Schedule time of the entry currently executing: ``handle.sched``
        # for ordinary events, the send time for delivery entries.  Sends
        # issued from inside a callback inherit it as their ordering
        # provenance (see Network.deliver) — a per-node, shippable value.
        self.exec_sched: int = 0
        # time -> FIFO list of handles scheduled for that instant.
        self._slots: Dict[int, List[EventHandle]] = {}
        # Heap of occupied slot times; exactly one entry per live slot.
        self._slot_heap: List[int] = []
        # time -> list of (order_key, fn, args) packet deliveries; executed
        # after all ordinary events at that time, sorted by order_key.
        self._bands: Dict[int, List[Tuple[tuple, Callable[..., None], tuple]]] = {}
        self._band_heap: List[int] = []
        self._events_run: int = 0
        self._events_purged: int = 0
        self._compactions: int = 0
        self._pending: int = 0
        self._max_pending: int = 0
        self._next_compact_at: int = COMPACT_INTERVAL_EVENTS

    # -- introspection (performance reporting & tests) -------------------------

    @property
    def events_run(self) -> int:
        """Total events executed so far."""
        return self._events_run

    @property
    def events_purged(self) -> int:
        """Cancelled entries dropped (at slot drain or by compaction)."""
        return self._events_purged

    @property
    def compactions(self) -> int:
        """Number of compaction sweeps performed."""
        return self._compactions

    @property
    def pending_entries(self) -> int:
        """Entries currently queued (live + cancelled-but-unpurged)."""
        return self._pending

    @property
    def max_pending_entries(self) -> int:
        """Peak event-queue depth observed (perf accounting)."""
        return self._max_pending

    def counters(self) -> Dict[str, int]:
        """Event-loop counters as one dict (metrics-registry absorption)."""
        return {
            "events_run": self._events_run,
            "events_purged": self._events_purged,
            "compactions": self._compactions,
            "pending_entries": self._pending,
            "max_pending_entries": self._max_pending,
        }

    # -- scheduling -------------------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[..., None], *args) -> EventHandle:
        """Run ``fn(*args)`` after ``delay_ns`` nanoseconds of simulated time."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ns})")
        return self.schedule_at(self.now + delay_ns, fn, *args)

    def schedule_at(self, time_ns: int, fn: Callable[..., None], *args) -> EventHandle:
        """Run ``fn(*args)`` at an absolute simulated time."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at {time_ns} (now is {self.now})"
            )
        handle = EventHandle(time_ns, self.now, fn, args)
        slot = self._slots.get(time_ns)
        if slot is None:
            self._slots[time_ns] = [handle]
            heappush(self._slot_heap, time_ns)
        else:
            slot.append(handle)
        pending = self._pending + 1
        self._pending = pending
        if pending > self._max_pending:
            self._max_pending = pending
        return handle

    def schedule_delivery(
        self, time_ns: int, order_key: tuple, fn: Callable[..., None], *args
    ) -> None:
        """Queue an inter-node packet delivery for ``time_ns``.

        ``order_key`` must be ``(send_time, trigger_sched, source node,
        per-source seq)`` where ``trigger_sched`` is :attr:`exec_sched` at
        the send call: the run loop merges deliveries with ordinary events
        by schedule/send time (ordinary entry wins an exact tie) and orders
        deliveries tied on send time by the schedule time of the event that
        issued the send, then by the canonical source key.  Delivery entries are not
        cancellable (packets in flight cannot be recalled), which keeps the
        band free of dead-entry bookkeeping.
        """
        if time_ns < self.now:
            raise ValueError(
                f"cannot deliver at {time_ns} (now is {self.now})"
            )
        band = self._bands.get(time_ns)
        if band is None:
            self._bands[time_ns] = [(order_key, fn, args)]
            heappush(self._band_heap, time_ns)
        else:
            band.append((order_key, fn, args))
        pending = self._pending + 1
        self._pending = pending
        if pending > self._max_pending:
            self._max_pending = pending

    def schedule_every(
        self, interval_ns: int, fn: Callable[[], None]
    ) -> PeriodicHandle:
        """Run ``fn()`` every ``interval_ns``, starting one interval from now."""
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        return PeriodicHandle(self, interval_ns, fn)

    # -- the event loop ---------------------------------------------------------

    def run(self, until_ns: Optional[int] = None) -> None:
        """Drain the event queue, optionally stopping at ``until_ns``.

        Events scheduled exactly at ``until_ns`` still execute; the clock
        never runs past it.  Cancelled head entries (including whole dead
        slots) are purged *before* the stopping check, so the ``until_ns``
        comparison never consults a dead head entry.

        Deliveries queued via :meth:`schedule_delivery` for an instant run
        only once every ordinary slot at that instant (including same-time
        chains the slot spawns) has drained, in ``order_key`` order.
        """
        slots = self._slots
        slot_heap = self._slot_heap
        bands = self._bands
        band_heap = self._band_heap
        while True:
            # Find the next live ordinary slot, purging dead heads on the way.
            slot_time: Optional[int] = None
            slot: List[EventHandle] = []
            i = 0
            while slot_heap:
                time_ns = slot_heap[0]
                slot = slots[time_ns]
                # Drop the cancelled prefix so the head is live (or the slot dies).
                i = 0
                n = len(slot)
                while i < n and slot[i].cancelled:
                    i += 1
                if i == n:
                    heappop(slot_heap)
                    del slots[time_ns]
                    self._events_purged += n
                    self._pending -= n
                    continue
                slot_time = time_ns
                break
            band_time = band_heap[0] if band_heap else None
            if slot_time is None and band_time is None:
                break
            if band_time is not None and (slot_time is None or band_time < slot_time):
                next_time = band_time
            else:
                next_time = slot_time
            assert next_time is not None
            if until_ns is not None and next_time > until_ns:
                if slot_time == next_time and i:
                    del slot[:i]
                    self._events_purged += i
                    self._pending -= i
                break
            # Detach everything queued for this instant.  Same-time events
            # scheduled by callbacks open a fresh slot and run in a later
            # pass (their schedule time equals this instant, so they sort
            # after every already-queued entry).
            batch: List[tuple] = []
            if band_time == next_time:
                heappop(band_heap)
                batch = bands.pop(next_time)
                if len(batch) > 1:
                    batch.sort(key=_DELIVERY_ORDER)
            if slot_time == next_time:
                heappop(slot_heap)
                del slots[next_time]
            else:
                slot = []
                i = 0
            self.now = next_time
            n = len(slot)
            blen = len(batch)
            self._pending -= n + blen
            # Merge by schedule/send time: earlier-scheduled runs first, an
            # ordinary entry wins an exact tie.  Slot entries are appended
            # in nondecreasing schedule order and the band is sorted, so a
            # single forward merge reproduces the global order.
            slot_run = 0
            bi = 0
            while i < n and bi < blen:
                handle = slot[i]
                if handle.cancelled:
                    i += 1
                    continue
                if handle.sched <= batch[bi][0][0]:
                    i += 1
                    slot_run += 1
                    self.exec_sched = handle.sched
                    handle.fn(*handle.args)
                else:
                    entry = batch[bi]
                    bi += 1
                    self.exec_sched = entry[0][0]
                    entry[1](*entry[2])
            while i < n:
                handle = slot[i]
                i += 1
                if handle.cancelled:
                    continue
                slot_run += 1
                self.exec_sched = handle.sched
                handle.fn(*handle.args)
            while bi < blen:
                entry = batch[bi]
                bi += 1
                self.exec_sched = entry[0][0]
                entry[1](*entry[2])
            self._events_run += slot_run + blen
            self._events_purged += n - slot_run
            if self._events_run >= self._next_compact_at:
                self._next_compact_at = self._events_run + COMPACT_INTERVAL_EVENTS
                self.compact()
        if until_ns is not None and self.now < until_ns:
            self.now = until_ns

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if the queue is idle."""
        slots = self._slots
        slot_heap = self._slot_heap
        slot_time: Optional[int] = None
        while slot_heap:
            time_ns = slot_heap[0]
            slot = slots[time_ns]
            i = 0
            n = len(slot)
            while i < n and slot[i].cancelled:
                i += 1
            if i < n:
                if i:
                    del slot[:i]
                    self._events_purged += i
                    self._pending -= i
                slot_time = time_ns
                break
            heappop(slot_heap)
            del slots[time_ns]
            self._events_purged += n
            self._pending -= n
        if self._band_heap:
            band_time = self._band_heap[0]
            if slot_time is None or band_time < slot_time:
                return band_time
        return slot_time

    def compact(self) -> int:
        """Drop every cancelled entry and empty slot; returns entries purged.

        Runs automatically every ``COMPACT_INTERVAL_EVENTS`` executed events;
        callers with bursty cancellation patterns may invoke it directly.
        """
        purged = 0
        dead_slots = []
        for time_ns, slot in self._slots.items():
            if any(h.cancelled for h in slot):
                live = [h for h in slot if not h.cancelled]
                purged += len(slot) - len(live)
                if live:
                    self._slots[time_ns] = live
                else:
                    dead_slots.append(time_ns)
        if dead_slots:
            for time_ns in dead_slots:
                del self._slots[time_ns]
            # Rebuild in place: ``run`` holds a local alias to this list.
            self._slot_heap[:] = self._slots.keys()
            heapify(self._slot_heap)
        self._events_purged += purged
        self._pending -= purged
        self._compactions += 1
        return purged
