"""Event tracing: structured recording of PFC and queue dynamics.

A :class:`NetworkTracer` attaches to every switch and records PAUSE/RESUME
events and (sampled) queue depths as plain records, with query helpers and
a JSON-lines export.  It is the debugging companion to the telemetry
system: telemetry is what the *switches* can afford to keep; the tracer is
the omniscient view used to validate them and to visualize experiments.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import IO, Dict, Iterable, List, Optional, Tuple

from ..topology.graph import PortRef
from .network import Network
from .packet import Packet, PacketType
from .switch import Switch, SwitchObserver


@dataclass(frozen=True)
class PfcEvent:
    """One PAUSE/RESUME frame observation."""

    time_ns: int
    switch: str
    port: int
    priority: int
    kind: str  # "pause" | "resume"
    direction: str  # "rx" | "tx"

    @property
    def port_ref(self) -> PortRef:
        return PortRef(self.switch, self.port)


@dataclass(frozen=True)
class QueueSample:
    """Egress queue depth at one enqueue instant."""

    time_ns: int
    switch: str
    port: int
    depth_pkts: int
    depth_bytes: int
    paused: bool


class NetworkTracer(SwitchObserver):
    """Records PFC events and queue samples across the fabric."""

    def __init__(
        self,
        network: Network,
        sample_queue_every: int = 16,
        switches: Optional[List[str]] = None,
    ) -> None:
        """``sample_queue_every``: record one queue sample per N data
        enqueues per (switch, port) — full per-packet sampling is rarely
        needed and triples memory."""
        self.network = network
        self.sample_queue_every = max(1, sample_queue_every)
        self.pfc_events: List[PfcEvent] = []
        self.queue_samples: List[QueueSample] = []
        self._enqueue_counts: Dict[Tuple[str, int], int] = {}
        network.add_switch_observer(self, switches)

    # -- observer hooks ----------------------------------------------------------

    def on_pfc_received(self, switch: Switch, time_ns: int, port: int, priority: int, quanta: int) -> None:
        self.pfc_events.append(
            PfcEvent(
                time_ns=time_ns,
                switch=switch.name,
                port=port,
                priority=priority,
                kind="pause" if quanta > 0 else "resume",
                direction="rx",
            )
        )

    def on_pfc_sent(self, switch: Switch, time_ns: int, port: int, priority: int, quanta: int) -> None:
        self.pfc_events.append(
            PfcEvent(
                time_ns=time_ns,
                switch=switch.name,
                port=port,
                priority=priority,
                kind="pause" if quanta > 0 else "resume",
                direction="tx",
            )
        )

    def on_egress_enqueue(
        self,
        switch: Switch,
        time_ns: int,
        pkt: Packet,
        egress_port: int,
        ingress_port,
        queue_depth_pkts: int,
        queue_bytes: int,
        port_paused: bool,
    ) -> None:
        if pkt.ptype is not PacketType.DATA:
            return
        key = (switch.name, egress_port)
        count = self._enqueue_counts.get(key, 0)
        self._enqueue_counts[key] = count + 1
        if count % self.sample_queue_every:
            return
        self.queue_samples.append(
            QueueSample(
                time_ns=time_ns,
                switch=switch.name,
                port=egress_port,
                depth_pkts=queue_depth_pkts,
                depth_bytes=queue_bytes,
                paused=port_paused,
            )
        )

    # -- queries -----------------------------------------------------------------------

    def pause_events(self, switch: Optional[str] = None) -> List[PfcEvent]:
        return [
            e
            for e in self.pfc_events
            if e.kind == "pause" and (switch is None or e.switch == switch)
        ]

    def paused_intervals(self, port: PortRef, priority: int = 3) -> List[Tuple[int, int]]:
        """(start, end) spans during which ``port`` was held paused (rx).

        An unresumed trailing pause ends at the last traced event time.
        """
        events = sorted(
            (
                e
                for e in self.pfc_events
                if e.direction == "rx"
                and e.port_ref == port
                and e.priority == priority
            ),
            key=lambda e: e.time_ns,
        )
        intervals: List[Tuple[int, int]] = []
        start: Optional[int] = None
        for event in events:
            if event.kind == "pause" and start is None:
                start = event.time_ns
            elif event.kind == "resume" and start is not None:
                intervals.append((start, event.time_ns))
                start = None
        if start is not None:
            end = self.pfc_events[-1].time_ns if self.pfc_events else start
            intervals.append((start, max(end, start)))
        return intervals

    def total_paused_ns(self, port: PortRef, priority: int = 3) -> int:
        return sum(end - start for start, end in self.paused_intervals(port, priority))

    def max_queue_depth(self, port: PortRef) -> int:
        """Largest sampled egress queue depth (bytes) at ``port``."""
        return max(
            (
                s.depth_bytes
                for s in self.queue_samples
                if s.switch == port.node and s.port == port.port
            ),
            default=0,
        )

    def pause_storm_ports(self, min_pauses: int = 10) -> List[PortRef]:
        """Ports that received an unusual number of PAUSE frames."""
        counts: Dict[PortRef, int] = {}
        for e in self.pfc_events:
            if e.kind == "pause" and e.direction == "rx":
                counts[e.port_ref] = counts.get(e.port_ref, 0) + 1
        return sorted(
            (p for p, c in counts.items() if c >= min_pauses),
            key=lambda p: -counts[p],
        )

    # -- export ------------------------------------------------------------------------

    def export_jsonl(self, fh: IO[str]) -> int:
        """Write all records as JSON lines; returns the record count."""
        count = 0
        for event in self.pfc_events:
            fh.write(json.dumps({"type": "pfc", **asdict(event)}) + "\n")
            count += 1
        for sample in self.queue_samples:
            fh.write(json.dumps({"type": "queue", **asdict(sample)}) + "\n")
            count += 1
        return count


def load_jsonl(lines: Iterable[str]) -> Tuple[List[PfcEvent], List[QueueSample]]:
    """Inverse of :meth:`NetworkTracer.export_jsonl`."""
    events: List[PfcEvent] = []
    samples: List[QueueSample] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.pop("type")
        if kind == "pfc":
            events.append(PfcEvent(**record))
        elif kind == "queue":
            samples.append(QueueSample(**record))
        else:
            raise ValueError(f"unknown trace record type {kind!r}")
    return events, samples
