"""Discrete-event RDMA network simulator with PFC (the NS-3 substitute)."""

from .config import DcqcnConfig, EcnConfig, PfcConfig, SimConfig
from .engine import EventHandle, Simulator
from .flow import Flow
from .host import Host
from .network import Network
from .packet import (
    ACK_SIZE,
    CNP_SIZE,
    CONTROL_PRIORITY,
    DATA_PRIORITY,
    PFC_FRAME_SIZE,
    POLLING_PACKET_SIZE,
    FlowKey,
    Packet,
    PacketType,
    PollingFlag,
    pause_quanta_to_ns,
)
from .switch import LOSSLESS_PRIORITIES, Switch, SwitchObserver, SwitchStats

__all__ = [
    "DcqcnConfig",
    "EcnConfig",
    "PfcConfig",
    "SimConfig",
    "EventHandle",
    "Simulator",
    "Flow",
    "Host",
    "Network",
    "ACK_SIZE",
    "CNP_SIZE",
    "CONTROL_PRIORITY",
    "DATA_PRIORITY",
    "PFC_FRAME_SIZE",
    "POLLING_PACKET_SIZE",
    "FlowKey",
    "Packet",
    "PacketType",
    "PollingFlag",
    "pause_quanta_to_ns",
    "LOSSLESS_PRIORITIES",
    "Switch",
    "SwitchObserver",
    "SwitchStats",
]

from .trace import NetworkTracer, PfcEvent, QueueSample, load_jsonl  # noqa: E402

__all__ += ["NetworkTracer", "PfcEvent", "QueueSample", "load_jsonl"]
