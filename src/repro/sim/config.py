"""Simulation parameters, collected in one dataclass.

Defaults follow common RoCEv2 deployments (and the HPCC/DCQCN NS-3 configs
the paper builds on): 1 KB MTU-sized data packets, PFC Xoff/Xon per ingress
(port, priority), RED-style ECN marking at egress, DCQCN-like end-to-end
congestion control.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import KB, usec


@dataclass
class PfcConfig:
    """Per-(ingress port, priority) PFC thresholds and timing."""

    xoff_bytes: int = 40 * KB
    xon_bytes: int = 20 * KB
    pause_quanta: int = 0xFFFF  # quanta carried in PAUSE frames
    # While an ingress stays above Xoff, re-send PAUSE every refresh interval
    # so the upstream pause never lapses (matching NIC/switch behaviour).
    refresh_interval_ns: int = usec(50)

    def __post_init__(self) -> None:
        if self.xon_bytes >= self.xoff_bytes:
            raise ValueError("Xon must be strictly below Xoff")


@dataclass
class EcnConfig:
    """RED-style ECN marking at the egress queue (DCQCN-compatible)."""

    kmin_bytes: int = 40 * KB
    kmax_bytes: int = 160 * KB
    pmax: float = 0.2

    def mark_probability(self, queue_bytes: int) -> float:
        if queue_bytes <= self.kmin_bytes:
            return 0.0
        if queue_bytes >= self.kmax_bytes:
            return 1.0
        span = self.kmax_bytes - self.kmin_bytes
        return self.pmax * (queue_bytes - self.kmin_bytes) / span


@dataclass
class DcqcnConfig:
    """Simplified DCQCN rate control (rate decrease on CNP, staged recovery)."""

    enabled: bool = True
    alpha_g: float = 1.0 / 16.0
    rate_decrease_interval_ns: int = usec(50)  # min gap between decreases
    recovery_interval_ns: int = usec(55)
    additive_increase: float = 5e6 / 8 * 1e3  # 5 Mbps in bytes/s... see below
    fast_recovery_stages: int = 5
    min_rate: float = 1e6 / 8  # 1 Mbps floor, bytes/s

    def __post_init__(self) -> None:
        # additive increase default: 40 Mbps in bytes/s
        self.additive_increase = 40e6 / 8.0


@dataclass
class SimConfig:
    """Top-level knobs for one simulation run."""

    data_packet_size: int = 1 * KB
    ack_every_packets: int = 4
    cnp_interval_ns: int = usec(50)  # per-flow CNP generation rate limit
    pfc: PfcConfig = field(default_factory=PfcConfig)
    ecn: EcnConfig = field(default_factory=EcnConfig)
    dcqcn: DcqcnConfig = field(default_factory=DcqcnConfig)
    seed: int = 1
