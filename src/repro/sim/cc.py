"""Simplified DCQCN congestion control.

The shape matters more than the constants here: flows start at line rate
(as RDMA NICs do), multiplicatively back off when CNPs arrive, and recover
through fast-recovery then additive-increase stages.  That is enough to
reproduce the congestion-control interactions the paper discusses (queue
buildup from PFC falsifying congestion signals, line-rate bursts, etc.).
"""

from __future__ import annotations

from .config import DcqcnConfig


class DcqcnState:
    """Per-flow DCQCN sender state."""

    def __init__(self, line_rate: float, config: DcqcnConfig) -> None:
        self.config = config
        self.line_rate = line_rate
        self.rate = line_rate  # bytes/s; line-rate start
        self.target_rate = line_rate
        self.alpha = 1.0
        self.last_decrease_time = -(10**18)
        self.recovery_stage = 0
        self.cnp_seen_since_alpha_update = False

    def on_cnp(self, now: int) -> bool:
        """Process a CNP; returns True if a rate decrease was applied."""
        self.cnp_seen_since_alpha_update = True
        if now - self.last_decrease_time < self.config.rate_decrease_interval_ns:
            return False
        self.alpha = (1 - self.config.alpha_g) * self.alpha + self.config.alpha_g
        self.target_rate = self.rate
        self.rate = max(self.config.min_rate, self.rate * (1 - self.alpha / 2))
        self.recovery_stage = 0
        self.last_decrease_time = now
        return True

    def on_recovery_timer(self) -> None:
        """Periodic rate recovery: fast recovery then additive increase."""
        if self.rate >= self.line_rate:
            self.rate = self.line_rate
            return
        self.recovery_stage += 1
        if self.recovery_stage > self.config.fast_recovery_stages:
            self.target_rate = min(
                self.line_rate, self.target_rate + self.config.additive_increase
            )
        self.rate = min(self.line_rate, (self.rate + self.target_rate) / 2)

    def on_alpha_timer(self) -> None:
        """Alpha decays while no CNPs arrive (DCQCN's alpha update timer)."""
        if self.cnp_seen_since_alpha_update:
            self.cnp_seen_since_alpha_update = False
            return
        self.alpha = (1 - self.config.alpha_g) * self.alpha
