"""Flow lifecycle objects shared by the NIC model and the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .packet import DATA_PRIORITY, FlowKey


@dataclass
class Flow:
    """One unidirectional RDMA flow (a message of ``size`` bytes).

    Mutable progress fields are updated by the sending host; the experiment
    harness reads them for FCT/goodput statistics and ground truth.
    """

    key: FlowKey
    src_host: str
    dst_host: str
    size: int
    start_time: int
    priority: int = DATA_PRIORITY
    # Application-limited rate cap (bytes/s); None means NIC line rate.
    max_rate: Optional[float] = None
    # Progress (owned by the sender NIC).
    bytes_sent: int = 0
    bytes_acked: int = 0
    packets_sent: int = 0
    finish_time: Optional[int] = None
    # Pacing state.
    next_pacing_time: int = 0
    # Recent RTT samples as (time, rtt) pairs, newest last.
    rtt_samples: List[tuple] = field(default_factory=list)
    max_rtt_samples: int = 64

    @property
    def done_sending(self) -> bool:
        return self.bytes_sent >= self.size

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    def fct(self) -> Optional[int]:
        """Flow completion time in ns, or ``None`` while in flight."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def record_rtt(self, time_ns: int, rtt_ns: int) -> None:
        self.rtt_samples.append((time_ns, rtt_ns))
        if len(self.rtt_samples) > self.max_rtt_samples:
            del self.rtt_samples[: -self.max_rtt_samples]

    def latest_rtt(self) -> Optional[int]:
        if not self.rtt_samples:
            return None
        return self.rtt_samples[-1][1]

    def __str__(self) -> str:
        return f"Flow({self.key}, {self.size}B from {self.src_host})"
