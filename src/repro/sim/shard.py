"""Shard-local fabric views for the multiprocess simulator.

A *shard view* is an ordinary :class:`~repro.sim.network.Network` built
while a shard build context is active: only the nodes assigned to this
shard become real :class:`Switch`/:class:`Host` objects, remote hosts are
replaced by :class:`RemoteHostStub` placeholders (so builders can read
link attributes and schedule injections without special-casing), and
frames addressed to remote nodes land in the network's outbox instead of
the local event loop.  The orchestrator ships outboxes between workers at
each conservative-lookahead epoch boundary; see
``repro.experiments.shardrun``.

Packets cross process boundaries as plain tuples (:func:`packet_to_wire` /
:func:`packet_from_wire`) together with their canonical ``(source node,
per-source sequence)`` delivery key, which the receiving shard feeds into
:meth:`Simulator.schedule_delivery` — so the merged per-timestamp delivery
order is identical to the single-process engine's.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..topology.graph import PortRef
from .packet import FlowKey, Packet, PacketType, PollingFlag

# One in-flight frame between shards:
# (arrival_ns, target_node, target_port, (src, seq), wire_tuple)
WireFrame = Tuple[int, str, int, Tuple[str, int], tuple]


@dataclass(frozen=True)
class ShardBuildContext:
    """Active while a worker builds its shard view of the scenario."""

    assignment: Dict[str, int]
    shard_id: int

    def is_local(self, node_name: str) -> bool:
        return self.assignment[node_name] == self.shard_id


_BUILD_CONTEXT: Optional[ShardBuildContext] = None


def current_build_context() -> Optional[ShardBuildContext]:
    return _BUILD_CONTEXT


@contextmanager
def shard_build_context(
    assignment: Dict[str, int], shard_id: int
) -> Iterator[ShardBuildContext]:
    """Make every Network constructed inside the block a shard view."""
    global _BUILD_CONTEXT
    if _BUILD_CONTEXT is not None:
        raise RuntimeError("shard build context is already active")
    ctx = ShardBuildContext(assignment=assignment, shard_id=shard_id)
    _BUILD_CONTEXT = ctx
    try:
        yield ctx
    finally:
        _BUILD_CONTEXT = None


class RemoteHostStub:
    """Placeholder for a host simulated by another shard.

    Scenario builders run unmodified in every worker; they may read link
    attributes (``bandwidth``) off any host and schedule injections on it.
    The stub absorbs those calls as no-ops — the host's home shard runs
    the real thing.  Starting a flow on a stub is a bug (the network
    filters remote-source flows before they reach the host), so that one
    raises.
    """

    __slots__ = (
        "name",
        "ip",
        "bandwidth",
        "delay_ns",
        "peer",
        "rtt_listeners",
        "completion_listeners",
        "flows",
        "tx_bytes",
        "tx_pkts",
        "pause_frames_received",
        "injected_pause_frames",
    )

    def __init__(self, name: str, ip: str) -> None:
        self.name = name
        self.ip = ip
        self.bandwidth = 0.0
        self.delay_ns = 0
        self.peer: Optional[PortRef] = None
        self.rtt_listeners: list = []
        self.completion_listeners: list = []
        self.flows: dict = {}
        self.tx_bytes = 0
        self.tx_pkts = 0
        self.pause_frames_received = 0
        self.injected_pause_frames = 0

    def attach_uplink(
        self, bandwidth: float, delay_ns: int, peer: PortRef
    ) -> None:
        self.bandwidth = bandwidth
        self.delay_ns = delay_ns
        self.peer = peer

    def start_flow(self, flow) -> None:
        raise RuntimeError(
            f"flow {flow.key} starts on remote host {self.name}; "
            "the network must filter remote-source flows"
        )

    def start_pfc_injection(self, *args, **kwargs) -> None:
        pass  # injected by the host's home shard

    def inject_polling(self, *args, **kwargs) -> None:
        pass  # injected by the host's home shard


def packet_to_wire(pkt: Packet) -> tuple:
    """Flatten a packet for transport to another shard.

    ``ingress_port`` is deliberately dropped — it is per-hop bookkeeping
    the receiving node re-stamps on arrival.
    """
    flow = pkt.flow
    return (
        pkt.ptype.value,
        None
        if flow is None
        else (flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port, flow.protocol),
        pkt.size,
        pkt.priority,
        pkt.seq,
        pkt.create_time,
        pkt.ecn_capable,
        pkt.ce_marked,
        pkt.pfc_priority,
        pkt.pause_quanta,
        int(pkt.polling_flag),
        pkt.echo_time,
        pkt.acked_bytes,
        pkt.is_last,
        pkt.hops,
    )


def packet_from_wire(wire: tuple) -> Packet:
    """Rebuild a packet shipped from another shard (pool-allocated)."""
    (
        ptype,
        flow5,
        size,
        priority,
        seq,
        create_time,
        ecn_capable,
        ce_marked,
        pfc_priority,
        pause_quanta,
        polling_flag,
        echo_time,
        acked_bytes,
        is_last,
        hops,
    ) = wire
    pkt = Packet._new(
        PacketType(ptype),
        size,
        priority,
        flow=None if flow5 is None else FlowKey(*flow5),
        seq=seq,
        create_time=create_time,
    )
    pkt.ecn_capable = ecn_capable
    pkt.ce_marked = ce_marked
    pkt.pfc_priority = pfc_priority
    pkt.pause_quanta = pause_quanta
    pkt.polling_flag = PollingFlag(polling_flag)
    pkt.echo_time = echo_time
    pkt.acked_bytes = acked_bytes
    pkt.is_last = is_last
    pkt.hops = hops
    return pkt
