"""The Network binds topology + routing + simulator into a runnable fabric."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..topology.graph import PortRef, Topology
from ..topology.routing import RoutingTable
from ..units import serialization_delay_ns
from .config import SimConfig
from .engine import Simulator
from .flow import Flow
from .host import Host
from .packet import ACK_SIZE, FlowKey, Packet
from .shard import RemoteHostStub, current_build_context, packet_to_wire
from .switch import Switch, SwitchObserver


class Network:
    """A simulated RDMA fabric.

    Construction wires one :class:`Switch` per topology switch and one
    :class:`Host` per topology host, all sharing a single event loop.
    Telemetry systems attach observers to switches; the collection layer
    installs polling handlers; workloads start :class:`Flow` objects.

    When a shard build context is active (``repro.sim.shard``), only the
    nodes assigned to the current shard are instantiated; remote hosts
    become stubs, and frames addressed to remote nodes are appended to
    :attr:`outbox` for the orchestrator to ship at the next epoch barrier.
    """

    def __init__(
        self,
        topology: Topology,
        routing: Optional[RoutingTable] = None,
        config: Optional[SimConfig] = None,
    ) -> None:
        self.topology = topology
        self.routing = routing if routing is not None else RoutingTable(topology)
        self.config = config if config is not None else SimConfig()
        self.sim = Simulator()
        self.switches: Dict[str, Switch] = {}
        self.hosts: Dict[str, object] = {}
        self.flows: List[Flow] = []
        # node name -> bound receive method; saves a topology lookup plus a
        # closure allocation on every single frame delivery.  In a shard
        # view only local nodes appear here — a missed lookup routes the
        # frame to the outbox.
        self._receive_of: Dict[str, object] = {}
        # Per-source delivery sequence numbers: the canonical delivery
        # order key is (source node, seq), identical no matter which
        # process scheduled the delivery.
        self._send_seq: Dict[str, int] = {}
        self.outbox: List[tuple] = []
        self.shard_id: Optional[int] = None
        self._build()

    def _build(self) -> None:
        ctx = current_build_context()
        if ctx is not None:
            self.shard_id = ctx.shard_id
        for node in self.topology.switches:
            if ctx is not None and not ctx.is_local(node.name):
                continue
            switch = Switch(node.name, self, self.config)
            self.switches[node.name] = switch
            self._receive_of[node.name] = switch.receive
        for node in self.topology.hosts:
            ip = self.topology.host_ip(node.name)
            if ctx is not None and not ctx.is_local(node.name):
                self.hosts[node.name] = RemoteHostStub(node.name, ip)
                continue
            host = Host(node.name, ip, self, self.config)
            self.hosts[node.name] = host
            self._receive_of[node.name] = host.receive
        for link in self.topology.links:
            self._wire_end(link.a, link.b, link.bandwidth, link.delay_ns)
            self._wire_end(link.b, link.a, link.bandwidth, link.delay_ns)

    def _wire_end(self, end: PortRef, peer: PortRef, bandwidth: float, delay_ns: int) -> None:
        node = self.topology.node(end.node)
        peer_is_host = self.topology.node(peer.node).is_host
        if node.is_switch:
            switch = self.switches.get(end.node)
            if switch is not None:  # absent only in a shard view
                switch.attach_port(end.port, bandwidth, delay_ns, peer, peer_is_host)
        else:
            # Stubs record bandwidth/delay too: builders read them.
            self.hosts[end.node].attach_uplink(bandwidth, delay_ns, peer)

    # -- runtime ------------------------------------------------------------------

    def deliver(self, target: PortRef, pkt: Packet, delay_ns: int, src: str) -> None:
        """Schedule delivery of ``pkt`` from node ``src`` at endpoint ``target``.

        Deliveries go through the simulator's per-timestamp delivery band
        keyed by ``(send time, trigger schedule time, src, per-source
        seq)``; frames addressed to nodes this shard does not own are
        flattened into the outbox instead.
        """
        seq = self._send_seq.get(src, 0) + 1
        self._send_seq[src] = seq
        receive = self._receive_of.get(target.node)
        now = self.sim.now
        key = (now, self.sim.exec_sched, src, seq)
        if receive is not None:
            self.sim.schedule_delivery(now + delay_ns, key, receive, pkt, target.port)
        else:
            self.outbox.append(
                (now + delay_ns, target.node, target.port, key, packet_to_wire(pkt))
            )

    def deliver_from_wire(self, frame: tuple) -> None:
        """Queue a frame shipped from another shard (see :data:`WireFrame`)."""
        from .shard import packet_from_wire

        arrival_ns, node, port, key, wire = frame
        self.sim.schedule_delivery(
            arrival_ns, key, self._receive_of[node], packet_from_wire(wire), port
        )

    def deliver_wire_batch(self, frames: List[tuple]) -> None:
        """Queue a barrier epoch's worth of cross-shard frames.

        Same per-frame semantics as :meth:`deliver_from_wire` with the
        import and attribute lookups hoisted out of the loop — the barrier
        hot path at fleet scale.  Insertion order is irrelevant: the
        delivery band sorts by the canonical key.
        """
        from .shard import packet_from_wire

        schedule = self.sim.schedule_delivery
        receive_of = self._receive_of
        for arrival_ns, node, port, key, wire in frames:
            schedule(arrival_ns, key, receive_of[node], packet_from_wire(wire), port)

    def start_flow(self, flow: Flow) -> None:
        host = self.hosts[flow.src_host]
        if isinstance(host, RemoteHostStub):
            return  # the source host's home shard runs this flow
        self.flows.append(flow)
        host.start_flow(flow)

    def run(self, until_ns: int) -> None:
        self.sim.run(until_ns)

    # -- helpers --------------------------------------------------------------------

    def switch(self, name: str) -> Switch:
        return self.switches[name]

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def add_switch_observer(self, obs: SwitchObserver, switches: Optional[List[str]] = None) -> None:
        """Attach one observer instance to all (or selected) switches."""
        names = switches if switches is not None else list(self.switches)
        for name in names:
            self.switches[name].add_observer(obs)

    def estimate_base_rtt(self, src_host: str, dst_ip: str, flow_key: object = None) -> int:
        """Unloaded RTT estimate for a path: store-and-forward both ways."""
        path = self.routing.flow_path(src_host, dst_ip, flow_key if flow_key is not None else src_host)
        rtt = 0
        for ref in path:
            link = self.topology.link_at(ref)
            rtt += link.delay_ns + serialization_delay_ns(
                self.config.data_packet_size, link.bandwidth
            )
            rtt += link.delay_ns + serialization_delay_ns(ACK_SIZE, link.bandwidth)
        return rtt

    def max_base_rtt(self) -> int:
        """A loose upper bound on the unloaded RTT across the fabric.

        The paper sets detection thresholds relative to the maximum RTT
        "determined by the maximum hop count" (§5); we approximate it with
        the diameter assuming uniform links.
        """
        hosts = self.topology.hosts
        if len(hosts) < 2:
            return 0
        worst = 0
        probe = hosts[0]
        for other in hosts[1:]:
            dst_ip = self.topology.host_ip(other.name)
            worst = max(worst, self.estimate_base_rtt(probe.name, dst_ip))
            src_ip = self.topology.host_ip(probe.name)
            worst = max(worst, self.estimate_base_rtt(other.name, src_ip))
        return worst

    def make_flow(
        self,
        src_host: str,
        dst_host: str,
        size: int,
        start_time: int,
        src_port: int = 10000,
        dst_port: int = 4791,
    ) -> Flow:
        """Convenience constructor resolving IPs from host names."""
        key = FlowKey(
            src_ip=self.topology.host_ip(src_host),
            dst_ip=self.topology.host_ip(dst_host),
            src_port=src_port,
            dst_port=dst_port,
        )
        return Flow(key=key, src_host=src_host, dst_host=dst_host, size=size, start_time=start_time)
