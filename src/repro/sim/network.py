"""The Network binds topology + routing + simulator into a runnable fabric."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..topology.graph import PortRef, Topology
from ..topology.routing import RoutingTable
from ..units import serialization_delay_ns
from .config import SimConfig
from .engine import Simulator
from .flow import Flow
from .host import Host
from .packet import ACK_SIZE, FlowKey, Packet
from .switch import Switch, SwitchObserver


class Network:
    """A simulated RDMA fabric.

    Construction wires one :class:`Switch` per topology switch and one
    :class:`Host` per topology host, all sharing a single event loop.
    Telemetry systems attach observers to switches; the collection layer
    installs polling handlers; workloads start :class:`Flow` objects.
    """

    def __init__(
        self,
        topology: Topology,
        routing: Optional[RoutingTable] = None,
        config: Optional[SimConfig] = None,
    ) -> None:
        self.topology = topology
        self.routing = routing if routing is not None else RoutingTable(topology)
        self.config = config if config is not None else SimConfig()
        self.sim = Simulator()
        self.switches: Dict[str, Switch] = {}
        self.hosts: Dict[str, Host] = {}
        self.flows: List[Flow] = []
        # node name -> bound receive method; saves a topology lookup plus a
        # closure allocation on every single frame delivery.
        self._receive_of: Dict[str, object] = {}
        self._build()

    def _build(self) -> None:
        for node in self.topology.switches:
            switch = Switch(node.name, self, self.config)
            self.switches[node.name] = switch
            self._receive_of[node.name] = switch.receive
        for node in self.topology.hosts:
            ip = self.topology.host_ip(node.name)
            host = Host(node.name, ip, self, self.config)
            self.hosts[node.name] = host
            self._receive_of[node.name] = host.receive
        for link in self.topology.links:
            self._wire_end(link.a, link.b, link.bandwidth, link.delay_ns)
            self._wire_end(link.b, link.a, link.bandwidth, link.delay_ns)

    def _wire_end(self, end: PortRef, peer: PortRef, bandwidth: float, delay_ns: int) -> None:
        node = self.topology.node(end.node)
        peer_is_host = self.topology.node(peer.node).is_host
        if node.is_switch:
            self.switches[end.node].attach_port(end.port, bandwidth, delay_ns, peer, peer_is_host)
        else:
            self.hosts[end.node].attach_uplink(bandwidth, delay_ns, peer)

    # -- runtime ------------------------------------------------------------------

    def deliver(self, target: PortRef, pkt: Packet, delay_ns: int) -> None:
        """Schedule delivery of ``pkt`` at the remote endpoint ``target``."""
        self.sim.schedule(delay_ns, self._receive_of[target.node], pkt, target.port)

    def start_flow(self, flow: Flow) -> None:
        self.flows.append(flow)
        self.hosts[flow.src_host].start_flow(flow)

    def run(self, until_ns: int) -> None:
        self.sim.run(until_ns)

    # -- helpers --------------------------------------------------------------------

    def switch(self, name: str) -> Switch:
        return self.switches[name]

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def add_switch_observer(self, obs: SwitchObserver, switches: Optional[List[str]] = None) -> None:
        """Attach one observer instance to all (or selected) switches."""
        names = switches if switches is not None else list(self.switches)
        for name in names:
            self.switches[name].add_observer(obs)

    def estimate_base_rtt(self, src_host: str, dst_ip: str, flow_key: object = None) -> int:
        """Unloaded RTT estimate for a path: store-and-forward both ways."""
        path = self.routing.flow_path(src_host, dst_ip, flow_key if flow_key is not None else src_host)
        rtt = 0
        for ref in path:
            link = self.topology.link_at(ref)
            rtt += link.delay_ns + serialization_delay_ns(
                self.config.data_packet_size, link.bandwidth
            )
            rtt += link.delay_ns + serialization_delay_ns(ACK_SIZE, link.bandwidth)
        return rtt

    def max_base_rtt(self) -> int:
        """A loose upper bound on the unloaded RTT across the fabric.

        The paper sets detection thresholds relative to the maximum RTT
        "determined by the maximum hop count" (§5); we approximate it with
        the diameter assuming uniform links.
        """
        hosts = self.topology.hosts
        if len(hosts) < 2:
            return 0
        worst = 0
        probe = hosts[0]
        for other in hosts[1:]:
            dst_ip = self.topology.host_ip(other.name)
            worst = max(worst, self.estimate_base_rtt(probe.name, dst_ip))
            src_ip = self.topology.host_ip(probe.name)
            worst = max(worst, self.estimate_base_rtt(other.name, src_ip))
        return worst

    def make_flow(
        self,
        src_host: str,
        dst_host: str,
        size: int,
        start_time: int,
        src_port: int = 10000,
        dst_port: int = 4791,
    ) -> Flow:
        """Convenience constructor resolving IPs from host names."""
        key = FlowKey(
            src_ip=self.topology.host_ip(src_host),
            dst_ip=self.topology.host_ip(dst_host),
            src_port=src_port,
            dst_port=dst_port,
        )
        return Flow(key=key, src_host=src_host, dst_host=dst_host, size=size, start_time=start_time)
