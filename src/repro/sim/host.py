"""Host / RNIC model: paced senders, ACK & CNP generation, PFC honouring
and (for anomaly injection) host-side PFC frame generation.

Flows start at line rate (RDMA NICs do not slow-start) and are paced by a
per-flow DCQCN rate.  The single host uplink serializes control frames
(ACK/CNP/polling, never paused) ahead of data (paused by received PFC
frames, as a real RNIC's lossless class is).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..topology.graph import PortRef
from ..units import serialization_delay_ns
from .cc import DcqcnState
from .config import SimConfig
from .flow import Flow
from .packet import (
    DATA_PRIORITY,
    FlowKey,
    Packet,
    PacketType,
    PollingFlag,
    pause_quanta_to_ns,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network

RttListener = Callable[[Flow, int, int], None]
CompletionListener = Callable[[Flow, int], None]


class _RxState:
    """Receiver-side progress for one incoming flow."""

    __slots__ = ("bytes_received", "pkts_since_ack", "last_cnp_time", "last_data_time")

    def __init__(self) -> None:
        self.bytes_received = 0
        self.pkts_since_ack = 0
        self.last_cnp_time = -(10**18)
        self.last_data_time = 0


class Host:
    """One simulated server with a single RNIC uplink."""

    def __init__(self, name: str, ip: str, network: "Network", config: SimConfig) -> None:
        self.name = name
        self.ip = ip
        self.network = network
        self.sim = network.sim
        self.config = config
        # Link attributes, set by Network wiring.
        self.bandwidth: float = 0.0
        self.delay_ns: int = 0
        self.peer: Optional[PortRef] = None
        # Transmitter state.
        self.busy_until = 0
        self.paused_until: Dict[int, int] = {}
        self._control_queue: deque = deque()
        # Sender-side flows.
        self.flows: Dict[FlowKey, Flow] = {}
        self._cc: Dict[FlowKey, DcqcnState] = {}
        # Receiver-side state.
        self._rx: Dict[FlowKey, _RxState] = {}
        # Listeners (detection agent, experiment harness).
        self.rtt_listeners: List[RttListener] = []
        self.completion_listeners: List[CompletionListener] = []
        # Stats.
        self.tx_bytes = 0
        self.tx_pkts = 0
        self.pause_frames_received = 0
        self.injected_pause_frames = 0
        self._injecting_until = 0
        # At most one pending pump event (dedup keeps the event count linear
        # in packets instead of quadratic in ACK arrivals).
        self._pump_event = None

    # -- wiring ---------------------------------------------------------------

    def attach_uplink(self, bandwidth: float, delay_ns: int, peer: PortRef) -> None:
        self.bandwidth = bandwidth
        self.delay_ns = delay_ns
        self.peer = peer

    def cc_state(self, key: FlowKey) -> Optional[DcqcnState]:
        return self._cc.get(key)

    # -- flow API ---------------------------------------------------------------

    def start_flow(self, flow: Flow) -> None:
        """Register a flow to send; transmission begins at ``flow.start_time``."""
        if flow.src_host != self.name:
            raise ValueError(f"{flow} does not originate at {self.name}")
        self.flows[flow.key] = flow
        line_rate = self.bandwidth
        if flow.max_rate is not None:
            line_rate = min(line_rate, flow.max_rate)
        cc = DcqcnState(line_rate, self.config.dcqcn)
        self._cc[flow.key] = cc
        flow.next_pacing_time = flow.start_time
        start_delay = max(0, flow.start_time - self.sim.now)
        self._schedule_pump(self.sim.now + start_delay)
        if self.config.dcqcn.enabled:
            self.sim.schedule(
                start_delay + self.config.dcqcn.recovery_interval_ns,
                self._recovery_tick,
                flow.key,
            )

    def _recovery_tick(self, key: FlowKey) -> None:
        flow = self.flows.get(key)
        cc = self._cc.get(key)
        if flow is None or cc is None or flow.completed:
            return
        cc.on_recovery_timer()
        cc.on_alpha_timer()
        self.sim.schedule(
            self.config.dcqcn.recovery_interval_ns, self._recovery_tick, key
        )
        # Rate increases may unblock pacing earlier than previously scheduled.
        self._pump()

    # -- anomaly injection -------------------------------------------------------

    def start_pfc_injection(
        self,
        duration_ns: int,
        priority: int = DATA_PRIORITY,
        interval_ns: Optional[int] = None,
    ) -> None:
        """Continuously emit PAUSE frames toward the ToR (PFC storm source).

        Models malfunctioning NICs / slow receivers / PCIe bottlenecks (§2.1):
        the ToR's egress toward this host freezes, queues build and PFC
        cascades upstream.
        """
        quanta = self.config.pfc.pause_quanta
        if interval_ns is None:
            interval_ns = max(1, pause_quanta_to_ns(quanta, self.bandwidth) // 2)
        self._injecting_until = self.sim.now + duration_ns
        self._inject_tick(priority, quanta, interval_ns)

    def _inject_tick(self, priority: int, quanta: int, interval_ns: int) -> None:
        if self.sim.now >= self._injecting_until:
            # Let the pause lapse naturally (a real broken NIC just stops).
            return
        frame = Packet.pfc(priority, quanta, self.sim.now)
        self.injected_pause_frames += 1
        delay = serialization_delay_ns(frame.size, self.bandwidth) + self.delay_ns
        self.network.deliver(self.peer, frame, delay, self.name)
        self.sim.schedule(interval_ns, self._inject_tick, priority, quanta, interval_ns)

    def inject_polling(self, victim: FlowKey, flag: PollingFlag = PollingFlag.VICTIM_PATH) -> None:
        """Send a Hawkeye polling packet for ``victim`` into the network."""
        pkt = Packet.polling(victim, flag, self.sim.now)
        self._control_queue.append(pkt)
        self._pump()

    # -- receive path ---------------------------------------------------------------

    def receive(self, pkt: Packet, _port: int = 0) -> None:
        ptype = pkt.ptype
        if ptype is PacketType.PFC:
            self._handle_pfc(pkt)
        elif ptype is PacketType.DATA:
            self._handle_data(pkt)
        elif ptype is PacketType.ACK:
            self._handle_ack(pkt)
        elif ptype is PacketType.CNP:
            self._handle_cnp(pkt)
        # POLLING packets reaching a host are terminal; nothing to do.
        # Every frame terminates at the host, so it goes back to the pool.
        pkt.recycle()

    def _handle_pfc(self, pkt: Packet) -> None:
        now = self.sim.now
        if pkt.pause_quanta > 0:
            self.pause_frames_received += 1
            duration = pause_quanta_to_ns(pkt.pause_quanta, self.bandwidth)
            self.paused_until[pkt.pfc_priority] = now + duration
            self._schedule_pump(now + duration + 1)
        else:
            self.paused_until[pkt.pfc_priority] = now
            self._pump()

    def _handle_data(self, pkt: Packet) -> None:
        assert pkt.flow is not None
        key = pkt.flow
        st = self._rx.get(key)
        if st is None:
            st = _RxState()
            self._rx[key] = st
        st.bytes_received += pkt.size
        st.pkts_since_ack += 1
        st.last_data_time = self.sim.now
        now = self.sim.now
        if pkt.ce_marked and now - st.last_cnp_time >= self.config.cnp_interval_ns:
            st.last_cnp_time = now
            self._control_queue.append(Packet.cnp(key, now))
        if pkt.is_last or st.pkts_since_ack >= self.config.ack_every_packets:
            st.pkts_since_ack = 0
            ack = Packet.ack(key, now, pkt.create_time, st.bytes_received)
            self._control_queue.append(ack)
        self._pump()

    def _handle_ack(self, pkt: Packet) -> None:
        assert pkt.flow is not None
        flow = self.flows.get(pkt.flow)
        if flow is None:
            return
        now = self.sim.now
        rtt = now - pkt.echo_time
        flow.record_rtt(now, rtt)
        for listener in self.rtt_listeners:
            listener(flow, now, rtt)
        if pkt.acked_bytes > flow.bytes_acked:
            flow.bytes_acked = pkt.acked_bytes
        if flow.bytes_acked >= flow.size and not flow.completed:
            flow.finish_time = now
            for listener in self.completion_listeners:
                listener(flow, now)

    def _handle_cnp(self, pkt: Packet) -> None:
        assert pkt.flow is not None
        cc = self._cc.get(pkt.flow)
        if cc is not None and self.config.dcqcn.enabled:
            cc.on_cnp(self.sim.now)

    # -- transmit path -----------------------------------------------------------------

    def _schedule_pump(self, time_ns: int) -> None:
        """Arrange a pump at ``time_ns``, keeping at most one pending event."""
        time_ns = max(time_ns, self.sim.now)
        pending = self._pump_event
        if pending is not None and not pending.cancelled:
            if pending.time <= time_ns:
                return  # an earlier (or equal) pump is already scheduled
            pending.cancel()
        self._pump_event = self.sim.schedule_at(time_ns, self._pump_fire)

    def _pump_fire(self) -> None:
        self._pump_event = None
        self._pump()

    def _pump(self) -> None:
        """Try to put the next frame on the wire."""
        now = self.sim.now
        if self.busy_until > now:
            self._schedule_pump(self.busy_until)
            return
        if self._control_queue:
            self._transmit(self._control_queue.popleft())
            return
        if self.paused_until.get(DATA_PRIORITY, 0) > now:
            return  # pump is re-triggered on resume/expiry
        flow = self._next_ready_flow()
        if flow is None:
            return
        if flow.next_pacing_time > now:
            self._schedule_pump(flow.next_pacing_time)
            return
        self._transmit_data(flow)

    def _next_ready_flow(self) -> Optional[Flow]:
        best: Optional[Flow] = None
        for flow in self.flows.values():
            if flow.done_sending or flow.start_time > self.sim.now:
                continue
            if best is None or flow.next_pacing_time < best.next_pacing_time:
                best = flow
        return best

    def _transmit_data(self, flow: Flow) -> None:
        now = self.sim.now
        remaining = flow.size - flow.bytes_sent
        size = min(self.config.data_packet_size, remaining)
        pkt = Packet.data(
            flow.key, size, flow.packets_sent, now, flow.priority, is_last=remaining <= size
        )
        flow.bytes_sent += size
        flow.packets_sent += 1
        cc = self._cc[flow.key]
        gap = int(size * 1e9 / max(cc.rate, 1.0))
        flow.next_pacing_time = now + gap
        self._transmit(pkt)

    def _transmit(self, pkt: Packet) -> None:
        now = self.sim.now
        ser = serialization_delay_ns(pkt.size, self.bandwidth)
        self.busy_until = now + ser
        self.tx_bytes += pkt.size
        self.tx_pkts += 1
        self.network.deliver(self.peer, pkt, ser + self.delay_ns, self.name)
        self._schedule_pump(self.busy_until)
