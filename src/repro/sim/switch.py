"""Output-queued switch model with PFC, ECN and telemetry hooks.

The model mirrors how shared-buffer lossless Ethernet switches implement
802.1Qbb:

- Arriving packets are routed to an egress queue, but buffer occupancy is
  accounted against the *ingress* (port, priority) they entered through.
- When an ingress counter rises above ``Xoff`` the switch sends a PAUSE
  frame out of that ingress port (to the upstream transmitter) and keeps
  refreshing it; when the counter drains below ``Xon`` it sends RESUME.
- An egress (port, priority) that has *received* a PAUSE stops transmitting
  until the pause expires or a RESUME arrives.

This is exactly the mechanism that lets congestion cascade hop-by-hop and
produce the anomalies of §2.1.  Telemetry systems (Hawkeye or baselines)
attach via :class:`SwitchObserver` without touching forwarding logic.

Observer dispatch uses a fast path: at attach time the switch records, per
hook, only the observers that actually *override* that hook, so a hook
nobody listens to costs one falsy check per packet instead of a dispatch
loop (detected once at attach time, not per packet).
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..topology.graph import PortRef
from ..units import serialization_delay_ns
from .config import SimConfig
from .packet import (
    DATA_PRIORITY,
    Packet,
    PacketType,
    pause_quanta_to_ns,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network

# Priorities subject to PFC ingress accounting (the lossless classes).
LOSSLESS_PRIORITIES = frozenset({DATA_PRIORITY})

# Signature: (switch, packet, ingress_port) -> [(egress_port, flag), ...]
PollingHandler = Callable[["Switch", Packet, int], List[Tuple[int, object]]]


class SwitchObserver:
    """Telemetry attachment points.  Subclass and override what you need."""

    def on_egress_enqueue(
        self,
        switch: "Switch",
        time_ns: int,
        pkt: Packet,
        egress_port: int,
        ingress_port: Optional[int],
        queue_depth_pkts: int,
        queue_bytes: int,
        port_paused: bool,
    ) -> None:
        """A packet was appended to an egress queue."""

    def on_egress_dequeue(
        self, switch: "Switch", time_ns: int, pkt: Packet, egress_port: int
    ) -> None:
        """A packet left an egress queue onto the wire."""

    def on_pfc_received(
        self, switch: "Switch", time_ns: int, port: int, priority: int, quanta: int
    ) -> None:
        """A PFC frame (PAUSE if quanta>0, RESUME if 0) arrived at ``port``."""

    def on_pfc_sent(
        self, switch: "Switch", time_ns: int, port: int, priority: int, quanta: int
    ) -> None:
        """This switch emitted a PFC frame out of ``port``."""


# The per-hook override detection for the observer fast path.
_HOOK_NAMES = (
    "on_egress_enqueue",
    "on_egress_dequeue",
    "on_pfc_received",
    "on_pfc_sent",
)


def _overridden_hooks(obs: SwitchObserver) -> List[str]:
    """The observer hooks ``obs`` actually implements (checked on its type)."""
    cls = type(obs)
    return [
        name
        for name in _HOOK_NAMES
        if getattr(cls, name) is not getattr(SwitchObserver, name)
    ]


class _EgressQueue:
    __slots__ = ("pkts", "bytes")

    def __init__(self) -> None:
        self.pkts: deque = deque()
        self.bytes = 0

    def __len__(self) -> int:
        return len(self.pkts)


class _Port:
    """Egress side of one switch port."""

    __slots__ = (
        "port_no",
        "bandwidth",
        "delay_ns",
        "peer",
        "peer_is_host",
        "queues",
        "paused_until",
        "busy_until",
        "wake",
        "tx_bytes",
        "tx_pkts",
        "pfc_tx_latency",
    )

    def __init__(self, port_no: int, bandwidth: float, delay_ns: int, peer: PortRef, peer_is_host: bool) -> None:
        self.port_no = port_no
        self.bandwidth = bandwidth
        self.delay_ns = delay_ns
        self.peer = peer
        self.peer_is_host = peer_is_host
        self.queues: Dict[int, _EgressQueue] = {}
        self.paused_until: Dict[int, int] = {}
        self.busy_until = 0
        self.wake = None  # pending wake handle (dedup)
        self.tx_bytes = 0
        self.tx_pkts = 0
        # PFC frames are fixed-size and out-of-band: the wire latency is a
        # per-port constant, precomputed at wiring time.
        from .packet import PFC_FRAME_SIZE

        self.pfc_tx_latency = serialization_delay_ns(PFC_FRAME_SIZE, bandwidth) + delay_ns

    def queue(self, priority: int) -> _EgressQueue:
        q = self.queues.get(priority)
        if q is None:
            q = _EgressQueue()
            self.queues[priority] = q
        return q

    def is_paused(self, priority: int, now: int) -> bool:
        return self.paused_until.get(priority, 0) > now

    def total_bytes(self) -> int:
        return sum(q.bytes for q in self.queues.values())


class SwitchStats:
    """Per-switch counters used by overhead accounting and tests."""

    def __init__(self) -> None:
        self.rx_pkts = 0
        self.tx_pkts = 0
        self.pause_sent = 0
        self.resume_sent = 0
        self.pause_received = 0
        self.resume_received = 0
        self.polling_seen = 0
        self.enqueued_bytes = 0
        self.data_pkts = 0
        self.data_bytes = 0
        self.ecn_marked = 0


class Switch:
    """One simulated switch bound into a :class:`~repro.sim.network.Network`."""

    def __init__(self, name: str, network: "Network", config: SimConfig) -> None:
        self.name = name
        self.network = network
        self.sim = network.sim
        self.config = config
        self.ports: Dict[int, _Port] = {}
        # ingress occupancy per (ingress_port, priority), bytes
        self._ingress_bytes: Dict[Tuple[int, int], int] = {}
        # True while we are asserting PAUSE toward the upstream of a port
        self._pausing: Dict[Tuple[int, int], bool] = {}
        self.observers: List[SwitchObserver] = []
        # Observer fast path: per-hook lists of overriding observers only.
        self._obs_enqueue: List[SwitchObserver] = []
        self._obs_dequeue: List[SwitchObserver] = []
        self._obs_pfc_rx: List[SwitchObserver] = []
        self._obs_pfc_tx: List[SwitchObserver] = []
        self.polling_handler: Optional[PollingHandler] = None
        self.stats = SwitchStats()
        self._rng = random.Random((config.seed, name).__repr__())
        self._ecn_kmin = config.ecn.kmin_bytes
        self._pfc_xoff = config.pfc.xoff_bytes
        self._pfc_xon = config.pfc.xon_bytes

    # -- wiring ---------------------------------------------------------------

    def attach_port(self, port_no: int, bandwidth: float, delay_ns: int, peer: PortRef, peer_is_host: bool) -> None:
        self.ports[port_no] = _Port(port_no, bandwidth, delay_ns, peer, peer_is_host)

    def add_observer(self, obs: SwitchObserver) -> None:
        self.observers.append(obs)
        hooks = _overridden_hooks(obs)
        if "on_egress_enqueue" in hooks:
            self._obs_enqueue.append(obs)
        if "on_egress_dequeue" in hooks:
            self._obs_dequeue.append(obs)
        if "on_pfc_received" in hooks:
            self._obs_pfc_rx.append(obs)
        if "on_pfc_sent" in hooks:
            self._obs_pfc_tx.append(obs)

    def ingress_occupancy(self, port: int, priority: int = DATA_PRIORITY) -> int:
        return self._ingress_bytes.get((port, priority), 0)

    def egress_queue_bytes(self, port: int, priority: int = DATA_PRIORITY) -> int:
        return self.ports[port].queue(priority).bytes

    def egress_queue_pkts(self, port: int, priority: int = DATA_PRIORITY) -> int:
        return len(self.ports[port].queue(priority))

    def egress_paused(self, port: int, priority: int = DATA_PRIORITY) -> bool:
        return self.ports[port].is_paused(priority, self.sim.now)

    # -- receive path ---------------------------------------------------------

    def receive(self, pkt: Packet, ingress_port: int) -> None:
        """Entry point for frames delivered by an attached link."""
        self.stats.rx_pkts += 1
        ptype = pkt.ptype
        if ptype is PacketType.PFC:
            self._handle_pfc(pkt, ingress_port)
            return
        if ptype is PacketType.POLLING:
            self._handle_polling(pkt, ingress_port)
            return
        self._forward(pkt, ingress_port)

    def _forward(self, pkt: Packet, ingress_port: int) -> None:
        assert pkt.flow is not None
        # ACKs and CNPs travel back toward the flow source.
        if pkt.ptype in (PacketType.ACK, PacketType.CNP):
            dst_ip = pkt.flow.src_ip
        else:
            dst_ip = pkt.flow.dst_ip
        egress_port = self.network.routing.select_port(self.name, dst_ip, pkt.flow)
        self.enqueue(pkt, egress_port, ingress_port)

    def _handle_pfc(self, pkt: Packet, port_no: int) -> None:
        """A PAUSE/RESUME frame arrived: (un)pause our egress on that port."""
        port = self.ports[port_no]
        now = self.sim.now
        priority = pkt.pfc_priority
        quanta = pkt.pause_quanta
        if quanta > 0:
            self.stats.pause_received += 1
            duration = pause_quanta_to_ns(quanta, port.bandwidth)
            port.paused_until[priority] = now + duration
            # When the pause lapses (if never refreshed) the transmitter must
            # wake up by itself — but only if it has something queued; the
            # deduplicated wake keeps refreshed pauses from piling one dead
            # event per PAUSE frame into the scheduler.
            self._schedule_unpause_wake(port)
        else:
            self.stats.resume_received += 1
            port.paused_until[priority] = now
            self._try_transmit(port_no)
        for obs in self._obs_pfc_rx:
            obs.on_pfc_received(self, now, port_no, priority, quanta)
        pkt.recycle()  # PFC frames terminate here

    def _handle_polling(self, pkt: Packet, ingress_port: int) -> None:
        self.stats.polling_seen += 1
        if self.polling_handler is None:
            pkt.recycle()
            return
        for egress_port, flag in self.polling_handler(self, pkt, ingress_port):
            dup = pkt.copy_polling(flag, self.sim.now)
            dup.hops = pkt.hops + 1
            self.enqueue(dup, egress_port, ingress_port)
        pkt.recycle()  # forwarded duplicates carry the trace on

    # -- enqueue / buffer accounting -------------------------------------------

    def enqueue(self, pkt: Packet, egress_port: int, ingress_port: Optional[int]) -> None:
        """Place a packet in an egress queue, with PFC ingress accounting."""
        port = self.ports[egress_port]
        priority = pkt.priority
        queue = port.queues.get(priority)
        if queue is None:
            queue = port.queue(priority)
        now = self.sim.now
        size = pkt.size

        depth_pkts = len(queue.pkts)
        depth_bytes = queue.bytes
        paused = port.paused_until.get(priority, 0) > now

        # ECN marking against the egress queue occupancy (data only).
        if pkt.ecn_capable and not pkt.ce_marked and depth_bytes > self._ecn_kmin:
            prob = self.config.ecn.mark_probability(depth_bytes)
            if prob > 0 and self._rng.random() < prob:
                pkt.ce_marked = True
                self.stats.ecn_marked += 1

        pkt.ingress_port = ingress_port
        queue.pkts.append(pkt)
        queue.bytes = depth_bytes + size
        stats = self.stats
        stats.enqueued_bytes += size
        if pkt.ptype is PacketType.DATA:
            stats.data_pkts += 1
            stats.data_bytes += size

        if ingress_port is not None and priority in LOSSLESS_PRIORITIES:
            key = (ingress_port, priority)
            ingress_bytes = self._ingress_bytes
            occ = ingress_bytes.get(key, 0) + size
            ingress_bytes[key] = occ
            if occ > self._pfc_xoff and not self._pausing.get(key):
                self._assert_pause(key)

        for obs in self._obs_enqueue:
            obs.on_egress_enqueue(
                self, now, pkt, egress_port, ingress_port, depth_pkts, depth_bytes, paused
            )
        self._try_transmit(egress_port)

    # -- PFC generation ----------------------------------------------------------

    def _assert_pause(self, key: Tuple[int, int]) -> None:
        self._pausing[key] = True
        self._send_pfc(key[0], key[1], self.config.pfc.pause_quanta)
        self.sim.schedule(
            self.config.pfc.refresh_interval_ns, self._refresh_pause, key
        )

    def _refresh_pause(self, key: Tuple[int, int]) -> None:
        if not self._pausing.get(key):
            return
        # Still above Xon?  Keep the upstream paused.
        if self._ingress_bytes.get(key, 0) >= self._pfc_xon:
            self._send_pfc(key[0], key[1], self.config.pfc.pause_quanta)
            self.sim.schedule(
                self.config.pfc.refresh_interval_ns, self._refresh_pause, key
            )
        else:
            self._release_pause(key)

    def _release_pause(self, key: Tuple[int, int]) -> None:
        if self._pausing.pop(key, None):
            self._send_pfc(key[0], key[1], 0)

    def _send_pfc(self, port_no: int, priority: int, quanta: int) -> None:
        """Emit a PAUSE/RESUME out of ``port_no`` (out-of-band, not queued)."""
        port = self.ports[port_no]
        now = self.sim.now
        if quanta > 0:
            self.stats.pause_sent += 1
        else:
            self.stats.resume_sent += 1
        for obs in self._obs_pfc_tx:
            obs.on_pfc_sent(self, now, port_no, priority, quanta)
        frame = Packet.pfc(priority, quanta, now)
        self.network.deliver(port.peer, frame, port.pfc_tx_latency, self.name)

    # -- transmit path -------------------------------------------------------------

    def _try_transmit(self, port_no: int) -> None:
        port = self.ports[port_no]
        now = self.sim.now
        if port.busy_until > now:
            return

        # Pick the highest-priority head-of-line packet whose class is not
        # paused (inlined: this runs for every enqueue and wire-idle event).
        queues = port.queues
        paused_until = port.paused_until
        best_prio = None
        for prio, queue in queues.items():
            if not queue.pkts:
                continue
            if paused_until.get(prio, 0) > now:
                continue
            if best_prio is None or prio > best_prio:
                best_prio = prio
        if best_prio is None:
            self._schedule_unpause_wake(port)
            return

        queue = queues[best_prio]
        pkt = queue.pkts.popleft()
        size = pkt.size
        queue.bytes -= size
        port.tx_bytes += size
        port.tx_pkts += 1
        self.stats.tx_pkts += 1

        ingress_port = pkt.ingress_port
        if ingress_port is not None and pkt.priority in LOSSLESS_PRIORITIES:
            key = (ingress_port, pkt.priority)
            ingress_bytes = self._ingress_bytes
            occ = ingress_bytes.get(key, 0) - size
            ingress_bytes[key] = occ
            if occ < self._pfc_xon and self._pausing.get(key):
                self._release_pause(key)

        for obs in self._obs_dequeue:
            obs.on_egress_dequeue(self, now, pkt, port_no)

        ser = serialization_delay_ns(size, port.bandwidth)
        port.busy_until = now + ser
        self.network.deliver(port.peer, pkt, ser + port.delay_ns, self.name)
        self.sim.schedule(ser, self._try_transmit, port_no)

    def _pick_packet(self, port: _Port, now: int) -> Optional[Packet]:
        """Highest-priority head-of-line packet whose class is not paused."""
        best_prio = None
        for prio, queue in port.queues.items():
            if not queue.pkts:
                continue
            if port.is_paused(prio, now):
                continue
            if best_prio is None or prio > best_prio:
                best_prio = prio
        if best_prio is None:
            return None
        return port.queues[best_prio].pkts[0]

    def _schedule_unpause_wake(self, port: _Port) -> None:
        """If everything queued is paused, wake when the earliest pause lapses.

        At most one pending wake per port (dedup) — refreshed pauses would
        otherwise accumulate one event per enqueue attempt.
        """
        now = self.sim.now
        times = [
            port.paused_until.get(prio, 0)
            for prio, q in port.queues.items()
            if q.pkts and port.is_paused(prio, now)
        ]
        if not times:
            return
        wake_at = max(min(times) + 1, now + 1)
        pending = port.wake
        if pending is not None and not pending.cancelled and pending.time <= wake_at:
            return
        if pending is not None:
            pending.cancel()
        port.wake = self.sim.schedule_at(wake_at, self._fire_wake, port)

    def _fire_wake(self, port: _Port) -> None:
        port.wake = None
        self._try_transmit(port.port_no)
