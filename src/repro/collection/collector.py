"""Controller-assisted telemetry collection (§3.4).

When a polling packet is mirrored to a switch CPU, the controller reads the
telemetry registers (REGISTER_SYNC DMA on Tofino), filters out empty slots,
batches the survivors into MTU-sized report packets and ships them to the
analyzer.  A per-switch dedup interval prevents repeated collection when
several victims' polling packets cross the same switch (e.g., the four
flows of a deadlock loop).

We snapshot the registers at mirror time — the DMA happens within the same
epoch window in practice — and model the CPU poll latency analytically in
:mod:`repro.experiments.hardware` for the §4.5 timing numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.packet import Packet
from ..telemetry.hawkeye import HawkeyeDeployment
from ..telemetry.snapshot import SwitchReport
from ..units import usec

MTU_BYTES = 1500
# Usable PHV budget for data-plane packet generation (the alternative the
# CPU poller is compared against in Fig 14(b)).
PHV_REPORT_BYTES = 192


@dataclass
class CollectionStats:
    """Accounting for Fig 9a / Fig 14."""

    collections: int = 0
    mirrored_packets: int = 0
    suppressed_collections: int = 0
    filtered_bytes: int = 0
    full_dump_bytes: int = 0
    report_packets_cpu: int = 0
    report_packets_dataplane: int = 0


class TelemetryCollector:
    """Gathers :class:`SwitchReport` objects in response to polling mirrors."""

    def __init__(
        self,
        deployment: HawkeyeDeployment,
        lookback_epochs: Optional[int] = None,
        dedup_interval_ns: int = usec(100),
        read_delay_ns: Optional[int] = None,
    ) -> None:
        """``read_delay_ns`` models the gap between the polling packet's CPU
        mirror and the actual register DMA read (tens of ms on Tofino; here
        defaulted to a quarter of the epoch-ring window so the read still
        lands inside the history the ring retains)."""
        self.deployment = deployment
        self.lookback_epochs = lookback_epochs
        self.dedup_interval_ns = dedup_interval_ns
        if read_delay_ns is None:
            window = deployment.config.scheme.window_ns
            read_delay_ns = min(usec(300), window // 4)
        self.read_delay_ns = read_delay_ns
        self.reports: List[SwitchReport] = []
        self.stats = CollectionStats()
        self._last_collect: Dict[str, int] = {}
        self._pending: Dict[str, int] = {}
        # Freshest report per switch, maintained incrementally so the
        # analyzer-side lookup is O(switches) rather than O(reports).
        self._latest: Dict[str, SwitchReport] = {}

    def on_polling_mirror(self, switch_name: str, pkt: Packet, now: int) -> None:
        """CPU-mirror notification: maybe start an asynchronous register read."""
        self.stats.mirrored_packets += 1
        last = self._last_collect.get(switch_name)
        if last is not None and now - last < self.dedup_interval_ns:
            self.stats.suppressed_collections += 1
            return
        self._last_collect[switch_name] = now
        if self.read_delay_ns <= 0:
            self.collect(switch_name, now)
            return
        self._pending[switch_name] = self._pending.get(switch_name, 0) + 1
        sim = self.deployment.network.sim
        sim.schedule(self.read_delay_ns, lambda: self._delayed_read(switch_name))

    def _delayed_read(self, switch_name: str) -> None:
        if self._pending.get(switch_name, 0) <= 0:
            return
        self._pending[switch_name] -= 1
        self.collect(switch_name, self.deployment.network.sim.now)

    def flush_pending(self, now: int) -> None:
        """Force any scheduled-but-unread register reads (end of a run)."""
        for switch_name, count in list(self._pending.items()):
            if count > 0:
                self._pending[switch_name] = 0
                self.collect(switch_name, now)

    def collect(self, switch_name: str, now: int) -> SwitchReport:
        """Read one switch's registers into a report (CPU-filtered)."""
        telem = self.deployment.for_switch(switch_name)
        report = telem.snapshot(now, self.lookback_epochs)
        self.reports.append(report)
        existing = self._latest.get(switch_name)
        if existing is None or report.collect_time > existing.collect_time:
            self._latest[switch_name] = report
        self._account(report, telem)
        return report

    def _account(self, report: SwitchReport, telem) -> None:
        filtered = report.payload_bytes()
        num_ports = max(len(report.port_status), 1)
        full = SwitchReport.full_dump_bytes(
            flow_slots=telem.config.flow_slots,
            num_ports=num_ports,
            num_epochs=len(report.epochs) or 1,
        )
        self.stats.collections += 1
        self.stats.filtered_bytes += filtered
        self.stats.full_dump_bytes += full
        self.stats.report_packets_cpu += max(1, -(-filtered // MTU_BYTES))
        self.stats.report_packets_dataplane += max(1, -(-full // PHV_REPORT_BYTES))

    def collect_all(self, now: int) -> None:
        """Full-polling baseline: read every deployed switch (dedup applies)."""
        for switch_name in self.deployment.telemetry:
            last = self._last_collect.get(switch_name)
            if last is not None and now - last < self.dedup_interval_ns:
                self.stats.suppressed_collections += 1
                continue
            self._last_collect[switch_name] = now
            self.collect(switch_name, now)

    # -- analyzer-side access ----------------------------------------------------

    def reports_by_switch(self) -> Dict[str, SwitchReport]:
        """Latest report per switch (what the analyzer diagnoses from).

        Maintained incrementally at collect time; key order matches the
        order switches were first collected, as the scan-based version had.
        """
        return dict(self._latest)

    def collected_switches(self) -> List[str]:
        return sorted({r.switch for r in self.reports})
