"""Controller-assisted telemetry collection (§3.4).

When a polling packet is mirrored to a switch CPU, the controller reads the
telemetry registers (REGISTER_SYNC DMA on Tofino), filters out empty slots,
batches the survivors into MTU-sized report packets and ships them to the
analyzer.  A per-switch dedup interval prevents repeated collection when
several victims' polling packets cross the same switch (e.g., the four
flows of a deadlock loop).

We snapshot the registers at mirror time — the DMA happens within the same
epoch window in practice — and model the CPU poll latency analytically in
:mod:`repro.experiments.hardware` for the §4.5 timing numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..faults.injector import (
    DMA_FAIL,
    DMA_STALE,
    REPORT_DELAYED,
    REPORT_LOST,
    REPORT_TRUNCATED,
)
from ..sim.packet import Packet
from ..telemetry.hawkeye import HawkeyeDeployment
from ..telemetry.snapshot import SwitchReport
from ..units import usec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector
    from ..faults.plan import RetryPolicy
    from ..obs.pipeline import PipelineObs
    from ..sim.packet import FlowKey

MTU_BYTES = 1500
# Usable PHV budget for data-plane packet generation (the alternative the
# CPU poller is compared against in Fig 14(b)).
PHV_REPORT_BYTES = 192


@dataclass
class CollectionStats:
    """Accounting for Fig 9a / Fig 14."""

    collections: int = 0
    mirrored_packets: int = 0
    suppressed_collections: int = 0
    filtered_bytes: int = 0
    full_dump_bytes: int = 0
    report_packets_cpu: int = 0
    report_packets_dataplane: int = 0
    # Reliability accounting (only nonzero under fault injection).
    dma_retries: int = 0
    dma_reads_abandoned: int = 0
    stale_reads: int = 0
    reports_lost: int = 0
    reports_truncated: int = 0
    reports_delayed: int = 0


class TelemetryCollector:
    """Gathers :class:`SwitchReport` objects in response to polling mirrors."""

    def __init__(
        self,
        deployment: HawkeyeDeployment,
        lookback_epochs: Optional[int] = None,
        dedup_interval_ns: int = usec(100),
        read_delay_ns: Optional[int] = None,
        injector: Optional["FaultInjector"] = None,
        retry: Optional["RetryPolicy"] = None,
        obs: Optional["PipelineObs"] = None,
    ) -> None:
        """``read_delay_ns`` models the gap between the polling packet's CPU
        mirror and the actual register DMA read (tens of ms on Tofino; here
        defaulted to a quarter of the epoch-ring window so the read still
        lands inside the history the ring retains).

        ``injector`` subjects the register DMA and the report channel to a
        fault plan; ``retry`` bounds the DMA retry budget that answers it.
        """
        self.deployment = deployment
        self.lookback_epochs = lookback_epochs
        self.dedup_interval_ns = dedup_interval_ns
        if read_delay_ns is None:
            window = deployment.config.scheme.window_ns
            read_delay_ns = min(usec(300), window // 4)
        self.read_delay_ns = read_delay_ns
        self._injector = injector
        self._retry = retry
        self._obs = obs
        # Victim/time of the switch's most recent polling mirror: dedup makes
        # exact read attribution impossible, so the epoch-read span parents
        # under the round whose mirror actually drove (or most recently
        # touched) the switch.
        self._last_mirror_victim: Dict[str, "FlowKey"] = {}
        self._last_mirror_time: Dict[str, int] = {}
        self.reports: List[SwitchReport] = []
        self.stats = CollectionStats()
        self._last_collect: Dict[str, int] = {}
        self._pending: Dict[str, int] = {}
        # Freshest report per switch, maintained incrementally so the
        # analyzer-side lookup is O(switches) rather than O(reports).
        self._latest: Dict[str, SwitchReport] = {}
        # Sim time of the most recent report delivery (retransmission probe),
        # plus per-switch delivery times for the path-coverage probe.
        self._last_delivery_ns = -1
        self._delivery_times: Dict[str, int] = {}

    def on_polling_mirror(self, switch_name: str, pkt: Packet, now: int) -> None:
        """CPU-mirror notification: maybe start an asynchronous register read."""
        self.stats.mirrored_packets += 1
        last = self._last_collect.get(switch_name)
        if last is not None and now - last < self.dedup_interval_ns:
            self.stats.suppressed_collections += 1
            if self._obs is not None and pkt.flow is not None:
                # This victim's telemetry rides the read another victim's
                # mirror already started — keep its causal chain intact.
                self._obs.on_collection_shared(switch_name, pkt.flow, now)
            return
        # Only the collection-driving mirror claims read attribution: the
        # epoch-read span parents under the round that caused the read.
        if pkt.flow is not None:
            self._last_mirror_victim[switch_name] = pkt.flow
            self._last_mirror_time[switch_name] = now
        self._last_collect[switch_name] = now
        if self.read_delay_ns <= 0:
            self.collect(switch_name, now)
            return
        self._pending[switch_name] = self._pending.get(switch_name, 0) + 1
        sim = self.deployment.network.sim
        sim.schedule(self.read_delay_ns, lambda: self._delayed_read(switch_name))

    def _delayed_read(self, switch_name: str) -> None:
        if self._pending.get(switch_name, 0) <= 0:
            return
        self._pending[switch_name] -= 1
        self.collect(switch_name, self.deployment.network.sim.now)

    def flush_pending(self, now: int) -> None:
        """Force any scheduled-but-unread register reads (end of a run)."""
        for switch_name, count in list(self._pending.items()):
            if count > 0:
                self._pending[switch_name] = 0
                self.collect(switch_name, now)

    def collect(
        self, switch_name: str, now: int, _attempt: int = 0
    ) -> Optional[SwitchReport]:
        """Read one switch's registers into a report (CPU-filtered).

        Fault-free, this snapshots and delivers synchronously.  Under an
        injector the read may fail (retried on the bounded DMA budget) or go
        stale, and the resulting report may be lost, truncated or delayed on
        its way to the analyzer — ``None`` means no report was delivered (or
        even produced) by this attempt.
        """
        telem = self.deployment.for_switch(switch_name)
        injector = self._injector
        obs = self._obs
        victim = self._last_mirror_victim.get(switch_name)
        # The read interval spans from the CPU mirror that drove it to the
        # actual register snapshot (retry attempts start at the retry).
        read_start = now if _attempt else min(
            self._last_mirror_time.get(switch_name, now), now
        )
        if injector is None:
            report = telem.snapshot(now, self.lookback_epochs)
            if obs is not None:
                obs.on_epoch_read(
                    switch_name, victim, read_start, now, len(report.epochs)
                )
            self._deliver(report, telem)
            return report

        fate = injector.dma_fate(now, switch_name)
        if fate == DMA_FAIL:
            if obs is not None:
                obs.on_epoch_read(
                    switch_name, victim, read_start, now, 0, faults=("dma_fail",)
                )
            budget = self._retry.dma_retry_budget if self._retry is not None else 0
            if _attempt < budget:
                self.stats.dma_retries += 1
                injector.count(
                    "dma_read_retried", switch_name, now, f"attempt={_attempt + 1}"
                )
                self.deployment.network.sim.schedule(
                    self._retry.dma_retry_delay_ns,
                    self._collect_retry,
                    switch_name,
                    _attempt + 1,
                )
            else:
                self.stats.dma_reads_abandoned += 1
                injector.count("dma_read_abandoned", switch_name, now)
            return None

        flags = []
        read_at = now
        if fate == DMA_STALE:
            # The DMA returned an old window but is timestamped fresh: the
            # analyzer sees a current-looking report with aged content.
            read_at = max(0, now - injector.plan.dma_stale_age_ns)
            flags.append("stale")
            self.stats.stale_reads += 1
        report = telem.snapshot(read_at, self.lookback_epochs)
        report.collect_time = now
        skew = injector.clock_skew_for(switch_name)
        if skew:
            report.collect_time = max(0, now + skew)
            flags.append("skewed")
        if obs is not None:
            obs.on_epoch_read(
                switch_name,
                victim,
                read_start,
                now,
                len(report.epochs),
                faults=tuple(flags),
            )

        report_fate, delay_ns = injector.report_fate(now, switch_name)
        if report_fate == REPORT_LOST:
            self.stats.reports_lost += 1
            if obs is not None:
                obs.on_report("lost", switch_name, victim, now, faults=tuple(flags))
            return None
        if report_fate == REPORT_TRUNCATED:
            report.epochs = report.epochs[-1:]
            flags.append("truncated")
            self.stats.reports_truncated += 1
            if obs is not None:
                obs.on_report("truncated", switch_name, victim, now)
        if flags:
            report.faults = tuple(flags)
        if report_fate == REPORT_DELAYED:
            self.stats.reports_delayed += 1
            if obs is not None:
                obs.on_report(
                    "delayed", switch_name, victim, now, delay_ns=delay_ns
                )
            self.deployment.network.sim.schedule(
                delay_ns, self._deliver, report, telem
            )
            return report
        self._deliver(report, telem)
        return report

    def _collect_retry(self, switch_name: str, attempt: int) -> None:
        self.collect(
            switch_name, self.deployment.network.sim.now, _attempt=attempt
        )

    def _deliver(self, report: SwitchReport, telem) -> None:
        """A report packet reached the analyzer: index and account it."""
        if self._obs is not None:
            self._obs.on_report(
                "delivered",
                report.switch,
                self._last_mirror_victim.get(report.switch),
                self.deployment.network.sim.now,
                faults=report.faults,
            )
        self.reports.append(report)
        existing = self._latest.get(report.switch)
        if existing is None or report.collect_time > existing.collect_time:
            self._latest[report.switch] = report
        self._account(report, telem)
        now = self.deployment.network.sim.now
        self._last_delivery_ns = now
        self._delivery_times[report.switch] = now

    def has_report_since(self, victim, since_ns: int) -> bool:
        """Has *any* report been delivered at/after ``since_ns``?  The
        coarse retransmission probe (victim-agnostic: a trigger's polling
        packet is judged answered by the collection wave it started)."""
        return self._last_delivery_ns >= since_ns

    def switches_reported_since(self, since_ns: int) -> set:
        """The switches whose reports reached the analyzer at/after
        ``since_ns``.  The path-coverage probe compares this against the
        victim's expected switch set: a single lost report (or a polling
        packet dying mid-path) shows up as a hole here, which the coarse
        any-report probe cannot see."""
        return {
            name
            for name, t in self._delivery_times.items()
            if t >= since_ns
        }

    def _account(self, report: SwitchReport, telem) -> None:
        filtered = report.payload_bytes()
        num_ports = max(len(report.port_status), 1)
        full = SwitchReport.full_dump_bytes(
            flow_slots=telem.config.flow_slots,
            num_ports=num_ports,
            num_epochs=len(report.epochs) or 1,
        )
        self.stats.collections += 1
        self.stats.filtered_bytes += filtered
        self.stats.full_dump_bytes += full
        self.stats.report_packets_cpu += max(1, -(-filtered // MTU_BYTES))
        self.stats.report_packets_dataplane += max(1, -(-full // PHV_REPORT_BYTES))

    def collect_all(self, now: int) -> None:
        """Full-polling baseline: read every deployed switch (dedup applies)."""
        for switch_name in self.deployment.telemetry:
            last = self._last_collect.get(switch_name)
            if last is not None and now - last < self.dedup_interval_ns:
                self.stats.suppressed_collections += 1
                continue
            self._last_collect[switch_name] = now
            self.collect(switch_name, now)

    # -- analyzer-side access ----------------------------------------------------

    def reports_by_switch(self) -> Dict[str, SwitchReport]:
        """Latest report per switch (what the analyzer diagnoses from).

        Maintained incrementally at collect time; key order matches the
        order switches were first collected, as the scan-based version had.
        """
        return dict(self._latest)

    def collected_switches(self) -> List[str]:
        return sorted({r.switch for r in self.reports})
