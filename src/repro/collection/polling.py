"""In-data-plane PFC causality analysis and polling-packet forwarding (§3.4).

A :class:`PollingEngine` installs a polling handler on every Hawkeye switch.
When a polling packet arrives the switch (at "line rate", i.e. inside the
simulated data plane):

1. mirrors the packet to its CPU, which starts asynchronous telemetry
   collection (see :mod:`repro.collection.collector`);
2. if the flag traces the *victim path* (01/11), unicasts the packet out
   of the victim flow's egress port, upgrading the flag to 11 when the
   victim was PFC-paused at that port — so the downstream switch also
   analyzes PFC causality;
3. if the flag traces *PFC causality* (10/11), consults the Figure-3
   causality structure: every egress port fed by the arrival ingress port
   (``meter > 0``) that is itself PFC-paused propagates the trace; ports
   whose paused packets are zero terminate the trace (the congestion is
   local flow contention), and host-facing paused ports terminate it too
   (host PFC injection).

Per-switch dedup on (victim, flag, ingress) bounds the trace and ends the
walk around deadlock loops after one full cycle.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..sim.network import Network
from ..sim.packet import Packet, PollingFlag
from ..sim.switch import Switch
from ..telemetry.hawkeye import HawkeyeDeployment
from ..units import msec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector
    from ..obs.pipeline import PipelineObs


@dataclass
class PollingConfig:
    # Epochs of telemetry consulted by the line-rate checks.
    lookback_epochs: Optional[int] = None  # None = whole ring
    # Dedup interval for polling packets (per switch, per victim).
    dedup_interval_ns: int = msec(2)
    # Disable flag upgrade (victim-only baseline: never trace PFC causality).
    trace_pfc: bool = True
    # Ablation: ITSY-style 1-bit traffic presence instead of the Figure-3
    # port-pair meters — the causality multicast then forwards to *every*
    # paused egress port, collecting causally irrelevant switches.
    use_meters: bool = True


class PollingEngine:
    """Installs and implements the per-switch polling logic."""

    def __init__(
        self,
        network: Network,
        deployment: HawkeyeDeployment,
        config: Optional[PollingConfig] = None,
        injector: Optional["FaultInjector"] = None,
        obs: Optional["PipelineObs"] = None,
    ) -> None:
        self.network = network
        self.deployment = deployment
        self.config = config if config is not None else PollingConfig()
        self._injector = injector
        self._obs = obs
        # (switch, victim, flag_bit, ingress) -> last handled time
        self._seen: Dict[Tuple, int] = {}
        # victim -> switches its polling packets visited (causal trace set)
        self._victim_switches: Dict = {}
        self._mirror_listeners: List = []
        self.polling_packets_forwarded = 0
        self.polling_packets_suppressed = 0
        self.polling_packets_lost = 0
        for name in deployment.telemetry:
            network.switches[name].polling_handler = self._handle

    # One warning per process, not per access: hot paths may read the alias
    # in a loop and a warning flood would bury the signal.
    _dropped_alias_warned = False

    @property
    def polling_packets_dropped(self) -> int:
        """Deprecated alias for :attr:`polling_packets_suppressed`.

        The counter tallies per-switch dedup *suppressions*, never actual
        packet drops (injected loss is :attr:`polling_packets_lost`); the
        old name misled.  Kept one deprecation cycle for external callers;
        in-tree callers have migrated.
        """
        if not PollingEngine._dropped_alias_warned:
            PollingEngine._dropped_alias_warned = True
            warnings.warn(
                "polling_packets_dropped is deprecated; use "
                "polling_packets_suppressed (dedup suppressions) or "
                "polling_packets_lost (injected loss)",
                DeprecationWarning,
                stacklevel=2,
            )
        return self.polling_packets_suppressed

    def add_mirror_listener(self, fn) -> None:
        """``fn(switch_name, pkt, now)`` is the CPU-mirror notification."""
        self._mirror_listeners.append(fn)

    def switches_traced_for(self, victim) -> set:
        """Switches a victim's polling packets visited — its causal trace."""
        return set(self._victim_switches.get(victim, ()))

    def reset_victim(self, victim) -> None:
        """Reopen the per-victim dedup windows (retransmission support).

        The agent calls this before retransmitting a lost polling packet:
        the retransmission models a new trace generation in the polling
        header, so switches that forwarded the previous generation must
        forward this one too or the re-trace dies at the first hop.
        """
        for key in [k for k in self._seen if k[1] == victim]:
            del self._seen[key]

    # -- the data-plane logic ---------------------------------------------------

    def _handle(self, switch: Switch, pkt: Packet, ingress_port: int) -> List[Tuple[int, PollingFlag]]:
        assert pkt.flow is not None
        now = switch.sim.now
        victim = pkt.flow
        if self._injector is not None and not self._injector.polling_fate(
            now, switch.name
        ):
            # Lost or corrupted on the hop into this switch: no CPU mirror,
            # no forwarding — the trace is truncated here until the agent's
            # retransmission (if enabled) replays it.
            self.polling_packets_lost += 1
            if self._obs is not None:
                self._obs.on_polling_lost(switch.name, victim, now)
            return []
        flag: PollingFlag = pkt.polling_flag
        telem = self.deployment.for_switch(switch.name)
        lookback = self.config.lookback_epochs

        # CPU mirror: every polling packet notifies the controller
        # (collection-side dedup lives in the collector).
        self._victim_switches.setdefault(victim, set()).add(switch.name)
        if self._obs is not None:
            self._obs.on_polling_mirror(switch.name, victim, now)
        for fn in self._mirror_listeners:
            fn(switch.name, pkt, now)

        outputs: List[Tuple[int, PollingFlag]] = []

        if flag.traces_victim_path:
            if not self._suppressed(switch.name, victim, "victim", None, now):
                egress = self.network.routing.select_port(
                    switch.name, victim.dst_ip, victim
                )
                out_flag = PollingFlag.VICTIM_PATH
                if self.config.trace_pfc and telem.flow_paused_num(victim, now, lookback) > 0:
                    # Victim is PFC-paused here: the downstream switch (from
                    # which the PAUSE frames came) must analyze causality.
                    out_flag = PollingFlag.BOTH
                if not switch.ports[egress].peer_is_host:
                    outputs.append((egress, out_flag))
                # Destination ToR reached: victim-path tracing terminates.

        if flag.traces_pfc:
            if not self._suppressed(switch.name, victim, "pfc", ingress_port, now):
                outputs.extend(
                    self._causality_multicast(switch, telem, victim, ingress_port, now)
                )

        self.polling_packets_forwarded += len(outputs)
        if outputs and self._obs is not None:
            self._obs.on_polling_forward(switch.name, victim, now, len(outputs))
        return outputs

    def _causality_multicast(
        self, switch: Switch, telem, victim, ingress_port: int, now: int
    ) -> List[Tuple[int, PollingFlag]]:
        """Figure 6: multicast to the causally relevant egress ports only."""
        lookback = self.config.lookback_epochs
        outputs: List[Tuple[int, PollingFlag]] = []
        for port_no, port in switch.ports.items():
            if self.config.use_meters:
                volume = telem.meter_volume(ingress_port, port_no, now, lookback)
                if volume <= 0:
                    continue  # this egress does not feed the complaining ingress
            # paused packets, asserted status register, or PAUSE frames seen
            # — one batched walk over the live epoch banks.
            paused = telem.port_pause_evidence(port_no, now, lookback)
            if not paused:
                # Neither paused packets nor an asserted PFC status: the
                # buildup here is local flow contention — the initial
                # congestion point.  The trace ends; this switch's telemetry
                # (already being collected) covers it.
                continue
            if port.peer_is_host:
                # Paused by a host: PFC injection — terminal as well.
                continue
            outputs.append((port_no, PollingFlag.PFC_CAUSALITY))
        return outputs

    def _suppressed(self, switch_name: str, victim, kind: str, ingress, now: int) -> bool:
        key = (switch_name, victim, kind, ingress)
        last = self._seen.get(key)
        if last is not None and now - last < self.config.dedup_interval_ns:
            self.polling_packets_suppressed += 1
            if self._obs is not None:
                self._obs.on_polling_suppressed(switch_name, victim, now, kind)
            return True
        self._seen[key] = now
        return False
