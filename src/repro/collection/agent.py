"""Host-based anomaly detection agent (§3.4).

The paper's agent runs on a BlueField-3 DPU and watches per-flow RTT via
DOCA PCC; ours subscribes to the simulated hosts' RTT samples.  When a
flow's RTT exceeds ``threshold_multiplier`` times its unloaded base RTT the
agent injects a polling packet (victim 5-tuple, flag 01) from the source
host, which starts telemetry collection and diagnosis.

Host-side triggering deliberately avoids switch-side triggering: one
polling packet per victim covers the whole PFC causality without the
duplicated tracing that switch detection would start at every hop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..sim.flow import Flow
from ..sim.network import Network
from ..sim.packet import FlowKey, PollingFlag
from ..units import msec, usec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector
    from ..faults.plan import RetryPolicy
    from ..monitor.monitor import FabricMonitor
    from ..obs.pipeline import PipelineObs

# ``report_probe(victim, since_ns) -> bool``: has the analyzer received any
# telemetry report since ``since_ns``?  Wired by the runner to the
# collector's delivery clock; the agent uses it to decide whether a polling
# packet (or its reports) died in flight and must be retransmitted.
ReportProbe = Callable[[FlowKey, int], bool]


@dataclass
class TriggerEvent:
    """One diagnosis trigger raised by the agent."""

    victim: FlowKey
    time_ns: int
    rtt_ns: int
    base_rtt_ns: int


@dataclass
class AgentConfig:
    # Detection threshold, normalized to the flow's base RTT (the paper
    # sweeps 200%..500%, i.e. multipliers 2.0..5.0).
    threshold_multiplier: float = 3.0
    # Suppress re-triggering for the same victim within this interval.
    cooldown_ns: int = msec(1)
    # A flow with sent-but-unacked data and no ACK progress for this long is
    # stalled (deadlocked flows stop producing RTT samples entirely).  At
    # 100 Gbps, 200 us of ACK silence with data outstanding is many tens of
    # base RTTs — unambiguously a frozen path.
    stall_timeout_ns: int = usec(200)
    stall_check_interval_ns: int = usec(50)


class DetectionAgent:
    """Monitors every host's flows and fires polling packets on degradation."""

    def __init__(
        self,
        network: Network,
        config: Optional[AgentConfig] = None,
        retry: Optional["RetryPolicy"] = None,
        injector: Optional["FaultInjector"] = None,
        obs: Optional["PipelineObs"] = None,
        monitor: Optional["FabricMonitor"] = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else AgentConfig()
        self.retry = retry
        self._injector = injector
        self._obs = obs
        self._monitor = monitor
        self.triggers: List[TriggerEvent] = []
        self._base_rtt: Dict[FlowKey, int] = {}
        # multiplier * base RTT, precomputed per flow: the RTT listener runs
        # for every ACK, so the comparison threshold is resolved once.
        self._threshold: Dict[FlowKey, float] = {}
        self._last_trigger: Dict[FlowKey, int] = {}
        self._listeners: List[Callable[[TriggerEvent], None]] = []
        self._retransmit_listeners: List[Callable[[FlowKey], None]] = []
        self._report_probe: Optional[ReportProbe] = None
        self._progress: Dict[FlowKey, tuple] = {}
        # Reliability accounting (chaos harness / PerfStats).
        self.retransmissions = 0
        self.retries_recovered = 0
        self.retries_exhausted = 0
        self.restarts = 0
        # Absolute times of scheduled-but-not-yet-executed _retry_check
        # events (sharded runs: the barrier must land before the earliest
        # one so remote delivery state is complete when the check fires).
        self._pending_retry: List[int] = []
        self._blackout_until = -1
        self._last_restart = -1
        for host in network.hosts.values():
            host.rtt_listeners.append(self._on_rtt)
        network.sim.schedule(self.config.stall_check_interval_ns, self._stall_check)

    def add_trigger_listener(self, fn: Callable[[TriggerEvent], None]) -> None:
        self._listeners.append(fn)

    def attach_monitor(self, monitor: Optional["FabricMonitor"]) -> None:
        """Feed per-flow RTT samples to a fabric monitor (None detaches)."""
        self._monitor = monitor

    def add_retransmit_listener(self, fn: Callable[[FlowKey], None]) -> None:
        """``fn(victim)`` runs just before a polling retransmission (the
        polling engine uses it to reopen its per-victim dedup windows, as a
        new trace generation in the real polling header would)."""
        self._retransmit_listeners.append(fn)

    def set_report_probe(self, fn: ReportProbe) -> None:
        """Wire the delivery feedback the retransmission timers consult."""
        self._report_probe = fn

    def base_rtt(self, flow: Flow) -> int:
        cached = self._base_rtt.get(flow.key)
        if cached is None:
            cached = self.network.estimate_base_rtt(
                flow.src_host, flow.key.dst_ip, flow.key
            )
            self._base_rtt[flow.key] = cached
        return cached

    def _on_rtt(self, flow: Flow, now: int, rtt_ns: int) -> None:
        if now < self._blackout_until:
            return  # agent process is restarting: samples are lost
        threshold = self._threshold.get(flow.key)
        if threshold is None:
            threshold = self.config.threshold_multiplier * self.base_rtt(flow)
            self._threshold[flow.key] = threshold
        if self._monitor is not None:
            self._monitor.on_rtt(
                flow.src_host, flow.key, now, rtt_ns, self._base_rtt[flow.key]
            )
        if rtt_ns <= threshold:
            return
        self._trigger(flow, now, rtt_ns, self._base_rtt[flow.key])

    def _trigger(
        self, flow: Flow, now: int, rtt_ns: int, base: int, kind: str = "rtt"
    ) -> None:
        last = self._last_trigger.get(flow.key)
        if last is not None and now - last < self.config.cooldown_ns:
            return
        self._last_trigger[flow.key] = now
        event = TriggerEvent(victim=flow.key, time_ns=now, rtt_ns=rtt_ns, base_rtt_ns=base)
        self.triggers.append(event)
        if self._obs is not None:
            self._obs.on_trigger(flow.key, now, rtt_ns, base, kind=kind)
            self._obs.on_polling_injected(flow.key, now, attempt=0)
        self.network.hosts[flow.src_host].inject_polling(
            flow.key, PollingFlag.VICTIM_PATH
        )
        for fn in self._listeners:
            fn(event)
        if self.retry is not None and self._report_probe is not None:
            delay = self.retry.report_timeout_ns + self._jitter(flow.key)
            heapq.heappush(self._pending_retry, now + delay)
            self.network.sim.schedule(
                delay,
                self._retry_check,
                flow.key,
                flow.src_host,
                1,
                now,
            )

    # -- polling retransmission (end-to-end reliability) -------------------------

    def _jitter(self, victim: FlowKey) -> int:
        if self.retry is None or self._injector is None:
            return 0
        return self._injector.retry_jitter(self.retry.jitter_ns, str(victim))

    def next_pending_retry(self, now: int) -> Optional[int]:
        """Earliest scheduled retry check strictly after ``now``, or None.

        Valid at a barrier (all events <= now have executed, so stale heap
        entries are simply popped); the sharded parent uses it to cap the
        next epoch so every check fires with complete remote state.
        """
        heap = self._pending_retry
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def _retry_check(
        self, victim: FlowKey, src_host: str, attempt: int, trigger_time: int
    ) -> None:
        """No report yet?  Retransmit with exponential backoff, bounded."""
        now = self.network.sim.now
        if trigger_time < self._last_restart or now < self._blackout_until:
            return  # retry state died with the restarted agent process
        assert self._report_probe is not None and self.retry is not None
        if self._report_probe(victim, trigger_time):
            if attempt > 1:
                self.retries_recovered += 1
                if self._injector is not None:
                    self._injector.count(
                        "polling_retry_recovered", str(victim), now
                    )
            return
        if attempt > self.retry.max_retries:
            self.retries_exhausted += 1
            if self._injector is not None:
                self._injector.count("polling_retries_exhausted", str(victim), now)
            return
        for fn in self._retransmit_listeners:
            fn(victim)
        self.retransmissions += 1
        if self._injector is not None:
            self._injector.count(
                "polling_retransmitted", str(victim), now, f"attempt={attempt}"
            )
        if self._obs is not None:
            self._obs.on_polling_injected(victim, now, attempt=attempt)
        self.network.hosts[src_host].inject_polling(victim, PollingFlag.VICTIM_PATH)
        delay = self.retry.backoff_ns(attempt) + self._jitter(victim)
        heapq.heappush(self._pending_retry, now + delay)
        self.network.sim.schedule(
            delay,
            self._retry_check,
            victim,
            src_host,
            attempt + 1,
            trigger_time,
        )

    def _restart(self, now: int) -> None:
        """Simulated agent-process restart: all soft state is lost and the
        agent is blind until the blackout lapses (missed triggers included)."""
        self.restarts += 1
        self._last_restart = now
        self._blackout_until = now + self._injector.plan.agent_restart_blackout_ns
        self._base_rtt.clear()
        self._threshold.clear()
        self._last_trigger.clear()
        self._progress.clear()

    def _stall_check(self) -> None:
        """Detect fully blocked flows (deadlocks produce no ACKs at all)."""
        now = self.network.sim.now
        if self._injector is not None and self._injector.agent_restart_due(now):
            self._restart(now)
        if now < self._blackout_until:
            self.network.sim.schedule(
                self.config.stall_check_interval_ns, self._stall_check
            )
            return
        for flow in self.network.flows:
            if flow.completed or flow.start_time > now or flow.bytes_sent == 0:
                continue
            if flow.bytes_sent <= flow.bytes_acked:
                continue  # nothing outstanding
            acked, since = self._progress.get(flow.key, (-1, now))
            if flow.bytes_acked != acked:
                self._progress[flow.key] = (flow.bytes_acked, now)
                continue
            if now - since >= self.config.stall_timeout_ns:
                # Report the stall duration as the observed "RTT".
                self._trigger(flow, now, now - since, self.base_rtt(flow), kind="stall")
        self.network.sim.schedule(self.config.stall_check_interval_ns, self._stall_check)
