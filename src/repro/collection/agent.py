"""Host-based anomaly detection agent (§3.4).

The paper's agent runs on a BlueField-3 DPU and watches per-flow RTT via
DOCA PCC; ours subscribes to the simulated hosts' RTT samples.  When a
flow's RTT exceeds ``threshold_multiplier`` times its unloaded base RTT the
agent injects a polling packet (victim 5-tuple, flag 01) from the source
host, which starts telemetry collection and diagnosis.

Host-side triggering deliberately avoids switch-side triggering: one
polling packet per victim covers the whole PFC causality without the
duplicated tracing that switch detection would start at every hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..sim.flow import Flow
from ..sim.network import Network
from ..sim.packet import FlowKey, PollingFlag
from ..units import msec, usec


@dataclass
class TriggerEvent:
    """One diagnosis trigger raised by the agent."""

    victim: FlowKey
    time_ns: int
    rtt_ns: int
    base_rtt_ns: int


@dataclass
class AgentConfig:
    # Detection threshold, normalized to the flow's base RTT (the paper
    # sweeps 200%..500%, i.e. multipliers 2.0..5.0).
    threshold_multiplier: float = 3.0
    # Suppress re-triggering for the same victim within this interval.
    cooldown_ns: int = msec(1)
    # A flow with sent-but-unacked data and no ACK progress for this long is
    # stalled (deadlocked flows stop producing RTT samples entirely).  At
    # 100 Gbps, 200 us of ACK silence with data outstanding is many tens of
    # base RTTs — unambiguously a frozen path.
    stall_timeout_ns: int = usec(200)
    stall_check_interval_ns: int = usec(50)


class DetectionAgent:
    """Monitors every host's flows and fires polling packets on degradation."""

    def __init__(self, network: Network, config: Optional[AgentConfig] = None) -> None:
        self.network = network
        self.config = config if config is not None else AgentConfig()
        self.triggers: List[TriggerEvent] = []
        self._base_rtt: Dict[FlowKey, int] = {}
        # multiplier * base RTT, precomputed per flow: the RTT listener runs
        # for every ACK, so the comparison threshold is resolved once.
        self._threshold: Dict[FlowKey, float] = {}
        self._last_trigger: Dict[FlowKey, int] = {}
        self._listeners: List[Callable[[TriggerEvent], None]] = []
        self._progress: Dict[FlowKey, tuple] = {}
        for host in network.hosts.values():
            host.rtt_listeners.append(self._on_rtt)
        network.sim.schedule(self.config.stall_check_interval_ns, self._stall_check)

    def add_trigger_listener(self, fn: Callable[[TriggerEvent], None]) -> None:
        self._listeners.append(fn)

    def base_rtt(self, flow: Flow) -> int:
        cached = self._base_rtt.get(flow.key)
        if cached is None:
            cached = self.network.estimate_base_rtt(
                flow.src_host, flow.key.dst_ip, flow.key
            )
            self._base_rtt[flow.key] = cached
        return cached

    def _on_rtt(self, flow: Flow, now: int, rtt_ns: int) -> None:
        threshold = self._threshold.get(flow.key)
        if threshold is None:
            threshold = self.config.threshold_multiplier * self.base_rtt(flow)
            self._threshold[flow.key] = threshold
        if rtt_ns <= threshold:
            return
        self._trigger(flow, now, rtt_ns, self._base_rtt[flow.key])

    def _trigger(self, flow: Flow, now: int, rtt_ns: int, base: int) -> None:
        last = self._last_trigger.get(flow.key)
        if last is not None and now - last < self.config.cooldown_ns:
            return
        self._last_trigger[flow.key] = now
        event = TriggerEvent(victim=flow.key, time_ns=now, rtt_ns=rtt_ns, base_rtt_ns=base)
        self.triggers.append(event)
        self.network.hosts[flow.src_host].inject_polling(
            flow.key, PollingFlag.VICTIM_PATH
        )
        for fn in self._listeners:
            fn(event)

    def _stall_check(self) -> None:
        """Detect fully blocked flows (deadlocks produce no ACKs at all)."""
        now = self.network.sim.now
        for flow in self.network.flows:
            if flow.completed or flow.start_time > now or flow.bytes_sent == 0:
                continue
            if flow.bytes_sent <= flow.bytes_acked:
                continue  # nothing outstanding
            acked, since = self._progress.get(flow.key, (-1, now))
            if flow.bytes_acked != acked:
                self._progress[flow.key] = (flow.bytes_acked, now)
                continue
            if now - since >= self.config.stall_timeout_ns:
                # Report the stall duration as the observed "RTT".
                self._trigger(flow, now, now - since, self.base_rtt(flow))
        self.network.sim.schedule(self.config.stall_check_interval_ns, self._stall_check)
