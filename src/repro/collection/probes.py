"""Pingmesh-style periodic probing (§5, "Operating scenarios of Hawkeye").

Besides on-demand diagnosis triggered by application complaints, Hawkeye
can run periodic diagnosis when integrated with pingmesh-like probes: tiny
probe flows are launched between host pairs on a schedule, and since they
ride the same lossless class as data, any PFC anomaly inflates their RTT
(or stalls them) and triggers the normal detection → polling → diagnosis
pipeline through the standard :class:`~repro.collection.agent.DetectionAgent`.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..sim.flow import Flow
from ..sim.network import Network
from ..units import KB, usec


@dataclass
class ProbeMeshConfig:
    probe_size: int = 4 * KB
    interval_ns: int = usec(500)
    # Probes per round; pairs are sampled round-robin over all host pairs.
    probes_per_round: int = 4
    src_port_base: int = 50000


class ProbeMesh:
    """Launches a rotating mesh of probe flows between host pairs."""

    def __init__(
        self,
        network: Network,
        config: Optional[ProbeMeshConfig] = None,
        hosts: Optional[Sequence[str]] = None,
        seed: int = 1,
    ) -> None:
        self.network = network
        self.config = config if config is not None else ProbeMeshConfig()
        names = list(hosts) if hosts is not None else sorted(network.hosts)
        if len(names) < 2:
            raise ValueError("a probe mesh needs at least two hosts")
        rng = random.Random(seed)
        pairs = [(a, b) for a in names for b in names if a != b]
        rng.shuffle(pairs)
        self._pairs = itertools.cycle(pairs)
        self._next_port = self.config.src_port_base
        self.probes: List[Flow] = []
        self._running = False

    def start(self) -> None:
        """Begin probing (idempotent)."""
        if self._running:
            return
        self._running = True
        self.network.sim.schedule(0, self._round)

    def stop(self) -> None:
        self._running = False

    def _round(self) -> None:
        if not self._running:
            return
        now = self.network.sim.now
        for _ in range(self.config.probes_per_round):
            src, dst = next(self._pairs)
            probe = self.network.make_flow(
                src, dst, self.config.probe_size, now, src_port=self._next_port
            )
            self._next_port += 1
            self.network.start_flow(probe)
            self.probes.append(probe)
        self.network.sim.schedule(self.config.interval_ns, self._round)

    def stalled_probes(self) -> List[Flow]:
        """Probes that never completed — blocked paths worth diagnosing."""
        return [p for p in self.probes if not p.completed]

    def coverage(self) -> float:
        """Fraction of launched probes that completed."""
        if not self.probes:
            return 1.0
        done = sum(1 for p in self.probes if p.completed)
        return done / len(self.probes)
