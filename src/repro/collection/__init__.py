"""Anomaly detection, polling-based causality tracing and collection (§3.4)."""

from .agent import AgentConfig, DetectionAgent, TriggerEvent
from .probes import ProbeMesh, ProbeMeshConfig
from .collector import (
    MTU_BYTES,
    PHV_REPORT_BYTES,
    CollectionStats,
    TelemetryCollector,
)
from .polling import PollingConfig, PollingEngine

__all__ = [
    "AgentConfig",
    "DetectionAgent",
    "TriggerEvent",
    "MTU_BYTES",
    "PHV_REPORT_BYTES",
    "CollectionStats",
    "TelemetryCollector",
    "PollingConfig",
    "ProbeMesh",
    "ProbeMeshConfig",
    "PollingEngine",
]


def deploy_hawkeye(network, telemetry_config=None, agent_config=None, polling_config=None):
    """Wire the full Hawkeye stack onto a network in one call.

    Returns ``(deployment, agent, engine, collector)`` — the telemetry
    deployment, the host detection agent, the polling engine, and the
    telemetry collector, already connected to each other.
    """
    from ..telemetry.hawkeye import HawkeyeDeployment

    deployment = HawkeyeDeployment(network, telemetry_config)
    collector = TelemetryCollector(deployment)
    engine = PollingEngine(network, deployment, polling_config)
    engine.add_mirror_listener(collector.on_polling_mirror)
    agent = DetectionAgent(network, agent_config)
    return deployment, agent, engine, collector
