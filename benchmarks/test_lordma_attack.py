"""Extension bench: diagnosing a LoRDMA-style low-rate PFC attack (§2.1).

The paper notes PFC back-pressure "can also be potentially exploited by
attackers, such as LoRDMA attacks" — synchronized low-average-rate burst
pulses that covertly degrade a victim tenant.  This bench shows Hawkeye
catches the attack at the paper's sensitive (200% RTT) detection setting
and attributes it to the attack flows without blaming the victim.
"""

import pytest

from conftest import BENCH_SEEDS, print_table
from repro.core import AnomalyType
from repro.experiments import AccuracyCounter, RunConfig, run_scenario
from repro.workloads import lordma_attack_scenario


def sweep():
    rows = []
    for threshold in (2.0, 3.0):
        acc = AccuracyCounter()
        blamed_victim = 0
        for seed in range(1, BENCH_SEEDS + 1):
            scenario = lordma_attack_scenario(seed=seed)
            result = run_scenario(
                scenario, RunConfig(threshold_multiplier=threshold)
            )
            d = result.diagnosis()
            acc.add(d, scenario.truth)
            if d is not None and any(
                k == scenario.victims[0].key for k in d.primary().culprit_keys()
            ):
                blamed_victim += 1
        rows.append((threshold, acc, blamed_victim))
    return rows


@pytest.mark.benchmark(group="lordma")
def test_lordma_attack_diagnosis(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Extension: LoRDMA-style low-rate attack vs detection threshold",
        ("threshold", "precision", "recall", "victim blamed"),
        [
            (f"{int(t * 100)}%", f"{acc.precision:.2f}", f"{acc.recall:.2f}", blamed)
            for t, acc, blamed in rows
        ],
    )
    by_threshold = {t: (acc, blamed) for t, acc, blamed in rows}
    acc_200, blamed_200 = by_threshold[2.0]
    # At the sensitive setting the covert attack is caught and attributed.
    assert acc_200.precision >= 0.5
    assert acc_200.recall >= 0.5
    assert blamed_200 == 0, "the victim must never be blamed for the attack"
    # The attack's covertness: a lax threshold can miss it entirely -
    # detection never improves as the threshold loosens.
    acc_300, _ = by_threshold[3.0]
    assert acc_300.recall <= acc_200.recall
