"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark file regenerates one table/figure of the paper's evaluation
(§4): it runs the experiment inside the ``benchmark`` fixture (so
``pytest --benchmark-only`` both times it and prints the paper-style rows)
and asserts the *shape* of the result — who wins, by roughly what factor —
rather than absolute numbers, per the reproduction contract in DESIGN.md.

``REPRO_BENCH_SEEDS`` controls how many traces per cell (default 2; the
paper uses 100 — raise it for tighter confidence at proportional runtime).
"""

import os

import pytest

from repro.workloads import (
    in_loop_deadlock_scenario,
    incast_backpressure_scenario,
    normal_contention_scenario,
    out_of_loop_deadlock_scenario,
    pfc_storm_scenario,
)

BENCH_SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "2"))

# The anomaly suite used across the accuracy figures.
ANOMALY_BUILDERS = {
    "incast-backpressure": incast_backpressure_scenario,
    "pfc-storm": pfc_storm_scenario,
    "in-loop-deadlock": in_loop_deadlock_scenario,
    "out-of-loop-deadlock": out_of_loop_deadlock_scenario,
    "normal-contention": normal_contention_scenario,
}


@pytest.fixture
def seeds():
    return list(range(1, BENCH_SEEDS + 1))


def print_table(title, header, rows):
    """Render one paper-style table to stdout."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
