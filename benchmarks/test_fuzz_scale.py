"""Fuzzing-plane gate: campaign throughput and coverage discovery.

Two records land in ``BENCH_perf.json``:

- ``fuzz.campaign`` — a fixed-seed budget-12 campaign: evaluations/s,
  distinct coverage points, findings, and the interest kinds it
  surfaced.  The gate is qualitative — the seed-probe deck alone must
  already put a beyond-paper-class find on the board — plus a generous
  throughput floor so a pathological slowdown of the evaluate path
  (each evaluation is a full simulate+diagnose+monitor cycle) cannot
  land silently.
- ``fuzz.jobs_parity`` — the same campaign across 2 fork workers must
  retain byte-identical coverage (the determinism contract, measured
  here so the perf artifact records the pooled rate too).
"""

import os
import time
from pathlib import Path

import pytest

from conftest import print_table
from repro.experiments import (
    BENCH_PERF_FILENAME,
    load_bench_json,
    write_bench_json,
)
from repro.fuzz import FuzzConfig, run_fuzz

REPO_ROOT = Path(__file__).resolve().parent.parent
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"

BUDGET = 12
# Each evaluation simulates ~4ms of fabric time and runs the full
# diagnosis; the reference machine does ~2/s serial.  The floor only
# catches order-of-magnitude regressions.
FLOOR_EVALS_PER_SEC = 0.3
STRICT_EVALS_PER_SEC = 1.0


def _write_section(key, record):
    payload = load_bench_json(REPO_ROOT / BENCH_PERF_FILENAME) or {}
    payload.setdefault("fuzz", {})[key] = record
    write_bench_json(REPO_ROOT / BENCH_PERF_FILENAME, payload)


def _snapshot(report):
    return [(e.fingerprint, e.interest) for e in report.retained]


@pytest.mark.benchmark(group="fuzz")
def test_fuzz_campaign_discovers_coverage():
    start = time.perf_counter()
    report = run_fuzz(FuzzConfig(budget=BUDGET, seed=1))
    wall = time.perf_counter() - start

    kinds = sorted({k for e in report.findings for k in e.interest})
    verdicts = sorted({e.observation.verdict for e in report.findings})
    rate = report.evaluated / wall
    record = {
        "budget": BUDGET,
        "seed": 1,
        "wall_s": round(wall, 3),
        "evals_per_sec": round(rate, 3),
        "coverage_points": len(report.retained),
        "findings": len(report.findings),
        "interest_kinds": kinds,
        "verdicts": verdicts,
    }
    _write_section("campaign", record)
    print_table(
        f"Fuzz campaign (budget {BUDGET}, seed 1)",
        ("evals/s", "coverage", "findings", "interest kinds"),
        [(f"{rate:.2f}", len(report.retained), len(report.findings),
          ", ".join(kinds))],
    )
    assert "beyond-paper-class" in kinds, (
        "the seed-probe deck must surface a beyond-paper-class scenario"
    )
    assert "contention-masked-pfc-storm" in verdicts
    floor = STRICT_EVALS_PER_SEC if STRICT else FLOOR_EVALS_PER_SEC
    assert rate >= floor, (
        f"campaign rate {rate:.2f} evals/s below the {floor} floor"
    )


@pytest.mark.benchmark(group="fuzz")
def test_fuzz_jobs_parity_and_pooled_rate():
    serial = run_fuzz(FuzzConfig(budget=BUDGET, seed=1, jobs=1))
    start = time.perf_counter()
    pooled = run_fuzz(FuzzConfig(budget=BUDGET, seed=1, jobs=2))
    wall = time.perf_counter() - start

    identical = _snapshot(serial) == _snapshot(pooled)
    assert identical, "2-worker campaign diverged from the serial corpus"
    record = {
        "budget": BUDGET,
        "jobs": 2,
        "wall_s": round(wall, 3),
        "evals_per_sec": round(pooled.evaluated / wall, 3),
        "coverage_identical": True,
    }
    _write_section("jobs_parity", record)
    print_table(
        "Fuzz fork-pool parity (2 workers)",
        ("evals/s", "coverage identical"),
        [(f"{record['evals_per_sec']:.2f}", identical)],
    )
