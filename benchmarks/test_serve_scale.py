"""Service-plane scale gate: a subscriber swarm plus sustained queries.

Launches a real :class:`DiagnosisService` on a unix socket, attaches a
few hundred streaming subscribers and a pool of query tenants, and
records what the SLO cares about into the ``serve_scale`` record of
``BENCH_perf.json``:

- query latency p50/p95/p99 (client-observed wall time, including
  admission queueing and the slice the query interleaves behind);
- stream delivery lag (event publish ``ts`` → client receive);
- protocol hygiene: **zero** ``error`` responses and **zero** silent
  drops — every subscriber either stays gap-free or receives a terminal
  eviction notice, and every stream ends with an explicit ``shutdown``.

Gates are two-tier like every perf gate here: generous floors always,
the tight SLO under ``REPRO_PERF_STRICT=1``.
"""

import asyncio
import os
import time
from pathlib import Path

import pytest

from conftest import print_table
from repro.experiments import (
    BENCH_PERF_FILENAME,
    load_bench_json,
    write_bench_json,
)
from repro.serve import DiagnosisService, ServeClient, ServeConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"

SUBSCRIBERS = int(os.environ.get("REPRO_SERVE_SUBS", "200"))
QUERY_TENANTS = 4
QUERY_SECONDS = 3.0

# SLO: p99 client-observed query latency.  The floor is generous (CI
# machines vary wildly); the strict tier is the contract.
FLOOR_P99_S = 2.0
STRICT_P99_S = 0.5
FLOOR_LAG_S = 5.0


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


async def _subscriber(path, index, results):
    client = await ServeClient.connect(
        unix_path=path, tenant=f"swarm-{index % 8}"
    )
    reply = await client.subscribe()
    assert reply["type"] == "subscribed", reply
    lags, count, terminal = [], 0, None
    try:
        while True:
            event = await client.next_event(timeout=120.0)
            count += 1
            lags.append(max(0.0, time.time() - event["ts"]))
            if event["event"] in ("shutdown", "evicted"):
                terminal = event["event"]
                break
    finally:
        results.append({
            "events": count,
            "terminal": terminal,
            "max_lag_s": max(lags) if lags else 0.0,
            "p95_lag_s": _percentile(lags, 0.95),
        })
        await client.close()


async def _querier(path, index, latencies, statuses, stop_event):
    client = await ServeClient.connect(
        unix_path=path, tenant=f"query-{index}"
    )
    try:
        while not stop_event.is_set():
            t0 = time.perf_counter()
            reply = await client.query()
            wall = time.perf_counter() - t0
            if reply.get("ok"):
                statuses["ok"] += 1
                latencies.append(wall)
            elif reply.get("type") == "rejected":
                statuses["rejected"] += 1
                await asyncio.sleep(
                    min(0.25, reply.get("retry_after_s", 0.05))
                )
            else:
                statuses["error"] += 1
            await asyncio.sleep(0.01)
    finally:
        await client.close()


@pytest.mark.benchmark(group="serve")
def test_serve_scale_swarm(tmp_path):
    sock = str(tmp_path / "serve.sock")
    config = ServeConfig(
        scenario="pfc-storm", seed=1, episodes=None, slice_us=200.0
    )

    async def drive():
        service = DiagnosisService(config)
        await service.start(unix_path=sock)
        sub_results = []
        sub_tasks = [
            asyncio.ensure_future(_subscriber(sock, i, sub_results))
            for i in range(SUBSCRIBERS)
        ]
        # Let every subscription establish before the query storm.
        while service.broker.active < SUBSCRIBERS:
            await asyncio.sleep(0.02)

        latencies, statuses = [], {"ok": 0, "rejected": 0, "error": 0}
        stop_event = asyncio.Event()
        query_tasks = [
            asyncio.ensure_future(
                _querier(sock, i, latencies, statuses, stop_event)
            )
            for i in range(QUERY_TENANTS)
        ]
        await asyncio.sleep(QUERY_SECONDS)
        stop_event.set()
        await asyncio.gather(*query_tasks)

        episodes = service.episodes_completed
        counters = service.registry.to_dict()["counters"]
        evicted = counters.get("serve.stream.evicted", 0)
        await service.stop(reason="bench-complete")
        await asyncio.gather(*sub_tasks)
        return sub_results, latencies, statuses, episodes, evicted

    sub_results, latencies, statuses, episodes, evicted = asyncio.run(drive())

    # -- hygiene gates -------------------------------------------------------
    assert statuses["error"] == 0, f"protocol errors under load: {statuses}"
    assert statuses["ok"] >= 1, f"no query ever succeeded: {statuses}"
    # Every stream ended with an explicit terminal event: nothing silent.
    terminals = [r["terminal"] for r in sub_results]
    assert all(t in ("shutdown", "evicted") for t in terminals), terminals
    # With every subscriber actively reading, nobody should be evicted.
    assert evicted == 0, f"{evicted} subscribers evicted while reading"
    assert all(r["events"] > 0 for r in sub_results)

    # -- latency gates -------------------------------------------------------
    p50 = _percentile(latencies, 0.50)
    p95 = _percentile(latencies, 0.95)
    p99 = _percentile(latencies, 0.99)
    max_lag = max(r["max_lag_s"] for r in sub_results)
    p95_lag = _percentile([r["p95_lag_s"] for r in sub_results], 0.95)

    record = {
        "subscribers": SUBSCRIBERS,
        "query_tenants": QUERY_TENANTS,
        "queries_ok": statuses["ok"],
        "queries_rejected": statuses["rejected"],
        "protocol_errors": statuses["error"],
        "episodes_completed": episodes,
        "events_per_subscriber": round(
            sum(r["events"] for r in sub_results) / len(sub_results), 1
        ),
        "query_p50_ms": round(p50 * 1e3, 2),
        "query_p95_ms": round(p95 * 1e3, 2),
        "query_p99_ms": round(p99 * 1e3, 2),
        "stream_lag_p95_s": round(p95_lag, 4),
        "stream_lag_max_s": round(max_lag, 4),
        "evicted": evicted,
    }
    payload = load_bench_json(REPO_ROOT / BENCH_PERF_FILENAME) or {}
    payload["serve_scale"] = record
    write_bench_json(
        REPO_ROOT / BENCH_PERF_FILENAME,
        payload,
        environment_extra={"serve_subscribers": SUBSCRIBERS},
    )
    print_table(
        f"serve scale ({SUBSCRIBERS} subscribers, {QUERY_TENANTS} query "
        f"tenants, {QUERY_SECONDS:g}s storm)",
        ("queries ok", "rejected", "p50", "p95", "p99", "lag p95", "lag max"),
        [(
            statuses["ok"], statuses["rejected"],
            f"{p50 * 1e3:.1f}ms", f"{p95 * 1e3:.1f}ms", f"{p99 * 1e3:.1f}ms",
            f"{p95_lag:.3f}s", f"{max_lag:.3f}s",
        )],
    )

    slo = STRICT_P99_S if STRICT else FLOOR_P99_S
    assert p99 <= slo, (
        f"query p99 {p99 * 1e3:.1f}ms exceeds the "
        f"{'strict' if STRICT else 'floor'} SLO {slo * 1e3:.0f}ms"
    )
    assert max_lag <= FLOOR_LAG_S, (
        f"stream delivery lag {max_lag:.2f}s exceeds {FLOOR_LAG_S:.0f}s"
    )
