"""Ablation benches for the design choices DESIGN.md calls out.

1. Port-pair meters vs ITSY-style 1-bit presence: without the Figure-3
   meters the causality multicast floods every paused egress, collecting
   causally irrelevant switches.
2. Paused-packet exclusion in the contention replay: without it, PFC
   buildup at an injection point reads as flow contention and storms are
   misdiagnosed as back-pressure-by-contention.
"""

import pytest

from conftest import print_table
from repro.core import AnomalyType
from repro.experiments import RunConfig, diagnosis_correct, run_scenario
from repro.sim import Network, SimConfig
from repro.sim.config import PfcConfig
from repro.topology import build_fat_tree
from repro.units import KB, msec, usec
from repro.workloads import pfc_storm_scenario
from repro.workloads.scenario import GroundTruth, Scenario


def dual_incast_scenario(seed=1):
    """Figure-3's motivating situation: the victim's aggregation switch has
    TWO PFC-paused egress ports, but only one of them is fed by the
    victim's ingress.  The port-pair meters keep the causality trace on the
    relevant branch; a 1-bit presence check (ITSY-style) floods both and
    drags in the other anomaly's whole subtree."""
    topo = build_fat_tree(k=4)
    config = SimConfig(pfc=PfcConfig(xoff_bytes=80 * KB, xon_bytes=40 * KB))
    config.seed = seed
    net = Network(topo, config=config)
    # Anomaly A (the victim's): incast into H0_0_0.
    culprits = []
    for i, src in enumerate(["H1_0_0", "H1_0_1", "H1_1_0", "H1_1_1", "H2_0_0", "H2_0_1"]):
        f = net.make_flow(src, "H0_0_0", 700 * KB, usec(40), src_port=11000 + i)
        net.start_flow(f)
        culprits.append(f)
    # Anomaly B (irrelevant to the victim): a PFC storm at a pod-1 host,
    # fed by a flow from E0_0 — its back-pressure freezes A0_0's
    # core-facing egress, giving A0_0 a second paused egress port that the
    # victim's ingress does NOT feed.
    net.start_flow(net.make_flow("H0_0_1", "H1_0_1", 1_500 * KB, usec(1), src_port=21000))
    net.sim.schedule(usec(5), lambda: net.hosts["H1_0_1"].start_pfc_injection(msec(3)))
    victim = net.make_flow("H0_1_0", "H0_0_1", 2_000 * KB, usec(10), src_port=12000)
    net.start_flow(victim)
    truth = GroundTruth(
        anomaly=AnomalyType.MICRO_BURST_INCAST,
        culprit_flows=[f.key for f in culprits],
        initial_port=topo.attachment_of("H0_0_0"),
    )
    return Scenario(
        name=f"dual-incast-seed{seed}", network=net, truth=truth,
        victims=[victim], duration_ns=msec(4),
        description="Two concurrent incasts; only one is causal for the victim.",
    )


def meter_granularity():
    with_meters = run_scenario(dual_incast_scenario(seed=1), RunConfig(use_meters=True))
    without_meters = run_scenario(dual_incast_scenario(seed=1), RunConfig(use_meters=False))
    return with_meters, without_meters


@pytest.mark.benchmark(group="ablation")
def test_ablation_meter_granularity(benchmark):
    with_meters, without_meters = benchmark.pedantic(
        meter_granularity, rounds=1, iterations=1
    )
    print_table(
        "Ablation: Figure-3 meters vs 1-bit traffic presence (ITSY-style)",
        ("variant", "switches traced", "causal coverage"),
        [
            ("port-pair meters", len(with_meters.used_switches()),
             f"{with_meters.causal_coverage:.2f}"),
            ("1-bit presence", len(without_meters.used_switches()),
             f"{without_meters.causal_coverage:.2f}"),
        ],
    )
    # Both reach the causal switches, but the 1-bit variant drags in the
    # other anomaly's subtree (causally irrelevant switches).
    assert with_meters.causal_coverage == 1.0
    assert len(without_meters.used_switches()) > len(with_meters.used_switches())


def paused_exclusion():
    rows = []
    for exclude in (True, False):
        scenario = pfc_storm_scenario(seed=1)
        result = run_scenario(
            scenario, RunConfig(exclude_paused_in_contention=exclude)
        )
        d = result.diagnosis()
        correct = d is not None and diagnosis_correct(d, scenario.truth)
        anomaly = d.primary().anomaly.value if d else "none"
        rows.append((exclude, correct, anomaly))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_paused_packet_exclusion(benchmark):
    rows = benchmark.pedantic(paused_exclusion, rounds=1, iterations=1)
    print_table(
        "Ablation: paused-packet exclusion in contention replay (PFC storm)",
        ("exclude paused", "diagnosis correct", "anomaly reported"),
        rows,
    )
    by_flag = {r[0]: r for r in rows}
    assert by_flag[True][1], "with exclusion the storm is identified"
    # Without the exclusion the frozen queue's occupants read as
    # contention contributors: the diagnosis degrades.
    assert not by_flag[False][1] or by_flag[False][2] != "pfc-storm"
