"""Figure 9: processing overhead (telemetry bytes collected for diagnosis)
and monitoring bandwidth overhead vs baselines.

Expected shape (paper): NetSight >> full-polling >> Hawkeye > victim-only ~
SpiderMon for processing; NetSight >> SpiderMon >> Hawkeye > victim-only >
full-polling (~0) for extra monitoring bandwidth.
"""

import pytest

from conftest import ANOMALY_BUILDERS, print_table
from repro.baselines import SystemKind
from repro.experiments import RunConfig, run_scenario

SYSTEMS = [
    SystemKind.HAWKEYE,
    SystemKind.FULL_POLLING,
    SystemKind.VICTIM_ONLY,
    SystemKind.SPIDERMON,
    SystemKind.NETSIGHT,
]


import inspect


def build(builder, seed=1, load=0.15):
    """Fat-tree scenarios carry background load so that non-causal switches
    hold the "irrelevant telemetry" full polling pays for; the ring (CBD)
    scenarios stay load-free as crafted."""
    if "load" in inspect.signature(builder).parameters:
        return builder(seed=seed, load=load)
    return builder(seed=seed)


def sweep():
    processing = {s: 0 for s in SYSTEMS}
    bandwidth = {s: 0 for s in SYSTEMS}
    for builder in ANOMALY_BUILDERS.values():
        for system in SYSTEMS:
            result = run_scenario(build(builder), RunConfig(system=system))
            processing[system] += result.processing_bytes
            bandwidth[system] += result.bandwidth_bytes
    return processing, bandwidth


@pytest.mark.benchmark(group="fig9")
def test_fig9_overhead_vs_baselines(benchmark):
    processing, bandwidth = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (s.value, f"{processing[s]:,}", f"{bandwidth[s]:,}")
        for s in SYSTEMS
    ]
    print_table(
        "Figure 9: overhead across the anomaly suite (bytes)",
        ("system", "processing (9a)", "bandwidth (9b)"),
        rows,
    )

    # -- Fig 9a: processing (telemetry collected for diagnosis) -------------
    # NetSight's per-packet postcards dwarf everything.
    assert processing[SystemKind.NETSIGHT] > 10 * processing[SystemKind.FULL_POLLING]
    # Full polling collects the whole network: far more than Hawkeye.
    assert processing[SystemKind.FULL_POLLING] > 1.5 * processing[SystemKind.HAWKEYE]
    # Hawkeye adds the PFC-spreading switches on top of the victim path.
    assert processing[SystemKind.HAWKEYE] >= processing[SystemKind.VICTIM_ONLY]

    # -- Fig 9b: extra monitoring bandwidth ----------------------------------
    # Per-packet schemes (postcards, per-packet headers) vs trigger-only
    # polling packets: postcards per hop dwarf per-packet headers, which in
    # turn dwarf polling (the margin grows with trace length — these traces
    # are a few ms; the paper's are much longer).
    assert bandwidth[SystemKind.NETSIGHT] > 10 * bandwidth[SystemKind.SPIDERMON]
    assert bandwidth[SystemKind.SPIDERMON] > 2 * bandwidth[SystemKind.HAWKEYE]
    # Hawkeye polls the PFC spreading path too: a few more packets than
    # victim-only; full polling sends nothing at all.
    assert bandwidth[SystemKind.HAWKEYE] >= bandwidth[SystemKind.VICTIM_ONLY]
    assert bandwidth[SystemKind.FULL_POLLING] == 0

    # Headline claim: 1-4 orders of magnitude lower overhead than baselines.
    assert processing[SystemKind.NETSIGHT] >= 100 * processing[SystemKind.HAWKEYE]
    assert bandwidth[SystemKind.NETSIGHT] >= 100 * bandwidth[SystemKind.HAWKEYE]
