"""Figure 10: diagnosis effectiveness of different telemetry granularities.

Port-level-only telemetry still traces PFC spreading but cannot identify
the root-cause flows; flow-level-only telemetry sees per-flow impact but
cannot trace PFC.  Both fall well below the combined (Hawkeye) system when
monitoring traffic containing the mix of anomalies.
"""

import pytest

from conftest import ANOMALY_BUILDERS, BENCH_SEEDS, print_table
from repro.baselines import SystemKind
from repro.experiments import AccuracyCounter, RunConfig, run_scenario

MODES = [SystemKind.HAWKEYE, SystemKind.PORT_ONLY, SystemKind.FLOW_ONLY]


def sweep():
    results = {}
    for mode in MODES:
        acc = AccuracyCounter()
        for builder in ANOMALY_BUILDERS.values():
            for seed in range(1, BENCH_SEEDS + 1):
                scenario = builder(seed=seed)
                result = run_scenario(scenario, RunConfig(system=mode))
                acc.add(result.diagnosis(), scenario.truth)
        results[mode] = acc
    return results


@pytest.mark.benchmark(group="fig10")
def test_fig10_telemetry_granularity(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (mode.value, f"{acc.precision:.2f}", f"{acc.recall:.2f}", acc.total)
        for mode, acc in results.items()
    ]
    print_table(
        "Figure 10: telemetry granularity ablation (mixed anomalies)",
        ("telemetry", "precision", "recall", "runs"),
        rows,
    )

    hawkeye = results[SystemKind.HAWKEYE]
    port_only = results[SystemKind.PORT_ONLY]
    flow_only = results[SystemKind.FLOW_ONLY]

    # The combined telemetry dominates both ablations.
    assert hawkeye.precision > port_only.precision
    assert hawkeye.precision > flow_only.precision
    assert hawkeye.precision >= 0.75

    # Port-only cannot name flow root causes; flow-only cannot trace PFC:
    # both lose most of the mixed-anomaly precision.
    assert port_only.precision <= 0.6
    assert flow_only.precision <= 0.6
