"""Figure 8: precision/recall upper bound of Hawkeye vs baselines.

Baselines: SpiderMon and NetSight (traditional, PFC-blind), plus the
"full polling" and "victim-only" methods derived from Hawkeye.  Expected
shape: Hawkeye ~ full-polling on every anomaly; victim-only close on
non-loop anomalies but weak on deadlocks; the traditional systems only
handle normal flow contention.
"""

import pytest

from conftest import ANOMALY_BUILDERS, BENCH_SEEDS, print_table
from repro.baselines import SystemKind
from repro.experiments import AccuracyCounter, RunConfig, run_scenario

SYSTEMS = [
    SystemKind.HAWKEYE,
    SystemKind.FULL_POLLING,
    SystemKind.VICTIM_ONLY,
    SystemKind.SPIDERMON,
    SystemKind.NETSIGHT,
]


def sweep():
    results = {}
    for scenario_name, builder in ANOMALY_BUILDERS.items():
        for system in SYSTEMS:
            acc = AccuracyCounter()
            for seed in range(1, BENCH_SEEDS + 1):
                scenario = builder(seed=seed)
                result = run_scenario(scenario, RunConfig(system=system))
                acc.add(result.diagnosis(), scenario.truth)
            results[(scenario_name, system)] = acc
    return results


@pytest.mark.benchmark(group="fig8")
def test_fig8_accuracy_vs_baselines(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (scenario, system.value, f"{acc.precision:.2f}", f"{acc.recall:.2f}")
        for (scenario, system), acc in sorted(
            results.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        )
    ]
    print_table(
        "Figure 8: precision & recall upper bound vs baselines",
        ("anomaly", "system", "precision", "recall"),
        rows,
    )

    def precision(scenario, system):
        return results[(scenario, system)].precision

    pfc_anomalies = [
        "incast-backpressure", "pfc-storm", "in-loop-deadlock", "out-of-loop-deadlock",
    ]

    # Hawkeye handles every PFC anomaly; its average matches full polling.
    hk = sum(precision(s, SystemKind.HAWKEYE) for s in pfc_anomalies) / 4
    fp = sum(precision(s, SystemKind.FULL_POLLING) for s in pfc_anomalies) / 4
    assert hk >= 0.75
    assert abs(hk - fp) <= 0.25, "Hawkeye should match full polling"

    # Victim-only breaks on deadlocks (incomplete loop coverage) ...
    vo_deadlock = (
        precision("in-loop-deadlock", SystemKind.VICTIM_ONLY)
        + precision("out-of-loop-deadlock", SystemKind.VICTIM_ONLY)
    ) / 2
    hk_deadlock = (
        precision("in-loop-deadlock", SystemKind.HAWKEYE)
        + precision("out-of-loop-deadlock", SystemKind.HAWKEYE)
    ) / 2
    assert vo_deadlock < hk_deadlock
    # ... but is close to Hawkeye when the victim crosses the initial point.
    assert precision("incast-backpressure", SystemKind.VICTIM_ONLY) >= 0.5

    # Traditional PFC-blind systems cannot diagnose PFC anomalies ...
    for system in (SystemKind.SPIDERMON, SystemKind.NETSIGHT):
        blind = sum(precision(s, system) for s in pfc_anomalies) / 4
        assert blind <= 0.25, f"{system.value} should be blind to PFC anomalies"
        # ... despite being effective on normal flow contention.
        assert precision("normal-contention", system) >= 0.5
