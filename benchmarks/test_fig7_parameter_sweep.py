"""Figure 7: precision & recall per anomaly over epoch sizes and detection
thresholds.

The paper sweeps the detection threshold (200%-500% of RTT) and the epoch
size (100 us - 2 ms) and reports per-anomaly precision/recall, observing
that precision is governed mainly by the epoch size (longer epochs conflate
events) while recall stays ~100%.
"""

import pytest

from conftest import ANOMALY_BUILDERS, BENCH_SEEDS, print_table
from repro.experiments import AccuracyCounter, RunConfig, run_scenario
from repro.units import msec, usec

EPOCH_SIZES = {
    "100us": usec(100),
    "500us": usec(500),
    "1ms": msec(1),
    "2ms": msec(2),
}
THRESHOLDS = {"200%": 2.0, "300%": 3.0, "500%": 5.0}


def sweep():
    results = {}
    for scenario_name, builder in ANOMALY_BUILDERS.items():
        for epoch_name, epoch_ns in EPOCH_SIZES.items():
            for thr_name, thr in THRESHOLDS.items():
                acc = AccuracyCounter()
                for seed in range(1, BENCH_SEEDS + 1):
                    scenario = builder(seed=seed)
                    config = RunConfig(
                        epoch_size_ns=epoch_ns, threshold_multiplier=thr
                    )
                    result = run_scenario(scenario, config)
                    acc.add(result.diagnosis(), scenario.truth)
                results[(scenario_name, epoch_name, thr_name)] = acc
    return results


@pytest.mark.benchmark(group="fig7")
def test_fig7_precision_recall_sweep(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (scenario, epoch, thr, f"{acc.precision:.2f}", f"{acc.recall:.2f}")
        for (scenario, epoch, thr), acc in sorted(results.items())
    ]
    print_table(
        "Figure 7: precision & recall vs epoch size x detection threshold",
        ("anomaly", "epoch", "threshold", "precision", "recall"),
        rows,
    )

    # Shape 1: with well-configured parameters (1 ms epochs, 300% threshold)
    # every anomaly class is diagnosed with high precision and recall.
    for scenario_name in ANOMALY_BUILDERS:
        acc = results[(scenario_name, "1ms", "300%")]
        assert acc.precision >= 0.5, f"{scenario_name} precision collapsed at optimum"
        assert acc.recall >= 0.5, f"{scenario_name} not detected at optimum"

    # Shape 2: recall is driven by detection, so averaged over anomalies it
    # stays high at the paper's default threshold across epoch sizes.
    for epoch_name in EPOCH_SIZES:
        recalls = [
            results[(s, epoch_name, "300%")].recall for s in ANOMALY_BUILDERS
        ]
        assert sum(recalls) / len(recalls) >= 0.7

    # Shape 3: growing the epoch does not improve average precision (event
    # conflation can only hurt), matching the paper's epoch-size trend.
    def avg_precision(epoch_name):
        accs = [results[(s, epoch_name, "300%")] for s in ANOMALY_BUILDERS]
        return sum(a.precision for a in accs) / len(accs)

    assert avg_precision("2ms") <= avg_precision("500us") + 0.2
