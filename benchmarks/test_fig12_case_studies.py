"""Figure 12 / §4.4: provenance-graph case studies for the four typical NPAs.

For each §2.1 anomaly this bench regenerates the provenance graph, checks
its structure against the paper's Figure 12 description, and emits the
Graphviz rendering (the repository's analog of the figure).
"""

import pytest

from conftest import print_table
from repro.core import AnomalyType, EdgeKind, RootCauseKind, find_port_loops
from repro.experiments import RunConfig, run_scenario
from repro.workloads import (
    in_loop_deadlock_scenario,
    incast_backpressure_scenario,
    out_of_loop_deadlock_scenario,
    pfc_storm_scenario,
)


def run_cases():
    cases = {
        "12a-incast": incast_backpressure_scenario(seed=1),
        "12b-storm": pfc_storm_scenario(seed=1),
        "12c-in-loop": in_loop_deadlock_scenario(seed=1),
        "12d-out-of-loop": out_of_loop_deadlock_scenario(seed=1),
    }
    out = {}
    for label, scenario in cases.items():
        result = run_scenario(scenario, RunConfig())
        outcome = result.primary_outcome()
        out[label] = (scenario, outcome.annotated, outcome.diagnosis)
    return out


@pytest.mark.benchmark(group="fig12")
def test_fig12_provenance_case_studies(benchmark):
    cases = benchmark.pedantic(run_cases, rounds=1, iterations=1)

    rows = []
    for label, (scenario, annotated, diagnosis) in cases.items():
        g = annotated.graph
        rows.append(
            (
                label,
                len(g.ports),
                len(g.flows),
                sum(1 for _ in g.edges(EdgeKind.PORT_PORT)),
                sum(1 for _ in g.edges(EdgeKind.FLOW_PORT)),
                sum(1 for _ in g.edges(EdgeKind.PORT_FLOW)),
                diagnosis.primary().anomaly.value,
            )
        )
    print_table(
        "Figure 12: provenance graphs for the typical anomalies",
        ("case", "ports", "flows", "port-port", "flow-port", "port-flow", "diagnosis"),
        rows,
    )

    # 12(a): PFC path ends at a port with positive (red) port-flow edges.
    scenario, annotated, diagnosis = cases["12a-incast"]
    primary = diagnosis.primary()
    assert primary.anomaly is AnomalyType.MICRO_BURST_INCAST
    assert primary.initial_port == scenario.truth.initial_port
    assert len(primary.pfc_path) >= 2
    assert primary.culprit_flows, "Fig 12a highlights contributor flows"
    dot = annotated.graph.to_dot()
    assert "digraph" in dot and "red" in dot

    # 12(b): PFC path with no flow contention at the initial node.
    _, annotated, diagnosis = cases["12b-storm"]
    primary = diagnosis.primary()
    assert primary.anomaly is AnomalyType.PFC_STORM
    assert primary.root_cause is RootCauseKind.HOST_PFC_INJECTION
    assert not primary.culprit_flows

    # 12(c): a loop of port-level edges; every member stays in the loop.
    _, annotated, diagnosis = cases["12c-in-loop"]
    primary = diagnosis.primary()
    assert primary.anomaly is AnomalyType.IN_LOOP_DEADLOCK
    loops = find_port_loops(annotated.graph)
    assert any(set(primary.loop) == set(l) for l in loops)
    assert len(primary.loop) == 4
    for port in primary.loop:
        assert annotated.graph.port_out_degree(port) >= 1

    # 12(d): the loop plus an escape branch to the injection point.
    scenario, annotated, diagnosis = cases["12d-out-of-loop"]
    primary = diagnosis.primary()
    assert primary.anomaly is AnomalyType.OUT_OF_LOOP_DEADLOCK_INJECTION
    assert primary.injecting_source == scenario.truth.injecting_host
    assert primary.initial_port not in primary.loop
