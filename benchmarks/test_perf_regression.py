"""Performance regression gate for the simulator hot path.

Runs the K=4 and K=6 fat-tree incast workloads (the heaviest tier-1
scenarios), checks the diagnosis is byte-identical to the pre-optimization
baseline, and writes ``BENCH_perf.json`` at the repo root with
before/after events-per-second so every optimization PR leaves a paper
trail.

Assertions are two-tier:

- always: the diagnosis fingerprint must match the recorded baseline
  exactly, and throughput must beat a generous floor (regressing below
  the *unoptimized* engine is a hard failure on any machine);
- with ``REPRO_PERF_STRICT=1``: the full >=2x speedup contract is
  enforced (meant for the machine class the baseline was recorded on).
"""

import gc
import os
import time
from pathlib import Path

import pytest

from conftest import print_table
from repro.experiments import (
    BENCH_PERF_FILENAME,
    RunConfig,
    ScenarioSpec,
    load_bench_json,
    run_scenario,
    run_scenarios_parallel,
    write_bench_json,
)
from repro.obs import ObsConfig
from test_scaling import incast_on_fat_tree

REPO_ROOT = Path(__file__).resolve().parent.parent
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"

# Seed-state numbers measured on the unoptimized engine (lazy-cancellation
# binary heap, per-packet closures, no caches), same machine class as CI.
BASELINE = {
    4: {
        "wall_s": 1.201,
        "events_run": 88023,
        "events_per_sec": 73282,
        "fingerprint": (
            "Diagnosis for victim 10.0.1.2:12000->10.0.0.3:4791/17:\n"
            "  [1] pfc-backpressure-flow-contention (root cause: flow-contention); "
            "initial congestion at E0_0.P3; PFC path: E0_1.P1 -> A0_0.P1 -> E0_0.P3; "
            "culprits: 10.2.0.2:11004->10.0.0.2:4791/17 (w=21.33), "
            "10.2.0.3:11005->10.0.0.2:4791/17 (w=17.35), "
            "10.1.1.2:11002->10.0.0.2:4791/17 (w=14.54)"
        ),
    },
    6: {
        "wall_s": 1.818,
        "events_run": 154361,
        "events_per_sec": 84927,
        "fingerprint": (
            "Diagnosis for victim 10.0.1.2:12000->10.0.0.3:4791/17:\n"
            "  [1] pfc-backpressure-flow-contention (root cause: flow-contention); "
            "initial congestion at E0_0.P4; PFC path: E0_1.P1 -> A0_0.P1 -> E0_0.P4; "
            "culprits: 10.2.0.2:11009->10.0.0.2:4791/17 (w=158.83), "
            "10.2.0.3:11010->10.0.0.2:4791/17 (w=60.23), "
            "10.1.1.2:11005->10.0.0.2:4791/17 (w=41.11), "
            "10.2.0.2:11008->10.0.0.2:4791/17 (w=36.71)"
        ),
    },
}

# Floors that hold on any machine CI might land on; the real contract
# (>=2x over baseline) is enforced under REPRO_PERF_STRICT=1.
FLOOR_SPEEDUP = 1.2
STRICT_SPEEDUP = 2.0


def _best_of(n, k):
    """Best wall-clock of ``n`` runs (the first also pays warmup costs).

    Only the perf record, fingerprint and coverage survive each run: a
    retained RunResult keeps the whole simulated fabric alive, and that
    object graph slows GC passes inside the next timed run.
    """
    best = None
    for _ in range(n):
        scenario = incast_on_fat_tree(k)
        gc.collect()
        result = run_scenario(scenario, RunConfig())
        sample = (result.perf, result.diagnosis().describe(), result.causal_coverage)
        del scenario, result
        if best is None or sample[0].wall_s < best[0].wall_s:
            best = sample
    return best


@pytest.mark.benchmark(group="perf")
def test_incast_speedup_and_identical_diagnosis():
    rows = []
    runs = []
    for k in (4, 6):
        perf, fingerprint, coverage = _best_of(2, k)
        base = BASELINE[k]
        speedup = base["wall_s"] / perf.wall_s
        rows.append(
            (
                k,
                f"{base['wall_s']:.3f}",
                f"{perf.wall_s:.3f}",
                f"{speedup:.2f}x",
                f"{base['events_per_sec']:,}",
                f"{perf.events_per_sec:,.0f}",
                perf.peak_pending_events,
            )
        )
        runs.append(
            {
                "k": k,
                "baseline": {
                    "wall_s": base["wall_s"],
                    "events_run": base["events_run"],
                    "events_per_sec": base["events_per_sec"],
                },
                "current": perf.to_dict(),
                "speedup": round(speedup, 3),
                "diagnosis_matches_baseline": fingerprint == base["fingerprint"],
            }
        )
        # The optimization contract: faster, never different.
        assert fingerprint == base["fingerprint"], (
            f"K={k}: optimized run changed the diagnosis"
        )
        assert coverage == 1.0
        floor = STRICT_SPEEDUP if STRICT else FLOOR_SPEEDUP
        assert speedup >= floor, (
            f"K={k}: {speedup:.2f}x below the {floor}x "
            f"{'strict ' if STRICT else ''}floor "
            f"({perf.wall_s:.3f}s vs baseline {base['wall_s']:.3f}s)"
        )

    print_table(
        "Hot-path speedup vs pre-optimization baseline",
        ("K", "base wall", "wall", "speedup", "base ev/s", "ev/s", "peak queue"),
        rows,
    )
    # Merge so the telemetry benchmark's keys survive regardless of order.
    payload = load_bench_json(REPO_ROOT / BENCH_PERF_FILENAME) or {}
    payload["incast_speedup"] = runs
    write_bench_json(REPO_ROOT / BENCH_PERF_FILENAME, payload)


@pytest.mark.benchmark(group="perf")
def test_obs_off_path_costs_nothing():
    """The observability layer's leave-it-compiled-in contract.

    Every pipeline stage carries tracing call sites guarded by a single
    ``obs is not None`` check.  With tracing off that guard is all a run
    pays, so a tracer-off run must not be measurably slower than a
    tracer-on run of the same scenario (the on run does strictly more
    work); 5% covers scheduler noise.  Both runs must produce the same
    diagnosis — the tracer is a pure observer.
    """
    def best_wall(config):
        best = None
        for _ in range(2):
            scenario = incast_on_fat_tree(4)
            gc.collect()
            result = run_scenario(scenario, config)
            sample = (result.perf.wall_s, result.diagnosis().describe())
            del scenario, result
            if best is None or sample[0] < best[0]:
                best = sample
        return best

    off_wall, off_diagnosis = best_wall(RunConfig())
    on_wall, on_diagnosis = best_wall(
        RunConfig(obs=ObsConfig(trace=True, sink="ring"))
    )
    assert off_diagnosis == on_diagnosis
    overhead = off_wall / on_wall
    assert overhead <= 1.05, (
        f"tracer-off run slower than tracer-on ({off_wall:.3f}s vs "
        f"{on_wall:.3f}s): the disabled path is doing real work"
    )

    print_table(
        "Observability overhead (K=4 incast)",
        ("tracer", "wall", "vs on"),
        [
            ("off", f"{off_wall:.3f}", f"{overhead:.3f}x"),
            ("on (ring sink)", f"{on_wall:.3f}", "1.000x"),
        ],
    )
    payload = load_bench_json(REPO_ROOT / BENCH_PERF_FILENAME) or {}
    payload["obs_overhead"] = {
        "off_wall_s": round(off_wall, 4),
        "on_wall_s": round(on_wall, 4),
        "off_over_on": round(overhead, 4),
        "diagnosis_matches": off_diagnosis == on_diagnosis,
    }
    write_bench_json(REPO_ROOT / BENCH_PERF_FILENAME, payload)


@pytest.mark.benchmark(group="perf")
def test_monitor_overhead_bounded():
    """The continuous monitor's sampling-first contract.

    The monitor takes no per-packet hooks: everything except PFC frame
    counting is sampled once per tick from counters the simulator already
    maintains, so a monitor-on run may cost at most 5% over monitor-off
    at the default 100 us cadence — and the diagnosis must stay
    byte-identical (the monitor is a pure observer).  Writes the
    ``monitor_overhead`` record into ``BENCH_perf.json``.
    """
    from repro.monitor import MonitorConfig

    def best_wall(config):
        best = None
        for _ in range(3):
            scenario = incast_on_fat_tree(4)
            gc.collect()
            result = run_scenario(scenario, config)
            alerts = len(result.monitor.alerts) if result.monitor else 0
            sample = (result.perf.wall_s, result.diagnosis().describe(), alerts)
            del scenario, result
            if best is None or sample[0] < best[0]:
                best = sample
        return best

    off_wall, off_diagnosis, _ = best_wall(RunConfig())
    on_wall, on_diagnosis, alerts = best_wall(
        RunConfig(monitor=MonitorConfig())
    )
    assert on_diagnosis == off_diagnosis
    assert alerts > 0, "the monitored incast run must raise alerts"
    overhead = on_wall / off_wall
    assert overhead <= 1.05, (
        f"monitor-on run {overhead:.3f}x slower than monitor-off "
        f"({on_wall:.3f}s vs {off_wall:.3f}s): sampling left the "
        f"counters-only budget"
    )

    print_table(
        "Continuous-monitor overhead (K=4 incast, 100 us cadence)",
        ("monitor", "wall", "vs off"),
        [
            ("off", f"{off_wall:.3f}", "1.000x"),
            ("on", f"{on_wall:.3f}", f"{overhead:.3f}x"),
        ],
    )
    payload = load_bench_json(REPO_ROOT / BENCH_PERF_FILENAME) or {}
    payload["monitor_overhead"] = {
        "off_wall_s": round(off_wall, 4),
        "on_wall_s": round(on_wall, 4),
        "on_over_off": round(overhead, 4),
        "alerts": alerts,
        "diagnosis_matches": on_diagnosis == off_diagnosis,
    }
    write_bench_json(REPO_ROOT / BENCH_PERF_FILENAME, payload)


@pytest.mark.benchmark(group="perf")
def test_parallel_runner_matches_serial():
    """The process-pool runner is a pure speedup: summaries are identical."""
    specs = [ScenarioSpec("incast-backpressure", seed=s) for s in (1, 2)]
    t0 = time.perf_counter()
    serial = run_scenarios_parallel(specs, jobs=1)
    serial_wall = time.perf_counter() - t0
    parallel = run_scenarios_parallel(specs, jobs=2)
    assert len(serial) == len(parallel) == len(specs)
    for a, b in zip(serial, parallel):
        assert a.spec == b.spec
        assert a.diagnosis_text == b.diagnosis_text
        assert a.events_run == b.events_run
        assert a.correct and b.correct
        assert a.causal_coverage == b.causal_coverage
        assert a.processing_bytes == b.processing_bytes
        assert a.bandwidth_bytes == b.bandwidth_bytes
    # Not a wall-clock assertion (the container may have one core); just
    # record that the serial path itself stays fast.
    assert serial_wall < 60.0
