"""Analyzer-stage regression gate: columnar graph build at fleet scale.

The provenance build (Algorithm 1) is the analyzer's dominant cost once
the simulation itself is sharded away; this gate pins the columnar
replay kernels (:mod:`repro.core.columnar`) against the retained scalar
reference path on the K=16 fleet telemetry and writes the
``fleet_scale.analyzer`` record to ``BENCH_perf.json``.

Timing protocol: the scenario runs once to produce real telemetry, then
each side rebuilds the victim's provenance graph *cold* — the per-epoch
``replay_cache`` is cleared before every repetition, because the cache
is exactly what normally hides the replay cost and would turn the gate
into a no-op.  Best-of-N on both sides; identity of the two graphs'
verdict-relevant outputs is asserted alongside speed.

Like every perf gate here the assertion is two-tier: a generous floor
always, the full >=3x contract under ``REPRO_PERF_STRICT=1``.
"""

import os
import time
from pathlib import Path

import pytest

from conftest import print_table
from repro.core import columnar
from repro.core.build import build_provenance
from repro.core.diagnosis import Diagnoser
from repro.experiments import (
    BENCH_PERF_FILENAME,
    RunConfig,
    ScenarioSpec,
    load_bench_json,
    run_scenario,
    write_bench_json,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"

FLOOR_BUILD_SPEEDUP = 2.0
STRICT_BUILD_SPEEDUP = 3.0

pytestmark = pytest.mark.skipif(
    not columnar.HAVE_NUMPY, reason="columnar gate needs numpy"
)


def _clear_replay_caches(reports):
    for report in reports.values():
        for epoch in report.epochs:
            epoch.replay_cache.clear()


def _best_of(n, fn):
    times = []
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


@pytest.mark.benchmark(group="analyzer")
def test_k16_graph_build_columnar_speedup():
    spec = ScenarioSpec("fleet-incast-k16", seed=1)
    config = RunConfig()
    result = run_scenario(spec.build(), config)
    primary = next(o for o in result.outcomes if o.diagnosis is not None)
    reports, victim = primary.reports_used, primary.victim
    scheme = config.scheme()
    topology = result.scenario.network.topology

    def build():
        _clear_replay_caches(reports)
        return build_provenance(
            reports,
            topology,
            window_ns=scheme.window_ns,
            victim=victim,
            epoch_size_ns=scheme.epoch_size_ns,
        )

    columnar_s = _best_of(3, build)
    fast = build()
    with columnar.force_scalar():
        scalar_s = _best_of(2, build)
        slow = build()

    # Both paths must agree on everything diagnosis consumes: the verdict
    # strings are the binding contract (floats may differ in the last ulp).
    diagnoser = Diagnoser()
    assert (
        diagnoser.diagnose(fast, victim).describe()
        == diagnoser.diagnose(slow, victim).describe()
    ), "columnar graph build changed the diagnosis"

    speedup = scalar_s / columnar_s
    topo_hosts = len(topology.hosts)
    record = {
        "scenario": "fleet-incast-k16",
        "hosts": topo_hosts,
        "reports": len(reports),
        "epochs": sum(len(r.epochs) for r in reports.values()),
        "scalar_graph_build_s": round(scalar_s, 4),
        "columnar_graph_build_s": round(columnar_s, 4),
        "graph_build_speedup": round(speedup, 2),
        "diagnosis_identical": True,
    }
    payload = load_bench_json(REPO_ROOT / BENCH_PERF_FILENAME) or {}
    payload.setdefault("fleet_scale", {})["analyzer"] = record
    write_bench_json(REPO_ROOT / BENCH_PERF_FILENAME, payload)
    print_table(
        "Analyzer graph build (K=16 telemetry, cold replay caches)",
        ("scalar", "columnar", "speedup"),
        [(f"{scalar_s * 1e3:.1f}ms", f"{columnar_s * 1e3:.1f}ms",
          f"{speedup:.1f}x")],
    )
    floor = STRICT_BUILD_SPEEDUP if STRICT else FLOOR_BUILD_SPEEDUP
    assert speedup >= floor, (
        f"columnar graph build speedup {speedup:.2f}x below the {floor}x "
        f"{'strict ' if STRICT else ''}floor"
    )
