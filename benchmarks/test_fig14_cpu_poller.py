"""Figure 14 + §4.5: CPU poller efficiency.

14(a): the CPU filters zero slots, cutting the telemetry size shipped to
the analyzer by >80% in most cases.  14(b): batching into MTU-sized report
packets cuts the packet count ~95% vs PHV-limited data-plane generation.
Plus the §4.5 poll-latency model: ~80 ms for 2 epochs, ~120 ms for 4, and
total collection time independent of the switch count.
"""

import pytest

from conftest import ANOMALY_BUILDERS, print_table
from repro.experiments import cpu_poll_time_ms, total_collection_time_ms


def collect_stats():
    from repro.collection import TelemetryCollector, PollingEngine
    from repro.collection.agent import AgentConfig, DetectionAgent
    from repro.telemetry import HawkeyeDeployment

    rows = []
    for name, builder in ANOMALY_BUILDERS.items():
        scenario = builder(seed=1)
        net = scenario.network
        deployment = HawkeyeDeployment(net)
        collector = TelemetryCollector(deployment)
        engine = PollingEngine(net, deployment)
        engine.add_mirror_listener(collector.on_polling_mirror)
        DetectionAgent(net, AgentConfig())
        net.run(scenario.duration_ns)
        collector.flush_pending(net.sim.now)
        s = collector.stats
        rows.append((name, s))
    return rows


@pytest.mark.benchmark(group="fig14")
def test_fig14_cpu_poller_reductions(benchmark):
    rows = benchmark.pedantic(collect_stats, rounds=1, iterations=1)

    table = []
    for name, s in rows:
        size_reduction = 1 - s.filtered_bytes / s.full_dump_bytes
        pkt_reduction = 1 - s.report_packets_cpu / s.report_packets_dataplane
        table.append(
            (
                name,
                f"{s.filtered_bytes:,}",
                f"{s.full_dump_bytes:,}",
                f"{size_reduction:.1%}",
                f"{pkt_reduction:.1%}",
            )
        )
        # 14(a): zero-slot filtering cuts the telemetry size by >80%.
        assert size_reduction > 0.80, f"{name}: filtering should cut >80%"
        # 14(b): MTU batching cuts the report packet count by ~95%.
        assert pkt_reduction > 0.90, f"{name}: batching should cut ~95%"
    print_table(
        "Figure 14: CPU poller reductions per anomaly trace",
        ("anomaly", "filtered B", "full dump B", "size cut (14a)", "pkt cut (14b)"),
        table,
    )


@pytest.mark.benchmark(group="fig14")
def test_s45_poll_latency_model(benchmark):
    times = benchmark.pedantic(
        lambda: [cpu_poll_time_ms(e) for e in (2, 4)], rounds=1, iterations=1
    )
    print_table(
        "§4.5: CPU poll time (64 ports, 4096 flows/epoch)",
        ("epochs", "poll time (ms)"),
        [(e, f"{t:.0f}") for e, t in zip((2, 4), times)],
    )
    assert times[0] == pytest.approx(80, rel=0.05)
    assert times[1] == pytest.approx(120, rel=0.05)
    # Collection proceeds in parallel across switch CPUs: total time is one
    # switch's poll time regardless of fabric size.
    assert total_collection_time_ms(2, 4) == total_collection_time_ms(200, 4)
