"""Figure 11: count of collected switches and causal-switch coverage ratio.

Hawkeye's in-network causality analysis collects far fewer switches than
full polling while still covering 100% of the causally relevant ones; the
victim-only method collects the fewest but misses part of the causality
(notably on deadlocks).
"""

import pytest

from conftest import ANOMALY_BUILDERS, print_table
from repro.baselines import SystemKind
from repro.experiments import RunConfig, run_scenario

SYSTEMS = [SystemKind.HAWKEYE, SystemKind.FULL_POLLING, SystemKind.VICTIM_ONLY]


def sweep():
    rows = {}
    for name, builder in ANOMALY_BUILDERS.items():
        for system in SYSTEMS:
            result = run_scenario(builder(seed=1), RunConfig(system=system))
            rows[(name, system)] = (
                len(result.used_switches()),
                result.causal_coverage,
            )
    return rows


@pytest.mark.benchmark(group="fig11")
def test_fig11_collected_switches_and_coverage(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_table(
        "Figure 11: collected switch count / causal coverage",
        ("anomaly", "system", "collected", "coverage"),
        [
            (name, system.value, count, f"{coverage:.2f}")
            for (name, system), (count, coverage) in sorted(
                results.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
            )
        ],
    )

    total_switches = 20  # fat-tree K=4 (ring scenarios have 4)
    for name in ANOMALY_BUILDERS:
        hk_count, hk_cov = results[(name, SystemKind.HAWKEYE)]
        fp_count, fp_cov = results[(name, SystemKind.FULL_POLLING)]
        vo_count, vo_cov = results[(name, SystemKind.VICTIM_ONLY)]

        # Hawkeye covers all causal switches on every anomaly.
        assert hk_cov == 1.0, f"{name}: Hawkeye must cover the causal set"
        assert fp_cov == 1.0
        # ... with no more collections than polling everything.
        assert hk_count <= fp_count
        # Victim-only never collects more than Hawkeye.
        assert vo_count <= hk_count

    # On fat-tree anomalies Hawkeye collects a strict subset of the fabric.
    hk_incast, _ = results[("incast-backpressure", SystemKind.HAWKEYE)]
    fp_incast, _ = results[("incast-backpressure", SystemKind.FULL_POLLING)]
    assert hk_incast < fp_incast <= total_switches

    # Victim-only misses causality on the deadlock cases.
    _, vo_loop_cov = results[("in-loop-deadlock", SystemKind.VICTIM_ONLY)]
    assert vo_loop_cov < 1.0
