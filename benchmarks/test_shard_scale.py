"""Fleet-scale gate for the sharded simulator.

Three records land in ``BENCH_perf.json``:

- ``fleet_scale.smoke`` — the CI gate: 2-shard K=4 incast, diagnosis and
  canonical obs trace byte-identical to the single-process engine;
- ``fleet_scale.k8_gate`` — the throughput contract: the K=8 fleet incast
  at 4 shards must beat the single-process engine's event rate by >=2x in
  *aggregate* events/s (total events over the slowest shard's busy CPU
  seconds — the rate the fabric achieves with one core per shard, immune
  to core-starved CI machines time-slicing the workers);
- ``fleet_scale.k16_frontier`` — the hosts x flows frontier: the K=16
  entry (1024 hosts, 320 switches), still byte-identical, now carrying
  the shared-memory transport counters and per-stage worker timings and
  gated against the PR-6 pipe-transport aggregate rate under
  ``REPRO_PERF_STRICT=1`` (cross-session absolutes are too noisy for an
  always-on gate; the same-session speedup ratio is gated always).

Like the hot-path gate, the speedup assertion is two-tier: a generous
floor always, the full >=2x contract under ``REPRO_PERF_STRICT=1``.
Identity is never relaxed.
"""

import gc
import os
from pathlib import Path

import pytest

from conftest import print_table
from repro.experiments import (
    BENCH_PERF_FILENAME,
    RunConfig,
    ScenarioSpec,
    load_bench_json,
    run_scenario,
    run_scenario_sharded,
    write_bench_json,
)
from repro.obs import ObsConfig, canonical_jsonl

REPO_ROOT = Path(__file__).resolve().parent.parent
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"

FLOOR_AGG_SPEEDUP = 1.5
STRICT_AGG_SPEEDUP = 2.0

# Transport regression contract: the shm-ring barrier must beat the
# PR-6 pickled-pipe K=16 entry (aggregate 327,532 ev/s on the reference
# machine) by >=1.2x.  Cross-session absolute rates swing by double-digit
# percentages with machine state, so the constant is gated only under
# REPRO_PERF_STRICT; the always-on gate is the same-session aggregate/
# single-process ratio, which cancels machine-state noise.
PIPE_K16_AGGREGATE_EVENTS_PER_SEC = 327_532
STRICT_K16_GAIN = 1.2


def _fingerprint(result):
    diagnosis = result.diagnosis()
    return diagnosis.describe() if diagnosis else None


def _pair(name, shards, seed=1, obs=False):
    """Run one scenario single-process and sharded; return both results.

    The sharded run goes first: forked workers inherit the parent heap,
    so forking before the single-process run leaves them a lean address
    space and keeps the aggregate-rate measurement honest.
    """
    spec = ScenarioSpec(name, seed=seed)
    obs_cfg = ObsConfig(trace=True, sink="ring") if obs else None
    gc.collect()
    sharded = run_scenario_sharded(spec, RunConfig(obs=obs_cfg, shards=shards))
    gc.collect()
    single = run_scenario(spec.build(), RunConfig(obs=obs_cfg))
    return single, sharded


def _write_section(key, record):
    payload = load_bench_json(REPO_ROOT / BENCH_PERF_FILENAME) or {}
    section = payload.setdefault("fleet_scale", {})
    section[key] = record
    write_bench_json(
        REPO_ROOT / BENCH_PERF_FILENAME,
        payload,
        environment_extra={"fleet_gate_shards": record.get("shards")},
    )


@pytest.mark.benchmark(group="shard")
def test_shard_smoke_identical_diagnosis():
    """The CI smoke: 2 shards on the paper's K=4 incast, zero divergence."""
    single, sharded = _pair("incast-backpressure", shards=2, obs=True)
    fp_single, fp_sharded = _fingerprint(single), _fingerprint(sharded)
    assert fp_single is not None
    assert fp_sharded == fp_single, "sharded run changed the diagnosis"
    trace_identical = canonical_jsonl(
        sharded.obs.tracer.records()
    ) == canonical_jsonl(single.obs.tracer.records())
    assert trace_identical, "sharded run changed the canonical obs trace"
    _write_section(
        "smoke",
        {
            "scenario": "incast-backpressure",
            "shards": sharded.perf.shards,
            "diagnosis_identical": True,
            "obs_trace_identical": trace_identical,
            "barrier_epochs": sharded.perf.barrier_epochs,
        },
    )


@pytest.mark.benchmark(group="shard")
def test_fleet_k8_aggregate_speedup():
    """The >=2x aggregate events/s contract on the K=8 fleet incast."""
    single, sharded = _pair("fleet-incast-k8", shards=4)
    fp_single, fp_sharded = _fingerprint(single), _fingerprint(sharded)
    assert fp_single is not None, "fleet incast must trigger a diagnosis"
    assert fp_sharded == fp_single, "sharded fleet run changed the diagnosis"

    agg = sharded.perf.aggregate_events_per_sec
    base = single.perf.events_per_sec
    speedup = agg / base
    topo = single.scenario.network.topology
    record = {
        "scenario": "fleet-incast-k8",
        "hosts": len(topo.hosts),
        "switches": len(topo.switches),
        "flows": len(single.scenario.network.flows),
        "shards": sharded.perf.shards,
        "single_events_per_sec": round(base),
        "aggregate_events_per_sec": round(agg),
        "speedup": round(speedup, 3),
        "barrier_epochs": sharded.perf.barrier_epochs,
        "barrier_stall_s": round(sharded.perf.barrier_stall_s, 4),
        "diagnosis_identical": True,
    }
    _write_section("k8_gate", record)
    print_table(
        "Fleet-scale aggregate throughput (K=8 incast, 4 shards)",
        ("single ev/s", "aggregate ev/s", "speedup", "epochs"),
        [(f"{base:,.0f}", f"{agg:,.0f}", f"{speedup:.2f}x",
          sharded.perf.barrier_epochs)],
    )
    floor = STRICT_AGG_SPEEDUP if STRICT else FLOOR_AGG_SPEEDUP
    assert speedup >= floor, (
        f"aggregate speedup {speedup:.2f}x below the {floor}x "
        f"{'strict ' if STRICT else ''}floor"
    )


@pytest.mark.benchmark(group="shard")
def test_fleet_k16_frontier():
    """K=16 entry of the hosts x flows frontier (1024 hosts).

    The aggregate rate is best-of-two sharded runs: it divides real event
    counts by the slowest worker's CPU seconds, and on a time-sliced CI
    core a single sample swings by double-digit percentages from cache
    eviction alone.  Best-of-N is one-sided — it can only under-report a
    regression, never hide one that reproduces twice.
    """
    spec = ScenarioSpec("fleet-incast-k16", seed=1)
    gc.collect()
    sharded = run_scenario_sharded(spec, RunConfig(shards=8))
    gc.collect()
    rerun = run_scenario_sharded(spec, RunConfig(shards=8))
    if (
        rerun.perf.aggregate_events_per_sec
        > sharded.perf.aggregate_events_per_sec
    ):
        sharded = rerun
    gc.collect()
    single = run_scenario(spec.build(), RunConfig())
    fp_single, fp_sharded = _fingerprint(single), _fingerprint(sharded)
    assert fp_single is not None, "K=16 fleet incast must trigger a diagnosis"
    assert fp_sharded == fp_single

    topo = single.scenario.network.topology
    agg = sharded.perf.aggregate_events_per_sec
    stages = sharded.perf.stages
    record = {
        "scenario": "fleet-incast-k16",
        "hosts": len(topo.hosts),
        "switches": len(topo.switches),
        "flows": len(single.scenario.network.flows),
        "shards": sharded.perf.shards,
        "events_run": single.perf.events_run,
        "single_events_per_sec": round(single.perf.events_per_sec),
        "aggregate_events_per_sec": round(agg),
        "speedup": round(agg / single.perf.events_per_sec, 3),
        "gain_over_pipe_pr6": round(agg / PIPE_K16_AGGREGATE_EVENTS_PER_SEC, 3),
        "wall_s": round(sharded.perf.wall_s, 3),
        "barrier_epochs": sharded.perf.barrier_epochs,
        "transport": sharded.perf.transport,
        "shard_run_max_wall_s": round(
            stages.get("shard_run", {}).get("max_wall_s", 0.0), 4
        ),
        "shard_transport_max_wall_s": round(
            stages.get("shard_transport", {}).get("max_wall_s", 0.0), 4
        ),
        "diagnosis_identical": True,
    }
    assert record["hosts"] == 1024 and record["switches"] == 320
    _write_section("k16_frontier", record)
    print_table(
        "Hosts x flows frontier (K=16 fat-tree, 8 shards)",
        ("hosts", "switches", "flows", "wall", "aggregate ev/s", "vs PR6 pipe"),
        [(record["hosts"], record["switches"], record["flows"],
          f"{record['wall_s']:.1f}s", f"{agg:,.0f}",
          f"{record['gain_over_pipe_pr6']:.2f}x")],
    )
    speedup = record["speedup"]
    floor = STRICT_AGG_SPEEDUP if STRICT else FLOOR_AGG_SPEEDUP
    assert speedup >= floor, (
        f"K=16 aggregate speedup {speedup:.2f}x over the same-session "
        f"single-process rate is below the {floor}x "
        f"{'strict ' if STRICT else ''}floor"
    )
    if STRICT:
        gain = record["gain_over_pipe_pr6"]
        assert gain >= STRICT_K16_GAIN, (
            f"K=16 aggregate {agg:,.0f} ev/s is only {gain:.2f}x the PR-6 "
            f"pipe-transport entry "
            f"({PIPE_K16_AGGREGATE_EVENTS_PER_SEC:,} ev/s); the strict "
            f"contract is {STRICT_K16_GAIN}x"
        )
