"""Scalability benches (§4.5's scalability claims + partial deployment §5).

1. Collection scale vs fabric size: the switches Hawkeye reads for one
   diagnosis depend on the anomaly's causal footprint, not on the fabric —
   a K=6 fat-tree (45 switches) costs the same per-diagnosis telemetry as
   the paper's K=4 (20 switches), while full polling grows linearly.
2. Partial deployment: dropping Hawkeye from the aggregation/core tiers
   interrupts PFC tracing exactly as §5 warns.
"""

import pytest

from conftest import print_table
from repro.baselines import SystemKind
from repro.collection import (
    AgentConfig,
    DetectionAgent,
    PollingEngine,
    TelemetryCollector,
)
from repro.core import AnomalyType
from repro.experiments import RunConfig, run_scenario
from repro.sim import Network, SimConfig
from repro.sim.config import PfcConfig
from repro.telemetry import HawkeyeDeployment
from repro.topology import build_fat_tree
from repro.units import KB, msec, usec
from repro.workloads.scenario import GroundTruth, Scenario


def incast_on_fat_tree(k, seed=1):
    """The Fig 1(a) incast on a K-ary fat-tree.

    K=4 delegates to the standard scenario builder; larger fabrics reuse
    its structure with more burst sources per source edge (two flows per
    host) so both aggregation switches of the destination pod are loaded.
    """
    if k == 4:
        from repro.workloads import incast_backpressure_scenario

        return incast_backpressure_scenario(seed=seed)
    topo = build_fat_tree(k=k)
    config = SimConfig(pfc=PfcConfig(xoff_bytes=80 * KB, xon_bytes=40 * KB))
    config.seed = seed
    net = Network(topo, config=config)
    culprits = []
    sources = ["H1_0_0", "H1_0_1", "H1_1_0", "H1_1_1", "H2_0_0", "H2_0_1"]
    for i, src in enumerate(sources):
        for j in range(2):
            f = net.make_flow(
                src, "H0_0_0", 700 * KB, usec(40), src_port=11000 + 2 * i + j
            )
            net.start_flow(f)
            culprits.append(f)
    victim = net.make_flow("H0_1_0", "H0_0_1", 2_000 * KB, usec(10), src_port=12000)
    net.start_flow(victim)
    truth = GroundTruth(
        anomaly=AnomalyType.MICRO_BURST_INCAST,
        culprit_flows=[f.key for f in culprits],
        initial_port=topo.attachment_of("H0_0_0"),
    )
    return Scenario(
        name=f"incast-k{k}", network=net, truth=truth,
        victims=[victim], duration_ns=msec(3),
    )


def fabric_scaling():
    rows = []
    for k in (4, 6):
        hawkeye = run_scenario(incast_on_fat_tree(k), RunConfig())
        full = run_scenario(
            incast_on_fat_tree(k), RunConfig(system=SystemKind.FULL_POLLING)
        )
        rows.append(
            (
                k,
                len(hawkeye.scenario.network.switches),
                len(hawkeye.used_switches()),
                len(full.used_switches()),
                hawkeye.causal_coverage,
            )
        )
    return rows


@pytest.mark.benchmark(group="scaling")
def test_collection_scale_independent_of_fabric_size(benchmark):
    rows = benchmark.pedantic(fabric_scaling, rounds=1, iterations=1)
    print_table(
        "Scaling: per-diagnosis telemetry vs fabric size",
        ("K", "fabric switches", "hawkeye reads", "full-polling reads", "coverage"),
        rows,
    )
    (k4, n4, hk4, fp4, cov4), (k6, n6, hk6, fp6, cov6) = rows
    assert n6 > 2 * n4  # the fabric more than doubled (20 -> 45 switches)
    # Full polling pays for the whole fabric...
    assert fp6 > fp4
    # ... while Hawkeye's causal subset stays essentially constant.
    assert hk6 <= hk4 + 1
    assert cov4 == 1.0 and cov6 == 1.0


def partial_deployment():
    rows = []
    for deployed_tiers, switches in (
        ("all tiers", None),
        ("edge only", lambda name: name.startswith("E")),
    ):
        scenario = incast_on_fat_tree(4)
        net = scenario.network
        names = (
            None
            if switches is None
            else [n for n in net.switches if switches(n)]
        )
        deployment = HawkeyeDeployment(net, switches=names)
        collector = TelemetryCollector(deployment)
        engine = PollingEngine(net, deployment)
        engine.add_mirror_listener(collector.on_polling_mirror)
        DetectionAgent(net, AgentConfig())
        net.run(scenario.duration_ns)
        collector.flush_pending(net.sim.now)
        victim = scenario.victims[0]
        traced = engine.switches_traced_for(victim.key)
        rows.append((deployed_tiers, len(traced), sorted(traced)))
    return rows


@pytest.mark.benchmark(group="scaling")
def test_partial_deployment_interrupts_tracing(benchmark):
    rows = benchmark.pedantic(partial_deployment, rounds=1, iterations=1)
    print_table(
        "Partial deployment (§5): victim's causal trace",
        ("deployment", "switches traced", "which"),
        [(d, n, ", ".join(w)) for d, n, w in rows],
    )
    full_n = rows[0][1]
    partial_n = rows[1][1]
    # Without Hawkeye on the aggregation tier, the polling trace stops at
    # the victim's ToR: the PFC causality hops away are unreachable.
    assert partial_n < full_n
    assert partial_n <= 1
