"""Telemetry register-plane benchmarks.

Two-level gate for the columnar telemetry plane:

- **Microbenchmark** — identical synthetic packet/PFC streams through the
  retained pure-Python reference plane
  (:class:`repro.telemetry.ReferenceSwitchTelemetry`) and the columnar
  plane, measuring enqueue rate and collection (snapshot) latency.  The
  speedup is a same-process, same-machine ratio, so it is enforced
  unconditionally: the columnar plane must be >=3x faster end to end and
  produce byte-identical reports.

- **Monitoring pipeline** — the continuous-monitoring workload (pfc-storm
  plus the analyzer service with a 10 us full-network collection cadence),
  compared against the wall clock recorded on the pre-columnar code.  The
  incident-log fingerprint must match the recorded baseline exactly;
  the speedup floor is generous by default and the >=1.5x contract is
  enforced under ``REPRO_PERF_STRICT=1`` (machine-dependent baseline).

Both benchmarks merge their numbers into ``BENCH_perf.json`` next to the
incast entries (read-merge-write, so test order never drops keys).
"""

import gc
import hashlib
import os
import time
from pathlib import Path

import pytest

from conftest import print_table
from repro.experiments import BENCH_PERF_FILENAME, load_bench_json, write_bench_json
from repro.experiments.analyzer import deploy_analyzer
from repro.sim.packet import DATA_PRIORITY, FlowKey, Packet, PacketType
from repro.telemetry import (
    HawkeyeSwitchTelemetry,
    ReferenceSwitchTelemetry,
    TelemetryConfig,
)
from repro.units import usec
from repro.workloads import SCENARIO_BUILDERS

REPO_ROOT = Path(__file__).resolve().parent.parent
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"

# -- microbenchmark workload ---------------------------------------------------
#
# 200k data enqueues plus interleaved PAUSE frames, spread over 32 epochs
# flowing through the 4-epoch ring, then two collection bursts of 5 reads
# each at the end (a collector read plus analyzer re-reads of one window).
# Most epochs are overwritten unread — exactly the regime the batched
# pending-queue design targets (hardware register writes are free; only
# CPU reads cost).  2000 distinct flows keep the flow table realistic and
# force hash collisions/evictions in the 4096 slots.
MICRO_EVENTS = 200_000
MICRO_EPOCHS = 32
MICRO_FLOWS = 2000
MICRO_PORTS = 16
MICRO_BURSTS = 2
MICRO_READS_PER_BURST = 5
MICRO_SPEEDUP = 3.0  # same-machine ratio: enforced unconditionally

# -- monitoring-pipeline baseline ---------------------------------------------
#
# Recorded on the pre-columnar telemetry plane (commit before this change),
# same harness as `_run_monitoring` below, best wall of 3.
MONITOR_BASELINE = {
    "wall_s": 0.825,
    "incidents": 21,
    "reports": 8000,
    "fingerprint_sha256": (
        "579e4ef16c748a1fb6890f1efb4ea88217e1d553b12d56a93a42a75b4e432fc7"
    ),
}
MONITOR_FLOOR_SPEEDUP = 1.2
MONITOR_STRICT_SPEEDUP = 1.5


def _merge_bench_json(updates):
    """Merge ``updates`` into BENCH_perf.json without dropping other keys."""
    path = REPO_ROOT / BENCH_PERF_FILENAME
    existing = load_bench_json(path) or {}
    existing.update(updates)
    write_bench_json(path, existing)


class _StubPort:
    def __init__(self) -> None:
        self.bandwidth = 100e9
        self.peer_is_host = False


class _StubSwitch:
    def __init__(self, num_ports: int) -> None:
        self.ports = {p: _StubPort() for p in range(num_ports)}


def _micro_events():
    flows = [
        FlowKey(f"10.{i // 250}.{(i // 10) % 25}.{i % 10}", "10.99.0.1", 1000 + i, 4791)
        for i in range(MICRO_FLOWS)
    ]
    pkts = [Packet(PacketType.DATA, 1024, DATA_PRIORITY, flow=f) for f in flows]
    events = []
    step = (MICRO_EPOCHS << 20) // MICRO_EVENTS
    t = 1 << 21
    for i in range(MICRO_EVENTS):
        t += step
        events.append(
            (
                t,
                pkts[(i * 7) % MICRO_FLOWS],
                (i * 3) % MICRO_PORTS,  # egress
                (i * 5) % MICRO_PORTS,  # ingress
                i % 32,  # queue depth
                (i % 11) == 0,  # port paused at enqueue
            )
        )
    return events, t


def _drive_plane(telem, events, end_ns):
    """Feed the stream, then run the collection bursts; returns timings."""
    switch = _StubSwitch(MICRO_PORTS)
    on_enq = telem.on_egress_enqueue
    on_pfc = telem.on_pfc_received
    gc.collect()
    w0 = time.perf_counter()
    for i, (t, pkt, egress, ingress, qdepth, paused) in enumerate(events):
        on_enq(switch, t, pkt, egress, ingress, qdepth, 0, paused)
        if (i % 97) == 0:
            on_pfc(switch, t, egress, DATA_PRIORITY, 0xFF)
    enqueue_s = time.perf_counter() - w0
    report = None
    s0 = time.perf_counter()
    for _ in range(MICRO_BURSTS):
        for _ in range(MICRO_READS_PER_BURST):
            report = telem.snapshot(end_ns)
    snapshot_s = time.perf_counter() - s0
    return enqueue_s, snapshot_s, report


def _assert_identical_reports(got, want):
    assert [e.epoch_number for e in got.epochs] == [e.epoch_number for e in want.epochs]
    for ge, we in zip(got.epochs, want.epochs):
        assert list(ge.flows) == list(we.flows) and ge.flows == we.flows
        assert list(ge.ports) == list(we.ports) and ge.ports == we.ports
        assert list(ge.meters) == list(we.meters) and ge.meters == we.meters
    assert got.port_status == want.port_status


@pytest.mark.benchmark(group="perf")
def test_telemetry_plane_microbenchmark():
    events, end_ns = _micro_events()
    config = TelemetryConfig()
    best = {}
    for name, cls in (
        ("reference", ReferenceSwitchTelemetry),
        ("columnar", HawkeyeSwitchTelemetry),
    ):
        for _ in range(3):
            sample = _drive_plane(cls("SW", config), events, end_ns)
            if name not in best or sample[0] + sample[1] < best[name][0] + best[name][1]:
                best[name] = sample

    ref_enq, ref_snap, ref_report = best["reference"]
    col_enq, col_snap, col_report = best["columnar"]
    _assert_identical_reports(col_report, ref_report)

    enq_speedup = ref_enq / col_enq
    snap_speedup = ref_snap / col_snap
    total_speedup = (ref_enq + ref_snap) / (col_enq + col_snap)
    reads = MICRO_BURSTS * MICRO_READS_PER_BURST
    rows = [
        (
            name,
            f"{enq * 1000:.1f}",
            f"{MICRO_EVENTS / enq / 1e6:.2f}",
            f"{snap * 1000 / reads:.2f}",
        )
        for name, (enq, snap, _) in (
            ("reference", best["reference"]),
            ("columnar", best["columnar"]),
        )
    ]
    print_table(
        "Telemetry register plane: reference vs columnar",
        ("plane", "enqueue ms", "Mpkt/s", "snapshot ms/read"),
        rows,
    )
    _merge_bench_json(
        {
            "telemetry_micro": {
                "events": MICRO_EVENTS,
                "flows": MICRO_FLOWS,
                "epochs_spanned": MICRO_EPOCHS,
                "snapshot_reads": reads,
                "reference": {"enqueue_s": round(ref_enq, 4), "snapshot_s": round(ref_snap, 4)},
                "columnar": {"enqueue_s": round(col_enq, 4), "snapshot_s": round(col_snap, 4)},
                "enqueue_speedup": round(enq_speedup, 2),
                "snapshot_speedup": round(snap_speedup, 2),
                "total_speedup": round(total_speedup, 2),
            }
        }
    )
    # Same-process ratio on identical streams: machine-independent contract.
    assert total_speedup >= MICRO_SPEEDUP, (
        f"columnar plane only {total_speedup:.2f}x faster than the reference "
        f"(need >={MICRO_SPEEDUP}x)"
    )


def _run_monitoring():
    """pfc-storm under the analyzer service with a 10 us collection cadence."""
    scenario = SCENARIO_BUILDERS["pfc-storm"](seed=1)
    net = scenario.network
    service = deploy_analyzer(net)
    collector = service.collector
    collector.dedup_interval_ns = usec(5)

    def tick():
        collector.collect_all(net.sim.now)
        net.sim.schedule(usec(10), tick)

    net.sim.schedule(usec(10), tick)
    gc.collect()
    t0 = time.perf_counter()
    net.run(scenario.duration_ns)
    wall = time.perf_counter() - t0
    fingerprint = hashlib.sha256(
        "\n".join(i.describe() for i in service.incidents).encode()
    ).hexdigest()
    return wall, len(service.incidents), len(collector.reports), fingerprint


@pytest.mark.benchmark(group="perf")
def test_monitoring_pipeline_speedup_and_identical_incidents():
    best = None
    for _ in range(3):
        sample = _run_monitoring()
        if best is None or sample[0] < best[0]:
            best = sample
    wall, incidents, reports, fingerprint = best
    base = MONITOR_BASELINE
    speedup = base["wall_s"] / wall

    print_table(
        "Continuous monitoring (pfc-storm, 10us collection cadence)",
        ("", "wall s", "incidents", "reports"),
        [
            ("pre-columnar", f"{base['wall_s']:.3f}", base["incidents"], base["reports"]),
            ("columnar", f"{wall:.3f}", incidents, reports),
            ("speedup", f"{speedup:.2f}x", "", ""),
        ],
    )
    _merge_bench_json(
        {
            "monitoring_pipeline": {
                "scenario": "pfc-storm",
                "collection_cadence_us": 10,
                "baseline_wall_s": base["wall_s"],
                "wall_s": round(wall, 4),
                "speedup": round(speedup, 3),
                "incidents": incidents,
                "reports": reports,
                "incidents_match_baseline": fingerprint == base["fingerprint_sha256"],
            }
        }
    )
    # The optimization contract: faster, never different.
    assert incidents == base["incidents"]
    assert reports == base["reports"]
    assert fingerprint == base["fingerprint_sha256"], (
        "columnar telemetry changed the diagnosed incidents"
    )
    floor = MONITOR_STRICT_SPEEDUP if STRICT else MONITOR_FLOOR_SPEEDUP
    assert speedup >= floor, (
        f"monitoring pipeline {speedup:.2f}x below the {floor}x "
        f"{'strict ' if STRICT else ''}floor "
        f"({wall:.3f}s vs baseline {base['wall_s']:.3f}s)"
    )
