"""Motivation bench (§2.3): the PFC watchdog misses transient congestion.

The paper motivates fine-grained PFC telemetry by noting the industrial
PFC watchdog polls port status at hundreds of milliseconds, "which may
miss massive transient PFC congestion".  This bench fires a train of
transient incast episodes and compares detection coverage: watchdog polls
vs Hawkeye's RTT-triggered agent, against tracer ground truth.
"""

import pytest

from conftest import print_table
from repro.baselines import PfcWatchdog, WatchdogConfig
from repro.collection import AgentConfig, DetectionAgent
from repro.sim import Network, NetworkTracer
from repro.topology import build_line
from repro.units import KB, msec, usec


EPISODES = 6
EPISODE_SPACING = msec(1)


def run_transients():
    net = Network(build_line(num_switches=3, hosts_per_switch=4))
    tracer = NetworkTracer(net)
    watchdog = PfcWatchdog(net, WatchdogConfig(poll_interval_ns=msec(200) // 10))
    # NOTE: 20 ms / 10 = 20 ms... the interval is scaled to our ms-scale
    # traces: a real 200 ms watchdog vs multi-second traces behaves like a
    # 20 ms watchdog vs our 7 ms trace — still far coarser than an episode.
    watchdog.start()
    agent = DetectionAgent(net, AgentConfig())

    # A victim flow alive across all episodes (application-limited).
    victim = net.make_flow("H1_0", "H3_3", 6_000 * KB, usec(1), src_port=999)
    victim.max_rate = 0.25 * net.hosts["H1_0"].bandwidth
    net.start_flow(victim)

    # Transient incast episodes (~100 us each) once per millisecond.
    port = 11000
    for episode in range(EPISODES):
        start = usec(100) + episode * EPISODE_SPACING
        for src in ("H2_0", "H2_1", "H3_1", "H3_2"):
            net.start_flow(net.make_flow(src, "H3_0", 150 * KB, start, src_port=port))
            port += 1
    net.run(EPISODES * EPISODE_SPACING + msec(1))

    # Ground truth: pause episodes on SW2's egress toward SW3 (the port the
    # congested SW3 pauses hop-by-hop).
    sw2_egress = next(
        remote for _, remote in net.topology.neighbors("SW3") if remote.node == "SW2"
    )
    true_episodes = tracer.paused_intervals(sw2_egress)
    watchdog_hits = sum(
        1
        for span in true_episodes
        if watchdog.detected_episode([span], sw2_egress)
    )
    agent_triggers = len({t.victim for t in agent.triggers})
    return len(true_episodes), watchdog_hits, agent_triggers


@pytest.mark.benchmark(group="motivation")
def test_watchdog_misses_transient_pfc(benchmark):
    episodes, watchdog_hits, agent_victims = benchmark.pedantic(
        run_transients, rounds=1, iterations=1
    )
    print_table(
        "Motivation (§2.3): transient PFC episodes vs detection",
        ("true pause episodes", "watchdog caught", "hawkeye victims triggered"),
        [(episodes, watchdog_hits, agent_victims)],
    )
    assert episodes >= EPISODES // 2, "the workload must create pause episodes"
    # The coarse poller misses most transient episodes...
    assert watchdog_hits < episodes / 2
    # ... while the host agent (per-flow RTT/stall) raises complaints.
    assert agent_victims >= 1
