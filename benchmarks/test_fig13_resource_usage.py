"""Figure 13: hardware resource usage and telemetry memory scaling.

13(a) is the Tofino prototype's resource footprint (modelled constants);
13(b) shows memory vs epoch count and flow count: flow telemetry grows
O(#flows) while the PFC causality structure and port telemetry stay small
and constant, bounded by the port count.
"""

import pytest

from conftest import print_table
from repro.experiments import telemetry_memory, tofino_resource_usage
from repro.units import KB


def sweep_memory():
    rows = []
    for epochs in (2, 4, 8):
        for flows in (1024, 4096, 16384):
            usage = telemetry_memory(num_epochs=epochs, flow_slots=flows, num_ports=64)
            rows.append((epochs, flows, usage))
    return rows


@pytest.mark.benchmark(group="fig13")
def test_fig13a_switch_resources(benchmark):
    usage = benchmark.pedantic(tofino_resource_usage, rounds=1, iterations=1)
    print_table(
        "Figure 13(a): Tofino resource usage (fraction of budget)",
        ("resource", "usage"),
        [(name, f"{frac:.0%}") for name, frac in usage.items()],
    )
    # "Fits well on Tofino": every resource within budget.
    assert all(frac <= 1.0 for frac in usage.values())


@pytest.mark.benchmark(group="fig13")
def test_fig13b_memory_scaling(benchmark):
    rows = benchmark.pedantic(sweep_memory, rounds=1, iterations=1)
    print_table(
        "Figure 13(b): telemetry memory (KB)",
        ("epochs", "flow slots", "flow telemetry", "port telemetry", "causality"),
        [
            (
                epochs,
                flows,
                usage.flow_telemetry // KB,
                usage.port_telemetry // KB,
                usage.causality_structure // KB,
            )
            for epochs, flows, usage in rows
        ],
    )

    by_key = {(e, f): u for e, f, u in rows}
    # Flow telemetry grows linearly with the flow count...
    assert (
        by_key[(4, 16384)].flow_telemetry == 16 * by_key[(4, 1024)].flow_telemetry
    )
    # ... while port telemetry and the causality structure do not grow at all.
    assert (
        by_key[(4, 16384)].port_telemetry == by_key[(4, 1024)].port_telemetry
    )
    assert (
        by_key[(4, 16384)].causality_structure
        == by_key[(4, 1024)].causality_structure
    )
    # Memory scales with the epoch count.
    assert by_key[(8, 4096)].flow_telemetry == 2 * by_key[(4, 4096)].flow_telemetry
    # At the paper's sizing the whole structure is a few MB: feasible SRAM.
    assert by_key[(4, 4096)].total < 4_000 * KB
