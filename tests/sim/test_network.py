"""Network wiring and end-to-end transport behaviour."""

import pytest

from repro.sim import Network
from repro.topology import build_fat_tree, build_line
from repro.units import KB, msec, usec


class TestWiring:
    def test_every_switch_and_host_built(self, fat_tree):
        net = Network(fat_tree)
        assert set(net.switches) == {s.name for s in fat_tree.switches}
        assert set(net.hosts) == {h.name for h in fat_tree.hosts}

    def test_switch_ports_match_topology(self, fat_tree):
        net = Network(fat_tree)
        for sw in fat_tree.switches:
            connected = {p for p, _ in fat_tree.neighbors(sw.name)}
            assert set(net.switch(sw.name).ports) == connected

    def test_host_uplink_attached(self, fat_tree):
        net = Network(fat_tree)
        host = net.host("H0_0_0")
        assert host.bandwidth > 0
        assert host.peer == fat_tree.attachment_of("H0_0_0")

    def test_make_flow_resolves_ips(self, dumbbell_net):
        flow = dumbbell_net.make_flow("HL0", "HR1", 10 * KB, 0)
        assert flow.key.src_ip == dumbbell_net.topology.host_ip("HL0")
        assert flow.key.dst_ip == dumbbell_net.topology.host_ip("HR1")


class TestTransport:
    def test_cross_fabric_delivery(self, fat_tree):
        net = Network(fat_tree)
        flow = net.make_flow("H0_0_0", "H3_1_1", 100 * KB, usec(1))
        net.start_flow(flow)
        net.run(msec(3))
        assert flow.completed

    def test_many_concurrent_flows_all_complete(self, fat_tree):
        net = Network(fat_tree)
        hosts = [h.name for h in fat_tree.hosts]
        flows = []
        for i in range(24):
            src = hosts[i % len(hosts)]
            dst = hosts[(i * 7 + 3) % len(hosts)]
            if src == dst:
                dst = hosts[(i * 7 + 4) % len(hosts)]
            f = net.make_flow(src, dst, 50 * KB, usec(i), src_port=20000 + i)
            flows.append(f)
            net.start_flow(f)
        net.run(msec(10))
        assert all(f.completed for f in flows)

    def test_conservation_no_data_loss(self, line3):
        """Lossless fabric: every sent byte is eventually acked."""
        net = Network(line3)
        flows = [
            net.make_flow("H1_0", "H3_0", 300 * KB, usec(1), src_port=1),
            net.make_flow("H1_1", "H3_1", 300 * KB, usec(2), src_port=2),
            net.make_flow("H2_0", "H3_0", 300 * KB, usec(3), src_port=3),
        ]
        for f in flows:
            net.start_flow(f)
        net.run(msec(10))
        for f in flows:
            assert f.bytes_acked == f.size

    def test_determinism_same_seed_same_result(self, line3):
        def run_once():
            net = Network(build_line(num_switches=3, hosts_per_switch=2))
            flows = [
                net.make_flow("H1_0", "H3_0", 200 * KB, usec(1), src_port=1),
                net.make_flow("H2_0", "H3_0", 200 * KB, usec(1), src_port=2),
            ]
            for f in flows:
                net.start_flow(f)
            net.run(msec(5))
            return [(f.fct(), f.packets_sent) for f in flows], net.sim.events_run

        assert run_once() == run_once()


class TestBaseRttEstimate:
    def test_estimate_positive_and_reasonable(self, fat_tree):
        net = Network(fat_tree)
        est = net.estimate_base_rtt("H0_0_0", fat_tree.host_ip("H3_1_1"))
        # 6 links each way, 2 us propagation each: at least 24 us.
        assert est > usec(24)
        assert est < usec(60)

    def test_intra_edge_smaller_than_inter_pod(self, fat_tree):
        net = Network(fat_tree)
        near = net.estimate_base_rtt("H0_0_0", fat_tree.host_ip("H0_0_1"))
        far = net.estimate_base_rtt("H0_0_0", fat_tree.host_ip("H3_1_1"))
        assert near < far

    def test_max_base_rtt_upper_bounds_pairs(self, fat_tree):
        net = Network(fat_tree)
        worst = net.max_base_rtt()
        assert worst >= net.estimate_base_rtt("H0_0_0", fat_tree.host_ip("H3_1_1"))
