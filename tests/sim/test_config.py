"""SimConfig component tests: ECN curve, PFC validation, DCQCN defaults."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import DcqcnConfig, EcnConfig, PfcConfig, SimConfig
from repro.units import KB


class TestEcnCurve:
    def test_no_marking_below_kmin(self):
        ecn = EcnConfig(kmin_bytes=40 * KB, kmax_bytes=160 * KB, pmax=0.2)
        assert ecn.mark_probability(0) == 0.0
        assert ecn.mark_probability(40 * KB) == 0.0

    def test_certain_marking_above_kmax(self):
        ecn = EcnConfig(kmin_bytes=40 * KB, kmax_bytes=160 * KB, pmax=0.2)
        assert ecn.mark_probability(160 * KB) == 1.0
        assert ecn.mark_probability(10**9) == 1.0

    def test_linear_ramp_between(self):
        ecn = EcnConfig(kmin_bytes=0, kmax_bytes=100, pmax=0.5)
        assert ecn.mark_probability(50) == pytest.approx(0.25)

    @given(st.integers(min_value=0, max_value=10**7))
    def test_probability_always_valid(self, q):
        ecn = EcnConfig()
        assert 0.0 <= ecn.mark_probability(q) <= 1.0

    @given(st.integers(min_value=0, max_value=10**6))
    def test_monotone_in_queue(self, q):
        ecn = EcnConfig()
        assert ecn.mark_probability(q) <= ecn.mark_probability(q + 1000)


class TestPfcConfigValidation:
    def test_valid_thresholds(self):
        cfg = PfcConfig(xoff_bytes=40 * KB, xon_bytes=20 * KB)
        assert cfg.xoff_bytes > cfg.xon_bytes

    def test_equal_thresholds_rejected(self):
        with pytest.raises(ValueError):
            PfcConfig(xoff_bytes=20 * KB, xon_bytes=20 * KB)

    def test_inverted_thresholds_rejected(self):
        with pytest.raises(ValueError):
            PfcConfig(xoff_bytes=10 * KB, xon_bytes=20 * KB)


class TestDefaults:
    def test_sim_config_composition(self):
        cfg = SimConfig()
        assert cfg.data_packet_size == 1 * KB
        assert cfg.pfc.xoff_bytes > cfg.pfc.xon_bytes
        assert cfg.ecn.kmin_bytes < cfg.ecn.kmax_bytes
        assert cfg.dcqcn.enabled

    def test_independent_instances(self):
        a, b = SimConfig(), SimConfig()
        a.pfc.xoff_bytes = 999
        assert b.pfc.xoff_bytes != 999

    def test_dcqcn_additive_increase_positive(self):
        assert DcqcnConfig().additive_increase > 0
