"""DCQCN congestion-control tests: unit-level state machine + integration."""

import pytest

from repro.sim import Network, SimConfig
from repro.sim.cc import DcqcnState
from repro.sim.config import DcqcnConfig
from repro.topology import build_dumbbell
from repro.units import KB, gbps, msec, usec


class TestDcqcnState:
    def make(self, line=gbps(100)):
        return DcqcnState(line, DcqcnConfig())

    def test_starts_at_line_rate(self):
        cc = self.make()
        assert cc.rate == cc.line_rate

    def test_cnp_decreases_rate(self):
        cc = self.make()
        assert cc.on_cnp(now=0)
        assert cc.rate < cc.line_rate

    def test_decrease_rate_limited_by_interval(self):
        cc = self.make()
        cc.on_cnp(now=0)
        rate = cc.rate
        assert not cc.on_cnp(now=1)  # within the decrease interval
        assert cc.rate == rate

    def test_second_decrease_after_interval(self):
        cc = self.make()
        cc.on_cnp(now=0)
        first = cc.rate
        assert cc.on_cnp(now=usec(100))
        assert cc.rate < first

    def test_rate_never_below_floor(self):
        cc = self.make()
        for i in range(200):
            cc.on_cnp(now=i * usec(100))
        assert cc.rate >= cc.config.min_rate

    def test_fast_recovery_moves_halfway_to_target(self):
        cc = self.make()
        cc.on_cnp(now=0)
        before = cc.rate
        cc.on_recovery_timer()
        assert before < cc.rate <= cc.target_rate

    def test_recovery_converges_to_line_rate(self):
        cc = self.make()
        cc.on_cnp(now=0)
        for _ in range(4000):
            cc.on_recovery_timer()
        assert cc.rate == pytest.approx(cc.line_rate, rel=0.01)

    def test_rate_capped_at_line_rate(self):
        cc = self.make()
        for _ in range(100):
            cc.on_recovery_timer()
        assert cc.rate <= cc.line_rate

    def test_alpha_rises_on_cnp(self):
        cc = self.make()
        cc.alpha = 0.1
        cc.on_cnp(now=0)
        assert cc.alpha > 0.1

    def test_alpha_decays_without_cnp(self):
        cc = self.make()
        cc.alpha = 1.0
        cc.on_alpha_timer()
        assert cc.alpha < 1.0

    def test_alpha_not_decayed_while_cnps_arrive(self):
        cc = self.make()
        cc.on_cnp(now=0)
        alpha = cc.alpha
        cc.on_alpha_timer()  # CNP seen since last update: no decay
        assert cc.alpha == alpha


class TestCcIntegration:
    def test_incast_triggers_cnps_and_rate_decrease(self):
        net = Network(build_dumbbell(hosts_per_side=4))
        flows = [
            net.make_flow(f"HL{j}", "HR0", 400 * KB, usec(1), src_port=10000 + j)
            for j in range(4)
        ]
        for f in flows:
            net.start_flow(f)
        net.run(usec(200))
        rates = [net.hosts[f.src_host].cc_state(f.key).rate for f in flows]
        assert any(r < gbps(100) for r in rates), "ECN/CNP must throttle senders"

    def test_disabled_cc_keeps_line_rate(self):
        config = SimConfig()
        config.dcqcn.enabled = False
        net = Network(build_dumbbell(hosts_per_side=4), config=config)
        flows = [
            net.make_flow(f"HL{j}", "HR0", 400 * KB, usec(1), src_port=10000 + j)
            for j in range(4)
        ]
        for f in flows:
            net.start_flow(f)
        net.run(msec(2))
        rates = [net.hosts[f.src_host].cc_state(f.key).rate for f in flows]
        assert all(r == gbps(100) for r in rates)

    def test_fairness_under_sustained_incast(self):
        net = Network(build_dumbbell(hosts_per_side=2))
        f1 = net.make_flow("HL0", "HR0", 2_000 * KB, 0, src_port=1)
        f2 = net.make_flow("HL1", "HR0", 2_000 * KB, 0, src_port=2)
        net.start_flow(f1)
        net.start_flow(f2)
        net.run(msec(6))
        assert f1.completed and f2.completed
        # Long-term shares should be within 3x of each other.
        assert f1.fct() < 3 * f2.fct() and f2.fct() < 3 * f1.fct()
