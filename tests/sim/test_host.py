"""Host/NIC model tests: pacing, ACKs, RTT, PFC honouring and injection."""

import pytest

from repro.sim import DATA_PRIORITY, Network, Packet, SimConfig
from repro.units import KB, msec, usec


class TestFlowTransmission:
    def test_flow_completes(self, tiny_net):
        flow = tiny_net.make_flow("A", "B", 100 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(msec(2))
        assert flow.completed
        assert flow.bytes_acked == flow.size

    def test_line_rate_fct(self, tiny_net):
        # 100 KB at 100 Gbps through one switch: ~8 us + small overheads.
        flow = tiny_net.make_flow("A", "B", 100 * KB, 0)
        tiny_net.start_flow(flow)
        tiny_net.run(msec(2))
        assert flow.fct() < usec(30)

    def test_last_packet_smaller_than_mtu(self, tiny_net):
        flow = tiny_net.make_flow("A", "B", 2500, usec(1))  # 2.5 packets
        tiny_net.start_flow(flow)
        tiny_net.run(msec(1))
        assert flow.completed
        assert flow.packets_sent == 3

    def test_rate_capped_flow_is_slower(self, tiny_topo):
        from repro.sim import Network

        net = Network(tiny_topo)
        capped = net.make_flow("A", "B", 100 * KB, 0)
        capped.max_rate = net.hosts["A"].bandwidth / 10
        net.start_flow(capped)
        net.run(msec(2))
        assert capped.completed
        assert capped.fct() > usec(70)  # ~10x slower than line rate

    def test_two_flows_share_nic(self, tiny_net):
        f1 = tiny_net.make_flow("A", "B", 50 * KB, 0, src_port=1)
        f2 = tiny_net.make_flow("A", "B", 50 * KB, 0, src_port=2)
        tiny_net.start_flow(f1)
        tiny_net.start_flow(f2)
        tiny_net.run(msec(2))
        assert f1.completed and f2.completed

    def test_flow_must_originate_at_host(self, tiny_net):
        flow = tiny_net.make_flow("A", "B", 10 * KB, 0)
        with pytest.raises(ValueError):
            tiny_net.hosts["B"].start_flow(flow)

    def test_deferred_start_time(self, tiny_net):
        flow = tiny_net.make_flow("A", "B", 10 * KB, usec(500))
        tiny_net.start_flow(flow)
        tiny_net.run(usec(400))
        assert flow.bytes_sent == 0
        tiny_net.run(msec(2))
        assert flow.completed
        assert flow.finish_time > usec(500)


class TestAcksAndRtt:
    def test_rtt_samples_recorded(self, tiny_net):
        flow = tiny_net.make_flow("A", "B", 40 * KB, 0)
        tiny_net.start_flow(flow)
        tiny_net.run(msec(1))
        assert flow.rtt_samples
        assert flow.latest_rtt() > 0

    def test_rtt_close_to_estimate_when_unloaded(self, tiny_net):
        flow = tiny_net.make_flow("A", "B", 40 * KB, 0)
        tiny_net.start_flow(flow)
        tiny_net.run(msec(1))
        estimate = tiny_net.estimate_base_rtt("A", flow.key.dst_ip, flow.key)
        assert max(r for _, r in flow.rtt_samples) <= 2 * estimate

    def test_ack_coalescing(self, tiny_topo):
        config = SimConfig(ack_every_packets=8)
        net = Network(tiny_topo, config=config)
        flow = net.make_flow("A", "B", 64 * KB, 0)  # 64 packets
        net.start_flow(flow)
        net.run(msec(1))
        assert flow.completed
        # 64 pkts / 8 per ACK = 8 samples (last pkt forces one too).
        assert len(flow.rtt_samples) == 8

    def test_rtt_listener_invoked(self, tiny_net):
        seen = []
        tiny_net.hosts["A"].rtt_listeners.append(
            lambda flow, now, rtt: seen.append(rtt)
        )
        tiny_net.start_flow(tiny_net.make_flow("A", "B", 40 * KB, 0))
        tiny_net.run(msec(1))
        assert seen

    def test_completion_listener_invoked(self, tiny_net):
        done = []
        tiny_net.hosts["A"].completion_listeners.append(
            lambda flow, now: done.append(flow.key)
        )
        flow = tiny_net.make_flow("A", "B", 10 * KB, 0)
        tiny_net.start_flow(flow)
        tiny_net.run(msec(1))
        assert done == [flow.key]

    def test_rtt_sample_cap(self, tiny_net):
        flow = tiny_net.make_flow("A", "B", 500 * KB, 0)
        flow.max_rtt_samples = 16
        tiny_net.start_flow(flow)
        tiny_net.run(msec(5))
        assert len(flow.rtt_samples) <= 16


class TestHostPfc:
    def test_host_honours_pause(self, tiny_net):
        host = tiny_net.hosts["A"]
        flow = tiny_net.make_flow("A", "B", 100 * KB, usec(1))
        tiny_net.start_flow(flow)
        host.receive(Packet.pfc(DATA_PRIORITY, 0xFFFF, 0))
        tiny_net.run(usec(50))
        sent_during_pause = flow.bytes_sent
        assert sent_during_pause < flow.size

    def test_host_resumes_after_pause_expiry(self, tiny_net):
        host = tiny_net.hosts["A"]
        flow = tiny_net.make_flow("A", "B", 100 * KB, usec(1))
        tiny_net.start_flow(flow)
        host.receive(Packet.pfc(DATA_PRIORITY, 200, 0))
        tiny_net.run(msec(3))
        assert flow.completed

    def test_pfc_injection_emits_pauses(self, tiny_net):
        host = tiny_net.hosts["A"]
        host.start_pfc_injection(msec(1))
        tiny_net.run(msec(2))
        assert host.injected_pause_frames > 1

    def test_pfc_injection_blocks_traffic_to_injector(self, tiny_net):
        tiny_net.hosts["A"].start_pfc_injection(msec(5))
        flow = tiny_net.make_flow("B", "A", 100 * KB, usec(10))
        tiny_net.start_flow(flow)
        tiny_net.run(msec(3))
        assert not flow.completed
        sw = tiny_net.switch("SW")
        port = tiny_net.topology.attachment_of("A").port
        assert sw.egress_queue_bytes(port) > 0

    def test_injection_stops_after_duration(self, tiny_net):
        host = tiny_net.hosts["A"]
        host.start_pfc_injection(usec(100))
        tiny_net.run(msec(1))
        count = host.injected_pause_frames
        tiny_net.run(msec(2))
        assert host.injected_pause_frames == count

    def test_traffic_recovers_after_short_injection(self, tiny_net):
        tiny_net.hosts["A"].start_pfc_injection(usec(200))
        flow = tiny_net.make_flow("B", "A", 100 * KB, usec(10))
        tiny_net.start_flow(flow)
        tiny_net.run(msec(5))
        assert flow.completed
